#include "replication/replay.hpp"

#include <map>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"
#include "runtime/context.hpp"
#include "runtime/wire.hpp"

namespace adets::repl {

using common::Bytes;
using common::NodeId;
using common::RequestId;
using runtime::AppWireKind;
using runtime::EventLog;

namespace {

/// Standalone scheduler host: executes logged requests against a local
/// object and serves nested replies from the log.
class ReplayHost : public sched::SchedulerEnv, public runtime::InvocationHost {
 public:
  ReplayHost(sched::Scheduler& scheduler, runtime::ReplicatedObject& object)
      : scheduler_(scheduler), object_(object) {}

  void add_reply(RequestId id, Bytes result) {
    const common::MutexLock guard(mutex_);
    replies_[id.value()] = std::move(result);
  }

  // --- SchedulerEnv ---------------------------------------------------
  void execute(const sched::Request& request) override {
    common::Reader r(request.payload);
    try {
      r.u8();  // kind
      const auto id = r.id<RequestId>();
      const auto logical = r.id<common::LogicalThreadId>();
      r.u8();   // reply mode
      r.u32();  // reply target
      const std::string method = r.str();
      const Bytes args = r.blob();
      runtime::SyncContext ctx(*this, id, logical);
      object_.dispatch(method, args, ctx);
    } catch (const runtime::ReplicaStopping&) {
    } catch (const std::exception& e) {
      ADETS_LOG_ERROR("replay") << "request failed: " << e.what();
    }
  }

  void broadcast(const Bytes&) override {
    // The original broadcasts are already in the log; drop re-emissions
    // (e.g. from the replayer's own wait timers).
  }

  [[nodiscard]] NodeId self() const override { return NodeId(1u << 30); }

  [[nodiscard]] std::vector<NodeId> view_members() const override {
    // Present the replayer as a *follower*: the original leader (node 0)
    // ranks first, so an LSA replayer replays the logged mutex tables.
    return {NodeId(0), self()};
  }

  // --- InvocationHost --------------------------------------------------
  [[nodiscard]] sched::Scheduler& context_scheduler() override { return scheduler_; }

  Bytes nested_invoke(runtime::SyncContext& ctx, common::GroupId,
                      const std::string&, const Bytes&) override {
    const RequestId nested_id =
        runtime::derive_nested_id(ctx.request_id(), ctx.next_nested_counter());
    scheduler_.before_nested_call(nested_id);
    scheduler_.after_nested_call(nested_id);
    const common::MutexLock guard(mutex_);
    const auto it = replies_.find(nested_id.value());
    if (it == replies_.end()) throw runtime::ReplicaStopping();
    return it->second;
  }

  void nested_invoke_oneway(runtime::SyncContext& ctx, common::GroupId,
                            const std::string&, const Bytes&) override {
    // Consume the id so later synchronous calls derive matching ids;
    // the callback it triggered is already in the log as a request.
    (void)runtime::derive_nested_id(ctx.request_id(), ctx.next_nested_counter());
  }

 private:
  sched::Scheduler& scheduler_;
  runtime::ReplicatedObject& object_;
  common::Mutex mutex_{"repl::replayhost"};
  std::map<std::uint64_t, Bytes> replies_ ADETS_GUARDED_BY(mutex_);
};

}  // namespace

ReplayResult replay_log(const runtime::EventLog& log, sched::SchedulerKind kind,
                        sched::SchedulerConfig config, runtime::ObjectFactory factory,
                        std::chrono::milliseconds timeout) {
  ReplayResult result;
  const auto events = log.snapshot();
  auto object = factory();
  auto scheduler = sched::make_scheduler(kind, config);
  ReplayHost host(*scheduler, *object);
  scheduler->start(host);

  std::uint64_t app_requests = 0;
  for (const auto& event : events) {
    switch (event.kind) {
      case EventLog::Event::Kind::kRequest: {
        common::Reader r(event.payload);
        sched::Request request;
        try {
          r.u8();
          request.id = r.id<RequestId>();
          request.logical = r.id<common::LogicalThreadId>();
          r.u8();
          r.u32();
          request.kind = r.str() == "__poison" ? sched::RequestKind::kPoison
                                               : sched::RequestKind::kApplication;
        } catch (const common::SerializationError&) {
          continue;
        }
        request.payload = event.payload;
        if (request.kind == sched::RequestKind::kApplication) app_requests++;
        scheduler->on_request(std::move(request));
        break;
      }
      case EventLog::Event::Kind::kReply:
        host.add_reply(event.reply_id, event.reply_result);
        scheduler->on_reply(event.reply_id);
        break;
      case EventLog::Event::Kind::kSchedMsg:
        scheduler->on_scheduler_message(event.sender, event.payload);
        break;
    }
  }

  const auto deadline = common::Clock::now() + timeout;
  while (scheduler->completed_requests() < app_requests &&
         common::Clock::now() < deadline) {
    common::Clock::sleep_real(std::chrono::milliseconds(1));
  }
  result.requests_executed = scheduler->completed_requests();
  result.complete = result.requests_executed >= app_requests;
  scheduler->stop();
  result.state_hash = object->state_hash();
  return result;
}

}  // namespace adets::repl
