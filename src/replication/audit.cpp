#include "replication/audit.hpp"

#include <algorithm>
#include <sstream>

#include "common/clock.hpp"

namespace adets::repl {

std::map<std::uint64_t, std::vector<std::uint64_t>> per_mutex_decisions(
    const std::vector<sched::Decision>& decisions) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> result;
  for (const auto& decision : decisions) {
    if (decision.kind != sched::Decision::Kind::kLockGrant) continue;
    if (decision.mutex.value() >= (1ULL << 61)) continue;  // scheduler-internal
    result[decision.mutex.value()].push_back(decision.thread.value());
  }
  return result;
}

namespace {

/// Appends the tail of one replica's decision ring to the diagnostic.
void dump_decisions(std::ostringstream& out, const ReplicaSnapshot& snapshot,
                    std::size_t tail) {
  out << "  replica " << snapshot.index << " (state hash " << snapshot.state_hash
      << "), last " << std::min(tail, snapshot.decisions.size()) << " of "
      << snapshot.decisions.size() << " recorded decisions:\n";
  const std::size_t begin =
      snapshot.decisions.size() > tail ? snapshot.decisions.size() - tail : 0;
  for (std::size_t i = begin; i < snapshot.decisions.size(); ++i) {
    out << "    " << sched::to_string(snapshot.decisions[i]) << "\n";
  }
}

/// Points at the first per-mutex grant disagreement between a replica
/// and the reference, if any.
void diff_decisions(std::ostringstream& out, const ReplicaSnapshot& reference,
                    const ReplicaSnapshot& other) {
  const auto ref = per_mutex_decisions(reference.decisions);
  const auto got = per_mutex_decisions(other.decisions);
  for (const auto& [mutex, ref_grants] : ref) {
    const auto it = got.find(mutex);
    const auto& other_grants =
        it == got.end() ? std::vector<std::uint64_t>{} : it->second;
    const std::size_t common = std::min(ref_grants.size(), other_grants.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (ref_grants[i] != other_grants[i]) {
        out << "  decision-trace diff: mutex " << mutex << " grant #" << i
            << ": replica " << reference.index << " granted t" << ref_grants[i]
            << ", replica " << other.index << " granted t" << other_grants[i]
            << "\n";
        return;
      }
    }
    if (ref_grants.size() != other_grants.size()) {
      out << "  decision-trace diff: mutex " << mutex << " has "
          << ref_grants.size() << " grants on replica " << reference.index
          << " vs " << other_grants.size() << " on replica " << other.index
          << " (within the retained window)\n";
      return;
    }
  }
  out << "  decision-trace diff: per-mutex grant projections agree within the "
         "retained window (divergence predates the ring or is in object "
         "state only)\n";
}

}  // namespace

AuditReport audit_group(runtime::Cluster& cluster, common::GroupId group) {
  AuditReport report;
  const int size = cluster.group_size(group);
  const auto nodes = cluster.members(group);
  for (int i = 0; i < size; ++i) {
    if (cluster.network().crashed(nodes[i])) continue;
    auto& replica = cluster.replica(group, i);
    const auto observed = replica.try_audit_snapshot();
    if (!observed) continue;  // mid-execution; audit it next round
    ReplicaSnapshot snapshot;
    snapshot.index = i;
    snapshot.state_hash = observed->state_hash;
    snapshot.applied = observed->applied;
    snapshot.decisions = replica.scheduler().decision_trace();
    report.replicas.push_back(std::move(snapshot));
  }
  if (report.replicas.empty()) return report;

  // Compare within equal-applied cohorts only: same count == same
  // totally-ordered prefix == the hashes MUST agree.
  std::map<std::uint64_t, std::vector<std::size_t>> cohorts;
  for (std::size_t i = 0; i < report.replicas.size(); ++i) {
    cohorts[report.replicas[i].applied].push_back(i);
  }
  std::vector<std::size_t> diverged_cohort;
  for (const auto& [applied, indices] : cohorts) {
    const std::uint64_t reference = report.replicas[indices.front()].state_hash;
    if (std::any_of(indices.begin(), indices.end(), [&](std::size_t i) {
          return report.replicas[i].state_hash != reference;
        })) {
      diverged_cohort = indices;
      break;
    }
  }
  if (diverged_cohort.empty()) return report;
  report.diverged = true;

  std::ostringstream out;
  out << "DIVERGENCE in group " << group << " at "
      << report.replicas[diverged_cohort.front()].applied
      << " applied requests: state hashes";
  for (const std::size_t i : diverged_cohort) {
    out << " " << report.replicas[i].state_hash;
  }
  out << "\n";
  for (const std::size_t i : diverged_cohort) {
    dump_decisions(out, report.replicas[i], /*tail=*/16);
  }
  for (std::size_t k = 1; k < diverged_cohort.size(); ++k) {
    diff_decisions(out, report.replicas[diverged_cohort.front()],
                   report.replicas[diverged_cohort[k]]);
  }
  report.diagnostic = out.str();
  return report;
}

AuditReport DivergenceAuditor::check() {
  AuditReport report = audit_group(cluster_, group_);
  audits_run_.fetch_add(1, std::memory_order_relaxed);
  if (report.diverged) {
    const common::MutexLock guard(mutex_);
    if (!divergence_detected_.load(std::memory_order_relaxed)) {
      first_divergence_ = report;
      divergence_detected_.store(true, std::memory_order_release);
    }
  }
  return report;
}

void DivergenceAuditor::start(common::Duration period) {
  const common::MutexLock guard(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  poller_ = std::thread([this, period] { poll_loop(period); });
}

void DivergenceAuditor::stop() {
  {
    const common::MutexLock guard(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  const common::MutexLock guard(mutex_);
  started_ = false;
}

void DivergenceAuditor::poll_loop(common::Duration period) {
  while (true) {
    {
      // Deadline loop instead of a predicate wait: `stopping_` is
      // guarded, and guarded members must stay out of wait-predicate
      // lambdas for the thread-safety analysis (see common/mutex.hpp).
      // The auditor polls diagnostics on real time by design; the
      // period never influences replica decisions.
      const auto deadline = common::Clock::now() + period;
      common::MutexLock lock(mutex_);
      while (!stopping_ && common::Clock::now() < deadline) {
        // detlint:allow(real-time-wait) diagnostics poll cadence, not decision state
        stop_cv_.wait_until(lock, deadline);
      }
      if (stopping_) return;
    }
    check();
  }
}

AuditReport DivergenceAuditor::first_divergence() const {
  const common::MutexLock guard(mutex_);
  return first_divergence_;
}

}  // namespace adets::repl
