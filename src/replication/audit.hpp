// Divergence auditing: detect replicas that disagree, and explain why.
//
// The whole ADETS design exists to prevent replicas from resolving
// locks, condition-variable wakeups or wait timeouts differently; a
// divergence is therefore THE failure mode worth dedicated machinery.
// The auditor collects each live replica's StateHash digest and, on a
// mismatch, dumps a diagnostic assembled from the schedulers' bounded
// decision-trace rings: the per-mutex grant projections are compared
// (the cross-mutex interleaving is legitimately nondeterministic for
// truly multithreaded strategies) and the first index where a replica
// departs from the reference replica is called out.
//
// Use one-shot (`audit_group`) after a drained workload, or run a
// DivergenceAuditor with a period to poll a live cluster — the fault
// injection tests do both.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "runtime/cluster.hpp"
#include "sched/api.hpp"

namespace adets::repl {

/// What the auditor captured from one live replica (only quiescent
/// replicas are captured; one mid-execution is skipped for that audit).
struct ReplicaSnapshot {
  int index = 0;
  std::uint64_t state_hash = 0;
  /// Requests applied when the hash was taken.  Hashes are compared only
  /// between replicas with equal counts: in a totally-ordered system an
  /// equal count means the same prefix was applied, so the hashes must
  /// match — while a replica at a lower count is merely lagging.
  std::uint64_t applied = 0;
  std::vector<sched::Decision> decisions;
};

struct AuditReport {
  bool diverged = false;
  std::vector<ReplicaSnapshot> replicas;
  /// Human-readable dump: hashes, per-replica recent decisions and the
  /// first point of decision-trace disagreement.  Empty when converged.
  std::string diagnostic;
};

/// One-shot audit of every live replica of `group`.
[[nodiscard]] AuditReport audit_group(runtime::Cluster& cluster, common::GroupId group);

/// Per-mutex grantee projection of a decision trace (only kLockGrant
/// entries; scheduler-internal mutexes excluded, mirroring
/// consistency.cpp's grant-trace projection).
[[nodiscard]] std::map<std::uint64_t, std::vector<std::uint64_t>>
per_mutex_decisions(const std::vector<sched::Decision>& decisions);

/// Periodically audits one group of a running cluster on a background
/// thread and latches the first divergence it observes.
class DivergenceAuditor {
 public:
  DivergenceAuditor(runtime::Cluster& cluster, common::GroupId group)
      : cluster_(cluster), group_(group) {}
  ~DivergenceAuditor() { stop(); }

  DivergenceAuditor(const DivergenceAuditor&) = delete;
  DivergenceAuditor& operator=(const DivergenceAuditor&) = delete;

  /// Runs one audit now and latches the report if it diverged.
  AuditReport check();

  /// Starts the background poller (idempotent).
  void start(common::Duration period);
  void stop();

  [[nodiscard]] bool divergence_detected() const {
    return divergence_detected_.load(std::memory_order_acquire);
  }
  /// The first diverged report observed (empty report if none).
  [[nodiscard]] AuditReport first_divergence() const;
  [[nodiscard]] std::uint64_t audits_run() const {
    return audits_run_.load(std::memory_order_relaxed);
  }

 private:
  void poll_loop(common::Duration period);

  runtime::Cluster& cluster_;
  const common::GroupId group_;

  mutable common::Mutex mutex_{"repl::auditor"};
  common::CondVar stop_cv_;
  bool stopping_ ADETS_GUARDED_BY(mutex_) = false;
  bool started_ ADETS_GUARDED_BY(mutex_) = false;
  std::thread poller_;
  AuditReport first_divergence_ ADETS_GUARDED_BY(mutex_);
  std::atomic<bool> divergence_detected_{false};
  std::atomic<std::uint64_t> audits_run_{0};
};

}  // namespace adets::repl
