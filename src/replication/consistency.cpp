#include "replication/consistency.hpp"

#include <sstream>

namespace adets::repl {

std::map<std::uint64_t, std::vector<std::uint64_t>> per_mutex_projection(
    const std::vector<sched::GrantRecord>& trace) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> result;
  for (const auto& record : trace) {
    // Scheduler-internal mutexes (PDS request queue) keep being granted
    // in idle no-op cycles after the workload drains; snapshots would
    // truncate their streams at different points.  Application mutexes
    // are the consistency contract.
    if (record.mutex.value() >= (1ULL << 61)) continue;
    result[record.mutex.value()].push_back(record.thread.value());
  }
  return result;
}

ConsistencyReport check_group(runtime::Cluster& cluster, common::GroupId group) {
  ConsistencyReport report;
  const int size = cluster.group_size(group);
  const auto nodes = cluster.members(group);

  std::vector<int> live;
  for (int i = 0; i < size; ++i) {
    if (!cluster.network().crashed(nodes[i])) live.push_back(i);
  }
  if (live.empty()) {
    report.detail = "no live replicas";
    return report;
  }

  report.states_match = true;
  report.grant_orders_match = true;
  const std::uint64_t reference_hash = cluster.replica(group, live[0]).state_hash();
  const auto reference_grants = per_mutex_projection(
      cluster.replica(group, live[0]).scheduler().grant_trace());

  std::ostringstream detail;
  for (const int i : live) {
    auto& replica = cluster.replica(group, i);
    const std::uint64_t hash = replica.state_hash();
    report.state_hashes.push_back(hash);
    if (hash != reference_hash) {
      report.states_match = false;
      detail << "replica " << i << " state hash " << hash << " != reference "
             << reference_hash << "; ";
    }
    if (per_mutex_projection(replica.scheduler().grant_trace()) != reference_grants) {
      report.grant_orders_match = false;
      detail << "replica " << i << " grant order diverges; ";
    }
  }
  report.detail = detail.str();
  return report;
}

}  // namespace adets::repl
