// Passive-replication style log re-execution.
//
// The paper's Sec. 1 motivates deterministic multithreading for passive
// replication too: after a primary failure, a backup re-executes the
// logged requests since the last checkpoint and must reach the state
// the primary had — which requires the re-execution to schedule threads
// exactly like the original run.
//
// ReplayHost re-executes a recorded EventLog against a fresh object
// under a fresh scheduler instance of the same kind:
//  - application requests are fed in their logged (total) order;
//  - nested invocations are answered from the logged replies (the
//    outside world is not contacted again);
//  - scheduler messages (LSA mutex tables, timeout broadcasts) are fed
//    verbatim, so an LSA replayer acts as a follower of the original
//    leader and replays its grant order, and timed waits resolve the
//    same way they originally did;
//  - broadcasts attempted by the replaying scheduler are dropped (their
//    originals are already in the log).
//
// replay_log() returns the state hash of the re-built object; it must
// equal the live replicas' hash.
#pragma once

#include <memory>

#include "runtime/replica.hpp"

namespace adets::repl {

struct ReplayResult {
  bool complete = false;          // every logged request re-executed
  std::uint64_t state_hash = 0;
  std::uint64_t requests_executed = 0;
};

/// Re-executes `log` under a fresh `kind` scheduler against a fresh
/// object from `factory`.
ReplayResult replay_log(const runtime::EventLog& log, sched::SchedulerKind kind,
                        sched::SchedulerConfig config, runtime::ObjectFactory factory,
                        std::chrono::milliseconds timeout = std::chrono::seconds(60));

}  // namespace adets::repl
