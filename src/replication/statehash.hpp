// Helpers for building replica state hashes.
//
// Replicated objects combine their fields into a single 64-bit digest;
// consistent replicas must produce identical digests.  The mixing is
// order-sensitive, so container iteration order matters — use ordered
// containers (or sort) when hashing.
#pragma once

#include <cstdint>
#include <string>

namespace adets::repl {

class StateHash {
 public:
  StateHash& mix(std::uint64_t value) {
    state_ ^= value + 0x9e3779b97f4a7c15ULL + (state_ << 6) + (state_ >> 2);
    return *this;
  }

  StateHash& mix(std::int64_t value) { return mix(static_cast<std::uint64_t>(value)); }
  StateHash& mix(int value) { return mix(static_cast<std::uint64_t>(value)); }

  StateHash& mix(const std::string& value) {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a
    for (const char c : value) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return mix(h);
  }

  template <typename Range>
  StateHash& mix_range(const Range& range) {
    for (const auto& item : range) mix(item);
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x2545f4914f6cdd1dULL;
};

}  // namespace adets::repl
