// Cross-replica consistency checking.
//
// After (or during) a run, compares the replicas of a group on two
// axes: the object state hash, and the per-mutex projections of the
// lock-grant traces (the global interleaving across different mutexes
// is legitimately nondeterministic for truly multithreaded strategies;
// the per-mutex grant order is the determinism contract).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"

namespace adets::repl {

struct ConsistencyReport {
  bool states_match = false;
  bool grant_orders_match = false;
  std::vector<std::uint64_t> state_hashes;
  std::string detail;

  [[nodiscard]] bool consistent() const { return states_match && grant_orders_match; }
};

/// Per-mutex grantee sequences of one grant trace.
std::map<std::uint64_t, std::vector<std::uint64_t>> per_mutex_projection(
    const std::vector<sched::GrantRecord>& trace);

/// Compares all live replicas of `group`.
ConsistencyReport check_group(runtime::Cluster& cluster, common::GroupId group);

}  // namespace adets::repl
