#include "sched/sat.hpp"

namespace adets::sched {

using common::CondVarId;
using common::MutexId;
using common::RequestId;
using common::ThreadId;

SchedulerCapabilities SatScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "Java";
  caps.deadlock_free = "NI+CB";
  caps.deployment = "transformation";
  caps.multithreading = "SA+L";
  caps.reentrant_locks = true;
  caps.condition_variables = true;
  caps.timed_wait = true;
  caps.true_multithreading = false;
  caps.needs_communication = false;
  caps.mc_explorable = true;
  return caps;
}

// --- activity token -----------------------------------------------------------
//
// Determinism argument: exactly one thread runs at a time, so every
// push to ready_ happens either in the active thread's program order or
// at a stream-consumption point.  External events (requests, nested
// replies, timeout messages) are *not* acted upon at delivery; they are
// appended to stream_ and consumed one at a time, only when no internal
// thread is runnable.  Hence the activation sequence is a pure function
// of the totally-ordered stream and the threads' program behaviour —
// independent of when deliveries physically arrive.

void SatScheduler::activate_next(Lk& lk) {
  if (active_.valid()) return;
  while (!ready_.empty()) {
    const ThreadId id = ready_.front();
    ready_.pop_front();
    ThreadRecord* record = find_thread(lk, id);
    if (record == nullptr || record->state == ThreadState::kDone) continue;
    active_ = id;
    stats_.activations++;
    wake(*record);
    return;
  }
  // Nothing internal is runnable: consume the next external events.
  while (!stream_.empty()) {
    StreamEvent event = std::move(stream_.front());
    stream_.pop_front();
    if (auto* request = std::get_if<Request>(&event)) {
      ThreadRecord& t = spawn_thread(lk, std::move(*request));
      active_ = t.id;  // the new thread passes its admission gate
      stats_.activations++;
      wake(t);
      return;
    }
    const RequestId reply_id = std::get<RequestId>(event);
    ThreadRecord* target = nullptr;
    for (auto& [id, record] : threads_) {
      if (record->pending_nested == reply_id && !record->reply_arrived) {
        target = record.get();
        break;
      }
    }
    if (target == nullptr) {
      // The local thread has not reached its nested call yet; it will
      // find the reply at before_nested_call.
      early_replies_.insert(reply_id.value());
      continue;
    }
    target->reply_arrived = true;
    active_ = target->id;
    stats_.activations++;
    wake(*target);
    return;
  }
}

void SatScheduler::release_activity(Lk& lk, ThreadRecord& t) {
  if (active_ == t.id) active_ = ThreadId::invalid();
  activate_next(lk);
}

void SatScheduler::await_activation(Lk& lk, ThreadRecord& t) {
  while (active_ != t.id && !stopping()) block(lk, t);
}

void SatScheduler::yield() {
  ThreadRecord& t = current();
  Lk lk(mon_);
  if (active_ != t.id) return;
  ready_.push_back(t.id);
  active_ = ThreadId::invalid();
  activate_next(lk);
  await_activation(lk, t);
}

// --- event stream ---------------------------------------------------------------

void SatScheduler::handle_request(Lk& lk, Request request) {
  stream_.push_back(std::move(request));
  activate_next(lk);
}

void SatScheduler::on_reply(RequestId nested_id) {
  Lk lk(mon_);
  if (stopping()) return;
  stream_.push_back(nested_id);
  activate_next(lk);
}

void SatScheduler::handle_reply(Lk& lk, ThreadRecord& t) {
  // Only reached when the reply was consumed from the stream before the
  // thread issued its nested call (stashed in early_replies_): the
  // thread re-enters the ready queue at its own execution point.
  ready_.push_back(t.id);
  activate_next(lk);
}

void SatScheduler::on_thread_start(Lk& lk, ThreadRecord& t) {
  t.state = ThreadState::kBlockedAdmission;
  await_activation(lk, t);
}

void SatScheduler::on_thread_done(Lk& lk, ThreadRecord& t) {
  release_activity(lk, t);
}

// --- locks ------------------------------------------------------------------------

void SatScheduler::base_lock(Lk& lk, ThreadRecord& t, MutexId mutex) {
  MutexState& m = mutexes_[mutex.value()];
  if (!m.owner.valid()) {
    // Free mutex: the active thread acquires it and keeps running.
    m.owner = t.id;
    record_grant(mutex, t.id);
    return;
  }
  m.waiters.push_back(t.id);
  t.state = ThreadState::kBlockedLock;
  release_activity(lk, t);
  await_activation(lk, t);  // activation implies the grant happened
  t.state = ThreadState::kRunning;
}

void SatScheduler::base_unlock(Lk& lk, ThreadRecord&, MutexId mutex) {
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  hand_over(lk, mutex);
}

void SatScheduler::hand_over(Lk& lk, MutexId mutex) {
  MutexState& m = mutexes_[mutex.value()];
  while (!m.owner.valid() && !m.waiters.empty()) {
    const ThreadId next = m.waiters.front();
    m.waiters.pop_front();
    ThreadRecord* record = find_thread(lk, next);
    if (record == nullptr || record->state == ThreadState::kDone) continue;
    m.owner = next;
    record_grant(mutex, next);
    ready_.push_back(next);
    activate_next(lk);
    return;
  }
}

// --- condition variables --------------------------------------------------------------

WaitResult SatScheduler::base_wait(Lk& lk, ThreadRecord& t, MutexId mutex,
                                   CondVarId condvar, std::uint64_t generation,
                                   common::Duration) {
  cond_queues_[condvar.value()].push_back(Waiter{t.id, generation});
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  hand_over(lk, mutex);
  t.timed_out = false;
  t.state = ThreadState::kBlockedWait;
  release_activity(lk, t);
  await_activation(lk, t);  // woken only after reacquiring the mutex
  t.state = ThreadState::kRunning;
  return WaitResult{!t.timed_out};
}

void SatScheduler::move_to_reacquire(Lk& lk, ThreadRecord& t, MutexId mutex,
                                     bool timed_out) {
  t.timed_out = timed_out;
  t.state = ThreadState::kBlockedReacquire;
  mutexes_[mutex.value()].waiters.push_back(t.id);
  // The notifier holds the mutex; the waiter proceeds at its unlock.
  hand_over(lk, mutex);
}

void SatScheduler::base_notify(Lk& lk, ThreadRecord&, MutexId mutex,
                               CondVarId condvar, bool all) {
  auto& queue = cond_queues_[condvar.value()];
  do {
    if (queue.empty()) return;
    const Waiter waiter = queue.front();
    queue.pop_front();
    ThreadRecord* record = find_thread(lk, waiter.thread);
    if (record != nullptr && record->state == ThreadState::kBlockedWait) {
      move_to_reacquire(lk, *record, mutex, /*timed_out=*/false);
    }
  } while (all);
}

bool SatScheduler::base_resume_timed_out(Lk& lk, ThreadRecord&, MutexId mutex,
                                         CondVarId condvar, ThreadId target,
                                         std::uint64_t generation) {
  auto& queue = cond_queues_[condvar.value()];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->thread == target && it->generation == generation) {
      queue.erase(it);
      ThreadRecord* record = find_thread(lk, target);
      if (record == nullptr || record->state != ThreadState::kBlockedWait) return false;
      move_to_reacquire(lk, *record, mutex, /*timed_out=*/true);
      return true;
    }
  }
  return false;  // stale: a notify already consumed this wait
}

// --- nested invocations ------------------------------------------------------------------

void SatScheduler::base_before_nested(Lk& lk, ThreadRecord& t) {
  t.state = ThreadState::kBlockedNested;
  release_activity(lk, t);
}

void SatScheduler::base_after_nested(Lk& lk, ThreadRecord& t) {
  await_activation(lk, t);  // activated at the reply's stream position
  t.state = ThreadState::kRunning;
}

void SatScheduler::debug_extra(std::string& out) const {
  out += " active=" +
         (active_.valid() ? std::to_string(active_.value()) : std::string("-"));
  out += " ready=[";
  for (const auto id : ready_) out += std::to_string(id.value()) + ",";
  out += "] stream=" + std::to_string(stream_.size());
}

}  // namespace adets::sched
