// SEQ: strictly sequential request execution (the baseline of the paper),
// and SL: the single-logical-thread model of the Eternal system.
//
// SEQ starts request R(i+1) only after R(i) has fully completed,
// including any nested invocation it performs.  Locks are no-ops (there
// is never concurrency), condition variables are unsupported (paper
// Sec. 5.5 uses polling instead), and a callback arriving during a
// nested invocation deadlocks the object — exactly the limitation that
// motivates the other strategies.
//
// SL additionally recognises callbacks: an incoming request whose
// logical-thread id matches a locally blocked thread belongs to the same
// logical thread and is executed immediately on an additional physical
// thread, which makes nested invocation cycles (A -> B -> A) deadlock-free.
#pragma once

#include <deque>

#include "sched/base.hpp"

namespace adets::sched {

class SeqScheduler : public SchedulerBase {
 public:
  explicit SeqScheduler(SchedulerConfig config) : SchedulerBase(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kSeq; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

 protected:
  void handle_request(Lk& lk, Request request) override ADETS_REQUIRES(mon_);
  void handle_reply(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                       common::CondVarId condvar, std::uint64_t generation,
                       common::Duration timeout) override ADETS_REQUIRES(mon_);
  void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                   common::CondVarId condvar, bool all) override ADETS_REQUIRES(mon_);
  bool base_resume_timed_out(Lk& lk, ThreadRecord& handler, common::MutexId mutex,
                             common::CondVarId condvar, common::ThreadId target,
                             std::uint64_t generation) override ADETS_REQUIRES(mon_);
  void base_before_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_after_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_start(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_done(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);

  /// True if `request` continues the logical thread of a live local
  /// thread (i.e. it is a callback).  Always false for plain SEQ.
  virtual bool is_callback(Lk& lk, const Request& request) ADETS_REQUIRES(mon_);

  std::deque<Request> queue_ ADETS_GUARDED_BY(mon_);
  bool busy_ ADETS_GUARDED_BY(mon_) = false;
  common::ThreadId slot_owner_ ADETS_GUARDED_BY(mon_) = common::ThreadId::invalid();
};

class SlScheduler : public SeqScheduler {
 public:
  explicit SlScheduler(SchedulerConfig config) : SeqScheduler(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kSl; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

 protected:
  bool is_callback(Lk& lk, const Request& request) override ADETS_REQUIRES(mon_);
};

}  // namespace adets::sched
