#include "sched/lsa.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace adets::sched {

using common::Bytes;
using common::CondVarId;
using common::MutexId;
using common::ThreadId;

namespace {
/// Deterministic id for an ADETS-LSA timeout thread: derived from the
/// waiting thread and its wait generation, identical on every replica.
ThreadId timeout_thread_id(ThreadId waiter, std::uint64_t generation) {
  return ThreadId((1ULL << 63) | (waiter.value() << 20) | (generation & 0xFFFFFULL));
}
}  // namespace

SchedulerCapabilities LsaScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "Java";          // extended from Basile's locks/monitors
  caps.deadlock_free = "NI+CB";
  caps.deployment = "manual";
  caps.multithreading = "MA";
  caps.reentrant_locks = true;
  caps.condition_variables = true;
  caps.timed_wait = true;
  caps.true_multithreading = true;
  caps.needs_communication = true;     // mutex-table broadcasts
  caps.mc_explorable = true;
  return caps;
}

void LsaScheduler::start(SchedulerEnv& env) {
  SchedulerBase::start(env);
  const auto members = env.view_members();
  Lk lk(mon_);  // no threads yet; taken for the thread-safety analysis
  leader_ = !members.empty() && members.front() == env.self();
}

bool LsaScheduler::is_leader() const {
  const Lk guard(mon_);
  return leader_;
}

void LsaScheduler::on_view_change(const std::vector<common::NodeId>& members) {
  Lk lk(mon_);
  const bool now_leader = !members.empty() && members.front() == env_->self();
  if (now_leader && !leader_) {
    ADETS_LOG_INFO("lsa") << "node " << env_->self()
                          << " takes over as LSA leader; honouring "
                          << expected_.size() << " recorded grant queues first";
  }
  leader_ = now_leader;
  wake_lock_waiters(lk);
}

// --- event stream -------------------------------------------------------------

void LsaScheduler::handle_request(Lk& lk, Request request) {
  spawn_thread(lk, std::move(request));  // runs concurrently right away
}

void LsaScheduler::handle_reply(Lk&, ThreadRecord& t) { wake(t); }

void LsaScheduler::on_scheduler_message(common::NodeId /*sender*/, const Bytes& payload) {
  if (payload.empty() || payload[0] != 'L') return;
  Lk lk(mon_);
  if (stopping()) return;
  for (const TableEntry& entry : decode_table(payload)) {
    if (leader_) continue;  // the leader already granted these
    if (entry.is_new && lsa_to_app_.count(entry.lsa_id) == 0) {
      // Dynamic mutex registration: bind via the creating thread's
      // (thread, lock-op) pair, which is replica-independent.
      const auto key = std::make_pair(entry.thread, entry.op);
      const auto unknown = unknown_requests_.find(key);
      if (unknown != unknown_requests_.end()) {
        bind(MutexId(unknown->second), entry.lsa_id);
        unknown_requests_.erase(unknown);
      } else {
        early_new_entries_[key] = entry.lsa_id;
      }
    }
    expected_[entry.lsa_id].push_back(entry.thread);
  }
  wake_lock_waiters(lk);
}

void LsaScheduler::bind(MutexId mutex, std::uint64_t lsa_id) {
  app_to_lsa_[mutex.value()] = lsa_id;
  lsa_to_app_[lsa_id] = mutex.value();
  // Other threads may be blocked-unknown on the same mutex.
  for (auto& [id, record] : threads_) {
    if (record->state == ThreadState::kBlockedLock ||
        record->state == ThreadState::kBlockedReacquire) {
      wake(*record);
    }
  }
}

void LsaScheduler::wake_lock_waiters(Lk&) {
  for (auto& [id, record] : threads_) {
    if (record->state == ThreadState::kBlockedLock ||
        record->state == ThreadState::kBlockedReacquire) {
      wake(*record);
    }
  }
}

// --- locking ---------------------------------------------------------------------

void LsaScheduler::base_lock(Lk& lk, ThreadRecord& t, MutexId mutex) {
  t.state = ThreadState::kBlockedLock;
  lock_impl(lk, t, mutex);
  t.state = ThreadState::kRunning;
}

void LsaScheduler::lock_impl(Lk& lk, ThreadRecord& t, MutexId mutex) {
  // Every base-level lock call gets a per-thread operation index; lock
  // calls happen in program order, so `op` values agree across replicas
  // and key the dynamic mutex-id binding protocol.
  const std::uint64_t op = ++lock_ops_[t.id.value()];
  bool enqueued = false;
  while (!stopping()) {
    MutexState& m = mutexes_[mutex.value()];
    const auto binding = app_to_lsa_.find(mutex.value());

    // Replay phase: recorded grants (follower, or fresh leader after
    // fail-over) take absolute precedence.
    if (binding != app_to_lsa_.end()) {
      auto exp = expected_.find(binding->second);
      if (exp != expected_.end() && !exp->second.empty()) {
        if (exp->second.front() == t.id.value() && !m.owner.valid()) {
          exp->second.pop_front();
          m.owner = t.id;
          record_grant(mutex, t.id);
          return;
        }
        block(lk, t);  // re-woken on unlocks / new tables / view changes
        continue;
      }
    }

    if (leader_) {
      if (!enqueued) {
        m.rt_waiters.push_back(t.id);
        enqueued = true;
      }
      if (!m.owner.valid() && !m.rt_waiters.empty() && m.rt_waiters.front() == t.id) {
        m.rt_waiters.pop_front();
        m.owner = t.id;
        record_grant(mutex, t.id);
        append_entry(lk, mutex, t.id, op);
        return;
      }
      block(lk, t);
      continue;
    }

    // Follower with no binding yet: wait for the leader's is_new entry
    // for exactly this (thread, op) lock operation.
    if (binding == app_to_lsa_.end()) {
      const auto key = std::make_pair(t.id.value(), op);
      const auto early = early_new_entries_.find(key);
      if (early != early_new_entries_.end()) {
        const std::uint64_t lsa_id = early->second;
        early_new_entries_.erase(early);
        bind(mutex, lsa_id);
        continue;
      }
      unknown_requests_[key] = mutex.value();
      block(lk, t);
      unknown_requests_.erase(key);
      continue;
    }
    // Bound but no recorded grants yet: wait for the next table.
    block(lk, t);
  }
}

void LsaScheduler::base_unlock(Lk& lk, ThreadRecord&, MutexId mutex) {
  unlock_impl(lk, mutex);
}

void LsaScheduler::unlock_impl(Lk& lk, MutexId mutex) {
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  wake_lock_waiters(lk);
}

void LsaScheduler::append_entry(Lk& lk, MutexId mutex, ThreadId thread,
                                std::uint64_t op) {
  auto binding = app_to_lsa_.find(mutex.value());
  bool is_new = false;
  std::uint64_t lsa_id;
  if (binding == app_to_lsa_.end()) {
    lsa_id = next_lsa_id_++;
    bind(mutex, lsa_id);
    is_new = true;
  } else {
    lsa_id = binding->second;
  }
  outgoing_.push_back(TableEntry{lsa_id, thread.value(), is_new, op});
  if (outgoing_.size() >= config_.lsa_batch_grants ||
      config_.lsa_batch_delay.count() == 0) {
    flush_outgoing(lk);
  } else if (outgoing_.size() == 1) {
    // The lambda body stays lock-free (clang analyzes lambdas as
    // separate functions); flush_batched acquires mon_ itself.
    timer_->schedule(config_.lsa_batch_delay, [this] { flush_batched(); });
  }
}

void LsaScheduler::flush_batched() {
  Lk lk(mon_);
  if (!stopping()) flush_outgoing(lk);
}

void LsaScheduler::flush_outgoing(Lk&) {
  if (outgoing_.empty()) return;
  stats_.broadcasts++;
  // Broadcast must stay under mon_ so the broadcast order matches the
  // table-append order; the transport send is enqueue-only (GCS delivery
  // runs on its own thread), so the monitor is never held across a park.
  // adets-sa:allow(blocking-under-monitor) ordered broadcast; send is enqueue-only
  env_->broadcast(encode_table(outgoing_));
  outgoing_.clear();
}

// --- condition variables ------------------------------------------------------------

WaitResult LsaScheduler::base_wait(Lk& lk, ThreadRecord& t, MutexId mutex,
                                   CondVarId condvar, std::uint64_t generation,
                                   common::Duration) {
  cond_queues_[condvar.value()].push_back(Waiter{t.id, generation});
  unlock_impl(lk, mutex);
  t.wait_satisfied = false;
  t.timed_out = false;
  t.state = ThreadState::kBlockedWait;
  while (!t.wait_satisfied && !stopping()) block(lk, t);
  // Reacquire the guarding mutex through the normal LSA machinery: the
  // leader records the reacquisition, followers replay it.
  t.state = ThreadState::kBlockedReacquire;
  lock_impl(lk, t, mutex);
  t.state = ThreadState::kRunning;
  return WaitResult{!t.timed_out};
}

void LsaScheduler::base_notify(Lk& lk, ThreadRecord&, MutexId, CondVarId condvar,
                               bool all) {
  auto& queue = cond_queues_[condvar.value()];
  do {
    if (queue.empty()) return;
    const Waiter waiter = queue.front();
    queue.pop_front();
    ThreadRecord* record = find_thread(lk, waiter.thread);
    if (record != nullptr && record->state == ThreadState::kBlockedWait) {
      record->wait_satisfied = true;
      record->timed_out = false;
      wake(*record);
    }
  } while (all);
}

bool LsaScheduler::base_resume_timed_out(Lk& lk, ThreadRecord&, MutexId,
                                         CondVarId condvar, ThreadId target,
                                         std::uint64_t generation) {
  auto& queue = cond_queues_[condvar.value()];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->thread == target && it->generation == generation) {
      queue.erase(it);
      ThreadRecord* record = find_thread(lk, target);
      if (record == nullptr || record->state != ThreadState::kBlockedWait) return false;
      record->wait_satisfied = true;
      record->timed_out = true;
      wake(*record);
      return true;
    }
  }
  return false;  // "no effect" branch of paper Fig. 1
}

void LsaScheduler::on_wait_timer_expired(ThreadId thread, MutexId mutex,
                                         CondVarId condvar, std::uint64_t generation) {
  // Paper Fig. 1: spawn a TO-thread subject to ADETS-LSA scheduling.  It
  // locks the guarding mutex (recorded/replayed) and tries to resume the
  // waiter; if a notify won the race the resume has no effect.
  Lk lk(mon_);
  if (stopping()) return;
  Request request;
  request.kind = RequestKind::kTimeout;
  const ThreadId derived = timeout_thread_id(thread, generation);
  request.id = common::RequestId(derived.value());
  request.logical = common::LogicalThreadId(derived.value());
  request.timeout = TimeoutInfo{thread, mutex, condvar, generation};
  spawn_thread(lk, std::move(request), derived, /*internal=*/true);
}

// --- nested invocations ----------------------------------------------------------------

void LsaScheduler::base_before_nested(Lk&, ThreadRecord& t) {
  t.state = ThreadState::kBlockedNested;
}

void LsaScheduler::base_after_nested(Lk& lk, ThreadRecord& t) {
  while (!t.reply_arrived && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
}

void LsaScheduler::on_thread_start(Lk&, ThreadRecord&) {}
void LsaScheduler::on_thread_done(Lk&, ThreadRecord&) {}

// --- wire format ------------------------------------------------------------------------

Bytes LsaScheduler::encode_table(const std::vector<TableEntry>& entries) {
  common::Writer w;
  w.u8('L');
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const TableEntry& e : entries) {
    w.u64(e.lsa_id);
    w.u64(e.thread);
    w.boolean(e.is_new);
    w.u64(e.op);
  }
  return w.take();
}

std::vector<LsaScheduler::TableEntry> LsaScheduler::decode_table(const Bytes& payload) {
  std::vector<TableEntry> entries;
  try {
    common::Reader r(payload);
    if (r.u8() != 'L') return entries;
    const auto count = r.u32();
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      TableEntry e;
      e.lsa_id = r.u64();
      e.thread = r.u64();
      e.is_new = r.boolean();
      e.op = r.u64();
      entries.push_back(e);
    }
  } catch (const common::SerializationError&) {
    entries.clear();
  }
  return entries;
}

}  // namespace adets::sched
