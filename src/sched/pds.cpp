#include "sched/pds.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace adets::sched {

using common::CondVarId;
using common::MutexId;
using common::ThreadId;

SchedulerCapabilities PdsScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "Java";        // extended from Basile's plain locks
  caps.deadlock_free = "NI";         // nested invocations block the round but
                                     // cannot cycle; callbacks are not special-cased
  caps.deployment = "manual";
  caps.multithreading = "MA (restr.)";
  caps.reentrant_locks = true;
  caps.condition_variables = true;
  caps.timed_wait = true;
  caps.true_multithreading = true;
  caps.needs_communication = false;
  caps.mc_explorable = true;
  return caps;
}

void PdsScheduler::start(SchedulerEnv& env) {
  SchedulerBase::start(env);
  Lk lk(mon_);
  initial_pool_ = std::max<std::size_t>(1, config_.pds_thread_pool);
  for (std::size_t i = 0; i < initial_pool_; ++i) {
    spawn_worker(lk, /*pre_suspended=*/false);
  }
}

std::uint64_t PdsScheduler::rounds() const {
  const Lk guard(mon_);
  return round_;
}

std::size_t PdsScheduler::pool_size() const {
  const Lk guard(mon_);
  std::size_t alive = 0;
  for (const auto& [id, record] : threads_) {
    if (record->state != ThreadState::kDone) alive++;
  }
  return alive;
}

void PdsScheduler::spawn_worker(Lk& lk, bool pre_suspended) {
  Request request;
  request.kind = RequestKind::kApplication;  // placeholder until first fetch
  request.id = common::RequestId::invalid();
  request.logical = common::LogicalThreadId::invalid();
  ThreadRecord& t = spawn_thread(lk, std::move(request), std::nullopt, /*internal=*/true);
  if (pre_suspended) {
    // Join the *current* round-start grant computation deterministically:
    // the worker is born already suspended on the queue mutex.
    t.state = ThreadState::kBlockedLock;
    t.wanted_mutex = MutexId(kQueueMutexId);
    t.pds_request_round = round_ == 0 ? 0 : round_ - 1;
  }
}

void PdsScheduler::wake_everyone(Lk&) {
  for (auto& [id, record] : threads_) wake(*record);
}

// --- worker loop -------------------------------------------------------------------

void PdsScheduler::thread_body(ThreadRecord& t) {
  while (true) {
    Request work;
    {
      Lk lk(mon_);
      if (stopping() || t.pds_terminate) {
        t.state = ThreadState::kDone;
        maybe_start_round(lk);
        return;
      }
      auto fetched = fetch(lk, t);
      if (!fetched || fetched->kind == RequestKind::kPoison || stopping()) {
        t.state = ThreadState::kDone;
        maybe_start_round(lk);
        return;
      }
      work = std::move(*fetched);
      t.request = work;
      t.logical = work.logical;
      t.state = ThreadState::kRunning;
    }
    run_request_body(t, work);
  }
}

std::optional<Request> PdsScheduler::fetch(Lk& lk, ThreadRecord& t) {
  if (config_.pds_round_robin_assignment) {
    // Worker i executes requests i, i+N, i+2N, ...
    const std::uint64_t pool = initial_pool_;
    t.state = ThreadState::kRunning;
    while (!stopping() && !t.pds_terminate) {
      if (!request_queue_.empty() && next_fetch_index_ % pool == t.id.value()) {
        Request request = std::move(request_queue_.front());
        request_queue_.pop_front();
        next_fetch_index_++;
        wake_everyone(lk);
        return request;
      }
      block(lk, t);
    }
    return std::nullopt;
  }

  // Synchronized assignment: the queue mutex is granted by the normal
  // round machinery, so the i-th request goes to the same worker on
  // every replica.
  const MutexId queue_mutex(kQueueMutexId);
  if (mutexes_[kQueueMutexId].owner != t.id) {
    if (t.wanted_mutex == queue_mutex) {
      // Pre-suspended at spawn: the request is already registered with
      // the round machinery; just await the grant.
      while (mutexes_[kQueueMutexId].owner != t.id && !stopping() &&
             !t.pds_terminate) {
        block(lk, t);
      }
    } else {
      pds_lock(lk, t, queue_mutex);
    }
  }
  if (stopping() || t.pds_terminate) {
    if (mutexes_[kQueueMutexId].owner == t.id) pds_unlock(lk, queue_mutex);
    return std::nullopt;
  }
  // Holding the queue mutex while the queue is empty keeps this worker
  // "running": the round cannot advance without requests (paper Sec. 3.2:
  // "the system cannot start a new round").  The paper's remedy is to
  // "deterministically create artificial requests": after an idle spell
  // we broadcast a no-op through the total order, which this holder pops
  // and discards; re-fetching then suspends it like everyone else and
  // the round can start.
  while (request_queue_.empty() && !stopping() && !t.pds_terminate) {
    t.state = ThreadState::kRunning;
    block_for(lk, t, config_.pds_idle_fill_interval);
    if (request_queue_.empty() && !stopping() && !t.pds_terminate) {
      stats_.broadcasts++;
      lk.unlock();
      env_->broadcast(common::Bytes{'P'});
      lk.lock();
    }
  }
  if (stopping() || t.pds_terminate) {
    pds_unlock(lk, queue_mutex);
    return std::nullopt;
  }
  Request request = std::move(request_queue_.front());
  request_queue_.pop_front();
  next_fetch_index_++;
  pds_unlock(lk, queue_mutex);
  return request;
}

// --- event stream ------------------------------------------------------------------

void PdsScheduler::on_scheduler_message(common::NodeId sender,
                                        const common::Bytes& payload) {
  if (payload.size() == 1 && payload[0] == 'P') {
    // Artificial request: enters the (totally ordered) request queue so
    // every replica assigns it to the same worker.
    Request request;
    request.kind = RequestKind::kNoop;
    const std::uint64_t internal = (1ULL << 62) | next_internal_request_++;
    request.id = common::RequestId(internal);
    request.logical = common::LogicalThreadId(internal);
    on_request(std::move(request));
    return;
  }
  SchedulerBase::on_scheduler_message(sender, payload);
}

void PdsScheduler::handle_request(Lk& lk, Request request) {
  request_queue_.push_back(std::move(request));
  wake_everyone(lk);  // a fetch-idle queue-mutex holder may be waiting
}

void PdsScheduler::handle_reply(Lk&, ThreadRecord& t) { wake(t); }

void PdsScheduler::on_thread_start(Lk&, ThreadRecord&) {}
void PdsScheduler::on_thread_done(Lk&, ThreadRecord&) {}

// --- rounds and locking ----------------------------------------------------------------

void PdsScheduler::base_lock(Lk& lk, ThreadRecord& t, MutexId mutex) {
  pds_lock(lk, t, mutex);
}

void PdsScheduler::pds_lock(Lk& lk, ThreadRecord& t, MutexId mutex) {
  // PDS-2 fast path: one extra in-round acquisition when permitted.
  if (config_.pds_variant == 2 && t.pds_phase == 1 && t.pds_granted_round == round_) {
    MutexState& m = mutexes_[mutex.value()];
    if (!m.owner.valid() && lower_ids_have_phase1(lk, t)) {
      m.owner = t.id;
      record_grant(mutex, t.id);
      t.pds_phase = 2;
      return;
    }
  }
  // Suspend; the grant comes at a round boundary or an in-round unlock.
  t.wanted_mutex = mutex;
  t.pds_request_round = round_;
  t.state = ThreadState::kBlockedLock;
  maybe_start_round(lk);
  while (mutexes_[mutex.value()].owner != t.id && !stopping() && !t.pds_terminate) {
    block(lk, t);
  }
  t.state = ThreadState::kRunning;
}

bool PdsScheduler::lower_ids_have_phase1(Lk&, const ThreadRecord& t) const {
  for (const auto& [id, record] : threads_) {
    if (id >= t.id.value()) break;
    if (record->state == ThreadState::kDone ||
        record->state == ThreadState::kBlockedWait) {
      continue;
    }
    if (!(record->pds_granted_round == round_ && record->pds_phase >= 1)) return false;
  }
  return true;
}

void PdsScheduler::grant(Lk&, ThreadRecord& t, MutexId mutex) {
  mutexes_[mutex.value()].owner = t.id;
  record_grant(mutex, t.id);
  t.wanted_mutex = MutexId::invalid();
  t.pds_phase = 1;
  t.pds_granted_round = round_;
  if (t.state == ThreadState::kBlockedLock) t.state = ThreadState::kRunning;
  wake(t);
}

void PdsScheduler::base_unlock(Lk& lk, ThreadRecord&, MutexId mutex) {
  pds_unlock(lk, mutex);
}

void PdsScheduler::pds_unlock(Lk& lk, MutexId mutex) {
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  // In-round hand-over: the next *same-round* requester (lowest id) may
  // execute concurrently with the unlocker (paper Sec. 3.2).
  ThreadRecord* next = nullptr;
  for (auto& [id, record] : threads_) {
    if (record->state == ThreadState::kBlockedLock &&
        record->wanted_mutex == mutex && record->pds_request_round < round_) {
      next = record.get();
      break;  // threads_ is ordered by id
    }
  }
  if (next != nullptr) grant(lk, *next, mutex);
}

void PdsScheduler::maybe_start_round(Lk& lk) {
  if (threads_.empty() || stopping()) return;
  bool any_lock_suspended = false;
  std::size_t non_waiting_alive = 0;
  for (const auto& [id, record] : threads_) {
    switch (record->state) {
      case ThreadState::kBlockedLock:
        any_lock_suspended = true;
        non_waiting_alive++;
        break;
      case ThreadState::kBlockedWait:
      case ThreadState::kDone:
        break;
      default:
        return;  // someone is still running / in a nested call
    }
  }
  // ADETS-PDS pool resizing (paper Sec. 4.2): avoid the all-waiting
  // deadlock by adding workers, retire surplus fetch-idle ones.
  if (non_waiting_alive < config_.pds_min_nonwaiting) {
    const std::size_t missing = config_.pds_min_nonwaiting - non_waiting_alive;
    for (std::size_t i = 0; i < missing; ++i) spawn_worker(lk, /*pre_suspended=*/true);
    any_lock_suspended = true;
    ADETS_LOG_DEBUG("pds") << "pool grown by " << missing << " at round " << round_;
  } else {
    const std::size_t target =
        std::max(initial_pool_, config_.pds_min_nonwaiting);
    if (non_waiting_alive > target) {
      // Retire the youngest surplus workers that are idle at the queue
      // mutex (a deterministic, state-based choice).
      std::size_t surplus = non_waiting_alive - target;
      for (auto it = threads_.rbegin(); it != threads_.rend() && surplus > 0; ++it) {
        ThreadRecord& record = *it->second;
        if (record.state == ThreadState::kBlockedLock &&
            record.wanted_mutex == MutexId(kQueueMutexId) &&
            it->first >= initial_pool_) {
          record.pds_terminate = true;
          record.wanted_mutex = MutexId::invalid();
          wake(record);
          surplus--;
        }
      }
    }
  }
  if (!any_lock_suspended) return;
  round_++;
  stats_.rounds = round_;
  // Grant phase: all pending requests are known; assign mutexes in
  // increasing thread-id order.
  for (auto& [id, record] : threads_) {
    if (record->state != ThreadState::kBlockedLock) continue;
    if (record->pds_request_round >= round_) continue;
    if (!record->wanted_mutex.valid()) continue;
    if (!mutexes_[record->wanted_mutex.value()].owner.valid()) {
      grant(lk, *record, record->wanted_mutex);
    }
  }
}

// --- condition variables -----------------------------------------------------------------

WaitResult PdsScheduler::base_wait(Lk& lk, ThreadRecord& t, MutexId mutex,
                                   CondVarId condvar, std::uint64_t generation,
                                   common::Duration) {
  cond_queues_[condvar.value()].push_back(Waiter{t.id, generation});
  pds_unlock(lk, mutex);
  t.timed_out = false;
  t.state = ThreadState::kBlockedWait;
  maybe_start_round(lk);
  // Resumption: a notify/timeout converts us into a mutex request; we
  // proceed once the round machinery grants the guarding mutex.
  while (mutexes_[mutex.value()].owner != t.id && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
  return WaitResult{!t.timed_out};
}

void PdsScheduler::waiter_to_lock_request(Lk& lk, ThreadRecord& t, MutexId mutex,
                                          bool timed_out) {
  t.timed_out = timed_out;
  // Paper Fig. 2: the resumed thread must first reacquire the lock,
  // which makes it wait until the start of the next round.
  t.wanted_mutex = mutex;
  t.pds_request_round = round_;
  t.state = ThreadState::kBlockedLock;
  (void)lk;
}

void PdsScheduler::base_notify(Lk& lk, ThreadRecord&, MutexId mutex,
                               CondVarId condvar, bool all) {
  auto& queue = cond_queues_[condvar.value()];
  do {
    if (queue.empty()) return;
    const Waiter waiter = queue.front();
    queue.pop_front();
    ThreadRecord* record = find_thread(lk, waiter.thread);
    if (record != nullptr && record->state == ThreadState::kBlockedWait) {
      waiter_to_lock_request(lk, *record, mutex, /*timed_out=*/false);
    }
  } while (all);
}

bool PdsScheduler::base_resume_timed_out(Lk& lk, ThreadRecord&, MutexId mutex,
                                         CondVarId condvar, ThreadId target,
                                         std::uint64_t generation) {
  auto& queue = cond_queues_[condvar.value()];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->thread == target && it->generation == generation) {
      queue.erase(it);
      ThreadRecord* record = find_thread(lk, target);
      if (record == nullptr || record->state != ThreadState::kBlockedWait) return false;
      waiter_to_lock_request(lk, *record, mutex, /*timed_out=*/true);
      return true;
    }
  }
  return false;
}

// --- nested invocations -------------------------------------------------------------------

void PdsScheduler::base_before_nested(Lk&, ThreadRecord& t) {
  // Evaluated variant (paper Sec. 4.2): the thread counts as running, so
  // the round stalls until the reply arrives.
  t.state = ThreadState::kBlockedNested;
}

void PdsScheduler::base_after_nested(Lk& lk, ThreadRecord& t) {
  while (!t.reply_arrived && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
}

}  // namespace adets::sched
