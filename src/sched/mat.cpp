#include "sched/mat.hpp"

#include <algorithm>

namespace adets::sched {

using common::CondVarId;
using common::MutexId;
using common::ThreadId;

SchedulerCapabilities MatScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "Java";
  caps.deadlock_free = "NI+CB";
  caps.deployment = "transformation";
  caps.multithreading = "MA";
  caps.reentrant_locks = true;
  caps.condition_variables = true;
  caps.timed_wait = true;
  caps.true_multithreading = true;
  caps.needs_communication = false;
  caps.mc_explorable = true;
  return caps;
}

// --- token management -----------------------------------------------------------

void MatScheduler::try_assign_token(Lk& lk) {
  if (primary_.valid()) return;
  while (!tickets_.empty()) {
    ThreadTicket ticket;
    if (const auto* reply = std::get_if<common::RequestId>(&tickets_.front())) {
      // Placeholder: resolve to the thread that claimed this reply.  If
      // nobody claimed it yet, the token waits here — the claiming
      // thread is still running unsynchronised code before its nested
      // call, so it will arrive; consuming later slots first would make
      // the token order depend on local timing.
      const auto claimed = claimed_replies_.find(reply->value());
      if (claimed == claimed_replies_.end()) return;
      ticket = claimed->second;
      claimed_replies_.erase(claimed);
    } else {
      ticket = std::get<ThreadTicket>(tickets_.front());
    }
    tickets_.pop_front();
    ThreadRecord* record = find_thread(lk, ticket.id);
    if (record == nullptr || record->state == ThreadState::kDone ||
        record->ticket_epoch != ticket.epoch ||
        record->state == ThreadState::kBlockedWait ||
        record->state == ThreadState::kBlockedNested) {
      // Stale (the thread advanced to a new eligibility epoch) or the
      // thread cannot proceed: discard.  A fresh ticket exists or will
      // arrive at the thread's resume event; granting the token through
      // an old slot would reorder acquisitions across replicas, and
      // parking it on a blocked thread could deadlock.
      continue;
    }
    primary_ = ticket.id;
    stats_.activations++;
    if (record->state == ThreadState::kBlockedAdmission) wake(*record);
    return;
  }
}

void MatScheduler::transfer_token(Lk& lk, ThreadRecord& t) {
  if (primary_ == t.id) primary_ = ThreadId::invalid();
  try_assign_token(lk);
}

void MatScheduler::yield() {
  ThreadRecord& t = current();
  Lk lk(mon_);
  if (primary_ != t.id) return;
  tickets_.push_back(ThreadTicket{t.id, t.ticket_epoch});
  primary_ = ThreadId::invalid();
  try_assign_token(lk);
  // The yielding thread keeps running as a secondary; it re-waits for
  // the token at its next lock request.
}

// --- event stream ------------------------------------------------------------------

void MatScheduler::handle_request(Lk& lk, Request request) {
  ThreadRecord& t = spawn_thread(lk, std::move(request));
  tickets_.push_back(ThreadTicket{t.id, t.ticket_epoch});  // creation ticket
  try_assign_token(lk);
}

void MatScheduler::on_reply(common::RequestId nested_id) {
  Lk lk(mon_);
  if (stopping()) return;
  for (auto& [id, record] : threads_) {
    if (record->pending_nested == nested_id && !record->reply_arrived) {
      record->reply_arrived = true;
      record->state = ThreadState::kRunning;  // resumed as a secondary
      record->ticket_epoch++;                 // old tickets become stale
      tickets_.push_back(ThreadTicket{record->id, record->ticket_epoch});
      try_assign_token(lk);
      wake(*record);
      return;
    }
  }
  // The local thread has not issued its nested call yet: stash the
  // reply and hold the token slot with a placeholder ticket.
  early_replies_.insert(nested_id.value());
  tickets_.push_back(nested_id);
  try_assign_token(lk);
}

void MatScheduler::handle_reply(Lk& lk, ThreadRecord& t) {
  // Reached from before_nested_call when the reply was early: claim the
  // placeholder that already sits at the reply's queue position.
  t.state = ThreadState::kRunning;
  t.ticket_epoch++;  // old tickets become stale
  claimed_replies_[t.pending_nested.value()] = ThreadTicket{t.id, t.ticket_epoch};
  try_assign_token(lk);
  wake(t);
}

void MatScheduler::on_thread_start(Lk&, ThreadRecord&) {
  // Secondaries start running right away: true multithreading.
}

void MatScheduler::on_thread_done(Lk& lk, ThreadRecord& t) {
  transfer_token(lk, t);
}

// --- locks -----------------------------------------------------------------------------

void MatScheduler::base_lock(Lk& lk, ThreadRecord& t, MutexId mutex) {
  // Only the token holder may request a lock.
  while (primary_ != t.id && !stopping()) {
    t.state = ThreadState::kBlockedAdmission;
    block(lk, t);
  }
  t.state = ThreadState::kRunning;
  if (stopping()) return;
  MutexState& m = mutexes_[mutex.value()];
  if (!m.owner.valid() && m.reacquirers.empty()) {
    m.owner = t.id;
    record_grant(mutex, t.id);
    return;  // acquire and keep the token
  }
  // Busy: wait *keeping the token* (hence at most one plain waiter);
  // resumed waiters are granted with priority at each unlock.
  m.token_waiter = t.id;
  t.state = ThreadState::kBlockedLock;
  while (mutexes_[mutex.value()].owner != t.id && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
}

void MatScheduler::base_unlock(Lk& lk, ThreadRecord&, MutexId mutex) {
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  hand_over(lk, mutex);
}

void MatScheduler::hand_over(Lk& lk, MutexId mutex) {
  MutexState& m = mutexes_[mutex.value()];
  while (!m.owner.valid()) {
    // Priority 1: waiters resumed by notify(), in notification order.
    if (!m.reacquirers.empty()) {
      const ThreadId next = m.reacquirers.front();
      m.reacquirers.pop_front();
      ThreadRecord* record = find_thread(lk, next);
      if (record == nullptr || record->state == ThreadState::kDone) continue;
      m.owner = next;
      record_grant(mutex, next);
      wake(*record);  // resumes as a secondary
      return;
    }
    // Priority 2: the unique token-holding plain waiter.
    if (m.token_waiter.valid()) {
      const ThreadId next = m.token_waiter;
      m.token_waiter = ThreadId::invalid();
      ThreadRecord* record = find_thread(lk, next);
      if (record == nullptr || record->state == ThreadState::kDone) continue;
      m.owner = next;
      record_grant(mutex, next);
      wake(*record);  // still holds the token
      return;
    }
    return;
  }
}

// --- condition variables -----------------------------------------------------------------

WaitResult MatScheduler::base_wait(Lk& lk, ThreadRecord& t, MutexId mutex,
                                   CondVarId condvar, std::uint64_t generation,
                                   common::Duration) {
  cond_queues_[condvar.value()].push_back(Waiter{t.id, generation});
  mutexes_[mutex.value()].owner = ThreadId::invalid();
  hand_over(lk, mutex);
  t.timed_out = false;
  t.state = ThreadState::kBlockedWait;
  transfer_token(lk, t);
  while (mutexes_[mutex.value()].owner != t.id && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
  return WaitResult{!t.timed_out};
}

void MatScheduler::resume_waiter(Lk& lk, ThreadRecord& t, MutexId mutex,
                                 bool timed_out) {
  t.timed_out = timed_out;
  t.state = ThreadState::kBlockedReacquire;
  mutexes_[mutex.value()].reacquirers.push_back(t.id);
  t.ticket_epoch++;  // old tickets become stale
  tickets_.push_back(ThreadTicket{t.id, t.ticket_epoch});
  try_assign_token(lk);
  hand_over(lk, mutex);  // no-op while the notifier holds the mutex
}

void MatScheduler::base_notify(Lk& lk, ThreadRecord&, MutexId mutex,
                               CondVarId condvar, bool all) {
  auto& queue = cond_queues_[condvar.value()];
  do {
    if (queue.empty()) return;
    const Waiter waiter = queue.front();
    queue.pop_front();
    ThreadRecord* record = find_thread(lk, waiter.thread);
    if (record != nullptr && record->state == ThreadState::kBlockedWait) {
      resume_waiter(lk, *record, mutex, /*timed_out=*/false);
    }
  } while (all);
}

bool MatScheduler::base_resume_timed_out(Lk& lk, ThreadRecord&, MutexId mutex,
                                         CondVarId condvar, ThreadId target,
                                         std::uint64_t generation) {
  auto& queue = cond_queues_[condvar.value()];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->thread == target && it->generation == generation) {
      queue.erase(it);
      ThreadRecord* record = find_thread(lk, target);
      if (record == nullptr || record->state != ThreadState::kBlockedWait) return false;
      resume_waiter(lk, *record, mutex, /*timed_out=*/true);
      return true;
    }
  }
  return false;
}

// --- nested invocations ---------------------------------------------------------------------

void MatScheduler::base_before_nested(Lk& lk, ThreadRecord& t) {
  t.state = ThreadState::kBlockedNested;
  transfer_token(lk, t);
}

void MatScheduler::base_after_nested(Lk& lk, ThreadRecord& t) {
  while (!t.reply_arrived && !stopping()) block(lk, t);
  t.state = ThreadState::kRunning;
}

void MatScheduler::debug_extra(std::string& out) const {
  out += " primary=" +
         (primary_.valid() ? std::to_string(primary_.value()) : std::string("-"));
  out += " tickets=[";
  for (const auto& ticket : tickets_) {
    if (const auto* t = std::get_if<ThreadTicket>(&ticket)) {
      out += std::to_string(t->id.value()) + "@" + std::to_string(t->epoch) + ",";
    } else {
      out += "reply:" + std::to_string(std::get<common::RequestId>(ticket).value()) + ",";
    }
  }
  out += "] mutexes:";
  for (const auto& [m, st] : mutexes_) {
    out += " m" + std::to_string(m) + "->" +
           (st.owner.valid() ? std::to_string(st.owner.value()) : "free");
  }
}

}  // namespace adets::sched
