// ADETS-SAT: single active thread with logical-thread identification
// (multithreading model SA+L, paper Sec. 3.2).
//
// Multiple physical threads exist (one per in-flight request plus timeout
// handlers), but exactly one is *active* at any time; all others are
// blocked.  The active thread runs unpreempted until it reaches a
// scheduling point: it completes, blocks on a busy mutex, waits on a
// condition variable, or issues a nested invocation.  The next active
// thread is then popped from a deterministic ready queue, which is fed
// only by deterministic events:
//   - request delivery (spawns a new thread),
//   - nested-reply delivery,
//   - lock hand-over during unlock (FIFO per mutex),
//   - notify()/timeout resumption (FIFO per condition variable, then
//     FIFO reacquisition of the guarding mutex).
// Reentrant locks and callback detection come from the logical-thread id
// layer in SchedulerBase.  Time-bounded waits use the timeout-broadcast
// mechanism: the local timer expiry is converted into a totally-ordered
// message that every replica turns into a normal request whose handler
// resumes the waiting thread under the guarding mutex.
#pragma once

#include <deque>
#include <map>
#include <variant>

#include "sched/base.hpp"

namespace adets::sched {

class SatScheduler : public SchedulerBase {
 public:
  explicit SatScheduler(SchedulerConfig config) : SchedulerBase(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kSat; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

  void yield() override;
  void on_reply(common::RequestId nested_id) override;

 protected:
  void handle_request(Lk& lk, Request request) override ADETS_REQUIRES(mon_);
  void handle_reply(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                       common::CondVarId condvar, std::uint64_t generation,
                       common::Duration timeout) override ADETS_REQUIRES(mon_);
  void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                   common::CondVarId condvar, bool all) override ADETS_REQUIRES(mon_);
  bool base_resume_timed_out(Lk& lk, ThreadRecord& handler, common::MutexId mutex,
                             common::CondVarId condvar, common::ThreadId target,
                             std::uint64_t generation) override ADETS_REQUIRES(mon_);
  void base_before_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_after_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_start(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_done(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void debug_extra(std::string& out) const override ADETS_REQUIRES(mon_);

 private:
  using StreamEvent = std::variant<Request, common::RequestId>;

  struct MutexState {
    common::ThreadId owner = common::ThreadId::invalid();
    std::deque<common::ThreadId> waiters;  // FIFO: blocked lockers + reacquirers
  };
  struct Waiter {
    common::ThreadId thread;
    std::uint64_t generation;
  };

  /// Releases the activity token and activates the next ready thread.
  void release_activity(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_);
  void activate_next(Lk& lk) ADETS_REQUIRES(mon_);
  /// Blocks `t` until it holds the activity token.
  void await_activation(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_);
  /// Grants `mutex` to the FIFO head waiter (if any) and readies it.
  void hand_over(Lk& lk, common::MutexId mutex) ADETS_REQUIRES(mon_);
  /// Wakes `t` out of the condvar queue into the mutex-reacquire FIFO.
  void move_to_reacquire(Lk& lk, ThreadRecord& t, common::MutexId mutex, bool timed_out) ADETS_REQUIRES(mon_);

  common::ThreadId active_ ADETS_GUARDED_BY(mon_) = common::ThreadId::invalid();
  std::deque<common::ThreadId> ready_ ADETS_GUARDED_BY(mon_);       // internal resumptions (priority)
  std::deque<StreamEvent> stream_ ADETS_GUARDED_BY(mon_);           // external events, consumed lazily
  std::map<std::uint64_t, MutexState> mutexes_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, std::deque<Waiter>> cond_queues_ ADETS_GUARDED_BY(mon_);
};

}  // namespace adets::sched
