#include "sched/api.hpp"
#include "sched/lsa.hpp"
#include "sched/mat.hpp"
#include "sched/pds.hpp"
#include "sched/sat.hpp"
#include "sched/seq.hpp"

namespace adets::sched {

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, SchedulerConfig config) {
  switch (kind) {
    case SchedulerKind::kSeq: return std::make_unique<SeqScheduler>(config);
    case SchedulerKind::kSl: return std::make_unique<SlScheduler>(config);
    case SchedulerKind::kSat: return std::make_unique<SatScheduler>(config);
    case SchedulerKind::kMat: return std::make_unique<MatScheduler>(config);
    case SchedulerKind::kLsa: return std::make_unique<LsaScheduler>(config);
    case SchedulerKind::kPds: return std::make_unique<PdsScheduler>(config);
  }
  return nullptr;
}

}  // namespace adets::sched
