// Shared machinery for all ADETS scheduler implementations.
//
// Every concrete scheduler is a monitor: one mutex (mon_) protects all
// scheduling state; application threads block on per-thread condition
// variables while the strategy decides, deterministically, when they may
// proceed.  SchedulerBase provides:
//
//  - the thread registry (deterministic ThreadId allocation, spawning,
//    lazy joining, thread-local current-thread lookup);
//  - the reentrancy layer (paper Sec. 4): lock counts per logical thread,
//    so only 0->1 / 1->0 transitions reach the strategy's base_lock /
//    base_unlock;
//  - wait-generation bookkeeping for deterministic time-bounded waits,
//    including the default "broadcast a timeout message, handle it as a
//    normal request" mechanism used by ADETS-SAT/MAT/PDS (ADETS-LSA
//    overrides it with the timeout-thread construct of paper Fig. 1);
//  - grant tracing for cross-replica determinism checks.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/timer.hpp"
#include "sched/api.hpp"

namespace adets::sched {

/// Lifecycle state of one scheduler-managed thread.
enum class ThreadState {
  kStarting,       // spawned, waiting for strategy admission
  kRunning,        // executing application code
  kBlockedLock,    // waiting for a mutex grant
  kBlockedWait,    // inside wait() on a condition variable
  kBlockedReacquire,  // woken from wait(), waiting to reacquire the mutex
  kBlockedNested,  // waiting for a nested-invocation reply
  kBlockedAdmission,  // waiting to become active/primary (SAT/MAT)
  kDone,
};

class SchedulerBase : public Scheduler {
 public:
  explicit SchedulerBase(SchedulerConfig config) : config_(config) {}
  ~SchedulerBase() override = default;

  void start(SchedulerEnv& env) override;
  void stop() override;

  void on_request(Request request) override;
  void on_reply(common::RequestId nested_id) override;
  void on_scheduler_message(common::NodeId sender, const common::Bytes& payload) override;
  void on_view_change(const std::vector<common::NodeId>& members) override;

  void lock(common::MutexId mutex) final;
  void unlock(common::MutexId mutex) final;
  WaitResult wait(common::MutexId mutex, common::CondVarId condvar,
                  common::Duration timeout) final;
  void notify_one(common::MutexId mutex, common::CondVarId condvar) final;
  void notify_all(common::MutexId mutex, common::CondVarId condvar) final;
  void before_nested_call(common::RequestId nested_id) final;
  void after_nested_call(common::RequestId nested_id) final;

  /// Human-readable snapshot of thread states (diagnostics).
  [[nodiscard]] std::string debug_dump() const;

  void set_trace(bool enabled) override;
  [[nodiscard]] std::vector<GrantRecord> grant_trace() const override;
  [[nodiscard]] std::vector<Decision> decision_trace() const override;
  [[nodiscard]] std::uint64_t completed_requests() const override;
  [[nodiscard]] SchedulerStats stats() const override;

 protected:
  using Lk = common::MutexLock;

  /// Registry entry of one scheduler-managed thread.  All mutable fields
  /// are protected by mon_ (clang's analysis cannot express "guarded by
  /// a mutex of the enclosing object" on nested-struct fields, so the
  /// invariant is enforced by convention plus the REQUIRES(mon_)
  /// annotations on every function that receives a ThreadRecord&).
  struct ThreadRecord {
    common::ThreadId id;
    common::LogicalThreadId logical;
    Request request;                 // current work item
    common::CondVar cv;              // waits on mon_
    ThreadState state = ThreadState::kStarting;
    bool wake = false;               // one-shot wakeup flag for cv
    // wait()/timeout bookkeeping
    std::uint64_t wait_generation = 0;
    bool timed_out = false;
    bool wait_satisfied = false;  // popped from a condvar queue (LSA/PDS)
    // nested invocation bookkeeping
    common::RequestId pending_nested = common::RequestId::invalid();
    bool reply_arrived = false;
    // strategy scratch fields (PDS)
    common::MutexId wanted_mutex = common::MutexId::invalid();
    int pds_phase = 0;                   // mutexes acquired this round
    std::uint64_t pds_request_round = 0; // round in which wanted_mutex was requested
    std::uint64_t pds_granted_round = 0; // round of the last grant
    bool pds_terminate = false;          // pool-shrink signal
    std::uint64_t ticket_epoch = 1;      // MAT: re-eligibility generation
    bool internal = false;               // timeout handler / pool worker
    std::thread os_thread;
  };

  // --- strategy hook points (all called with mon_ held via `lk`) ----------
  // NOTE: ADETS_REQUIRES is not inherited -- every override must repeat it.

  /// A new totally-ordered request arrived.
  virtual void handle_request(Lk& lk, Request request) ADETS_REQUIRES(mon_) = 0;
  /// A nested reply for `t` arrived (t.reply_arrived already set).
  virtual void handle_reply(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_) = 0;
  /// Block the calling thread until it holds `mutex` (base level: the
  /// reentrancy layer already filtered recursive acquisitions).
  virtual void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex)
      ADETS_REQUIRES(mon_) = 0;
  virtual void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex)
      ADETS_REQUIRES(mon_) = 0;
  /// Release `mutex`, enqueue on the condvar's deterministic wait queue,
  /// block, reacquire `mutex`.  Returns notified/timed-out.
  virtual WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                               common::CondVarId condvar, std::uint64_t generation,
                               common::Duration timeout) ADETS_REQUIRES(mon_) = 0;
  virtual void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                           common::CondVarId condvar, bool all)
      ADETS_REQUIRES(mon_) = 0;
  /// Resume thread `target` (blocked in wait()) because its timeout
  /// message arrived; returns false if the wait generation is stale.
  virtual bool base_resume_timed_out(Lk& lk, ThreadRecord& handler,
                                     common::MutexId mutex, common::CondVarId condvar,
                                     common::ThreadId target, std::uint64_t generation)
      ADETS_REQUIRES(mon_) = 0;
  virtual void base_before_nested(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_) = 0;
  virtual void base_after_nested(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_) = 0;
  /// Called when a thread's work item finished (thread about to exit or
  /// fetch the next pool assignment).
  virtual void on_thread_done(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_) = 0;
  /// Called once when the thread starts, before executing its request;
  /// strategies gate admission here (SAT single-active, MAT secondaries run).
  virtual void on_thread_start(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_) = 0;
  /// Wake every blocked thread for shutdown.
  virtual void wake_all_for_stop(Lk& lk) ADETS_REQUIRES(mon_);

  /// Appends strategy-specific diagnostics (called with mon_ held).
  virtual void debug_extra(std::string&) const ADETS_REQUIRES(mon_) {}

  /// Top-level function of a spawned OS thread.  The default runs one
  /// work item: admission gate, execute, completion hook.  PDS overrides
  /// it with a pool-worker loop.
  virtual void thread_body(ThreadRecord& t);

  /// A wait() timeout expired locally.  Default: broadcast a timeout
  /// message handled as a normal request on every replica (dedup by wait
  /// generation).  ADETS-LSA overrides with the TO-thread construct.
  virtual void on_wait_timer_expired(common::ThreadId thread, common::MutexId mutex,
                                     common::CondVarId condvar, std::uint64_t generation);

  // --- helpers -------------------------------------------------------------

  /// Spawns a new scheduler thread for `request`.  ThreadIds are
  /// allocated in call order, so all replicas must call this in the same
  /// order (delivery order).  `forced_id` is for threads with derived
  /// deterministic ids (LSA timeout threads).  NON_BLOCKING: the only
  /// join inside is of threads already observed in kDone state (their
  /// final action under mon_), so it returns immediately.
  ThreadRecord& spawn_thread(Lk& lk, Request request,
                             std::optional<common::ThreadId> forced_id = std::nullopt,
                             bool internal = false)
      ADETS_REQUIRES(mon_) ADETS_NON_BLOCKING;

  /// The registry record of the calling thread (TLS).
  ThreadRecord& current();

  /// Blocks `t` on its condition variable until t.wake (resets it).
  void block(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_);
  /// Like block(), but returns after `real_timeout` even without a wake.
  /// The real-time bound never reaches the strategy: the expiry is
  /// routed through the totally-ordered stream (on_wait_timer_expired)
  /// or, for PDS idle-fill, through a broadcast no-op request.
  void block_for(Lk& lk, ThreadRecord& t, common::Duration real_timeout)
      ADETS_REQUIRES(mon_);
  /// Makes `t` runnable (sets wake, notifies its cv).
  void wake(ThreadRecord& t);

  void record_grant(common::MutexId mutex, common::ThreadId thread)
      ADETS_REQUIRES(mon_);

  /// Appends to the bounded decision ring (mon_ must be held).
  void record_decision(Decision::Kind kind, common::MutexId mutex,
                       common::CondVarId condvar, common::ThreadId thread,
                       std::uint64_t generation = 0) ADETS_REQUIRES(mon_);

  /// Executes one work item (application request or timeout handler) on
  /// the calling scheduler thread.  mon_ must NOT be held.
  void run_request_body(ThreadRecord& t, const Request& request);

  /// Arms the local timer for a timed wait.
  void arm_wait_timer(ThreadRecord& t, common::MutexId mutex, common::CondVarId condvar,
                      std::uint64_t generation, common::Duration timeout);

  /// Encodes/decodes the timeout broadcast payload.
  static common::Bytes encode_timeout(const TimeoutInfo& info);
  static std::optional<TimeoutInfo> decode_timeout(const common::Bytes& payload);

  [[nodiscard]] ThreadRecord* find_thread(Lk& lk, common::ThreadId id)
      ADETS_REQUIRES(mon_);
  static ThreadRecord*& tls_slot();
  [[nodiscard]] bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

  // Both are wired by start() before any scheduler thread exists and
  // are read-only from then on; guarding them would put the monitor on
  // every request hot path for no protection.
  // adets-sa:allow(unguarded-field) written only in start(), before threads
  SchedulerConfig config_;
  // adets-sa:allow(unguarded-field) written only in start(), before threads
  SchedulerEnv* env_ = nullptr;
  mutable common::Mutex mon_{"sched::mon"};
  std::map<std::uint64_t, std::unique_ptr<ThreadRecord>> threads_ ADETS_GUARDED_BY(mon_);
  std::uint64_t next_thread_id_ ADETS_GUARDED_BY(mon_) = 0;
  std::uint64_t next_internal_request_ ADETS_GUARDED_BY(mon_) = 0;
  /// Replies delivered before the caller registered.
  std::set<std::uint64_t> early_replies_ ADETS_GUARDED_BY(mon_);
  /// Exited os threads, joined lazily.
  std::vector<std::thread> finished_ ADETS_GUARDED_BY(mon_);
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> completed_{0};

  // Reentrancy layer (keyed by app mutex id).  Ordered map: nothing
  // iterates it today, but scheduler decision state must never tempt a
  // future hash-order traversal (detlint unordered-iter rule).
  struct ReentrantState {
    common::LogicalThreadId owner = common::LogicalThreadId::invalid();
    int count = 0;
  };
  std::map<std::uint64_t, ReentrantState> reentrant_ ADETS_GUARDED_BY(mon_);

  // Tracing and counters.
  bool trace_enabled_ ADETS_GUARDED_BY(mon_) = false;
  std::vector<GrantRecord> trace_ ADETS_GUARDED_BY(mon_);
  /// Bounded; decision_seq_ indexes it.
  std::vector<Decision> decision_ring_ ADETS_GUARDED_BY(mon_);
  std::uint64_t decision_seq_ ADETS_GUARDED_BY(mon_) = 0;
  SchedulerStats stats_ ADETS_GUARDED_BY(mon_);

  // Created in start() before threads; TimerService synchronizes itself.
  // adets-sa:allow(unguarded-field) written only in start(), before threads
  std::unique_ptr<common::TimerService> timer_;
};

}  // namespace adets::sched
