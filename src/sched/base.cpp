#include "sched/base.hpp"

#include <cassert>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/mc_hooks.hpp"

namespace adets::sched {

using common::CondVarId;
using common::Duration;
using common::LogicalThreadId;
using common::MutexId;
using common::RequestId;
using common::ThreadId;

SchedulerBase::ThreadRecord*& SchedulerBase::tls_slot() {
  static thread_local ThreadRecord* slot = nullptr;
  return slot;
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSeq: return "SEQ";
    case SchedulerKind::kSl: return "SL";
    case SchedulerKind::kSat: return "SAT";
    case SchedulerKind::kMat: return "MAT";
    case SchedulerKind::kLsa: return "LSA";
    case SchedulerKind::kPds: return "PDS";
  }
  return "?";
}

void SchedulerBase::start(SchedulerEnv& env) {
  env_ = &env;
  timer_ = std::make_unique<common::TimerService>();
}

void SchedulerBase::stop() {
  stopping_.store(true);
  if (timer_) timer_->stop();
  {
    Lk lk(mon_);
    wake_all_for_stop(lk);
  }
  // Join all scheduler threads.  Blocked threads observe stopping() at
  // their wakeup predicates and unwind.
  while (true) {
    std::thread victim;
    {
      Lk lk(mon_);
      for (auto& [id, record] : threads_) {
        if (record->os_thread.joinable()) {
          victim = std::move(record->os_thread);
          break;
        }
      }
    }
    if (!victim.joinable()) break;
    victim.join();
  }
  Lk lk(mon_);
  for (auto& t : finished_) {
    if (t.joinable()) t.join();
  }
  finished_.clear();
}

void SchedulerBase::wake_all_for_stop(Lk&) {
  for (auto& [id, record] : threads_) record->cv.notify_all();
}

void SchedulerBase::on_request(Request request) {
  Lk lk(mon_);
  if (stopping()) return;
  handle_request(lk, std::move(request));
}

void SchedulerBase::on_reply(RequestId nested_id) {
  Lk lk(mon_);
  if (stopping()) return;
  for (auto& [id, record] : threads_) {
    if (record->pending_nested == nested_id && !record->reply_arrived) {
      record->reply_arrived = true;
      handle_reply(lk, *record);
      return;
    }
  }
  early_replies_.insert(nested_id.value());
}

void SchedulerBase::on_scheduler_message(common::NodeId /*sender*/,
                                         const common::Bytes& payload) {
  const auto info = decode_timeout(payload);
  if (!info) return;
  Request request;
  request.kind = RequestKind::kTimeout;
  const std::uint64_t internal = (1ULL << 62) | next_internal_request_++;
  request.id = RequestId(internal);
  request.logical = LogicalThreadId(internal);
  request.timeout = *info;
  on_request(std::move(request));
}

void SchedulerBase::on_view_change(const std::vector<common::NodeId>&) {}

// --- synchronisation downcalls ----------------------------------------------

void SchedulerBase::lock(MutexId mutex) {
  ThreadRecord& t = current();
  Lk lk(mon_);
  ReentrantState& r = reentrant_[mutex.value()];
  if (r.owner == t.logical) {
    r.count++;
    return;
  }
  base_lock(lk, t, mutex);
  ReentrantState& r2 = reentrant_[mutex.value()];  // map may have rehashed
  r2.owner = t.logical;
  r2.count = 1;
}

void SchedulerBase::unlock(MutexId mutex) {
  ThreadRecord& t = current();
  Lk lk(mon_);
  ReentrantState& r = reentrant_[mutex.value()];
  if (r.owner != t.logical || r.count <= 0) {
    if (stopping()) return;  // lock state is torn during shutdown
    throw std::logic_error("unlock of mutex not held by this logical thread");
  }
  if (--r.count > 0) return;
  r.owner = LogicalThreadId::invalid();
  base_unlock(lk, t, mutex);
}

WaitResult SchedulerBase::wait(MutexId mutex, CondVarId condvar, Duration timeout) {
  if (!capabilities().condition_variables) {
    throw std::logic_error(to_string(kind()) + " does not support condition variables");
  }
  ThreadRecord& t = current();
  Lk lk(mon_);
  ReentrantState& r = reentrant_[mutex.value()];
  if (r.owner != t.logical || r.count <= 0) {
    if (stopping()) return WaitResult{false};
    throw std::logic_error("wait() requires holding the mutex");
  }
  if (stopping()) return WaitResult{false};
  // Java semantics: wait releases the monitor completely, whatever the
  // recursion depth, and restores the depth on return.
  const int saved_count = r.count;
  r.count = 0;
  r.owner = LogicalThreadId::invalid();
  stats_.waits++;
  const std::uint64_t generation = ++t.wait_generation;
  if (timeout.count() > 0) {
    if (!capabilities().timed_wait) {
      throw std::logic_error(to_string(kind()) + " does not support timed waits");
    }
    arm_wait_timer(t, mutex, condvar, generation, timeout);
  }
  const WaitResult result = base_wait(lk, t, mutex, condvar, generation, timeout);
  record_decision(result.notified ? Decision::Kind::kCvWakeup
                                  : Decision::Kind::kCvTimeout,
                  mutex, condvar, t.id, generation);
  ReentrantState& r2 = reentrant_[mutex.value()];
  r2.owner = t.logical;
  r2.count = saved_count;
  return result;
}

void SchedulerBase::notify_one(MutexId mutex, CondVarId condvar) {
  // Note: notify is permitted even without condvar support (it can have
  // no effect there), so condvar-style objects run under SEQ/SL with
  // polling consumers.
  ThreadRecord& t = current();
  Lk lk(mon_);
  const ReentrantState& r = reentrant_[mutex.value()];
  if (r.owner != t.logical) {
    if (stopping()) return;
    throw std::logic_error("notify requires holding the mutex");
  }
  stats_.notifies++;
  record_decision(Decision::Kind::kNotify, mutex, condvar, t.id);
  base_notify(lk, t, mutex, condvar, /*all=*/false);
}

void SchedulerBase::notify_all(MutexId mutex, CondVarId condvar) {
  ThreadRecord& t = current();
  Lk lk(mon_);
  const ReentrantState& r = reentrant_[mutex.value()];
  if (r.owner != t.logical) {
    if (stopping()) return;
    throw std::logic_error("notify requires holding the mutex");
  }
  stats_.notifies++;
  record_decision(Decision::Kind::kNotify, mutex, condvar, t.id);
  base_notify(lk, t, mutex, condvar, /*all=*/true);
}

void SchedulerBase::before_nested_call(RequestId nested_id) {
  ThreadRecord& t = current();
  Lk lk(mon_);
  stats_.nested_calls++;
  t.pending_nested = nested_id;
  t.reply_arrived = early_replies_.erase(nested_id.value()) > 0;
  base_before_nested(lk, t);
  if (t.reply_arrived) handle_reply(lk, t);
}

void SchedulerBase::after_nested_call(RequestId) {
  ThreadRecord& t = current();
  Lk lk(mon_);
  base_after_nested(lk, t);
  t.pending_nested = RequestId::invalid();
  t.reply_arrived = false;
}

// --- introspection ------------------------------------------------------------

std::string SchedulerBase::debug_dump() const {
  static const char* names[] = {"starting", "running",  "blk-lock", "blk-wait",
                                "blk-reacq", "blk-nested", "blk-adm", "done"};
  const Lk guard(mon_);
  std::string out = to_string(kind()) + " threads:";
  for (const auto& [id, t] : threads_) {
    out += " [" + std::to_string(id) + ":" +
           names[static_cast<int>(t->state)] +
           (t->wanted_mutex.valid() ? " w=" + std::to_string(t->wanted_mutex.value())
                                    : "") +
           "]";
  }
  debug_extra(out);
  return out;
}

void SchedulerBase::set_trace(bool enabled) {
  Lk lk(mon_);
  trace_enabled_ = enabled;
}

std::vector<GrantRecord> SchedulerBase::grant_trace() const {
  const Lk guard(mon_);
  return trace_;
}

std::uint64_t SchedulerBase::completed_requests() const {
  // Acquire pairs with the release increment: a caller that observed
  // completion (e.g. a drain loop about to tear state down) also
  // observes everything the request body wrote.
  return completed_.load(std::memory_order_acquire);
}

SchedulerStats SchedulerBase::stats() const {
  const Lk guard(mon_);
  return stats_;
}

void SchedulerBase::record_grant(MutexId mutex, ThreadId thread) {
  stats_.lock_grants++;
  if (trace_enabled_) trace_.push_back(GrantRecord{mutex, thread});
  record_decision(Decision::Kind::kLockGrant, mutex, CondVarId::invalid(), thread);
}

void SchedulerBase::record_decision(Decision::Kind kind, MutexId mutex,
                                    CondVarId condvar, ThreadId thread,
                                    std::uint64_t generation) {
  const std::size_t capacity = config_.decision_trace_capacity;
  if (capacity == 0) return;
  Decision decision{kind, decision_seq_, mutex, condvar, thread, generation};
  if (decision_ring_.size() < capacity) {
    decision_ring_.push_back(decision);
  } else {
    decision_ring_[decision_seq_ % capacity] = decision;
  }
  decision_seq_++;
}

std::vector<Decision> SchedulerBase::decision_trace() const {
  const Lk guard(mon_);
  std::vector<Decision> out;
  out.reserve(decision_ring_.size());
  const std::size_t capacity = config_.decision_trace_capacity;
  if (decision_ring_.size() < capacity || capacity == 0) {
    out = decision_ring_;
  } else {
    for (std::size_t i = 0; i < capacity; ++i) {
      out.push_back(decision_ring_[(decision_seq_ + i) % capacity]);
    }
  }
  return out;
}

std::string to_string(const Decision& decision) {
  std::string out = "#" + std::to_string(decision.seq) + " ";
  switch (decision.kind) {
    case Decision::Kind::kLockGrant:
      out += "grant m" + std::to_string(decision.mutex.value()) + " -> t" +
             std::to_string(decision.thread.value());
      break;
    case Decision::Kind::kCvWakeup:
      out += "wakeup t" + std::to_string(decision.thread.value()) + " cv" +
             std::to_string(decision.condvar.value()) + " gen" +
             std::to_string(decision.generation);
      break;
    case Decision::Kind::kCvTimeout:
      out += "timeout t" + std::to_string(decision.thread.value()) + " cv" +
             std::to_string(decision.condvar.value()) + " gen" +
             std::to_string(decision.generation);
      break;
    case Decision::Kind::kStaleTimeout:
      out += "stale-timeout t" + std::to_string(decision.thread.value()) + " gen" +
             std::to_string(decision.generation);
      break;
    case Decision::Kind::kNotify:
      out += "notify by t" + std::to_string(decision.thread.value()) + " cv" +
             std::to_string(decision.condvar.value());
      break;
  }
  return out;
}

// --- thread machinery -----------------------------------------------------------

SchedulerBase::ThreadRecord& SchedulerBase::spawn_thread(
    Lk&, Request request, std::optional<ThreadId> forced_id, bool internal) {
  // Reap previously finished threads (join is instantaneous: they only
  // mark kDone as their final action under mon_).
  for (auto it = threads_.begin(); it != threads_.end();) {
    if (it->second->state == ThreadState::kDone && it->second->os_thread.joinable() &&
        it->second.get() != tls_slot()) {
      finished_.push_back(std::move(it->second->os_thread));
      it = threads_.erase(it);
    } else {
      ++it;
    }
  }
  if (finished_.size() > 64) {
    for (auto& t : finished_) {
      if (t.joinable()) t.join();
    }
    finished_.clear();
  }

  const ThreadId id = forced_id.value_or(ThreadId(next_thread_id_));
  if (!forced_id) next_thread_id_++;
  stats_.threads_spawned++;
  auto record = std::make_unique<ThreadRecord>();
  record->id = id;
  record->logical = request.logical;
  record->request = std::move(request);
  record->internal = internal;
  ThreadRecord* raw = record.get();
  threads_.emplace(id.value(), std::move(record));
  // The spawn ticket is drawn on the parent thread so the model checker
  // assigns task identities in program (spawn) order even though the
  // children start racing; outside a checking run the ticket is 0 and the
  // begin/end calls are no-ops behind a null-pointer load.
  const std::uint64_t mc_ticket =
      mchook::active() ? mchook::active()->thread_spawning() : 0;
  raw->os_thread = std::thread([this, raw, mc_ticket] {
    tls_slot() = raw;
    if (auto* mc = mchook::active(); mc && mc_ticket != 0) {
      mc->thread_begin(mc_ticket);
      thread_body(*raw);
      mc->thread_end();
      return;
    }
    thread_body(*raw);
  });
  return *raw;
}

void SchedulerBase::thread_body(ThreadRecord& t) {
  {
    Lk lk(mon_);
    on_thread_start(lk, t);
    if (stopping()) {
      t.state = ThreadState::kDone;
      return;
    }
    t.state = ThreadState::kRunning;
  }
  run_request_body(t, t.request);
  {
    Lk lk(mon_);
    t.state = ThreadState::kDone;
    on_thread_done(lk, t);
  }
}

SchedulerBase::ThreadRecord& SchedulerBase::current() {
  if (tls_slot() == nullptr) {
    throw std::logic_error("synchronisation call from a non-scheduler thread");
  }
  return *tls_slot();
}

void SchedulerBase::block(Lk& lk, ThreadRecord& t) {
  t.cv.wait(lk, [this, &t] { return t.wake || stopping(); });
  t.wake = false;
}

void SchedulerBase::block_for(Lk& lk, ThreadRecord& t, common::Duration real_timeout) {
  // The timed wait bounds how long the OS thread sleeps; the scheduling
  // outcome is decided by the totally-ordered stream (timeout broadcasts
  // / PDS no-op fill), never by which replica's timer fired first.
  // detlint:allow(real-time-wait) wakeup outcome routed through the total order
  t.cv.wait_for(lk, real_timeout, [this, &t] { return t.wake || stopping(); });
  t.wake = false;
}

void SchedulerBase::wake(ThreadRecord& t) {
  t.wake = true;
  t.cv.notify_all();
}

SchedulerBase::ThreadRecord* SchedulerBase::find_thread(Lk&, ThreadId id) {
  const auto it = threads_.find(id.value());
  return it == threads_.end() ? nullptr : it->second.get();
}

void SchedulerBase::run_request_body(ThreadRecord& t, const Request& request) {
  switch (request.kind) {
    case RequestKind::kApplication:
      env_->execute(request);
      completed_.fetch_add(1, std::memory_order_release);
      break;
    case RequestKind::kTimeout: {
      // Paper Sec. 4.2: "This message is handled by a normal
      // request-handler thread, which notifies the waiting thread.  As
      // all notifications are synchronized by mutexes, a deterministic
      // order is guaranteed."
      this->lock(request.timeout.mutex);
      {
        Lk lk(mon_);
        if (base_resume_timed_out(lk, t, request.timeout.mutex,
                                  request.timeout.condvar, request.timeout.thread,
                                  request.timeout.generation)) {
          stats_.timeouts_fired++;
        } else {
          // The waiter was already notified (or resumed by an earlier
          // copy): a stale generation must no-op identically everywhere.
          record_decision(Decision::Kind::kStaleTimeout, request.timeout.mutex,
                          request.timeout.condvar, request.timeout.thread,
                          request.timeout.generation);
        }
      }
      this->unlock(request.timeout.mutex);
      break;
    }
    case RequestKind::kPoison:
    case RequestKind::kNoop:
      break;
  }
}

// --- timed waits ------------------------------------------------------------------

void SchedulerBase::arm_wait_timer(ThreadRecord& t, MutexId mutex, CondVarId condvar,
                                   std::uint64_t generation, Duration timeout) {
  const ThreadId id = t.id;
  timer_->schedule(common::Clock::scaled(timeout),
                   [this, id, mutex, condvar, generation] {
                     if (!stopping()) {
                       on_wait_timer_expired(id, mutex, condvar, generation);
                     }
                   });
}

void SchedulerBase::on_wait_timer_expired(ThreadId thread, MutexId mutex,
                                          CondVarId condvar, std::uint64_t generation) {
  TimeoutInfo info{thread, mutex, condvar, generation};
  {
    Lk lk(mon_);
    stats_.broadcasts++;
  }
  env_->broadcast(encode_timeout(info));
}

common::Bytes SchedulerBase::encode_timeout(const TimeoutInfo& info) {
  common::Writer w;
  w.u8('T');
  w.id(info.thread);
  w.id(info.mutex);
  w.id(info.condvar);
  w.u64(info.generation);
  return w.take();
}

std::optional<TimeoutInfo> SchedulerBase::decode_timeout(const common::Bytes& payload) {
  try {
    common::Reader r(payload);
    if (r.u8() != 'T') return std::nullopt;
    TimeoutInfo info;
    info.thread = r.id<ThreadId>();
    info.mutex = r.id<MutexId>();
    info.condvar = r.id<CondVarId>();
    info.generation = r.u64();
    return info;
  } catch (const common::SerializationError&) {
    return std::nullopt;
  }
}

}  // namespace adets::sched
