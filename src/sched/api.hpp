// ADETS scheduler plug-in interface.
//
// This is the C++ analogue of FTflex's configurable ADETS module (paper
// Sec. 5.1): the scheduler sits between the group-communication module
// (which feeds it totally-ordered events) and the object adapter (which
// it calls to execute requests).  Application threads created by the
// scheduler call back into it for every synchronisation operation, and
// the scheduler decides — deterministically, identically on every
// replica — when each thread may proceed.
//
// Determinism contract: a scheduler may consume only
//   (1) the totally-ordered event stream (on_request / on_reply /
//       on_scheduler_message / on_view, in delivery order), and
//   (2) each thread's own program order (the sequence of downcalls it
//       makes).
// Real-time information (which thread reached its lock first) must never
// influence the *order* of lock grants, wait-queue positions or timeout
// resolutions — except on the ADETS-LSA leader, where real-time races are
// legal because their outcome is recorded and replayed by followers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"

namespace adets::sched {

/// The strategies surveyed/contributed by the paper.
enum class SchedulerKind {
  kSeq,  // strictly sequential execution (baseline)
  kSl,   // single logical thread (Eternal)
  kSat,  // ADETS-SAT: single active thread + logical-thread ids
  kMat,  // ADETS-MAT: primary + concurrent secondaries
  kLsa,  // ADETS-LSA: leader/follower loose synchronisation
  kPds,  // ADETS-PDS: preemptive deterministic scheduling (rounds)
};

[[nodiscard]] std::string to_string(SchedulerKind kind);

/// Property matrix row (paper Table 1).
struct SchedulerCapabilities {
  std::string coordination;   // "implicit", "Locks", "Java", ...
  std::string deadlock_free;  // "-", "CB", "NI+CB", "NO"
  std::string deployment;     // "-", "interception", "transformation", "manual"
  std::string multithreading; // "S", "SL", "SA", "SA+L", "MA", "MA (restr.)"
  bool reentrant_locks = false;
  bool condition_variables = false;
  bool timed_wait = false;
  bool true_multithreading = false;
  bool needs_communication = false;  // extra messages to grant locks
  /// True when every internal blocking path of the strategy goes through
  /// common::Mutex/CondVar/TimerService, so the adets-mc model checker
  /// (src/mc/) can serialise and exhaustively explore its interleavings.
  /// RacyScheduler-style test doubles that spin raw threads leave this
  /// false and are explored through the coarser harness-level hooks only.
  bool mc_explorable = false;
};

/// What kind of work a delivered request represents.
enum class RequestKind : std::uint8_t {
  kApplication = 0,  // client or nested invocation of an object method
  kTimeout = 1,      // internal: resume a timed-out wait()
  kPoison = 2,       // internal: orderly worker shutdown (PDS pools)
  kNoop = 3,         // internal: PDS artificial request (paper Sec. 3.2:
                     // keeps rounds starting when clients fall silent)
};

/// Payload of a kTimeout request.
struct TimeoutInfo {
  common::ThreadId thread;        // the waiting thread to resume
  common::MutexId mutex;          // guarding mutex of the wait
  common::CondVarId condvar;
  std::uint64_t generation = 0;   // wait-generation; stale timeouts no-op
};

/// One totally-ordered unit of work handed to the scheduler.
struct Request {
  RequestKind kind = RequestKind::kApplication;
  common::RequestId id;
  common::LogicalThreadId logical;
  common::Bytes payload;   // opaque to the scheduler (runtime decodes)
  TimeoutInfo timeout;     // valid when kind == kTimeout
};

/// Result of a wait(): notified or timed out (Java semantics).
struct WaitResult {
  bool notified = true;
};

/// Aggregate counters of one scheduler instance (monotone; thread-safe
/// snapshot via Scheduler::stats()).
struct SchedulerStats {
  std::uint64_t lock_grants = 0;      // base-level acquisitions
  std::uint64_t waits = 0;            // wait() calls
  std::uint64_t notifies = 0;         // notify_one/notify_all calls
  std::uint64_t timeouts_fired = 0;   // waits actually resumed by timeout
  std::uint64_t nested_calls = 0;     // synchronous nested invocations
  std::uint64_t threads_spawned = 0;  // physical scheduler threads created
  std::uint64_t broadcasts = 0;       // scheduler messages sent (LSA tables,
                                      // timeout messages, PDS no-ops)
  std::uint64_t activations = 0;      // SAT activations / MAT token grants
  std::uint64_t rounds = 0;           // PDS rounds
};

/// One recorded lock grant; replicas must produce identical traces.
struct GrantRecord {
  common::MutexId mutex;
  common::ThreadId thread;
  friend bool operator==(const GrantRecord&, const GrantRecord&) = default;
};

/// One entry of the bounded decision-trace ring: the scheduling verdicts
/// that must resolve identically on every replica (lock grants, condvar
/// wakeup order, timeout resolutions).  Dumped by the divergence auditor
/// when replicas disagree, so an operator can see *where* the strategies
/// parted ways, not just that the state hashes differ.
struct Decision {
  enum class Kind : std::uint8_t {
    kLockGrant,     // base-level mutex acquisition granted to `thread`
    kCvWakeup,      // wait() returned notified
    kCvTimeout,     // wait() resolved by its timeout event
    kStaleTimeout,  // timeout message ignored (generation already stale)
    kNotify,        // notify_one/notify_all issued by `thread`
  };
  Kind kind = Kind::kLockGrant;
  std::uint64_t seq = 0;  // per-scheduler monotone decision number
  common::MutexId mutex;
  common::CondVarId condvar;
  common::ThreadId thread;
  std::uint64_t generation = 0;  // wait generation (condvar kinds)
  friend bool operator==(const Decision&, const Decision&) = default;
};

[[nodiscard]] std::string to_string(const Decision& decision);

/// Services the hosting runtime provides to a scheduler.
class SchedulerEnv {
 public:
  virtual ~SchedulerEnv() = default;

  /// Executes an application request (unmarshal, dispatch to the object,
  /// send the reply).  Called on a scheduler-managed thread.  The
  /// object's synchronisation operations re-enter the scheduler.
  virtual void execute(const Request& request) ADETS_MAY_BLOCK = 0;

  /// Broadcasts a scheduler-internal message into this replica group's
  /// total order (LSA mutex tables, timeout messages).  It is delivered
  /// to every replica's on_scheduler_message in the same order.
  virtual void broadcast(const common::Bytes& payload) ADETS_MAY_BLOCK = 0;

  /// This replica's node id.
  [[nodiscard]] virtual common::NodeId self() const = 0;

  /// Members of the current view, sorted; front() is the LSA leader.
  [[nodiscard]] virtual std::vector<common::NodeId> view_members() const = 0;
};

/// The deterministic thread scheduler interface (one instance per replica).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual SchedulerKind kind() const = 0;
  [[nodiscard]] virtual SchedulerCapabilities capabilities() const = 0;

  /// Binds the environment and starts worker machinery.
  virtual void start(SchedulerEnv& env) = 0;

  /// Stops all threads.  In-flight requests are abandoned; only call
  /// after the workload has drained (or when tearing a replica down).
  virtual void stop() = 0;

  // --- totally-ordered event stream (GCS delivery thread; non-blocking) ---

  virtual void on_request(Request request) = 0;
  virtual void on_reply(common::RequestId nested_id) = 0;
  virtual void on_scheduler_message(common::NodeId sender, const common::Bytes& payload) = 0;
  virtual void on_view_change(const std::vector<common::NodeId>& members) = 0;

  // --- downcalls from scheduler-managed application threads --------------

  virtual void lock(common::MutexId mutex) = 0;
  virtual void unlock(common::MutexId mutex) = 0;

  /// Releases `mutex`, waits on `condvar`, reacquires `mutex`.
  /// `timeout` is paper time; Duration::zero() waits indefinitely.
  /// Requires condition_variables capability.
  virtual WaitResult wait(common::MutexId mutex, common::CondVarId condvar,
                          common::Duration timeout) = 0;

  virtual void notify_one(common::MutexId mutex, common::CondVarId condvar) = 0;
  virtual void notify_all(common::MutexId mutex, common::CondVarId condvar) = 0;

  /// Voluntary scheduling point (paper Sec. 5.3: yield operations
  /// "enable a selection of a new primary thread without reaching an
  /// implicit scheduling point", alleviating ADETS-MAT's worst case).
  /// No-op for strategies without an activity/primary token.
  virtual void yield() {}

  /// Brackets a synchronous nested invocation: the calling thread is
  /// about to block until on_reply(nested_id) is delivered.
  virtual void before_nested_call(common::RequestId nested_id) = 0;
  /// Blocks until the reply arrived *and* the strategy re-admits the
  /// thread (e.g. SAT re-activates it in deterministic order).
  virtual void after_nested_call(common::RequestId nested_id) = 0;

  // --- introspection -------------------------------------------------------

  /// When enabled, every base-level lock grant is recorded; replicas of
  /// the same group must produce identical traces (determinism tests).
  virtual void set_trace(bool enabled) = 0;
  [[nodiscard]] virtual std::vector<GrantRecord> grant_trace() const = 0;

  /// Recent scheduling decisions, oldest first (bounded ring; always on).
  /// Default: no trace, so minimal/experimental schedulers still compile.
  [[nodiscard]] virtual std::vector<Decision> decision_trace() const { return {}; }

  /// Number of requests whose execution completed (drain detection).
  [[nodiscard]] virtual std::uint64_t completed_requests() const = 0;

  /// Snapshot of the aggregate counters.
  [[nodiscard]] virtual SchedulerStats stats() const = 0;
};

/// Strategy-specific knobs (only the relevant subset applies to each).
struct SchedulerConfig {
  // PDS ----------------------------------------------------------------
  int pds_variant = 1;              // 1 = PDS-1, 2 = PDS-2
  std::size_t pds_thread_pool = 4;  // initial/fixed pool size
  bool pds_round_robin_assignment = false;  // false = synchronized (paper default)
  std::size_t pds_min_nonwaiting = 1;       // pool-resize threshold (ADETS-PDS)
  /// How long a fetch-idle worker waits before broadcasting an
  /// artificial request to un-wedge the round (real time).
  common::Duration pds_idle_fill_interval = std::chrono::milliseconds(10);
  // LSA ----------------------------------------------------------------
  std::size_t lsa_batch_grants = 1;         // grants per mutex-table broadcast
  common::Duration lsa_batch_delay = common::Duration::zero();  // max batching delay (real)
  bool lsa_dynamic_mutex_ids = true;        // ADETS-LSA dynamic registration
  // Diagnostics ---------------------------------------------------------
  std::size_t decision_trace_capacity = 256;  // decision ring size (0 = off)
};

/// Factory used by the runtime and benches.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, SchedulerConfig config = {});

}  // namespace adets::sched
