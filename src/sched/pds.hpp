// ADETS-PDS: preemptive deterministic scheduling (Basile et al., DSN'03)
// with the paper's Sec. 4.2 extensions.
//
// A fixed pool of worker threads executes requests in sequential rounds:
//  - A worker is suspended whenever it requests a mutex (PDS-1), or on
//    its second-plus request (PDS-2, which grants one extra in-round
//    acquisition when the mutex is free and all lower-id threads have
//    taken their phase-1 mutex).
//  - Once every worker is suspended (on a mutex, in wait(), or
//    terminated), a new round starts and pending mutex requests are
//    granted in increasing thread-id order; an unlock inside the round
//    hands the mutex to the next same-round requester.
// No communication is needed: the assignment is a pure function of the
// replica-independent request set.
//
// Extensions (paper Sec. 4.2):
//  - Request assignment: *synchronized* (workers fetch the next request
//    under a scheduler-managed queue mutex, so the i-th request goes to
//    the same worker everywhere — the paper's evaluated strategy) or
//    *round-robin* (request i -> worker i mod N).
//  - Nested invocations block the round (the paper's evaluated variant):
//    a worker waiting for a nested reply counts as running.
//  - Condition variables: wait() suspends the worker out of the round
//    set; notify() converts the waiter into a mutex request that is
//    granted at the next round start (paper Fig. 2).
//  - Time-bounded waits: timeout broadcast handled as a normal request.
//  - Automatic thread-pool resizing: if fewer than a threshold of
//    workers are non-waiting at a round boundary, new workers are added
//    (pre-suspended on the queue mutex) to avoid the all-waiting
//    deadlock; surplus fetch-idle workers beyond the initial pool are
//    retired at round boundaries.
#pragma once

#include <deque>
#include <map>

#include "sched/base.hpp"

namespace adets::sched {

class PdsScheduler : public SchedulerBase {
 public:
  explicit PdsScheduler(SchedulerConfig config) : SchedulerBase(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kPds; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

  void start(SchedulerEnv& env) override;
  void on_scheduler_message(common::NodeId sender, const common::Bytes& payload) override;

  /// Completed scheduling rounds (introspection for tests/benches).
  [[nodiscard]] std::uint64_t rounds() const;
  /// Current pool size, waiting workers included (introspection).
  [[nodiscard]] std::size_t pool_size() const;

 protected:
  void handle_request(Lk& lk, Request request) override ADETS_REQUIRES(mon_);
  void handle_reply(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                       common::CondVarId condvar, std::uint64_t generation,
                       common::Duration timeout) override ADETS_REQUIRES(mon_);
  void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                   common::CondVarId condvar, bool all) override ADETS_REQUIRES(mon_);
  bool base_resume_timed_out(Lk& lk, ThreadRecord& handler, common::MutexId mutex,
                             common::CondVarId condvar, common::ThreadId target,
                             std::uint64_t generation) override ADETS_REQUIRES(mon_);
  void base_before_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_after_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_start(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_done(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void thread_body(ThreadRecord& t) override;

 private:
  /// Scheduler-internal mutex protecting the incoming request queue
  /// (synchronized assignment strategy).
  static constexpr std::uint64_t kQueueMutexId = (1ULL << 61) + 1;

  struct MutexState {
    common::ThreadId owner = common::ThreadId::invalid();
  };
  struct Waiter {
    common::ThreadId thread;
    std::uint64_t generation;
  };

  void pds_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) ADETS_REQUIRES(mon_);
  void pds_unlock(Lk& lk, common::MutexId mutex) ADETS_REQUIRES(mon_);
  void grant(Lk& lk, ThreadRecord& t, common::MutexId mutex) ADETS_REQUIRES(mon_);
  /// Starts a new round iff every worker is suspended/waiting/terminated.
  void maybe_start_round(Lk& lk) ADETS_REQUIRES(mon_);
  bool lower_ids_have_phase1(Lk& lk, const ThreadRecord& t) const ADETS_REQUIRES(mon_);
  /// Converts a condvar waiter into a next-round mutex request.
  void waiter_to_lock_request(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                              bool timed_out) ADETS_REQUIRES(mon_);
  /// Fetches the next work item per the configured assignment strategy.
  std::optional<Request> fetch(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_);
  void spawn_worker(Lk& lk, bool pre_suspended) ADETS_REQUIRES(mon_);
  void wake_everyone(Lk& lk) ADETS_REQUIRES(mon_);

  std::uint64_t round_ ADETS_GUARDED_BY(mon_) = 0;
  std::deque<Request> request_queue_ ADETS_GUARDED_BY(mon_);
  std::uint64_t next_fetch_index_ ADETS_GUARDED_BY(mon_) = 0;  // consumed count (round-robin)
  std::size_t initial_pool_ ADETS_GUARDED_BY(mon_) = 0;
  std::map<std::uint64_t, MutexState> mutexes_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, std::deque<Waiter>> cond_queues_ ADETS_GUARDED_BY(mon_);
};

}  // namespace adets::sched
