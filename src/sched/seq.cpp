#include "sched/seq.hpp"

#include <stdexcept>

namespace adets::sched {

using common::CondVarId;
using common::MutexId;
using common::ThreadId;

SchedulerCapabilities SeqScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "implicit";
  caps.deadlock_free = "-";
  caps.deployment = "-";
  caps.multithreading = "S";
  caps.reentrant_locks = true;  // trivially: a single thread never contends
  caps.condition_variables = false;
  caps.timed_wait = false;
  caps.true_multithreading = false;
  caps.needs_communication = false;
  caps.mc_explorable = true;
  return caps;
}

bool SeqScheduler::is_callback(Lk&, const Request&) { return false; }

void SeqScheduler::handle_request(Lk& lk, Request request) {
  if (is_callback(lk, request)) {
    // Same logical thread as a blocked local thread: run it now on an
    // additional physical thread (SL model).
    spawn_thread(lk, std::move(request));
    return;
  }
  if (busy_) {
    queue_.push_back(std::move(request));
    return;
  }
  busy_ = true;
  slot_owner_ = spawn_thread(lk, std::move(request)).id;
}

void SeqScheduler::handle_reply(Lk&, ThreadRecord& t) { wake(t); }

void SeqScheduler::base_lock(Lk&, ThreadRecord& t, MutexId mutex) {
  // Never contended: at most one (logical) thread executes at a time.
  record_grant(mutex, t.id);
}

void SeqScheduler::base_unlock(Lk&, ThreadRecord&, MutexId) {}

WaitResult SeqScheduler::base_wait(Lk&, ThreadRecord&, MutexId, CondVarId,
                                   std::uint64_t, common::Duration) {
  throw std::logic_error("SEQ/SL cannot wait on condition variables");
}

void SeqScheduler::base_notify(Lk&, ThreadRecord&, MutexId, CondVarId, bool) {
  // No thread can ever be waiting (wait() is unsupported), so notify is
  // a harmless no-op; this lets condvar-style objects run under SEQ with
  // polling consumers (paper Sec. 5.5).
}

bool SeqScheduler::base_resume_timed_out(Lk&, ThreadRecord&, MutexId, CondVarId,
                                         ThreadId, std::uint64_t) {
  return false;
}

void SeqScheduler::base_before_nested(Lk&, ThreadRecord&) {}

void SeqScheduler::base_after_nested(Lk& lk, ThreadRecord& t) {
  // The (logical) thread simply blocks until the reply is delivered;
  // non-callback requests queue up behind it.
  while (!t.reply_arrived && !stopping()) {
    t.state = ThreadState::kBlockedNested;
    block(lk, t);
  }
  t.state = ThreadState::kRunning;
}

void SeqScheduler::on_thread_start(Lk&, ThreadRecord&) {}

void SeqScheduler::on_thread_done(Lk& lk, ThreadRecord& t) {
  // Callback threads (SL) do not own the sequential slot.
  if (t.id != slot_owner_) return;
  if (queue_.empty()) {
    busy_ = false;
    slot_owner_ = ThreadId::invalid();
    return;
  }
  Request next = std::move(queue_.front());
  queue_.pop_front();
  slot_owner_ = spawn_thread(lk, std::move(next)).id;
}

// --- SL (Eternal) -------------------------------------------------------------

SchedulerCapabilities SlScheduler::capabilities() const {
  SchedulerCapabilities caps;
  caps.coordination = "implicit";
  caps.deadlock_free = "CB";
  caps.deployment = "interception";
  caps.multithreading = "SL";
  caps.reentrant_locks = true;
  caps.condition_variables = false;
  caps.timed_wait = false;
  caps.true_multithreading = false;
  caps.needs_communication = false;
  caps.mc_explorable = true;
  return caps;
}

bool SlScheduler::is_callback(Lk&, const Request& request) {
  if (request.kind != RequestKind::kApplication) return false;
  for (const auto& [id, record] : threads_) {
    if (record->state != ThreadState::kDone && record->logical == request.logical) {
      return true;
    }
  }
  return false;
}

}  // namespace adets::sched
