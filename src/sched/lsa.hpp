// ADETS-LSA: loose synchronisation algorithm (Basile et al., SRDS'02)
// with the paper's Sec. 4.1 extensions.
//
// The leader (lowest node id of the current view) executes threads with
// true concurrency and lets real-time races decide lock acquisition
// order; every grant is recorded as a (mutex, thread) pair and broadcast
// through the group's total order ("mutex table").  Followers suspend a
// thread that requests a lock until the table says it is that thread's
// turn, replaying the leader's order exactly.
//
// Extensions implemented here:
//  - Reentrant locks and condition variables (wait queues are FIFO and
//    all condvar operations happen under the guarding mutex, so the
//    basic grant order makes them deterministic).
//  - Time-bounded waits via the timeout-thread construct of paper
//    Fig. 1: the local timer spawns a TO-thread (with a deterministic
//    derived id) that locks the guarding mutex through the scheduler and
//    resumes the waiter iff its wait generation is still pending.  On
//    the leader the TO-thread races the notifier; the outcome is
//    recorded and replayed by followers.
//  - Dynamic mutex ids (paper Sec. 4.1): followers learn the binding
//    between a leader-assigned table id and a local mutex from the
//    first-grant entry.  The paper identifies the operation "by the
//    thread ID"; that alone is ambiguous when the thread blocks on a
//    mutex that is locally unknown but already registered at the leader,
//    so the entry additionally carries the thread's lock-operation index
//    — a replica-independent value, since lock calls follow program
//    order.
//  - Leader fail-over: when the view changes, the new leader first
//    honours all grants recorded by the old leader (identical on all
//    survivors thanks to totally-ordered table broadcasts), then starts
//    recording its own.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "sched/base.hpp"

namespace adets::sched {

class LsaScheduler : public SchedulerBase {
 public:
  explicit LsaScheduler(SchedulerConfig config) : SchedulerBase(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kLsa; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

  void start(SchedulerEnv& env) override;
  void on_scheduler_message(common::NodeId sender, const common::Bytes& payload) override;
  void on_view_change(const std::vector<common::NodeId>& members) override;

  /// True while this replica records (rather than replays) grants.
  [[nodiscard]] bool is_leader() const;

 protected:
  void handle_request(Lk& lk, Request request) override ADETS_REQUIRES(mon_);
  void handle_reply(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                       common::CondVarId condvar, std::uint64_t generation,
                       common::Duration timeout) override ADETS_REQUIRES(mon_);
  void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                   common::CondVarId condvar, bool all) override ADETS_REQUIRES(mon_);
  bool base_resume_timed_out(Lk& lk, ThreadRecord& handler, common::MutexId mutex,
                             common::CondVarId condvar, common::ThreadId target,
                             std::uint64_t generation) override ADETS_REQUIRES(mon_);
  void base_before_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_after_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_start(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_done(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_wait_timer_expired(common::ThreadId thread, common::MutexId mutex,
                             common::CondVarId condvar, std::uint64_t generation) override;

 private:
  struct TableEntry {
    std::uint64_t lsa_id = 0;
    std::uint64_t thread = 0;
    bool is_new = false;
    /// For is_new entries: the grantee thread's lock-operation index
    /// (its op-th base-level lock call).  Lock operations happen in
    /// program order, so (thread, op) identifies the same local mutex on
    /// every replica — a thread id alone is ambiguous when the thread is
    /// blocked on a mutex that is new locally but not to the leader.
    std::uint64_t op = 0;
  };
  struct MutexState {
    common::ThreadId owner = common::ThreadId::invalid();
    std::deque<common::ThreadId> rt_waiters;  // leader: real-time arrival order
  };
  struct Waiter {
    common::ThreadId thread;
    std::uint64_t generation;
  };

  /// The full lock algorithm (leader record / follower replay).
  void lock_impl(Lk& lk, ThreadRecord& t, common::MutexId mutex) ADETS_REQUIRES(mon_);
  void unlock_impl(Lk& lk, common::MutexId mutex) ADETS_REQUIRES(mon_);
  void append_entry(Lk& lk, common::MutexId mutex, common::ThreadId thread,
                    std::uint64_t op) ADETS_REQUIRES(mon_);
  void flush_outgoing(Lk& lk) ADETS_REQUIRES(mon_);
  /// Timer callback target: acquires mon_ and flushes (kept out of the
  /// lambda so the lambda body contains no lock operations).
  void flush_batched();
  void bind(common::MutexId mutex, std::uint64_t lsa_id) ADETS_REQUIRES(mon_);
  void wake_lock_waiters(Lk& lk) ADETS_REQUIRES(mon_);

  static common::Bytes encode_table(const std::vector<TableEntry>& entries);
  static std::vector<TableEntry> decode_table(const common::Bytes& payload);

  bool leader_ ADETS_GUARDED_BY(mon_) = false;
  std::uint64_t next_lsa_id_ ADETS_GUARDED_BY(mon_) = 1;
  std::map<std::uint64_t, std::uint64_t> app_to_lsa_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, std::uint64_t> lsa_to_app_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, MutexState> mutexes_ ADETS_GUARDED_BY(mon_);
  /// Follower replay plan: recorded grantees per lsa id, FIFO.
  std::map<std::uint64_t, std::deque<std::uint64_t>> expected_ ADETS_GUARDED_BY(mon_);
  /// Per-thread count of base-level lock operations (identical on every
  /// replica; keys the dynamic-binding protocol).
  std::map<std::uint64_t, std::uint64_t> lock_ops_ ADETS_GUARDED_BY(mon_);
  /// Follower: (thread, op) -> app mutex requested but not yet bound.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> unknown_requests_ ADETS_GUARDED_BY(mon_);
  /// Follower: is_new entries that arrived before the thread's op.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> early_new_entries_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, std::deque<Waiter>> cond_queues_ ADETS_GUARDED_BY(mon_);
  std::vector<TableEntry> outgoing_ ADETS_GUARDED_BY(mon_);
};

}  // namespace adets::sched
