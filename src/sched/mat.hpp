// ADETS-MAT: multiple active threads (paper Sec. 3.2, SRDS'06).
//
// All request-handler threads run truly concurrently; determinism is
// preserved by funnelling every *lock acquisition* through a primary
// token:
//   - Only the token holder may request a mutex.  A free mutex is
//     acquired immediately and the holder keeps the token (this is why
//     a "lock, then compute" pattern serialises MAT, paper Fig. 4c/d).
//     If the mutex is busy the holder waits *keeping the token*, so at
//     most one plain lock request is ever pending.
//   - Threads resumed from wait() reacquire the guarding mutex with
//     absolute priority over the (unique) token-holding waiter, making
//     every mutex's owner sequence a pure function of its critical-
//     section history.
//   - The token succession is a ticket queue fed only at totally
//     ordered stream positions: thread creation (request delivery),
//     nested-reply delivery, plus notify()-time tickets for resumed
//     waiters and explicit yield().  Tickets popped for threads that
//     went back to waiting or into a nested call are discarded (they
//     get fresh tickets at their next deterministic resume event), so
//     the token is never parked on a thread that cannot proceed.
//
// Known residual nondeterminism window (documented in DESIGN.md): a
// thread that acquires a *new* mutex after resuming from wait(), or
// whose nested reply arrives before it issues the call, receives its
// ticket at an execution-local point; programs that re-lock only the
// guarding mutex after wait() (ordinary monitor style — all workloads
// in this repository) are fully deterministic.
//
// yield() implements the paper's proposed MAT optimisation: it donates
// the token without waiting for an implicit scheduling point.
#pragma once

#include <deque>
#include <map>
#include <variant>

#include "sched/base.hpp"

namespace adets::sched {

class MatScheduler : public SchedulerBase {
 public:
  explicit MatScheduler(SchedulerConfig config) : SchedulerBase(config) {}

  [[nodiscard]] SchedulerKind kind() const override { return SchedulerKind::kMat; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override;

  void yield() override;
  void on_reply(common::RequestId nested_id) override;

 protected:
  void handle_request(Lk& lk, Request request) override ADETS_REQUIRES(mon_);
  void handle_reply(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_lock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  void base_unlock(Lk& lk, ThreadRecord& t, common::MutexId mutex) override ADETS_REQUIRES(mon_);
  WaitResult base_wait(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                       common::CondVarId condvar, std::uint64_t generation,
                       common::Duration timeout) override ADETS_REQUIRES(mon_);
  void base_notify(Lk& lk, ThreadRecord& t, common::MutexId mutex,
                   common::CondVarId condvar, bool all) override ADETS_REQUIRES(mon_);
  bool base_resume_timed_out(Lk& lk, ThreadRecord& handler, common::MutexId mutex,
                             common::CondVarId condvar, common::ThreadId target,
                             std::uint64_t generation) override ADETS_REQUIRES(mon_);
  void base_before_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void base_after_nested(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_start(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void on_thread_done(Lk& lk, ThreadRecord& t) override ADETS_REQUIRES(mon_);
  void debug_extra(std::string& out) const override ADETS_REQUIRES(mon_);

 private:
  struct MutexState {
    common::ThreadId owner = common::ThreadId::invalid();
    /// Waiters resumed by notify(), granted with priority (FIFO).
    std::deque<common::ThreadId> reacquirers;
    /// The unique token-holding plain waiter (if any).
    common::ThreadId token_waiter = common::ThreadId::invalid();
  };
  struct Waiter {
    common::ThreadId thread;
    std::uint64_t generation;
  };

  /// Pops tickets until a thread that can use the token is found.
  void try_assign_token(Lk& lk) ADETS_REQUIRES(mon_);
  /// Gives the token up (if held by `t`) and reassigns.
  void transfer_token(Lk& lk, ThreadRecord& t) ADETS_REQUIRES(mon_);
  /// Grants `mutex` at unlock: pending reacquirers first, then the
  /// token-holding waiter.
  void hand_over(Lk& lk, common::MutexId mutex) ADETS_REQUIRES(mon_);
  void resume_waiter(Lk& lk, ThreadRecord& t, common::MutexId mutex, bool timed_out) ADETS_REQUIRES(mon_);

  /// A thread's claim on the token, valid for one eligibility *epoch*
  /// (epochs advance at nested-reply claims and notifications).  A
  /// stale-epoch ticket is discarded on every replica, so a thread can
  /// never acquire the token through an old queue position — that would
  /// make the grant order depend on when the pop raced its state change.
  struct ThreadTicket {
    common::ThreadId id;
    std::uint64_t epoch;
  };
  /// Either a thread ticket, or a *placeholder* holding the queue slot
  /// of a nested reply delivered before the local thread issued its
  /// call — the token waits there until the thread claims the reply.
  using Ticket = std::variant<ThreadTicket, common::RequestId>;

  common::ThreadId primary_ ADETS_GUARDED_BY(mon_) = common::ThreadId::invalid();
  std::deque<Ticket> tickets_ ADETS_GUARDED_BY(mon_);
  /// reply id -> claiming thread's ticket (resolves placeholders).
  std::map<std::uint64_t, ThreadTicket> claimed_replies_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, MutexState> mutexes_ ADETS_GUARDED_BY(mon_);
  std::map<std::uint64_t, std::deque<Waiter>> cond_queues_ ADETS_GUARDED_BY(mon_);
};

}  // namespace adets::sched
