#include "transport/network.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/mc_hooks.hpp"

namespace adets::transport {

using common::Duration;
using common::NodeId;
using common::TimePoint;

SimNetwork::SimNetwork(LinkConfig default_link, std::uint64_t seed)
    : default_link_(default_link), rng_(seed) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SimNetwork::~SimNetwork() { stop(); }

NodeId SimNetwork::create_node() {
  const common::MutexLock guard(mutex_);
  const auto id = NodeId(static_cast<NodeId::rep_type>(nodes_.size()));
  auto node = std::make_unique<Node>();
  Node* raw = node.get();
  node->worker = std::thread([this, raw] { node_loop(*raw); });
  nodes_.push_back(std::move(node));
  return id;
}

void SimNetwork::set_handler(NodeId node, Handler handler) {
  Node* n = nullptr;
  {
    const common::MutexLock guard(mutex_);
    n = nodes_.at(node.value()).get();
  }
  const common::MutexLock guard(n->handler_mutex);
  n->handler = std::move(handler);
}

bool SimNetwork::send(NodeId src, NodeId dst, common::SharedBytes payload) {
  const auto now = common::Clock::now();
  const common::MutexLock guard(mutex_);
  if (stopping_) return false;
  if (src.value() >= nodes_.size() || dst.value() >= nodes_.size()) return false;
  stats_.messages_sent++;
  stats_.bytes_sent += payload.size();
  if (nodes_[src.value()]->crashed.load() || nodes_[dst.value()]->crashed.load()) {
    stats_.messages_dropped++;
    return false;
  }
  const LinkConfig link = link_for(src, dst);
  if (link.drop_probability > 0.0 &&
      rng_.uniform_real(0.0, 1.0) < link.drop_probability) {
    stats_.messages_dropped++;
    return false;
  }

  // Fault layer: one reproducible verdict per (link, message index).
  const auto key = std::make_pair(src.value(), dst.value());
  FaultDecision fault;
  if (fault_plan_armed_) {
    fault = decide_fault(fault_plan_, src, dst, fault_counters_[key]++);
    fault_trace_[key].push_back(fault);
    if (fault.dropped) {
      stats_.messages_dropped++;
      return false;
    }
  }

  Duration latency = common::Clock::scaled(link.base_latency);
  if (link.jitter.count() > 0) {
    const auto jitter_ns = common::Clock::scaled(link.jitter).count();
    latency += Duration(static_cast<Duration::rep>(
        rng_.uniform(0, static_cast<std::uint64_t>(jitter_ns))));
  }
  if (fault.extra_delay_ns > 0) {
    latency += common::Clock::scaled(Duration(fault.extra_delay_ns));
    stats_.messages_fault_delayed++;
  }
  TimePoint due = now + latency;
  if (fault.reordered) {
    // Bounded reordering: hold the message back far enough for up to
    // reorder_span in-window successors to overtake, exempt it from the
    // FIFO clamp, and leave the FIFO horizon untouched so successors are
    // not dragged behind it.
    const auto span = fault_plan_.faults_for(src, dst).reorder_span;
    due += common::Clock::scaled((link.base_latency + link.jitter) * span);
    stats_.messages_reordered++;
  } else {
    // Preserve FIFO per directed link even when jitter would reorder.
    auto it = last_scheduled_.find(key);
    if (it != last_scheduled_.end() && due < it->second) due = it->second;
    last_scheduled_[key] = due;
  }

  if (fault.duplicated) {
    // The trailing copy is delivered one base latency later and does not
    // advance the FIFO horizon (a late duplicate, as on a retransmitting
    // real network); dedup is the upper layers' job.  The duplicate
    // aliases the original's buffer.
    stats_.messages_duplicated++;
    heap_.push_back(Pending{due + common::Clock::scaled(link.base_latency),
                            next_seq_++, Message{src, dst, payload}, std::nullopt});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  heap_.push_back(
      Pending{due, next_seq_++, Message{src, dst, std::move(payload)}, std::nullopt});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_cv_.notify_one();
  return true;
}

void SimNetwork::set_link(NodeId src, NodeId dst, LinkConfig config) {
  const common::MutexLock guard(mutex_);
  links_[{src.value(), dst.value()}] = config;
}

void SimNetwork::crash(NodeId node) {
  const common::MutexLock guard(mutex_);
  apply_node_event(NodeEvent{common::Duration::zero(), node, NodeEvent::Kind::kCrash});
}

void SimNetwork::restart(NodeId node) {
  const common::MutexLock guard(mutex_);
  apply_node_event(NodeEvent{common::Duration::zero(), node, NodeEvent::Kind::kRestart});
}

void SimNetwork::apply_node_event(const NodeEvent& event) {
  if (event.node.value() >= nodes_.size()) return;
  Node& node = *nodes_[event.node.value()];
  if (event.kind == NodeEvent::Kind::kCrash) {
    if (node.crashed.exchange(true)) return;
    stats_.node_crashes++;
    ADETS_LOG_INFO("net") << "node " << event.node << " crashed";
  } else {
    if (!node.crashed.exchange(false)) return;
    stats_.node_restarts++;
    ADETS_LOG_INFO("net") << "node " << event.node << " restarted";
  }
}

void SimNetwork::set_fault_plan(FaultPlan plan) {
  const auto now = common::Clock::now();
  const common::MutexLock guard(mutex_);
  if (stopping_) return;
  fault_plan_ = std::move(plan);
  fault_plan_armed_ = true;
  fault_counters_.clear();
  fault_trace_.clear();
  for (const auto& event : fault_plan_.node_events) {
    heap_.push_back(Pending{now + common::Clock::scaled(event.at), next_seq_++,
                            Message{}, event});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  heap_cv_.notify_one();
}

FaultTrace SimNetwork::fault_trace() const {
  const common::MutexLock guard(mutex_);
  return fault_trace_;
}

bool SimNetwork::crashed(NodeId node) const {
  const common::MutexLock guard(mutex_);
  return node.value() < nodes_.size() && nodes_[node.value()]->crashed.load();
}

NetworkStats SimNetwork::stats() const {
  const common::MutexLock guard(mutex_);
  return stats_;
}

void SimNetwork::stop() {
  {
    const common::MutexLock guard(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  heap_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Close inboxes after the dispatcher is gone (no more pushes).
  std::vector<Node*> nodes;
  {
    const common::MutexLock guard(mutex_);
    for (auto& n : nodes_) nodes.push_back(n.get());
  }
  for (Node* n : nodes) n->inbox.close();
  for (Node* n : nodes) {
    if (n->worker.joinable()) n->worker.join();
  }
}

LinkConfig SimNetwork::link_for(NodeId src, NodeId dst) const {
  const auto it = links_.find({src.value(), dst.value()});
  return it == links_.end() ? default_link_ : it->second;
}

SimNetwork::Pending SimNetwork::pop_earliest_due() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Pending item = std::move(heap_.back());
  heap_.pop_back();
  return item;
}

void SimNetwork::dispatcher_loop() {
  common::MutexLock lock(mutex_);
  // Plain (predicate-free) waits: the enclosing loop re-evaluates the
  // full condition after every wakeup, and keeping guarded members out
  // of wait predicates is what lets clang's thread-safety analysis see
  // this function whole (lambda bodies are analyzed separately).
  while (true) {
    if (stopping_) return;
    if (heap_.empty()) {
      heap_cv_.wait(lock);
      continue;
    }
    const TimePoint due = heap_.front().due;
    const auto now = common::Clock::now();
    if (due > now) {
      heap_cv_.wait_until(lock, due);
      continue;
    }
    // Everything due at-or-before `now` is releasable; real latency only
    // sampled one order, so under adets-mc the release order across
    // *distinct* links becomes an exploration point.  Per-link FIFO stays
    // inviolable: only the oldest due message of each (src,dst) link is a
    // candidate, so the choice can never reorder within a link.
    Pending item = [&]() ADETS_REQUIRES(mutex_) {
      auto* mc = mchook::active();
      if (mc == nullptr) return pop_earliest_due();
      std::vector<Pending> released;
      while (!heap_.empty() && heap_.front().due <= now) {
        released.push_back(pop_earliest_due());
      }
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < released.size(); ++i) {
        bool first_on_link = true;
        for (std::size_t j = 0; j < i; ++j) {
          if (!released[i].node_event && !released[j].node_event &&
              released[i].message.src == released[j].message.src &&
              released[i].message.dst == released[j].message.dst) {
            first_on_link = false;
            break;
          }
        }
        if (first_on_link) candidates.push_back(i);
      }
      const std::size_t pick =
          candidates.empty()
              ? 0
              : candidates[mc->delivery_choice(candidates.size()) %
                           candidates.size()];
      Pending chosen = std::move(released[pick]);
      for (std::size_t i = 0; i < released.size(); ++i) {
        if (i == pick) continue;
        heap_.push_back(std::move(released[i]));
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
      return chosen;
    }();
    if (item.node_event) {
      apply_node_event(*item.node_event);
      continue;
    }
    Node* dst = nodes_[item.message.dst.value()].get();
    if (dst->crashed.load()) {
      stats_.messages_dropped++;
      continue;
    }
    stats_.messages_delivered++;
    dst->inbox.push(std::move(item.message));
  }
}

void SimNetwork::node_loop(Node& node) {
  while (auto message = node.inbox.pop()) {
    if (node.crashed.load()) continue;
    Handler handler;
    {
      const common::MutexLock guard(node.handler_mutex);
      handler = node.handler;
    }
    if (handler) handler(std::move(*message));
  }
}

}  // namespace adets::transport
