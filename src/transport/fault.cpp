#include "transport/fault.hpp"

namespace adets::transport {

namespace {

/// Uniform double in [0, 1) from one SplitMix64 draw.
double unit_draw(std::uint64_t& state) {
  return static_cast<double>(common::splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultDecision decide_fault(const FaultPlan& plan, common::NodeId src,
                           common::NodeId dst, std::uint64_t counter) {
  FaultDecision decision;
  decision.link_counter = counter;
  const LinkFaults& faults = plan.faults_for(src, dst);
  if (!faults.active()) return decision;

  // One private SplitMix64 stream per (plan, link, message): verdicts
  // never depend on traffic on other links or on draw consumption by
  // earlier messages.
  std::uint64_t state = plan.seed;
  state = common::splitmix64(state) ^ (static_cast<std::uint64_t>(src.value()) << 32 |
                                       static_cast<std::uint64_t>(dst.value()));
  state = common::splitmix64(state) ^ counter;

  // Fixed draw order keeps the stream aligned whatever the probabilities.
  const double drop = unit_draw(state);
  const double duplicate = unit_draw(state);
  const double delay_fraction = unit_draw(state);
  const double reorder = unit_draw(state);

  decision.dropped = drop < faults.drop_probability;
  decision.duplicated = duplicate < faults.duplicate_probability;
  decision.reordered = reorder < faults.reorder_probability;
  if (faults.extra_delay_max > faults.extra_delay_min) {
    const auto span =
        static_cast<double>((faults.extra_delay_max - faults.extra_delay_min).count());
    decision.extra_delay_ns =
        faults.extra_delay_min.count() +
        static_cast<std::int64_t>(delay_fraction * span);
  } else {
    decision.extra_delay_ns = faults.extra_delay_min.count();
  }
  return decision;
}

std::uint64_t fault_trace_digest(const FaultTrace& trace) {
  std::uint64_t digest = 0x2545f4914f6cdd1dULL;
  const auto mix = [&digest](std::uint64_t value) {
    digest ^= value + 0x9e3779b97f4a7c15ULL + (digest << 6) + (digest >> 2);
  };
  for (const auto& [link, decisions] : trace) {
    mix(link.first);
    mix(link.second);
    for (const auto& d : decisions) {
      mix(d.link_counter);
      mix((d.dropped ? 1ULL : 0ULL) | (d.duplicated ? 2ULL : 0ULL) |
          (d.reordered ? 4ULL : 0ULL));
      mix(static_cast<std::uint64_t>(d.extra_delay_ns));
    }
  }
  return digest;
}

}  // namespace adets::transport
