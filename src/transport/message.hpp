// Wire-level message envelope of the simulated network.
#pragma once

#include "common/serialization.hpp"
#include "common/types.hpp"

namespace adets::transport {

/// One datagram between two simulated nodes.  The payload is opaque to
/// the transport; the group-communication layer encodes its own headers.
struct Message {
  common::NodeId src;
  common::NodeId dst;
  common::Bytes payload;
};

}  // namespace adets::transport
