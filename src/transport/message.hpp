// Wire-level message envelope of the simulated network.
#pragma once

#include "common/buffer.hpp"
#include "common/types.hpp"

namespace adets::transport {

/// One datagram between two simulated nodes.  The payload is opaque to
/// the transport; the group-communication layer encodes its own headers.
/// It is a refcounted immutable buffer, so a multicast of the same bytes
/// to N peers (and a fault-injected duplicate) shares one allocation.
struct Message {
  common::NodeId src;
  common::NodeId dst;
  common::SharedBytes payload;
};

}  // namespace adets::transport
