// Deterministic fault-injection plans for the simulated network.
//
// A FaultPlan layers adversarial delivery conditions on top of the
// SimNetwork latency model: extra per-link delay, message duplication,
// bounded reordering (a message is held back so later messages on the
// same link overtake it), probabilistic loss, and scheduled node
// crash/restart events.  Every stochastic verdict is derived purely from
// (plan seed, src, dst, per-link message counter) via SplitMix64, so a
// plan produces the *same* per-link fault schedule on every run — the
// reproducibility contract the fault-injection tests assert — no matter
// how OS threads interleave.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace adets::transport {

/// Stochastic fault model of one directed link.
struct LinkFaults {
  /// Probability that a message is silently dropped (on top of any
  /// LinkConfig::drop_probability).
  double drop_probability = 0.0;
  /// Probability that a second copy of the message is delivered (the
  /// copy trails the original by one extra-delay draw; the GCS
  /// at-most-once filters must absorb it).
  double duplicate_probability = 0.0;
  /// Uniform extra one-way latency in [min, max], paper time.
  common::Duration extra_delay_min = common::Duration::zero();
  common::Duration extra_delay_max = common::Duration::zero();
  /// Probability that a message is held back past its FIFO slot so up
  /// to `reorder_span` successors on the same link overtake it.
  double reorder_probability = 0.0;
  std::uint32_t reorder_span = 4;

  [[nodiscard]] bool active() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 ||
           extra_delay_max > common::Duration::zero();
  }
};

/// Scheduled node lifecycle event, relative to the instant the plan is
/// armed (SimNetwork::set_fault_plan), expressed in paper time.
struct NodeEvent {
  enum class Kind : std::uint8_t { kCrash, kRestart };
  common::Duration at = common::Duration::zero();
  common::NodeId node;
  Kind kind = Kind::kCrash;
};

/// A complete, seeded fault-injection schedule.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Faults applied to every link unless overridden below.
  LinkFaults default_faults;
  /// Per directed link (src, dst) overrides.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkFaults> link_faults;
  /// Crash/restart timeline.
  std::vector<NodeEvent> node_events;

  [[nodiscard]] const LinkFaults& faults_for(common::NodeId src,
                                             common::NodeId dst) const {
    const auto it = link_faults.find({src.value(), dst.value()});
    return it == link_faults.end() ? default_faults : it->second;
  }

  // --- fluent builders (tests read as one expression) ----------------------
  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPlan& drop(double p) {
    default_faults.drop_probability = p;
    return *this;
  }
  FaultPlan& duplicate(double p) {
    default_faults.duplicate_probability = p;
    return *this;
  }
  FaultPlan& delay(common::Duration min, common::Duration max) {
    default_faults.extra_delay_min = min;
    default_faults.extra_delay_max = max;
    return *this;
  }
  FaultPlan& reorder(double p, std::uint32_t span = 4) {
    default_faults.reorder_probability = p;
    default_faults.reorder_span = span;
    return *this;
  }
  FaultPlan& on_link(common::NodeId src, common::NodeId dst, LinkFaults faults) {
    link_faults[{src.value(), dst.value()}] = faults;
    return *this;
  }
  FaultPlan& crash_at(common::Duration at, common::NodeId node) {
    node_events.push_back({at, node, NodeEvent::Kind::kCrash});
    return *this;
  }
  FaultPlan& restart_at(common::Duration at, common::NodeId node) {
    node_events.push_back({at, node, NodeEvent::Kind::kRestart});
    return *this;
  }
};

/// The verdict the fault layer reached for one message on one link.
/// Recorded per directed link in send order, so two runs with the same
/// plan produce identical per-link decision streams.
struct FaultDecision {
  std::uint64_t link_counter = 0;  // nth message on this directed link
  bool dropped = false;
  bool duplicated = false;
  bool reordered = false;
  std::int64_t extra_delay_ns = 0;

  friend bool operator==(const FaultDecision&, const FaultDecision&) = default;
};

/// Per-link fault decision streams: (src, dst) -> decisions in send order.
using FaultTrace =
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<FaultDecision>>;

/// Order-insensitive digest of a fault trace (per-link streams are
/// ordered; links are combined through the sorted map), used by tests to
/// compare the delivery schedules of two runs cheaply.
[[nodiscard]] std::uint64_t fault_trace_digest(const FaultTrace& trace);

/// Draws the verdict for the `counter`-th message on link src->dst of
/// `plan`.  Pure function of its arguments: the decision stream of a
/// link does not depend on traffic elsewhere.
[[nodiscard]] FaultDecision decide_fault(const FaultPlan& plan, common::NodeId src,
                                         common::NodeId dst, std::uint64_t counter);

}  // namespace adets::transport
