// Simulated point-to-point network.
//
// Replaces the paper's 100 Mbit/s switched LAN.  Every simulated machine
// is a "node": it has an id, an inbox and a dedicated delivery thread
// that hands received messages to a registered handler.  A central
// dispatcher thread releases messages after their link latency elapses.
//
// Properties (mirroring a TCP LAN, which the paper's middleware assumes):
//  - per-(src,dst) FIFO ordering, even with latency jitter;
//  - reliable delivery unless a drop probability is configured on the
//    link (used only by failure-detector tests) or a node is crashed;
//  - latencies are expressed in *paper time* and scaled through
//    common::Clock, so the compute/communication ratio of the paper's
//    testbed is preserved under any time scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/blocking_queue.hpp"
#include "common/mutex.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "transport/fault.hpp"
#include "transport/message.hpp"

namespace adets::transport {

/// Latency/loss model of one directed link.
struct LinkConfig {
  /// Fixed one-way latency in paper time.
  common::Duration base_latency = common::paper_us(500);
  /// Uniform extra latency in [0, jitter] in paper time.
  common::Duration jitter = common::paper_us(200);
  /// Probability that a message is silently dropped (default: reliable).
  double drop_probability = 0.0;
};

/// Counters exposed for tests and the EXPERIMENTS report.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  // Fault-injection counters (all zero without an armed FaultPlan).
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_fault_delayed = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
};

/// The simulated network fabric.  Thread-safe.
class SimNetwork {
 public:
  using Handler = std::function<void(Message)>;

  explicit SimNetwork(LinkConfig default_link = {}, std::uint64_t seed = 1);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Creates a new node and returns its id.  The node starts receiving
  /// once a handler is registered.
  common::NodeId create_node();

  /// Registers (or replaces) the message handler of a node.  The handler
  /// runs on the node's private delivery thread, one message at a time.
  void set_handler(common::NodeId node, Handler handler);

  /// Sends `payload` from `src` to `dst`; returns false if either end is
  /// crashed (the message is silently lost, as on a real network).
  /// Multicast senders pass the same SharedBytes for every destination so
  /// the fabric never copies the bytes again.
  bool send(common::NodeId src, common::NodeId dst, common::SharedBytes payload);
  bool send(common::NodeId src, common::NodeId dst, common::Bytes payload) {
    return send(src, dst, common::SharedBytes(std::move(payload)));
  }

  /// Overrides the latency/loss model of the directed link src->dst.
  void set_link(common::NodeId src, common::NodeId dst, LinkConfig config);

  /// Crashes a node: all traffic to and from it is dropped from now on.
  void crash(common::NodeId node);

  /// Revives a crashed node: traffic flows again (messages lost while
  /// down stay lost; upper layers must repair via retransmission).
  void restart(common::NodeId node);

  [[nodiscard]] bool crashed(common::NodeId node) const;

  /// Arms `plan` now: link faults apply to every subsequent send, node
  /// events fire at their paper-time offsets from this instant.
  void set_fault_plan(FaultPlan plan);

  /// Per-link fault verdicts recorded since the plan was armed.
  [[nodiscard]] FaultTrace fault_trace() const;

  [[nodiscard]] NetworkStats stats() const;

  /// Stops all delivery threads; pending messages are discarded.
  void stop();

 private:
  struct Node {
    // adets-sa:allow(unguarded-field) BlockingQueue is internally synchronized
    common::BlockingQueue<Message> inbox;
    common::Mutex handler_mutex{"net::node.handler"};
    Handler handler ADETS_GUARDED_BY(handler_mutex);
    std::atomic<bool> crashed{false};
    std::thread worker;
  };

  struct Pending {
    common::TimePoint due;
    std::uint64_t seq;  // tie-break, preserves send order
    Message message;
    /// Set for scheduled FaultPlan crash/restart entries (message unused).
    std::optional<NodeEvent> node_event;
    friend bool operator>(const Pending& a, const Pending& b) {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void dispatcher_loop();
  void node_loop(Node& node);
  Pending pop_earliest_due() ADETS_REQUIRES(mutex_);
  void apply_node_event(const NodeEvent& event) ADETS_REQUIRES(mutex_);
  LinkConfig link_for(common::NodeId src, common::NodeId dst) const
      ADETS_REQUIRES(mutex_);

  // Set in the constructor, read-only afterwards (link_for falls back
  // to it under mutex_ anyway).
  const LinkConfig default_link_;
  mutable common::Mutex mutex_{"net::mutex"};
  common::CondVar heap_cv_;
  std::vector<std::unique_ptr<Node>> nodes_ ADETS_GUARDED_BY(mutex_);
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkConfig> links_
      ADETS_GUARDED_BY(mutex_);
  std::map<std::pair<std::uint32_t, std::uint32_t>, common::TimePoint> last_scheduled_
      ADETS_GUARDED_BY(mutex_);
  /// Min-heap by due time.
  std::vector<Pending> heap_ ADETS_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ ADETS_GUARDED_BY(mutex_) = 0;
  common::Rng rng_ ADETS_GUARDED_BY(mutex_);
  NetworkStats stats_ ADETS_GUARDED_BY(mutex_);
  // Fault injection.
  FaultPlan fault_plan_ ADETS_GUARDED_BY(mutex_);
  bool fault_plan_armed_ ADETS_GUARDED_BY(mutex_) = false;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> fault_counters_
      ADETS_GUARDED_BY(mutex_);
  FaultTrace fault_trace_ ADETS_GUARDED_BY(mutex_);
  bool stopping_ ADETS_GUARDED_BY(mutex_) = false;
  std::thread dispatcher_;
};

}  // namespace adets::transport
