// Execution harness of the adets-mc model checker.
//
// run_execution() builds a two-replica world for one strategy — each
// replica its own scheduler instance, joined by an emulated total-order
// event bus (mirroring tests/sched_harness.hpp) — installs a McRuntime
// as the global interception point, seeds the scenario's requests, and
// then plays one schedule: at every quiescent point the controller picks
// one enabled choice (from the plan's prefix, a forced override, or the
// deterministic default policy) until the workload drains, deadlocks,
// hangs, or exhausts its budget.  The completed execution is checked for
// the per-execution determinism properties (identical per-mutex grant
// projections, identical traced state and state hashes, deadlock
// freedom, starvation bounds); the cross-schedule property (equal bus
// order implies equal outcome) is the explorer's job, via `order_key`
// and `outcome`.
//
// Executions are process-exclusive (the interceptor is a global) and
// must not overlap; the explorer runs them strictly sequentially.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "mc/model.hpp"
#include "mc/runtime.hpp"
#include "mc/scenario.hpp"

namespace adets::mc {

/// How the controller resolves choices for one execution.
struct SchedulePlan {
  /// Exact choices for steps [0, prefix.size()).  A prefix choice that is
  /// not enabled aborts the execution with a "replay-divergence"
  /// violation when strict (replay mode) or falls back to the default
  /// policy otherwise (exploration re-seeding tolerance).
  std::vector<ChoiceKey> prefix;
  bool strict_prefix = false;
  /// Minimisation overrides past the prefix: step index -> choice (used
  /// when delta-debugging deviation points; missing/disabled entries
  /// fall back to the default policy).
  std::map<std::size_t, ChoiceKey> forced;
  /// Sleep set in force at the last prefix step (the explorer's branch
  /// point).  From there on the controller maintains it — dropping
  /// members that conflict with each executed step — and the default
  /// policy avoids sleeping choices: taking one would replay an
  /// interleaving the explorer has already proven covered.
  std::vector<std::pair<ChoiceKey, Footprint>> sleep;
};

struct RunOptions {
  std::size_t max_steps = 20000;
  McRuntime::Options runtime;
};

/// Strategy names accepted by run_execution: the six ADETS strategies
/// plus "racy" (tests/racy_scheduler.hpp behind harness-level hooks).
[[nodiscard]] const std::vector<std::string>& known_strategies();

/// True when `strategy` can run `scenario` (capability gates).
[[nodiscard]] bool strategy_supports(const std::string& strategy,
                                     const Scenario& scenario);

[[nodiscard]] ExecutionResult run_execution(const Scenario& scenario,
                                            const std::string& strategy,
                                            const SchedulePlan& plan,
                                            const RunOptions& options = {});

}  // namespace adets::mc
