#include "mc/trace.hpp"

#include <fstream>
#include <sstream>

namespace adets::mc {

std::string render_trace(const TraceFile& trace) {
  std::string out = "adetsmc-trace v1\n";
  out += "strategy " + trace.strategy + "\n";
  out += "scenario " + trace.scenario + "\n";
  out += "choices " + std::to_string(trace.choices.size()) + "\n";
  for (const ChoiceKey& c : trace.choices) out += to_string(c) + "\n";
  return out;
}

std::optional<TraceFile> parse_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "adetsmc-trace v1") return std::nullopt;
  TraceFile trace;
  std::size_t count = 0;
  if (!std::getline(in, line) || line.rfind("strategy ", 0) != 0) return std::nullopt;
  trace.strategy = line.substr(9);
  if (!std::getline(in, line) || line.rfind("scenario ", 0) != 0) return std::nullopt;
  trace.scenario = line.substr(9);
  if (!std::getline(in, line) || line.rfind("choices ", 0) != 0) return std::nullopt;
  count = std::stoul(line.substr(8));
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    const auto key = parse_choice(line);
    if (!key) return std::nullopt;
    trace.choices.push_back(*key);
  }
  return trace;
}

bool save_trace(const std::string& path, const TraceFile& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_trace(trace);
  return static_cast<bool>(out);
}

std::optional<TraceFile> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

}  // namespace adets::mc
