// Schedule-space exploration for adets-mc.
//
// Stateless DFS over scheduling choices: each schedule is realised by
// re-running the scenario from scratch with a choice prefix
// (mc/harness.hpp), then the recorded steps extend the persistent path
// and seed backtrack points.  Two modes:
//
//  - exhaustive (preemption_bound < 0): dynamic partial-order reduction
//    with sleep sets — backtrack points are added only where two steps
//    of different actors touched a common resource, which collapses the
//    (huge) cross-replica interleaving product to the schedules that can
//    actually differ.
//  - bounded (preemption_bound >= 0): every enabled choice is a
//    backtrack point, but paths are pruned once they exceed the given
//    number of preemptions (a context switch away from a still-enabled
//    actor).  CHESS's result that most concurrency bugs need very few
//    preemptions makes this the practical CI mode.
//
// The first violating execution stops the search; its deviation points
// (choices differing from the default completion policy) are then
// greedily delta-debugged: the smallest prefix of deviations that still
// reproduces a violation becomes the witness trace, replayable
// byte-for-byte via `adetsmc --replay`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mc/harness.hpp"

namespace adets::mc {

struct ExploreOptions {
  /// >= 0 switches to bounded mode with that many allowed preemptions.
  int preemption_bound = -1;
  std::uint64_t max_schedules = 0;  // 0 = unlimited
  double max_seconds = 0.0;         // 0 = unlimited
  RunOptions run;
  /// Optional progress sink (one line per message).
  std::function<void(const std::string&)> progress;
};

struct ExploreReport {
  std::string strategy;
  std::string scenario;
  std::uint64_t schedules = 0;  // executions performed (incl. minimisation)
  std::uint64_t completed = 0;
  std::uint64_t bounded = 0;    // abandoned by step/timeout budgets
  /// True when the search space was fully covered (within the preemption
  /// bound, if any) before any budget expired.
  bool exhausted = false;
  bool found_violation = false;
  std::vector<Violation> violations;  // of the minimised witness run
  std::vector<ChoiceKey> witness;     // full choice sequence, replayable
  std::size_t witness_deviations = 0;
  std::string report;  // human-readable summary
};

[[nodiscard]] ExploreReport explore(const Scenario& scenario,
                                    const std::string& strategy,
                                    const ExploreOptions& options);

/// Re-runs a recorded choice sequence exactly (strict prefix): any
/// divergence from the recording is itself reported as a violation.
[[nodiscard]] ExecutionResult replay_trace(const Scenario& scenario,
                                           const std::string& strategy,
                                           const std::vector<ChoiceKey>& choices,
                                           const RunOptions& options = {});

}  // namespace adets::mc
