// On-disk witness trace format of adets-mc.
//
//   adetsmc-trace v1
//   strategy <name>
//   scenario <name>
//   choices <count>
//   S <actor> <arg>      (one line per choice: S=step, O=timeout, T=timer)
//
// A trace plus (strategy, scenario) fully determines an execution:
// replaying it re-seeds the same request log and re-applies the same
// choice sequence, erroring out loudly if the run ever diverges from
// the recording.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mc/model.hpp"

namespace adets::mc {

struct TraceFile {
  std::string strategy;
  std::string scenario;
  std::vector<ChoiceKey> choices;
};

[[nodiscard]] std::string render_trace(const TraceFile& trace);
[[nodiscard]] std::optional<TraceFile> parse_trace(const std::string& text);

/// File helpers; return false / nullopt on I/O errors.
[[nodiscard]] bool save_trace(const std::string& path, const TraceFile& trace);
[[nodiscard]] std::optional<TraceFile> load_trace(const std::string& path);

}  // namespace adets::mc
