#include "mc/model.hpp"

#include <cstdio>

namespace adets::mc {

std::string to_string(const ChoiceKey& key) {
  const char letter = key.kind == ChoiceKey::Kind::kStep      ? 'S'
                      : key.kind == ChoiceKey::Kind::kTimeout ? 'O'
                                                              : 'T';
  std::string out(1, letter);
  out += ' ';
  out += std::to_string(key.actor);
  out += ' ';
  out += std::to_string(key.arg);
  return out;
}

std::optional<ChoiceKey> parse_choice(const std::string& line) {
  char letter = 0;
  unsigned long long actor = 0;
  unsigned long long arg = 0;
  if (std::sscanf(line.c_str(), " %c %llu %llu", &letter, &actor, &arg) != 3) {
    return std::nullopt;
  }
  ChoiceKey key;
  switch (letter) {
    case 'S': key.kind = ChoiceKey::Kind::kStep; break;
    case 'O': key.kind = ChoiceKey::Kind::kTimeout; break;
    case 'T': key.kind = ChoiceKey::Kind::kTimer; break;
    default: return std::nullopt;
  }
  key.actor = actor;
  key.arg = arg;
  return key;
}

}  // namespace adets::mc
