#include "mc/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/mutex.hpp"

namespace adets::mc {

namespace {
[[noreturn]] void fatal(const char* message) {
  std::fprintf(stderr, "adets-mc: %s\n", message);
  std::abort();
}
}  // namespace

McRuntime::Task*& McRuntime::tls_task() {
  static thread_local Task* task = nullptr;
  return task;
}

McRuntime::McRuntime(Options options) : options_(options) {
  runner_thread_ = std::thread([this] { runner_loop(); });
  // The runner registers itself as task 1 and parks idle; everything the
  // controller does later assumes it is already checked in.
  std::unique_lock<std::mutex> ml(model_m_);
  ctrl_cv_.wait(ml, [this] {
    return runner_task_ != nullptr &&
           runner_task_->park == Task::Park::kRunnerIdle;
  });
}

McRuntime::~McRuntime() {
  {
    std::lock_guard<std::mutex> ml(model_m_);
    if (!draining_) fatal("McRuntime destroyed without begin_drain()");
  }
  if (runner_thread_.joinable()) runner_thread_.join();
}

std::uint64_t McRuntime::token_locked(ResourceKind kind, const void* ptr,
                                      const std::string& name) {
  const auto key = std::make_pair(static_cast<int>(kind), ptr);
  const auto it = token_ids_.find(key);
  if (it != token_ids_.end()) return it->second;
  const std::uint64_t token = next_token_++;
  token_ids_.emplace(key, token);
  // First-touch order is schedule-deterministic, so "name#n" is a stable
  // identity usable in reports and replays.
  token_names_[token] = name + "#" + std::to_string(name_counts_[name]++);
  return token;
}

void McRuntime::touch_locked(std::uint64_t resource) {
  if (step_open_) current_step_.footprint.add(resource);
}

void McRuntime::finish_step_locked() {
  if (!step_open_) return;
  steps_.push_back(std::move(current_step_));
  current_step_ = StepInfo{};
  step_open_ = false;
}

bool McRuntime::quiescent_locked() const {
  if (running_ != nullptr) return false;
  if (expected_checkins_ != 0 || expected_adoptions_ != 0) return false;
  for (const auto& [id, task] : tasks_) {
    if (task->park == Task::Park::kNone) return false;
  }
  return true;
}

McRuntime::Task& McRuntime::register_task_locked(std::uint64_t id,
                                                 const std::string& name,
                                                 bool external) {
  auto [it, inserted] = tasks_.emplace(id, std::make_unique<Task>());
  if (!inserted) fatal("duplicate managed-task id");
  Task& t = *it->second;
  t.id = id;
  t.name = name;
  t.external = external;
  return t;
}

void McRuntime::announce_and_park(std::unique_lock<std::mutex>& ml, Task& t,
                                  Task::Park park) {
  t.park = park;
  if (running_ == &t) {
    running_ = nullptr;
    finish_step_locked();
  }
  ctrl_cv_.notify_all();
  if (draining_) return;  // teardown: pretend granted, fall through to real
  t.cv.wait(ml, [&t] { return t.go; });
  t.go = false;
}

// --- Interceptor: mutexes ---------------------------------------------------

bool McRuntime::mutex_lock(void* mutex, const char* name) {
  Task* t = self();
  if (t == nullptr) return false;
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  t->res = token_locked(kMutexRes, mutex, name != nullptr ? name : "mutex");
  announce_and_park(ml, *t, Task::Park::kLock);
  return true;  // the wrapper now takes the real (uncontended) lock
}

bool McRuntime::mutex_unlock(void* mutex) {
  Task* t = self();
  if (t == nullptr) return false;
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  const std::uint64_t res = token_locked(kMutexRes, mutex, "mutex");
  owners_[res] = 0;  // the real release already happened in the wrapper
  touch_locked(res);
  // Release-type operation: no yield (Lipton reduction).  Releasing can
  // only enable others, and anything they do becomes schedulable at this
  // task's next acquire-type park — parking here would only inflate the
  // interleaving space without adding distinguishable behaviours.
  return true;
}

bool McRuntime::mutex_try_lock(void* mutex, const char* name, bool* acquired) {
  Task* t = self();
  if (t == nullptr) return false;
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  const std::uint64_t res =
      token_locked(kMutexRes, mutex, name != nullptr ? name : "mutex");
  t->res = res;
  announce_and_park(ml, *t, Task::Park::kStep);
  if (draining_) return false;
  if (owners_[res] == 0) {
    owners_[res] = t->id;
    touch_locked(res);
    *acquired = true;
  } else {
    touch_locked(res);
    *acquired = false;
  }
  return true;
}

// --- Interceptor: condition variables ---------------------------------------

bool McRuntime::cv_wait(void* condvar, void* mutex, bool timed,
                        bool* timed_out) {
  Task* t = self();
  if (t == nullptr) return false;
  auto* mu = static_cast<common::Mutex*>(mutex);
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  const std::uint64_t mures = token_locked(kMutexRes, mutex, mu->name());
  const std::uint64_t cvres = token_locked(kCvRes, condvar, "cv");
  owners_[mures] = 0;
  touch_locked(mures);
  touch_locked(cvres);
  // Real release before parking: whoever the controller schedules next
  // onto this mutex must find it free.
  mu->native_handle().unlock();
  t->res = cvres;
  t->mu = mures;
  t->mu_ptr = mutex;
  t->timed = timed;
  t->wake_was_timeout = false;
  announce_and_park(ml, *t, Task::Park::kCvWait);
  // Here either the controller granted the (wake, reacquire) pair, or
  // drain released us; either way we really hold nothing and must take
  // the mutex back before returning into the wait's caller.
  const bool was_timeout = t->wake_was_timeout;
  ml.unlock();
  mu->native_handle().lock();
  *timed_out = was_timeout;
  return true;
}

void McRuntime::apply_notify_locked(std::uint64_t cvres, bool all) {
  std::vector<Task*> waiters;
  for (auto& [id, task] : tasks_) {
    if (task->park == Task::Park::kCvWait && task->res == cvres) {
      waiters.push_back(task.get());
    }
  }
  // std semantics: a notify with nobody waiting is lost.
  if (waiters.empty()) return;
  if (!all && waiters.size() > 1) {
    // Contended notify_one: which waiter consumes it is a real choice.
    cv_tokens_[cvres]++;
    return;
  }
  // Deterministic wake (notify_all, or a single waiter): fold it into
  // the notifier's step instead of emitting wake choices.  Nothing is
  // lost — schedules where a racing timeout fires first simply order
  // the kTimeout choice before the notifier's step — and the real
  // contention point (reacquiring the guard) stays a choice.
  for (Task* w : waiters) {
    w->park = Task::Park::kReacquire;
    w->wake_was_timeout = false;
    touch_locked(w->mu);  // the wake contends the guarding mutex
  }
}

bool McRuntime::cv_notify(void* condvar, bool all) {
  Task* t = self();
  if (t == nullptr) return false;  // wrapper still performs the real notify
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  const std::uint64_t cvres = token_locked(kCvRes, condvar, "cv");
  touch_locked(cvres);
  apply_notify_locked(cvres, all);
  // Release-type: no yield (see mutex_unlock).
  return true;
}

void McRuntime::post_notify(void* condvar, bool all) {
  std::lock_guard<std::mutex> ml(model_m_);
  apply_notify_locked(token_locked(kCvRes, condvar, "cv"), all);
}

// --- Interceptor: timers ----------------------------------------------------

bool McRuntime::timer_schedule(std::function<void()>* fn, std::uint64_t* id) {
  Task* t = self();
  if (t == nullptr) return false;  // unmanaged callers keep real timers
  std::unique_lock<std::mutex> ml(model_m_);
  if (draining_) return false;
  const std::uint64_t timer_id = next_timer_id_++;
  pending_timers_[timer_id] = std::move(*fn);
  touch_locked(token_locked(
      kTimerRes, reinterpret_cast<const void*>(timer_id), "timer"));
  *id = timer_id;
  // Arming a timer only creates a future choice; no yield.
  return true;
}

bool McRuntime::timer_cancel(std::uint64_t id, bool* cancelled) {
  if (id < (1ULL << 62)) return false;  // not a virtual timer id
  Task* t = self();
  std::unique_lock<std::mutex> ml(model_m_);
  const auto it = pending_timers_.find(id);
  *cancelled = it != pending_timers_.end();
  if (it != pending_timers_.end()) pending_timers_.erase(it);
  if (t != nullptr && !draining_) {
    touch_locked(token_locked(
        kTimerRes, reinterpret_cast<const void*>(id), "timer"));
  }
  return true;
}

// --- Interceptor: thread lifecycle ------------------------------------------

std::uint64_t McRuntime::thread_spawning() {
  std::lock_guard<std::mutex> ml(model_m_);
  if (draining_) return 0;
  expected_checkins_++;
  return next_ticket_++;
}

void McRuntime::thread_begin(std::uint64_t ticket) {
  std::unique_lock<std::mutex> ml(model_m_);
  Task& t =
      register_task_locked(ticket, "T" + std::to_string(ticket), false);
  tls_task() = &t;
  expected_checkins_--;
  announce_and_park(ml, t, Task::Park::kStart);
}

void McRuntime::thread_end() {
  Task* t = self();
  if (t == nullptr) return;
  std::lock_guard<std::mutex> ml(model_m_);
  t->park = Task::Park::kFinished;
  if (running_ == t) {
    running_ = nullptr;
    finish_step_locked();
  }
  tls_task() = nullptr;
  ctrl_cv_.notify_all();
}

std::size_t McRuntime::delivery_choice(std::size_t /*count*/) {
  // SimNetwork-based scenarios are not explored yet; pinning the choice
  // to the earliest due message keeps any incidental SimNetwork traffic
  // deterministic while a run is active.
  return 0;
}

// --- external (harness) tasks -----------------------------------------------

void McRuntime::expect_adoption() {
  std::lock_guard<std::mutex> ml(model_m_);
  expected_adoptions_++;
}

void McRuntime::adopt_current_thread(std::uint64_t stable_id,
                                     const std::string& name) {
  std::unique_lock<std::mutex> ml(model_m_);
  expected_adoptions_--;
  if (draining_) {
    ctrl_cv_.notify_all();
    return;  // run unmanaged; real primitives take over
  }
  Task& t = register_task_locked(stable_id, name, true);
  tls_task() = &t;
  announce_and_park(ml, t, Task::Park::kStart);
}

void McRuntime::retire_current_thread() { thread_end(); }

void McRuntime::acquire_app_resource(std::uint64_t resource,
                                     const std::string& name) {
  Task* t = self();
  std::unique_lock<std::mutex> ml(model_m_);
  const std::uint64_t res = token_locked(
      kAppRes, reinterpret_cast<const void*>(resource), name);
  if (t == nullptr || draining_) return;
  t->res = res;
  announce_and_park(ml, *t, Task::Park::kLock);
}

void McRuntime::release_app_resource(std::uint64_t resource) {
  Task* t = self();
  std::unique_lock<std::mutex> ml(model_m_);
  const std::uint64_t res = token_locked(
      kAppRes, reinterpret_cast<const void*>(resource), "app");
  owners_[res] = 0;
  if (t == nullptr || draining_) return;
  touch_locked(res);  // release-type: no yield (see mutex_unlock)
}

// --- controller -------------------------------------------------------------

McRuntime::Quiescence McRuntime::wait_quiescent() {
  std::unique_lock<std::mutex> ml(model_m_);
  const bool quiet = ctrl_cv_.wait_for(ml, options_.quiescence_timeout,
                                       [this] { return quiescent_locked(); });
  return quiet ? Quiescence::kQuiet : Quiescence::kHang;
}

std::vector<ChoiceKey> McRuntime::enabled_choices() {
  std::lock_guard<std::mutex> ml(model_m_);
  std::vector<ChoiceKey> out;
  for (const auto& [id, task] : tasks_) {  // map order: sorted by task id
    switch (task->park) {
      case Task::Park::kStart:
      case Task::Park::kStep:
        out.push_back({ChoiceKey::Kind::kStep, id, 0});
        break;
      case Task::Park::kLock:
        if (owners_[task->res] == 0) {
          out.push_back({ChoiceKey::Kind::kStep, id, 0});
        }
        break;
      case Task::Park::kReacquire:
        if (owners_[task->mu] == 0) {
          out.push_back({ChoiceKey::Kind::kStep, id, 0});
        }
        break;
      case Task::Park::kCvWait:
        if (cv_tokens_[task->res] > 0) {
          out.push_back({ChoiceKey::Kind::kStep, id, 0});
        } else if (task->timed &&
                   timeout_firings_ < options_.max_timeout_firings) {
          out.push_back({ChoiceKey::Kind::kTimeout, id, 0});
        }
        break;
      case Task::Park::kRunnerIdle:
        for (const auto& [timer_id, fn] : pending_timers_) {
          out.push_back({ChoiceKey::Kind::kTimer, id, timer_id});
        }
        break;
      case Task::Park::kNone:
      case Task::Park::kFinished:
        break;
    }
  }
  return out;
}

bool McRuntime::timeouts_suppressed() {
  std::lock_guard<std::mutex> ml(model_m_);
  if (timeout_firings_ < options_.max_timeout_firings) return false;
  for (const auto& [id, task] : tasks_) {
    if (task->park == Task::Park::kCvWait && task->timed &&
        cv_tokens_[task->res] == 0) {
      return true;
    }
  }
  return false;
}

void McRuntime::grant(const ChoiceKey& choice, std::vector<ChoiceKey> enabled,
                      bool was_default) {
  std::lock_guard<std::mutex> ml(model_m_);
  const auto it = tasks_.find(choice.actor);
  if (it == tasks_.end()) fatal("grant of unknown task");
  Task& t = *it->second;
  StepInfo step;
  step.key = choice;
  step.enabled = std::move(enabled);
  step.was_default = was_default;

  const auto run = [&](Task& target) {
    current_step_ = std::move(step);
    step_open_ = true;
    running_ = &target;
    target.park = Task::Park::kNone;
    target.go = true;
    target.cv.notify_all();
  };

  switch (choice.kind) {
    case ChoiceKey::Kind::kTimer: {
      const auto timer = pending_timers_.find(choice.arg);
      if (timer == pending_timers_.end() ||
          t.park != Task::Park::kRunnerIdle) {
        fatal("grant of non-enabled timer choice");
      }
      runner_fn_ = std::move(timer->second);
      pending_timers_.erase(timer);
      step.footprint.add(token_locked(
          kTimerRes, reinterpret_cast<const void*>(choice.arg), "timer"));
      run(t);
      return;
    }
    case ChoiceKey::Kind::kTimeout: {
      if (t.park != Task::Park::kCvWait || !t.timed) {
        fatal("grant of non-enabled timeout choice");
      }
      timeout_firings_++;
      step.footprint.add(t.res);
      step.footprint.add(t.mu);
      t.park = Task::Park::kReacquire;
      t.wake_was_timeout = true;
      steps_.push_back(std::move(step));  // immediate: no thread runs
      return;
    }
    case ChoiceKey::Kind::kStep:
      switch (t.park) {
        case Task::Park::kStart:
        case Task::Park::kStep:
          run(t);
          return;
        case Task::Park::kLock:
          if (owners_[t.res] != 0) fatal("grant of contended lock choice");
          owners_[t.res] = t.id;
          step.footprint.add(t.res);
          run(t);
          return;
        case Task::Park::kReacquire:
          if (owners_[t.mu] != 0) fatal("grant of contended reacquire");
          owners_[t.mu] = t.id;
          step.footprint.add(t.mu);
          run(t);
          return;
        case Task::Park::kCvWait: {
          // Wake: consume a wake token from a contended notify_one
          // (deterministic wakes never park here — apply_notify_locked
          // moves them straight to kReacquire).
          if (cv_tokens_[t.res] > 0) {
            cv_tokens_[t.res]--;
          } else {
            fatal("grant of cv wake without a pending notify");
          }
          step.footprint.add(t.res);
          step.footprint.add(t.mu);
          t.park = Task::Park::kReacquire;
          t.wake_was_timeout = false;
          steps_.push_back(std::move(step));  // immediate: no thread runs
          return;
        }
        case Task::Park::kNone:
        case Task::Park::kRunnerIdle:
        case Task::Park::kFinished:
          fatal("grant of a task that is not at a steppable park");
      }
  }
}

std::vector<StepInfo> McRuntime::steps() {
  std::lock_guard<std::mutex> ml(model_m_);
  return steps_;
}

bool McRuntime::work_drained() {
  std::lock_guard<std::mutex> ml(model_m_);
  if (!pending_timers_.empty()) return false;
  for (const auto& [id, task] : tasks_) {
    switch (task->park) {
      case Task::Park::kCvWait:
      case Task::Park::kRunnerIdle:
      case Task::Park::kFinished:
        break;
      default:
        return false;
    }
  }
  return true;
}

Footprint McRuntime::last_footprint() {
  std::lock_guard<std::mutex> ml(model_m_);
  return steps_.empty() ? Footprint{} : steps_.back().footprint;
}

std::string McRuntime::dump_tasks() {
  std::lock_guard<std::mutex> ml(model_m_);
  static const char* park_names[] = {"running",   "start",  "step",
                                     "lock",      "cvwait", "reacquire",
                                     "runner-idle", "finished"};
  std::string out;
  for (const auto& [id, task] : tasks_) {
    out += "  task " + std::to_string(id) + " (" + task->name + "): " +
           park_names[static_cast<int>(task->park)];
    if (task->park == Task::Park::kLock ||
        task->park == Task::Park::kCvWait) {
      out += " on " + token_names_[task->res];
    }
    if (task->park == Task::Park::kReacquire) {
      out += " on " + token_names_[task->mu];
    }
    out += "\n";
  }
  return out;
}

void McRuntime::begin_drain() {
  std::lock_guard<std::mutex> ml(model_m_);
  if (draining_) return;
  draining_ = true;
  runner_exit_ = true;
  for (auto& [id, task] : tasks_) {
    if (task->park == Task::Park::kCvWait) task->wake_was_timeout = false;
    if (task->park != Task::Park::kNone &&
        task->park != Task::Park::kFinished) {
      task->go = true;
      task->cv.notify_all();
    }
  }
}

void McRuntime::shutdown() {
  if (runner_thread_.joinable()) runner_thread_.join();
}

void McRuntime::runner_loop() {
  std::unique_lock<std::mutex> ml(model_m_);
  Task& t = register_task_locked(1, "timer-runner", false);
  runner_task_ = &t;
  tls_task() = &t;
  for (;;) {
    announce_and_park(ml, t, Task::Park::kRunnerIdle);
    if (runner_exit_) break;
    std::function<void()> fn = std::move(runner_fn_);
    runner_fn_ = nullptr;
    ml.unlock();
    if (fn) fn();
    ml.lock();
  }
  t.park = Task::Park::kFinished;
  if (running_ == &t) {
    running_ = nullptr;
    finish_step_locked();
  }
  tls_task() = nullptr;
  ctrl_cv_.notify_all();
}

}  // namespace adets::mc
