// Shared value types of the adets-mc model checker.
//
// A *choice* is one scheduling decision the controller can make at a
// quiescent point: let a parked task take its next step, resolve a
// blocked timed wait as a timeout, or fire a virtualised timer.  Choice
// keys are stable across re-executions of the same prefix (task ids are
// assigned in spawn-ticket order, timer ids in creation order), which is
// what makes stateless replay work: a recorded key sequence re-selects
// the same transitions from scratch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace adets::mc {

struct ChoiceKey {
  enum class Kind : std::uint8_t {
    kStep = 0,     // parked task takes its next step (run/grant/wake/start)
    kTimeout = 1,  // resolve this task's timed wait as a timeout
    kTimer = 2,    // fire virtual timer `arg` on the timer-runner task
  };
  Kind kind = Kind::kStep;
  std::uint64_t actor = 0;  // task id taking the transition
  std::uint64_t arg = 0;    // timer id for kTimer, else 0

  friend bool operator==(const ChoiceKey&, const ChoiceKey&) = default;
  friend auto operator<=>(const ChoiceKey&, const ChoiceKey&) = default;
};

[[nodiscard]] std::string to_string(const ChoiceKey& key);
[[nodiscard]] std::optional<ChoiceKey> parse_choice(const std::string& line);

/// Resources one executed step touched, as opaque tokens (tagged mutex /
/// condvar / bus / app-lock identities).  Two steps of different actors
/// commute iff their footprints are disjoint; the explorer's sleep sets
/// and DPOR backtrack sets both key off this.
struct Footprint {
  std::vector<std::uint64_t> resources;

  void add(std::uint64_t resource) {
    if (std::find(resources.begin(), resources.end(), resource) ==
        resources.end()) {
      resources.push_back(resource);
    }
  }

  [[nodiscard]] bool conflicts(const Footprint& other) const {
    for (const std::uint64_t r : resources) {
      if (std::find(other.resources.begin(), other.resources.end(), r) !=
          other.resources.end()) {
        return true;
      }
    }
    return false;
  }
};

/// One executed transition plus the exploration metadata the explorer
/// needs to backtrack into this state later.
struct StepInfo {
  ChoiceKey key;
  Footprint footprint;
  std::vector<ChoiceKey> enabled;  // all enabled choices at the pre-state
  bool was_default = false;        // chosen == completion policy's pick
};

/// One property violation, with everything needed for a deterministic
/// report (no pointers, no wall-clock values).
struct Violation {
  std::string property;  // "grant-divergence", "state-divergence",
                         // "cross-schedule-divergence", "deadlock",
                         // "starvation", "hang"
  std::string detail;
};

/// Outcome of running one scenario execution under one schedule.
struct ExecutionResult {
  std::vector<StepInfo> steps;
  bool completed = false;   // all requests finished on every replica
  bool deadlock = false;    // quiescent, not done, nothing enabled
  bool bounded = false;     // abandoned by step/timeout-firing budget
  bool hang = false;        // quiescence watchdog tripped
  std::vector<Violation> violations;
  /// Realized total order of the event bus (ids + payload bytes); two
  /// executions with equal keys must produce equal outcomes.
  std::string order_key;
  /// Canonical rendering of the replicas' observable outcome (per-mutex
  /// grant projections, state traces, final blackboard) used for the
  /// cross-schedule determinism check.
  std::string outcome;
  /// Human-readable per-replica detail for violation reports.
  std::string report;
};

}  // namespace adets::mc
