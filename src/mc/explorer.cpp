#include "mc/explorer.hpp"

#include <chrono>
#include <map>
#include <set>
#include <utility>

namespace adets::mc {

namespace {

bool independent(const ChoiceKey& a, const Footprint& fa, const ChoiceKey& b,
                 const Footprint& fb) {
  return a.actor != b.actor && !fa.conflicts(fb);
}

/// One node of the persistent DFS path.  Fields other than `chosen` and
/// `footprint` survive truncation: re-running the same prefix reaches
/// the same state, so enabled/done/backtrack/sleep stay valid.
struct Frame {
  std::vector<ChoiceKey> enabled;
  std::map<ChoiceKey, Footprint> done;  // explored here, with footprints
  std::set<ChoiceKey> backtrack;        // DPOR-added (exhaustive mode)
  std::vector<std::pair<ChoiceKey, Footprint>> sleep;
  ChoiceKey chosen;
  Footprint footprint;
};

class Explorer {
 public:
  Explorer(const Scenario& scenario, const std::string& strategy,
           const ExploreOptions& options)
      : scenario_(scenario),
        strategy_(strategy),
        options_(options),
        bounded_mode_(options.preemption_bound >= 0),
        start_(std::chrono::steady_clock::now()) {}

  ExploreReport run() {
    ExploreReport report;
    report.strategy = strategy_;
    report.scenario = scenario_.name;

    ExecutionResult result = execute({}, report);
    absorb(result);
    while (true) {
      if (!result.violations.empty()) {
        minimize(result, report);
        return finish(report, /*exhausted=*/false);
      }
      if (budget_exceeded(report)) return finish(report, /*exhausted=*/false);
      SchedulePlan plan;
      if (!next_prefix(&plan)) return finish(report, /*exhausted=*/true);
      result = execute(plan, report);
      absorb(result);
    }
  }

 private:
  ExecutionResult execute(const SchedulePlan& plan, ExploreReport& report) {
    ExecutionResult result =
        run_execution(scenario_, strategy_, plan, options_.run);
    report.schedules++;
    if (result.completed) report.completed++;
    if (result.bounded) report.bounded++;
    if (options_.progress && report.schedules % 50 == 0) {
      options_.progress("  " + std::to_string(report.schedules) +
                        " schedules explored");
    }
    return result;
  }

  bool budget_exceeded(const ExploreReport& report) const {
    if (options_.max_schedules != 0 &&
        report.schedules >= options_.max_schedules) {
      return true;
    }
    if (options_.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      if (elapsed.count() >= options_.max_seconds) return true;
    }
    return false;
  }

  /// Folds an execution's steps into the persistent path: updates the
  /// shared prefix, appends fresh frames, recomputes sleep sets along
  /// the way, and (exhaustive mode) adds DPOR backtrack points.
  void absorb(const ExecutionResult& result) {
    const std::vector<StepInfo>& steps = result.steps;
    if (steps.size() < stack_.size()) stack_.resize(steps.size());
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (i == stack_.size()) {
        Frame frame;
        frame.enabled = steps[i].enabled;
        stack_.push_back(std::move(frame));
      }
      Frame& frame = stack_[i];
      frame.chosen = steps[i].key;
      frame.footprint = steps[i].footprint;
      frame.done[frame.chosen] = frame.footprint;
    }
    // Sleep sets: child sleep = {x in sleep(parent) + previously
    // explored at parent : independent of the parent's chosen step}.
    for (std::size_t i = 0; i + 1 < stack_.size(); ++i) {
      Frame& parent = stack_[i];
      Frame& child = stack_[i + 1];
      child.sleep.clear();
      const auto keep = [&](const ChoiceKey& key, const Footprint& fp) {
        if (independent(key, fp, parent.chosen, parent.footprint)) {
          child.sleep.emplace_back(key, fp);
        }
      };
      for (const auto& [key, fp] : parent.sleep) keep(key, fp);
      for (const auto& [key, fp] : parent.done) {
        if (!(key == parent.chosen)) keep(key, fp);
      }
    }
    if (!bounded_mode_) dpor_update(steps);
  }

  void dpor_update(const std::vector<StepInfo>& steps) {
    for (std::size_t j = 0; j < steps.size() && j < stack_.size(); ++j) {
      const StepInfo& step = steps[j];
      if (step.footprint.resources.empty()) continue;
      // Last earlier step of a different actor touching a shared
      // resource: that's where reordering could matter.
      for (std::size_t i = j; i-- > 0;) {
        const Frame& racer = stack_[i];
        if (racer.chosen.actor == step.key.actor) continue;
        if (!racer.footprint.conflicts(step.footprint)) continue;
        Frame& target = stack_[i];
        bool actor_enabled = false;
        for (const ChoiceKey& e : target.enabled) {
          if (e.actor == step.key.actor) {
            target.backtrack.insert(e);
            actor_enabled = true;
          }
        }
        if (!actor_enabled) {
          for (const ChoiceKey& e : target.enabled) target.backtrack.insert(e);
        }
        break;
      }
    }
  }

  /// Cumulative preemption count of the current path's first `depth`
  /// choices, per CHESS: switching away from an actor that still had an
  /// enabled choice costs one preemption.
  int preemptions_up_to(std::size_t depth) const {
    int count = 0;
    for (std::size_t i = 1; i < depth && i < stack_.size(); ++i) {
      const ChoiceKey& prev = stack_[i - 1].chosen;
      const ChoiceKey& cur = stack_[i].chosen;
      if (cur.actor == prev.actor) continue;
      for (const ChoiceKey& e : stack_[i].enabled) {
        if (e.actor == prev.actor) {
          count++;
          break;
        }
      }
    }
    return count;
  }

  bool is_preemption(std::size_t frame_index, const ChoiceKey& candidate) const {
    if (frame_index == 0) return false;
    const ChoiceKey& prev = stack_[frame_index - 1].chosen;
    if (candidate.actor == prev.actor) return false;
    for (const ChoiceKey& e : stack_[frame_index].enabled) {
      if (e.actor == prev.actor) return true;
    }
    return false;
  }

  /// Picks the deepest unexplored backtrack point and truncates the path
  /// to it.  Returns false when the search space is exhausted.
  bool next_prefix(SchedulePlan* plan) {
    for (std::size_t i = stack_.size(); i-- > 0;) {
      Frame& frame = stack_[i];
      const std::vector<ChoiceKey> candidates =
          bounded_mode_ ? frame.enabled
                        : std::vector<ChoiceKey>(frame.backtrack.begin(),
                                                 frame.backtrack.end());
      for (const ChoiceKey& c : candidates) {
        if (frame.done.count(c) != 0) continue;
        const Footprint* asleep = nullptr;
        for (const auto& [key, fp] : frame.sleep) {
          if (key == c) {
            asleep = &fp;
            break;
          }
        }
        if (asleep != nullptr) {
          // Provably redundant here; mark done (with its real footprint —
          // it must still wake descendants that conflict with it).
          frame.done[c] = *asleep;
          continue;
        }
        if (bounded_mode_) {
          const int total = preemptions_up_to(i) + (is_preemption(i, c) ? 1 : 0);
          if (total > options_.preemption_bound) continue;
        }
        plan->prefix.clear();
        for (std::size_t k = 0; k < i; ++k) {
          plan->prefix.push_back(stack_[k].chosen);
        }
        plan->prefix.push_back(c);
        // Sleep set in force while executing `c`: everything already
        // asleep at this frame plus every sibling explored before it.
        // The harness filters it against each executed step from here on.
        plan->sleep = frame.sleep;
        for (const auto& [key, fp] : frame.done) {
          plan->sleep.emplace_back(key, fp);
        }
        stack_.resize(i + 1);
        return true;
      }
    }
    return false;
  }

  /// Greedy delta-debugging over deviation points: find the shortest
  /// prefix of non-default choices that still reproduces a violation,
  /// letting the default policy complete the rest of the run.
  void minimize(const ExecutionResult& violating, ExploreReport& report) {
    std::vector<ChoiceKey> choices;
    std::vector<std::size_t> deviations;
    for (std::size_t i = 0; i < violating.steps.size(); ++i) {
      choices.push_back(violating.steps[i].key);
      if (!violating.steps[i].was_default) deviations.push_back(i);
    }
    report.found_violation = true;
    report.violations = violating.violations;
    report.witness = choices;
    report.witness_deviations = deviations.size();

    // Try keeping only the first j deviations, smallest j first; the
    // full deviation set (= the original run) is the implicit fallback.
    for (std::size_t j = 0; j < deviations.size(); ++j) {
      SchedulePlan plan;
      if (j > 0) {
        plan.prefix.assign(choices.begin(),
                           choices.begin() +
                               static_cast<std::ptrdiff_t>(deviations[j - 1] + 1));
      }
      const ExecutionResult candidate =
          run_execution(scenario_, strategy_, plan, options_.run);
      report.schedules++;
      if (candidate.violations.empty()) continue;
      report.violations = candidate.violations;
      report.witness.clear();
      report.witness_deviations = 0;
      for (const StepInfo& s : candidate.steps) {
        report.witness.push_back(s.key);
        if (!s.was_default) report.witness_deviations++;
      }
      break;
    }
  }

  ExploreReport finish(ExploreReport& report, bool exhausted) {
    report.exhausted = exhausted && !report.found_violation;
    std::string& out = report.report;
    out += "strategy " + strategy_ + ", scenario " + scenario_.name + ": " +
           std::to_string(report.schedules) + " schedules (" +
           std::to_string(report.completed) + " completed, " +
           std::to_string(report.bounded) + " budget-bounded)";
    out += bounded_mode_ ? ", preemption bound " +
                               std::to_string(options_.preemption_bound)
                         : ", exhaustive DPOR";
    out += report.exhausted ? ", space exhausted\n" : "\n";
    if (report.found_violation) {
      out += "VIOLATION";
      for (const Violation& v : report.violations) {
        out += " [" + v.property + "]";
      }
      out += ", minimized to " + std::to_string(report.witness_deviations) +
             " deviation(s) over " + std::to_string(report.witness.size()) +
             " steps\n";
      for (const Violation& v : report.violations) {
        out += "--- " + v.property + "\n" + v.detail;
        if (!v.detail.empty() && v.detail.back() != '\n') out += "\n";
      }
    } else {
      out += "no violations\n";
    }
    return report;
  }

  const Scenario& scenario_;
  const std::string strategy_;
  const ExploreOptions options_;
  const bool bounded_mode_;
  const std::chrono::steady_clock::time_point start_;
  std::vector<Frame> stack_;
};

}  // namespace

ExploreReport explore(const Scenario& scenario, const std::string& strategy,
                      const ExploreOptions& options) {
  Explorer explorer(scenario, strategy, options);
  return explorer.run();
}

ExecutionResult replay_trace(const Scenario& scenario,
                             const std::string& strategy,
                             const std::vector<ChoiceKey>& choices,
                             const RunOptions& options) {
  SchedulePlan plan;
  plan.prefix = choices;
  plan.strict_prefix = true;
  return run_execution(scenario, strategy, plan, options);
}

}  // namespace adets::mc
