// Scenario catalogue of the adets-mc model checker.
//
// A scenario is a small, fully synchronisation-driven workload: a fixed
// list of client requests plus one body function that every replica runs
// for each request (dispatched on the request id).  Bodies only interact
// with the world through McCtx — scheduler lock/unlock/wait/notify plus
// a traced per-replica blackboard — so the realised behaviour of an
// execution is exactly a function of the scheduling choices the checker
// makes, and two replicas (or two schedules with the same totally
// ordered event log) can be compared structurally.
//
// Discipline for bodies: trace()/get()/set() take the mutex id whose
// critical section the access belongs to and must only be called while
// that scheduler mutex is held.  Cross-replica comparison is done on the
// per-mutex projections (a truly multithreaded strategy may interleave
// *independent* critical sections differently in real time; the
// determinism contract only fixes the order within each mutex).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/serialization.hpp"
#include "lin/spec.hpp"

namespace adets::mc {

/// What a scenario body sees (implemented by the harness).
class McCtx {
 public:
  virtual ~McCtx() = default;

  [[nodiscard]] virtual std::uint64_t request_id() const = 0;
  [[nodiscard]] virtual int replica() const = 0;

  virtual void lock(std::uint64_t mutex) = 0;
  virtual void unlock(std::uint64_t mutex) = 0;
  /// Untimed wait; returns true (notified) by Java semantics.
  virtual bool wait(std::uint64_t mutex, std::uint64_t condvar) = 0;
  /// Timed wait; false means the wait resolved as a timeout.
  virtual bool wait_for(std::uint64_t mutex, std::uint64_t condvar,
                        common::Duration paper_timeout) = 0;
  virtual void notify_one(std::uint64_t mutex, std::uint64_t condvar) = 0;
  virtual void notify_all(std::uint64_t mutex, std::uint64_t condvar) = 0;

  /// Records a shared-state access in the critical section of `mutex`.
  virtual void trace(std::uint64_t mutex, const std::string& entry) = 0;
  /// Blackboard cell read/write, also guarded by `mutex` (and traced).
  [[nodiscard]] virtual std::int64_t get(std::uint64_t mutex,
                                         const std::string& key) = 0;
  virtual void set(std::uint64_t mutex, const std::string& key,
                   std::int64_t value) = 0;

  /// Records the completed operation this request implements (payloads
  /// in the wire encoding the scenario's `lin_spec` understands) for the
  /// per-schedule linearizability property.  MUST be called while still
  /// holding the mutex that guarded the operation's effect, so the
  /// recorded per-replica order is the effect order.
  virtual void record_op(const std::string& method, const common::Bytes& args,
                         const common::Bytes& result) = 0;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Capability gates: strategies lacking these skip the scenario.
  bool needs_condvars = false;
  bool needs_timed_wait = false;
  /// Only meaningful against the RacyScheduler test double.
  bool racy_only = false;
  /// Property 4: max number of other grants of the same mutex between a
  /// thread's lock attempt and its acquisition.
  int starvation_bound = 100;
  /// (request id, logical thread id) pairs seeded into the total order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> submissions;
  std::function<void(McCtx&)> body;
  /// When set, every execution additionally checks the operations the
  /// body record_op()s: each replica's local order must be a legal
  /// sequential execution, and the client-observable history (invokes
  /// concurrent at submission, responses = first replica completion)
  /// must be linearizable.
  std::shared_ptr<const lin::SequentialSpec> lin_spec;
};

[[nodiscard]] const std::vector<Scenario>& scenarios();
[[nodiscard]] const Scenario* find_scenario(const std::string& name);

}  // namespace adets::mc
