// McRuntime: the cooperative-scheduling core of adets-mc.
//
// One McRuntime instance serialises every *managed* thread of a scenario
// onto a single logical processor (CHESS lineage).  Managed threads are
// (a) scheduler worker threads spawned through SchedulerBase (registered
// via spawn tickets), (b) harness driver threads and RacyScheduler
// workers (adopted explicitly), and (c) the runtime's own timer-runner
// task that executes virtualised TimerService callbacks.  Each managed
// thread runs until its next interception point (common/mc_hooks.hpp),
// announces the operation it wants to perform, and parks; the controller
// — the unmanaged thread driving run_execution — waits until every
// managed thread is parked (quiescence), asks for the set of enabled
// choices, and grants exactly one.  Real primitive state stays
// authoritative throughout: a task really acquires a mutex only after
// the model granted it (so the acquisition cannot block), and really
// releases before the model learns of the release (so a freshly granted
// task never contends).
//
// The runtime is process-exclusive (it installs itself as the global
// mc-hook interceptor) and single-use: one instance drives one execution
// of one schedule, then is drained and destroyed.  Determinism across
// re-executions comes from stable identity assignment: task ids are
// spawn tickets drawn in program order, timer ids are creation-ordered,
// and resource tokens are first-touch-ordered.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mc_hooks.hpp"
#include "mc/model.hpp"

namespace adets::mc {

class McRuntime final : public mchook::Interceptor {
 public:
  struct Options {
    /// Watchdog: how long the controller waits for all managed threads
    /// to park before declaring the execution hung.
    std::chrono::milliseconds quiescence_timeout{10000};
    /// Per-execution cap on kTimeout choices (timed-wait expiries of
    /// common-level waits, e.g. the PDS idle-fill).  Prevents infinite
    /// artificial-request loops from unbounding the exploration tree.
    int max_timeout_firings = 2;
  };

  explicit McRuntime(Options options);
  ~McRuntime() override;

  McRuntime(const McRuntime&) = delete;
  McRuntime& operator=(const McRuntime&) = delete;

  // --- mchook::Interceptor (called from managed/unmanaged threads) --------
  bool mutex_lock(void* mutex, const char* name) override;
  bool mutex_unlock(void* mutex) override;
  bool mutex_try_lock(void* mutex, const char* name, bool* acquired) override;
  bool cv_wait(void* condvar, void* mutex, bool timed, bool* timed_out) override;
  bool cv_notify(void* condvar, bool all) override;
  bool timer_schedule(std::function<void()>* fn, std::uint64_t* id) override;
  bool timer_cancel(std::uint64_t id, bool* cancelled) override;
  std::uint64_t thread_spawning() override;
  void thread_begin(std::uint64_t ticket) override;
  void thread_end() override;
  std::size_t delivery_choice(std::size_t count) override;

  // --- controller API (the unmanaged thread driving the execution) --------
  enum class Quiescence { kQuiet, kHang };
  /// Blocks until every managed thread is parked and every announced
  /// spawn/adoption has checked in (or the watchdog fires).
  [[nodiscard]] Quiescence wait_quiescent();
  /// Enabled choices at the current (quiescent) state, in canonical
  /// (deterministic) order.  Call only while quiescent.
  [[nodiscard]] std::vector<ChoiceKey> enabled_choices();
  /// True when at least one timed wait is blocked only by the
  /// timeout-firing cap (distinguishes budget exhaustion from deadlock).
  [[nodiscard]] bool timeouts_suppressed();
  /// True when every managed task is idle (waiting on a condvar,
  /// finished, or the idle timer-runner) and no virtual timer is armed.
  /// Completion must wait for this: a task still holding or chasing a
  /// lock is outstanding work, and an armed timer WILL fire in real
  /// time, so its effects belong to every completed execution.  Call
  /// only while quiescent.
  [[nodiscard]] bool work_drained();
  /// Executes one enabled choice.  `enabled` is the snapshot the caller
  /// selected from; it is stored on the resulting step for the explorer.
  void grant(const ChoiceKey& choice, std::vector<ChoiceKey> enabled,
             bool was_default);
  /// All completed steps so far (footprints of steps whose task is still
  /// running are not included until the task parks again).
  [[nodiscard]] std::vector<StepInfo> steps();
  /// Footprint of the most recently completed step (empty before the
  /// first).  Call only while quiescent.
  [[nodiscard]] Footprint last_footprint();
  /// Diagnostic dump of task park states (deadlock/hang reports).
  [[nodiscard]] std::string dump_tasks();

  /// Releases every parked task into real-primitive mode; subsequent
  /// hook calls fall through.  Call before stopping schedulers.
  void begin_drain();
  /// Joins the timer-runner.  Call after the harness joined its threads.
  void shutdown();

  // --- managed-world helpers for the harness ------------------------------
  /// Announces that exactly one adopt_current_thread call is imminent
  /// (e.g. a RacyScheduler worker was just spawned by a delivery);
  /// quiescence waits for it.  Callable from any thread.
  void expect_adoption();
  /// Registers the calling (externally created) thread as a managed task
  /// with a caller-chosen stable id, and parks until first scheduled.
  void adopt_current_thread(std::uint64_t stable_id, const std::string& name);
  void retire_current_thread();
  /// Models an application-level lock for non-mc_explorable schedulers:
  /// parks until the model grants `resource` to the calling task.  The
  /// caller performs the real acquisition afterwards (uncontended by
  /// construction, since every acquirer routes through this).
  void acquire_app_resource(std::uint64_t resource, const std::string& name);
  void release_app_resource(std::uint64_t resource);
  /// Applies a condvar-notify effect from the (unmanaged) controller —
  /// used when the harness seeds the event bus while every task is
  /// parked.  `condvar` is the common::CondVar the tasks wait on.
  void post_notify(void* condvar, bool all);

 private:
  struct Task {
    std::uint64_t id = 0;
    std::string name;
    enum class Park {
      kNone,        // granted: executing real code
      kStart,       // at thread_begin/adoption, waiting for first grant
      kStep,        // at a generic continue point (post-unlock/notify/…)
      kLock,        // wants mutex `res`
      kCvWait,      // waiting on condvar `res`, guarding mutex `mu`
      kReacquire,   // woken from kCvWait, waiting to reacquire `mu`
      kRunnerIdle,  // the timer-runner, waiting for a timer to fire
      kFinished,
    };
    Park park = Park::kNone;
    std::uint64_t res = 0;
    std::uint64_t mu = 0;
    void* mu_ptr = nullptr;  // common::Mutex* to really relock after a wait
    bool timed = false;
    bool wake_was_timeout = false;  // how the last cv wake resolved
    bool external = false;          // adopted (not spawn-ticketed)
    std::condition_variable cv;     // parks on model_m_
    bool go = false;
  };

  enum ResourceKind { kMutexRes = 1, kCvRes = 2, kAppRes = 3, kTimerRes = 4 };

  std::uint64_t token_locked(ResourceKind kind, const void* ptr,
                             const std::string& name);
  Task* self() const { return tls_task(); }
  static Task*& tls_task();
  /// Completes the in-flight step (if any) and parks the calling task.
  /// Returns with model_m_ reacquired once the controller grants.
  void announce_and_park(std::unique_lock<std::mutex>& ml, Task& t,
                         Task::Park park);
  void finish_step_locked();
  void touch_locked(std::uint64_t resource);
  /// Applies a notify to condvar `cvres`.  Deterministic wakes collapse
  /// into the notifier's step (waiters move straight to kReacquire); a
  /// contended notify_one instead credits a wake token so which waiter
  /// wins stays a scheduling choice.
  void apply_notify_locked(std::uint64_t cvres, bool all);
  [[nodiscard]] bool quiescent_locked() const;
  void runner_loop();
  Task& register_task_locked(std::uint64_t id, const std::string& name,
                             bool external);

  const Options options_;

  // The runtime's own lock must be a raw std::mutex -- a common::Mutex
  // would recurse into the very mc hooks this class implements -- so
  // the guard facts below are declared with the compiler-invisible
  // ADETS_GUARDED_BY_STATIC and enforced by adets-sa instead of clang.
  mutable std::mutex model_m_;
  std::condition_variable ctrl_cv_;
  std::map<std::uint64_t, std::unique_ptr<Task>> tasks_
      ADETS_GUARDED_BY_STATIC(model_m_);
  Task* running_ ADETS_GUARDED_BY_STATIC(model_m_) = nullptr;
  int expected_checkins_ ADETS_GUARDED_BY_STATIC(model_m_) = 0;
  int expected_adoptions_ ADETS_GUARDED_BY_STATIC(model_m_) = 0;
  bool draining_ ADETS_GUARDED_BY_STATIC(model_m_) = false;

  // Model state.
  std::map<std::uint64_t, std::uint64_t> owners_
      ADETS_GUARDED_BY_STATIC(model_m_);  // mutex token -> task id (0 = free)
  std::map<std::uint64_t, int> cv_tokens_
      ADETS_GUARDED_BY_STATIC(model_m_);  // condvar token -> notify_one credits
  std::map<std::uint64_t, std::function<void()>> pending_timers_
      ADETS_GUARDED_BY_STATIC(model_m_);
  std::uint64_t next_timer_id_ ADETS_GUARDED_BY_STATIC(model_m_) =
      (1ULL << 62) + 1;
  int timeout_firings_ ADETS_GUARDED_BY_STATIC(model_m_) = 0;

  // Stable identity assignment.
  std::map<std::pair<int, const void*>, std::uint64_t> token_ids_
      ADETS_GUARDED_BY_STATIC(model_m_);
  std::map<std::uint64_t, std::string> token_names_
      ADETS_GUARDED_BY_STATIC(model_m_);
  std::map<std::string, int> name_counts_ ADETS_GUARDED_BY_STATIC(model_m_);
  std::uint64_t next_token_ ADETS_GUARDED_BY_STATIC(model_m_) = 1;
  std::uint64_t next_ticket_ ADETS_GUARDED_BY_STATIC(model_m_) =
      100;  // spawn-ticket task ids; 1..99 reserved

  // Step recording.
  bool step_open_ ADETS_GUARDED_BY_STATIC(model_m_) = false;
  StepInfo current_step_ ADETS_GUARDED_BY_STATIC(model_m_);
  std::vector<StepInfo> steps_ ADETS_GUARDED_BY_STATIC(model_m_);

  // Timer runner.
  Task* runner_task_ ADETS_GUARDED_BY_STATIC(model_m_) = nullptr;
  std::function<void()> runner_fn_ ADETS_GUARDED_BY_STATIC(model_m_);
  bool runner_exit_ ADETS_GUARDED_BY_STATIC(model_m_) = false;
  std::thread runner_thread_;
};

}  // namespace adets::mc
