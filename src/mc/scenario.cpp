#include "mc/scenario.hpp"

namespace adets::mc {

namespace {

// Three requests contending on two mutexes, with one nested hold.  The
// bread-and-butter bounded-exploration scenario: every strategy
// supports plain locks (exhaustive acceptance uses "locks2" below).
void locks_body(McCtx& ctx) {
  switch (ctx.request_id()) {
    case 1:
      ctx.lock(1);
      ctx.trace(1, "r1:a");
      ctx.lock(2);  // nested hold: 1 -> 2
      ctx.trace(2, "r1:b");
      ctx.set(2, "last2", 1);
      ctx.unlock(2);
      ctx.set(1, "last1", 1);
      ctx.unlock(1);
      break;
    case 2:
      ctx.lock(1);
      ctx.trace(1, "r2:a");
      ctx.set(1, "last1", 2);
      ctx.unlock(1);
      ctx.lock(2);
      ctx.trace(2, "r2:b");
      ctx.set(2, "last2", 2);
      ctx.unlock(2);
      break;
    case 3:
      ctx.lock(2);
      ctx.trace(2, "r3:a");
      ctx.set(2, "last2", 3);
      ctx.unlock(2);
      break;
    default:
      break;
  }
}

// Two requests contending on one mutex.  The smallest scenario with a
// real grant-order choice; its state space stays exhaustible even for
// the broadcast-heavy strategies (LSA couples the replicas at every
// grant announcement), so the exhaustive acceptance runs use this one.
void locks2_body(McCtx& ctx) {
  ctx.lock(1);
  ctx.trace(1, "r" + std::to_string(ctx.request_id()));
  ctx.set(1, "last", static_cast<std::int64_t>(ctx.request_id()));
  ctx.unlock(1);
}

// One request crossing two mutexes.  No lock contention, but for the
// communicating strategies this is the full protocol pipeline — leader
// grant recording, dynamic mutex-id binding, table broadcast, follower
// replay — under every delivery interleaving, and its state space stays
// exhaustible even for LSA (the acceptance target).
void single_body(McCtx& ctx) {
  ctx.lock(1);
  ctx.trace(1, "a");
  ctx.set(1, "x", 1);
  ctx.unlock(1);
  ctx.lock(2);
  ctx.trace(2, "b");
  ctx.set(2, "y", 2);
  ctx.unlock(2);
}

// Producer + two consumers on one condvar: explores wakeup order and
// lost-notify windows (a consumer arriving after the broadcast must
// still see the flag and skip the wait).
void condvar_body(McCtx& ctx) {
  switch (ctx.request_id()) {
    case 1:
    case 2:
      ctx.lock(1);
      while (ctx.get(1, "ready") == 0) {
        ctx.wait(1, 7);
      }
      ctx.set(1, "consumed",
              ctx.get(1, "consumed") + static_cast<std::int64_t>(ctx.request_id()));
      ctx.unlock(1);
      break;
    case 3:
      ctx.lock(1);
      ctx.set(1, "ready", 1);
      ctx.notify_all(1, 7);
      ctx.unlock(1);
      break;
    default:
      break;
  }
}

// A timed wait racing a notify_one.  Whether the wait resolves notified
// or timed out is a scheduling choice (the expiry is a totally ordered
// timeout event); both resolutions must be replica-deterministic.
void timeout_body(McCtx& ctx) {
  switch (ctx.request_id()) {
    case 1: {
      ctx.lock(1);
      const bool notified = ctx.wait_for(1, 7, common::paper_ms(5));
      ctx.trace(1, notified ? "r1:notified" : "r1:timeout");
      ctx.unlock(1);
      break;
    }
    case 2:
      ctx.lock(1);
      ctx.trace(1, "r2:signal");
      ctx.notify_one(1, 7);
      ctx.unlock(1);
      break;
    default:
      break;
  }
}

// Two requests writing under one lock — enough for the RacyScheduler to
// diverge: replicas grant the (real, unordered) lock in different
// real-time orders, so the per-mutex traces disagree.
void racy_locks_body(McCtx& ctx) {
  ctx.lock(1);
  ctx.trace(1, "r" + std::to_string(ctx.request_id()));
  ctx.set(1, "last", static_cast<std::int64_t>(ctx.request_id()));
  ctx.unlock(1);
}

// A single-key KV register on the blackboard (cell "k"; 0 = absent,
// else the stored integer), speaking the KvStore wire encoding so the
// recorded operations check against lin::KvSpec.  Two puts, a cas and a
// get contend on mutex 1; record_op is called inside the critical
// section so the per-replica op order is the effect order.
void kvreg_body(McCtx& ctx) {
  ctx.lock(1);
  const std::int64_t prev = ctx.get(1, "k");
  common::Writer args;
  common::Writer result;
  std::string method;
  switch (ctx.request_id()) {
    case 1:
    case 2: {
      method = "put";
      args.str("k");
      args.str(std::to_string(ctx.request_id()));
      result.boolean(prev != 0);
      ctx.set(1, "k", static_cast<std::int64_t>(ctx.request_id()));
      break;
    }
    case 3: {
      method = "cas";
      args.str("k");
      args.str("1");
      args.str("3");
      const bool success = prev == 1;
      result.boolean(success);
      if (success) ctx.set(1, "k", 3);
      break;
    }
    default: {
      method = "get";
      args.str("k");
      result.boolean(prev != 0);
      result.str(prev != 0 ? std::to_string(prev) : std::string());
      break;
    }
  }
  ctx.record_op(method, args.take(), result.take());
  ctx.unlock(1);
}

// Two fresh puts on the register.  Against the RacyScheduler the
// replicas grant the lock in different real-time orders, so the client
// (first-reply-wins) can observe *both* puts reporting existed=false —
// a lost update no linearization admits.  The negative control for the
// non-linearizable-client property.
void racy_kvreg_body(McCtx& ctx) {
  ctx.lock(1);
  const std::int64_t prev = ctx.get(1, "k");
  common::Writer args;
  common::Writer result;
  args.str("k");
  args.str(std::to_string(ctx.request_id()));
  result.boolean(prev != 0);
  ctx.set(1, "k", static_cast<std::int64_t>(ctx.request_id()));
  ctx.record_op("put", args.take(), result.take());
  ctx.unlock(1);
}

// Four requests arriving back-to-back, the delivery shape a flushed
// SeqBatch produces: the GCS hands the whole batch to on_deliver in one
// event and the replica runs the per-message callback with no gaps, so
// request starts are not separated by network interleavings.  Two
// contended mutexes give every strategy a real grant-order choice inside
// the burst; the checker's cross-replica grant-trace equality property
// then certifies that batched delivery cannot diverge the replicas.
void seqbatch_body(McCtx& ctx) {
  const std::uint64_t m = 1 + (ctx.request_id() % 2);
  ctx.lock(m);
  ctx.trace(m, "r" + std::to_string(ctx.request_id()));
  // One cell per mutex: the determinism contract only orders accesses
  // within a mutex, so a cell shared across mutexes would be racy.
  ctx.set(m, "last" + std::to_string(m), static_cast<std::int64_t>(ctx.request_id()));
  ctx.unlock(m);
}

std::vector<Scenario> build() {
  std::vector<Scenario> out;

  Scenario locks;
  locks.name = "locks";
  locks.description = "3 requests, 2 mutexes, one nested hold";
  locks.submissions = {{1, 1}, {2, 2}, {3, 3}};
  locks.body = locks_body;
  out.push_back(std::move(locks));

  Scenario locks2;
  locks2.name = "locks2";
  locks2.description = "2 requests on 1 mutex (exhaustive-friendly)";
  locks2.submissions = {{1, 1}, {2, 2}};
  locks2.body = locks2_body;
  out.push_back(std::move(locks2));

  Scenario single;
  single.name = "single";
  single.description = "1 request over 2 mutexes (exhaustive protocol scope)";
  single.submissions = {{1, 1}};
  single.body = single_body;
  out.push_back(std::move(single));

  Scenario condvar;
  condvar.name = "condvar";
  condvar.description = "producer + 2 consumers on one condvar";
  condvar.needs_condvars = true;
  condvar.submissions = {{1, 1}, {2, 2}, {3, 3}};
  condvar.body = condvar_body;
  out.push_back(std::move(condvar));

  Scenario timeout;
  timeout.name = "timeout";
  timeout.description = "timed wait racing a notify_one";
  timeout.needs_condvars = true;
  timeout.needs_timed_wait = true;
  timeout.submissions = {{1, 1}, {2, 2}};
  timeout.body = timeout_body;
  out.push_back(std::move(timeout));

  Scenario racy;
  racy.name = "racy_locks";
  racy.description = "2 requests on 1 mutex (RacyScheduler negative control)";
  racy.racy_only = true;
  racy.submissions = {{1, 1}, {2, 2}};
  racy.body = racy_locks_body;
  out.push_back(std::move(racy));

  Scenario seqbatch;
  seqbatch.name = "seqbatch";
  seqbatch.description = "4 requests delivered as one sequencer batch, 2 mutexes";
  seqbatch.submissions = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  seqbatch.body = seqbatch_body;
  out.push_back(std::move(seqbatch));

  Scenario kvreg;
  kvreg.name = "kvreg";
  kvreg.description = "KV register: 2 puts + cas + get, linearizability-checked";
  kvreg.submissions = {{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  kvreg.body = kvreg_body;
  kvreg.lin_spec = std::make_shared<lin::KvSpec>();
  out.push_back(std::move(kvreg));

  Scenario racy_kvreg;
  racy_kvreg.name = "racy_kvreg";
  racy_kvreg.description =
      "2 fresh puts on the register (lin negative control)";
  racy_kvreg.racy_only = true;
  racy_kvreg.submissions = {{1, 1}, {2, 2}};
  racy_kvreg.body = racy_kvreg_body;
  racy_kvreg.lin_spec = std::make_shared<lin::KvSpec>();
  out.push_back(std::move(racy_kvreg));

  return out;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = build();
  return all;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace adets::mc
