#include "mc/harness.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/mc_hooks.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"
#include "lin/checker.hpp"
#include "racy_scheduler.hpp"
#include "replication/audit.hpp"
#include "replication/statehash.hpp"
#include "sched/api.hpp"

namespace adets::mc {

namespace {

constexpr int kReplicas = 2;

std::optional<sched::SchedulerKind> kind_of(const std::string& strategy) {
  if (strategy == "seq") return sched::SchedulerKind::kSeq;
  if (strategy == "sl") return sched::SchedulerKind::kSl;
  if (strategy == "sat") return sched::SchedulerKind::kSat;
  if (strategy == "mat") return sched::SchedulerKind::kMat;
  if (strategy == "lsa") return sched::SchedulerKind::kLsa;
  if (strategy == "pds") return sched::SchedulerKind::kPds;
  return std::nullopt;
}

std::string hex(const common::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

struct BusEvent {
  enum class Kind { kRequest, kReply, kMsg };
  Kind kind = Kind::kRequest;
  sched::Request request;
  std::uint64_t nested = 0;
  common::NodeId sender;
  common::Bytes payload;

  [[nodiscard]] std::string render() const {
    switch (kind) {
      case Kind::kRequest:
        return "R " + std::to_string(request.id.value()) + " " +
               std::to_string(request.logical.value());
      case Kind::kReply:
        return "Y " + std::to_string(nested);
      case Kind::kMsg:
        return "M " + std::to_string(sender.value()) + " " + hex(payload);
    }
    return "?";
  }
};

class World;

class WorldEnv final : public sched::SchedulerEnv {
 public:
  WorldEnv(World& world, int replica) : world_(world), replica_(replica) {}
  void execute(const sched::Request& request) override;
  void broadcast(const common::Bytes& payload) override;
  [[nodiscard]] common::NodeId self() const override {
    return common::NodeId(static_cast<std::uint32_t>(replica_));
  }
  [[nodiscard]] std::vector<common::NodeId> view_members() const override {
    return {common::NodeId(0), common::NodeId(1)};
  }

 private:
  World& world_;
  int replica_;
};

class Ctx final : public McCtx {
 public:
  Ctx(World& world, int replica, std::uint64_t request)
      : world_(world), replica_(replica), request_(request) {}
  [[nodiscard]] std::uint64_t request_id() const override { return request_; }
  [[nodiscard]] int replica() const override { return replica_; }
  void lock(std::uint64_t mutex) override;
  void unlock(std::uint64_t mutex) override;
  bool wait(std::uint64_t mutex, std::uint64_t condvar) override;
  bool wait_for(std::uint64_t mutex, std::uint64_t condvar,
                common::Duration paper_timeout) override;
  void notify_one(std::uint64_t mutex, std::uint64_t condvar) override;
  void notify_all(std::uint64_t mutex, std::uint64_t condvar) override;
  void trace(std::uint64_t mutex, const std::string& entry) override;
  [[nodiscard]] std::int64_t get(std::uint64_t mutex,
                                 const std::string& key) override;
  void set(std::uint64_t mutex, const std::string& key,
           std::int64_t value) override;
  void record_op(const std::string& method, const common::Bytes& args,
                 const common::Bytes& result) override;

 private:
  World& world_;
  int replica_;
  std::uint64_t request_;
};

class World {
 public:
  World(const Scenario& scenario, const std::string& strategy,
        const RunOptions& options)
      : scenario_(scenario),
        strategy_(strategy),
        racy_(strategy == "racy"),
        options_(options),
        runtime_(options.runtime) {
    for (int r = 0; r < kReplicas; ++r) {
      if (racy_) {
        schedulers_.push_back(std::make_unique<testing::RacyScheduler>());
      } else {
        sched::SchedulerConfig config;
        config.decision_trace_capacity = 1 << 16;  // never wrap in a run
        config.pds_thread_pool = 2;
        schedulers_.push_back(sched::make_scheduler(*kind_of(strategy), config));
      }
      envs_.push_back(std::make_unique<WorldEnv>(*this, r));
      schedulers_.back()->set_trace(true);
    }
  }

  ExecutionResult run(const SchedulePlan& plan) {
    mchook::install(&runtime_);
    for (int r = 0; r < kReplicas; ++r) schedulers_[r]->start(*envs_[r]);
    for (int r = 0; r < kReplicas; ++r) {
      runtime_.expect_adoption();
      drivers_.emplace_back([this, r] { driver_loop(r); });
    }
    seed();
    ExecutionResult result = control_loop(plan);
    teardown();
    finalize(result);
    mchook::uninstall(&runtime_);
    return result;
  }

  // --- called by WorldEnv / Ctx (on managed threads) ----------------------

  void execute_body(int replica, const sched::Request& request) {
    if (request.kind != sched::RequestKind::kApplication) return;
    if (racy_) {
      // RacyScheduler workers are raw std::threads; manage them through
      // the adoption path with an id stable across re-executions.
      runtime_.adopt_current_thread(
          200 + static_cast<std::uint64_t>(replica) * 100 + request.id.value(),
          "w" + std::to_string(replica) + ":" +
              std::to_string(request.id.value()));
    }
    Ctx ctx(*this, replica, request.id.value());
    if (scenario_.body) scenario_.body(ctx);
    if (racy_) {
      // Count completion before retiring: RacyScheduler's own counter
      // only bumps after execute() returns, when this thread is already
      // unmanaged, so the controller could see every task parked while
      // the count still lags (a spurious deadlock).
      racy_completed_[replica].fetch_add(1, std::memory_order_release);
      runtime_.retire_current_thread();
    }
  }

  void broadcast_msg(int replica, const common::Bytes& payload) {
    BusEvent event;
    event.kind = BusEvent::Kind::kMsg;
    event.sender = common::NodeId(static_cast<std::uint32_t>(replica));
    event.payload = payload;
    publish(event);
  }

  void ctx_lock(int replica, std::uint64_t mutex) {
    if (racy_) {
      // RacyScheduler grants locks with raw primitives the hooks cannot
      // see; model the acquisition at harness level instead so its
      // real-time races become explorable choices.
      runtime_.acquire_app_resource(app_token(replica, mutex),
                                    "app:" + std::to_string(replica) + ":" +
                                        std::to_string(mutex));
    }
    std::uint64_t before = 0;
    {
      const std::lock_guard<std::mutex> guard(state_m_);
      before = acq_count_[replica][mutex];
    }
    schedulers_[replica]->lock(common::MutexId(mutex));
    {
      const std::lock_guard<std::mutex> guard(state_m_);
      std::uint64_t& count = acq_count_[replica][mutex];
      starvation_.push_back({replica, mutex, count - before});
      count++;
    }
  }

  void ctx_unlock(int replica, std::uint64_t mutex) {
    schedulers_[replica]->unlock(common::MutexId(mutex));
    if (racy_) runtime_.release_app_resource(app_token(replica, mutex));
  }

  bool ctx_wait(int replica, std::uint64_t mutex, std::uint64_t condvar,
                common::Duration timeout) {
    return schedulers_[replica]
        ->wait(common::MutexId(mutex), common::CondVarId(condvar), timeout)
        .notified;
  }

  void ctx_notify(int replica, std::uint64_t mutex, std::uint64_t condvar,
                  bool all) {
    if (all) {
      schedulers_[replica]->notify_all(common::MutexId(mutex),
                                       common::CondVarId(condvar));
    } else {
      schedulers_[replica]->notify_one(common::MutexId(mutex),
                                       common::CondVarId(condvar));
    }
  }

  void ctx_trace(int replica, std::uint64_t mutex, const std::string& entry) {
    const std::lock_guard<std::mutex> guard(state_m_);
    traces_[replica][mutex].push_back(entry);
  }

  std::int64_t ctx_get(int replica, const std::string& key) {
    const std::lock_guard<std::mutex> guard(state_m_);
    const auto it = blackboard_[replica].find(key);
    return it == blackboard_[replica].end() ? 0 : it->second;
  }

  void ctx_set(int replica, std::uint64_t mutex, const std::string& key,
               std::int64_t value) {
    const std::lock_guard<std::mutex> guard(state_m_);
    blackboard_[replica][key] = value;
    traces_[replica][mutex].push_back("set " + key + "=" +
                                      std::to_string(value));
  }

  void ctx_record(int replica, std::uint64_t request, const std::string& method,
                  const common::Bytes& args, const common::Bytes& result) {
    const std::lock_guard<std::mutex> guard(state_m_);
    // Per-replica history: instantaneous ops in effect order (the body
    // records while still holding the guarding mutex), so checking it
    // verifies the replica executed a legal *sequential* run.
    lin::Operation op;
    op.client = request;
    op.invoke_stamp = ++lin_stamp_;
    op.response_stamp = ++lin_stamp_;
    op.method = method;
    op.args = args;
    op.result = result;
    replica_ops_[replica].push_back(op);
    // Client-observable history: the first replica to finish a request
    // is the reply the client would see (first-reply-wins, exactly the
    // runtime::Client contract).  Invoke stamps were taken at seed time
    // — every request is outstanding from submission — so this history
    // is maximally concurrent and any violation found is real.
    const auto it = client_ops_.find(request);
    if (it != client_ops_.end() && it->second.pending()) {
      it->second.method = method;
      it->second.args = args;
      it->second.result = result;
      it->second.response_stamp =
          scenario_.submissions.size() + (++client_responses_);
    }
  }

 private:
  struct Starve {
    int replica;
    std::uint64_t mutex;
    std::uint64_t waited;  // other grants between attempt and acquisition
  };

  static std::uint64_t app_token(int replica, std::uint64_t mutex) {
    return (static_cast<std::uint64_t>(replica + 1) << 32) | mutex;
  }

  // Append an event to the canonical total order and every replica's
  // delivery queue.  The sequencer lock makes concurrent publications
  // atomic across queues, so all replicas see one global order.
  void publish(const BusEvent& event) {
    common::MutexLock seq(seq_mu_);
    order_log_ += event.render() + "\n";
    published_.fetch_add(1, std::memory_order_release);
    for (int r = 0; r < kReplicas; ++r) {
      {
        common::MutexLock lk(bus_[r].mu);
        bus_[r].queue.push_back(event);
      }
      bus_[r].cv.notify_all();
    }
  }

  void seed() {
    if (scenario_.lin_spec) {
      const std::lock_guard<std::mutex> guard(state_m_);
      std::uint64_t stamp = 0;
      for (const auto& [id, logical] : scenario_.submissions) {
        lin::Operation op;
        op.client = logical;
        op.invoke_stamp = ++stamp;  // responses start past submissions.size()
        client_ops_[id] = std::move(op);
      }
    }
    for (const auto& [id, logical] : scenario_.submissions) {
      BusEvent event;
      event.kind = BusEvent::Kind::kRequest;
      event.request.kind = sched::RequestKind::kApplication;
      event.request.id = common::RequestId(id);
      event.request.logical = common::LogicalThreadId(logical);
      publish(event);
    }
    // Wake drivers already model-parked on their bus condvars (the
    // notifies inside publish() were real-only: the controller is not a
    // managed task, so its hooks are pass-through).
    for (int r = 0; r < kReplicas; ++r) {
      runtime_.post_notify(&bus_[r].cv, /*all=*/true);
      bus_[r].cv.notify_all();
    }
  }

  void driver_loop(int replica) {
    runtime_.adopt_current_thread(2 + static_cast<std::uint64_t>(replica),
                                  "driver" + std::to_string(replica));
    DriverBus& bus = bus_[replica];
    {
      common::MutexLock lk(bus.mu);
      for (;;) {
        while (!bus.queue.empty()) {
          const BusEvent event = bus.queue.front();
          bus.queue.pop_front();
          lk.unlock();
          dispatch(replica, event);
          bus.delivered.fetch_add(1, std::memory_order_release);
          lk.lock();
        }
        if (bus.closed) break;
        bus.cv.wait(lk);
      }
    }
    runtime_.retire_current_thread();
  }

  void dispatch(int replica, const BusEvent& event) {
    sched::Scheduler& s = *schedulers_[replica];
    switch (event.kind) {
      case BusEvent::Kind::kRequest:
        // A racy on_request spawns an unmanaged worker that adopts
        // itself from execute_body; quiescence must wait for it.
        if (racy_) runtime_.expect_adoption();
        s.on_request(event.request);
        break;
      case BusEvent::Kind::kReply:
        s.on_reply(common::RequestId(event.nested));
        break;
      case BusEvent::Kind::kMsg:
        s.on_scheduler_message(event.sender, event.payload);
        break;
    }
  }

  [[nodiscard]] bool done() {
    for (int r = 0; r < kReplicas; ++r) {
      const std::uint64_t completed =
          racy_ ? racy_completed_[r].load(std::memory_order_acquire)
                : schedulers_[r]->completed_requests();
      if (completed < scenario_.submissions.size()) return false;
    }
    const std::size_t published = published_.load(std::memory_order_acquire);
    for (int r = 0; r < kReplicas; ++r) {
      if (bus_[r].delivered.load(std::memory_order_acquire) < published) {
        return false;
      }
    }
    // Internal work (timeout-broadcast threads chasing a mutex, armed
    // wait timers) must finish too: cutting it off mid-flight would
    // truncate one replica's grant trace and fake a divergence.
    return runtime_.work_drained();
  }

  static bool contains(const std::vector<ChoiceKey>& enabled,
                       const ChoiceKey& key) {
    for (const ChoiceKey& e : enabled) {
      if (e == key) return true;
    }
    return false;
  }

  using SleepSet = std::vector<std::pair<ChoiceKey, Footprint>>;

  static bool sleeping(const SleepSet& sleep, const ChoiceKey& key) {
    for (const auto& [k, fp] : sleep) {
      if (k == key) return true;
    }
    return false;
  }

  static ChoiceKey pick_default(const std::vector<ChoiceKey>& enabled,
                                const std::optional<ChoiceKey>& prev,
                                const SleepSet& sleep) {
    // Fewest-context-switches completion policy: keep the previous actor
    // running while it has an enabled choice, else take the first
    // plain step, else the first choice (timeouts/timers last) — always
    // skipping sleeping choices (interleavings the explorer has already
    // covered); fall back to the front only if everything sleeps.
    if (prev) {
      for (const ChoiceKey& e : enabled) {
        if (e.actor == prev->actor && !sleeping(sleep, e)) return e;
      }
    }
    for (const ChoiceKey& e : enabled) {
      if (e.kind == ChoiceKey::Kind::kStep && !sleeping(sleep, e)) return e;
    }
    for (const ChoiceKey& e : enabled) {
      if (!sleeping(sleep, e)) return e;
    }
    return enabled.front();
  }

  ExecutionResult control_loop(const SchedulePlan& plan) {
    ExecutionResult result;
    std::optional<ChoiceKey> prev;
    // Sleep set in force for the current step (active from the last
    // prefix step on): drop members that conflict with each executed
    // step, so the default completion never replays an interleaving the
    // explorer already covered.
    SleepSet sleep = plan.sleep;
    const std::size_t sleep_from =
        plan.prefix.empty() ? 0 : plan.prefix.size() - 1;
    for (std::size_t step = 0;; ++step) {
      if (runtime_.wait_quiescent() == McRuntime::Quiescence::kHang) {
        result.hang = true;
        result.violations.push_back(
            {"hang", "quiescence watchdog fired at step " +
                         std::to_string(step) + "\n" + runtime_.dump_tasks()});
        break;
      }
      if (step > sleep_from && prev && !sleep.empty()) {
        const Footprint last = runtime_.last_footprint();
        SleepSet kept;
        for (auto& entry : sleep) {
          if (entry.first.actor != prev->actor &&
              !entry.second.conflicts(last)) {
            kept.push_back(std::move(entry));
          }
        }
        sleep = std::move(kept);
      }
      if (done()) {
        result.completed = true;
        break;
      }
      const std::vector<ChoiceKey> enabled = runtime_.enabled_choices();
      if (enabled.empty()) {
        if (runtime_.timeouts_suppressed()) {
          result.bounded = true;  // budget, not a bug
        } else {
          result.deadlock = true;
          result.violations.push_back(
              {"deadlock", "no enabled choice before completion\n" +
                               runtime_.dump_tasks()});
        }
        break;
      }
      if (step >= options_.max_steps) {
        result.bounded = true;
        break;
      }
      const ChoiceKey def = pick_default(
          enabled, prev, step >= sleep_from ? sleep : SleepSet{});
      ChoiceKey choice = def;
      if (step < plan.prefix.size()) {
        if (contains(enabled, plan.prefix[step])) {
          choice = plan.prefix[step];
        } else if (plan.strict_prefix) {
          result.violations.push_back(
              {"replay-divergence",
               "step " + std::to_string(step) + ": recorded choice " +
                   to_string(plan.prefix[step]) +
                   " is not enabled; enabled:\n" + runtime_.dump_tasks()});
          break;
        }
      } else if (const auto it = plan.forced.find(step);
                 it != plan.forced.end() && contains(enabled, it->second)) {
        choice = it->second;
      }
      prev = choice;
      runtime_.grant(choice, enabled, choice == def);
    }
    result.steps = runtime_.steps();
    return result;
  }

  void teardown() {
    runtime_.begin_drain();
    for (int r = 0; r < kReplicas; ++r) {
      {
        common::MutexLock lk(bus_[r].mu);
        bus_[r].closed = true;
      }
      bus_[r].cv.notify_all();
    }
    for (std::thread& d : drivers_) {
      if (d.joinable()) d.join();
    }
    for (const auto& s : schedulers_) s->stop();
    runtime_.shutdown();
  }

  [[nodiscard]] static std::string render_projection(
      const std::map<std::uint64_t, std::vector<std::uint64_t>>& projection) {
    std::string out;
    for (const auto& [mutex, grantees] : projection) {
      out += "m" + std::to_string(mutex) + ":";
      for (const std::uint64_t g : grantees) out += " " + std::to_string(g);
      out += "\n";
    }
    return out;
  }

  [[nodiscard]] std::string render_state(int replica) const {
    std::string out;
    for (const auto& [mutex, entries] : traces_[replica]) {
      out += "m" + std::to_string(mutex) + ":";
      for (const std::string& e : entries) out += " [" + e + "]";
      out += "\n";
    }
    for (const auto& [key, value] : blackboard_[replica]) {
      out += key + "=" + std::to_string(value) + "\n";
    }
    return out;
  }

  [[nodiscard]] std::uint64_t state_hash(int replica) const {
    repl::StateHash h;
    for (const auto& [mutex, entries] : traces_[replica]) {
      h.mix(mutex);
      h.mix_range(entries);
    }
    for (const auto& [key, value] : blackboard_[replica]) {
      h.mix(key);
      h.mix(value);
    }
    return h.digest();
  }

  void finalize(ExecutionResult& result) {
    {
      common::MutexLock lk(seq_mu_);
      result.order_key = order_log_;
    }
    if (!result.completed) return;

    // Property 1: identical per-mutex grant projections (the cross-mutex
    // interleaving is legitimately free for truly multithreaded
    // strategies; within a mutex the order is the contract).
    std::array<std::map<std::uint64_t, std::vector<std::uint64_t>>, kReplicas>
        projections;
    for (int r = 0; r < kReplicas; ++r) {
      projections[r] = repl::per_mutex_decisions(schedulers_[r]->decision_trace());
    }
    if (projections[0] != projections[1]) {
      result.violations.push_back(
          {"grant-divergence", "replica 0:\n" + render_projection(projections[0]) +
                                   "replica 1:\n" + render_projection(projections[1])});
    }

    // Property 2 (within the execution): identical traced state and
    // quiescent state hashes.
    const std::uint64_t hash0 = state_hash(0);
    const std::uint64_t hash1 = state_hash(1);
    if (traces_[0] != traces_[1] || blackboard_[0] != blackboard_[1] ||
        hash0 != hash1) {
      result.violations.push_back(
          {"state-divergence",
           "hashes " + std::to_string(hash0) + " vs " + std::to_string(hash1) +
               "\nreplica 0:\n" + render_state(0) + "replica 1:\n" +
               render_state(1)});
    }

    // Per-schedule linearizability property (scenarios with a lin_spec):
    // each replica's local op order must be a legal sequential
    // execution, and the merged first-reply history must be
    // linearizable.  Not folded into `outcome`: which replica replies
    // first is legitimate real-time nondeterminism, and outcome feeds
    // the cross-schedule equal-order-implies-equal-outcome property.
    if (scenario_.lin_spec) {
      const lin::SequentialSpec& spec = *scenario_.lin_spec;
      for (int r = 0; r < kReplicas; ++r) {
        lin::History local;
        local.ops = replica_ops_[r];
        const lin::CheckResult check = lin::check_history(local, spec);
        if (!check.linearizable && !check.exhausted_budget) {
          result.violations.push_back(
              {"non-linearizable-replica" + std::to_string(r),
               check.explanation});
        }
      }
      lin::History merged;
      for (const auto& [id, op] : client_ops_) merged.ops.push_back(op);
      const lin::CheckResult check = lin::check_history(merged, spec);
      if (!check.linearizable && !check.exhausted_budget) {
        result.violations.push_back({"non-linearizable-client",
                                     check.explanation});
      }
    }

    // Property 4: starvation bound on lock acquisitions.
    for (const Starve& s : starvation_) {
      if (s.waited > static_cast<std::uint64_t>(scenario_.starvation_bound)) {
        result.violations.push_back(
            {"starvation", "replica " + std::to_string(s.replica) + " mutex " +
                               std::to_string(s.mutex) + ": " +
                               std::to_string(s.waited) +
                               " other grants before acquisition (bound " +
                               std::to_string(scenario_.starvation_bound) + ")"});
      }
    }

    result.outcome = "grants:\n" + render_projection(projections[0]) +
                     "state:\n" + render_state(0) +
                     "hash: " + std::to_string(hash0) + "\n";
    result.report = "replica 0 grants:\n" + render_projection(projections[0]) +
                    "replica 1 grants:\n" + render_projection(projections[1]) +
                    "replica 0 state:\n" + render_state(0) +
                    "replica 1 state:\n" + render_state(1);
  }

  const Scenario& scenario_;
  const std::string strategy_;
  const bool racy_;
  const RunOptions options_;
  // adets-sa:allow(unguarded-field) McRuntime synchronizes itself (model_m_)
  McRuntime runtime_;

  // The emulated total-order event bus.  A sequencer lock serialises
  // publications and owns the canonical order; each replica drains its
  // own queue, so the two drivers never contend with each other and the
  // replicas only couple at publication points — which is what lets
  // DPOR factor the schedule space per replica.
  struct DriverBus {
    common::Mutex mu{"mc::bus.q"};
    common::CondVar cv;
    std::deque<BusEvent> queue ADETS_GUARDED_BY(mu);
    bool closed ADETS_GUARDED_BY(mu) = false;
    std::atomic<std::size_t> delivered{0};
  };
  common::Mutex seq_mu_{"mc::bus.seq"};
  std::string order_log_ ADETS_GUARDED_BY(seq_mu_);
  std::atomic<std::size_t> published_{0};
  // adets-sa:allow(unguarded-field) DriverBus entries synchronize themselves
  std::array<DriverBus, kReplicas> bus_;

  // Populated in run() before the driver threads start, then only the
  // pointees (which synchronize themselves) are touched.
  // adets-sa:allow(unguarded-field) written only in run(), before drivers
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers_;
  // adets-sa:allow(unguarded-field) written only in run(), before drivers
  std::vector<std::unique_ptr<WorldEnv>> envs_;
  std::vector<std::thread> drivers_;
  // Racy-path completion counts, bumped while the worker is still
  // managed (see execute_body) so done() never races the model state.
  std::array<std::atomic<std::uint64_t>, kReplicas> racy_completed_{};

  // Harness-internal bookkeeping.  Deliberately a raw std::mutex: this
  // state is not part of the modelled world (only one managed task runs
  // at a time, so there is never contention), and modelling it would
  // pollute the choice space with harness steps.
  std::mutex state_m_;
  std::array<std::map<std::uint64_t, std::vector<std::string>>, kReplicas>
      traces_ ADETS_GUARDED_BY_STATIC(state_m_);
  std::array<std::map<std::string, std::int64_t>, kReplicas> blackboard_
      ADETS_GUARDED_BY_STATIC(state_m_);
  std::array<std::map<std::uint64_t, std::uint64_t>, kReplicas> acq_count_
      ADETS_GUARDED_BY_STATIC(state_m_);
  std::vector<Starve> starvation_ ADETS_GUARDED_BY_STATIC(state_m_);
  // Linearizability recording (scenarios with a lin_spec).  client_ops_
  // is keyed by request id.
  std::uint64_t lin_stamp_ ADETS_GUARDED_BY_STATIC(state_m_) = 0;
  std::uint64_t client_responses_ ADETS_GUARDED_BY_STATIC(state_m_) = 0;
  std::array<std::vector<lin::Operation>, kReplicas> replica_ops_
      ADETS_GUARDED_BY_STATIC(state_m_);
  std::map<std::uint64_t, lin::Operation> client_ops_
      ADETS_GUARDED_BY_STATIC(state_m_);
};

void WorldEnv::execute(const sched::Request& request) {
  world_.execute_body(replica_, request);
}

void WorldEnv::broadcast(const common::Bytes& payload) {
  world_.broadcast_msg(replica_, payload);
}

void Ctx::lock(std::uint64_t mutex) { world_.ctx_lock(replica_, mutex); }
void Ctx::unlock(std::uint64_t mutex) { world_.ctx_unlock(replica_, mutex); }
bool Ctx::wait(std::uint64_t mutex, std::uint64_t condvar) {
  return world_.ctx_wait(replica_, mutex, condvar, common::Duration::zero());
}
bool Ctx::wait_for(std::uint64_t mutex, std::uint64_t condvar,
                   common::Duration paper_timeout) {
  return world_.ctx_wait(replica_, mutex, condvar, paper_timeout);
}
void Ctx::notify_one(std::uint64_t mutex, std::uint64_t condvar) {
  world_.ctx_notify(replica_, mutex, condvar, /*all=*/false);
}
void Ctx::notify_all(std::uint64_t mutex, std::uint64_t condvar) {
  world_.ctx_notify(replica_, mutex, condvar, /*all=*/true);
}
void Ctx::trace(std::uint64_t mutex, const std::string& entry) {
  world_.ctx_trace(replica_, mutex, entry);
}
std::int64_t Ctx::get(std::uint64_t mutex, const std::string& key) {
  (void)mutex;
  return world_.ctx_get(replica_, key);
}
void Ctx::set(std::uint64_t mutex, const std::string& key, std::int64_t value) {
  world_.ctx_set(replica_, mutex, key, value);
}
void Ctx::record_op(const std::string& method, const common::Bytes& args,
                    const common::Bytes& result) {
  world_.ctx_record(replica_, request_, method, args, result);
}

}  // namespace

const std::vector<std::string>& known_strategies() {
  static const std::vector<std::string> all = {"seq", "sl",  "sat", "mat",
                                               "lsa", "pds", "racy"};
  return all;
}

bool strategy_supports(const std::string& strategy, const Scenario& scenario) {
  if (strategy == "racy") {
    // The racy double has no deterministic timeout events; only the
    // lock-level scenarios are meaningful against it.
    return scenario.racy_only;
  }
  if (scenario.racy_only) return false;
  const auto kind = kind_of(strategy);
  if (!kind) return false;
  const auto caps = sched::make_scheduler(*kind)->capabilities();
  if (!caps.mc_explorable) return false;
  if (scenario.needs_condvars && !caps.condition_variables) return false;
  if (scenario.needs_timed_wait && !caps.timed_wait) return false;
  return true;
}

ExecutionResult run_execution(const Scenario& scenario,
                              const std::string& strategy,
                              const SchedulePlan& plan,
                              const RunOptions& options) {
  World world(scenario, strategy, options);
  return world.run(plan);
}

}  // namespace adets::mc
