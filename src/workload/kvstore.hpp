// A replicated key-value store: the kind of service object the paper's
// middleware targets, with fine-grained per-bucket locking, blocking
// "watch" reads coordinated through condition variables, and
// compare-and-swap — all through the deterministic scheduler, so every
// replica holds the same map and resolves every watch identically.
//
// Methods (arguments via Writer/Reader, strings length-prefixed):
//   "put"        (key, value)                -> previous-exists flag
//   "get"        (key)                       -> (exists, value)
//   "remove"     (key)                       -> existed flag
//   "cas"        (key, expected, value)      -> success flag
//   "watch"      (key, timeout_paper_ms)     -> (changed, value); blocks
//                until the key changes (put/remove/cas) or the bounded
//                wait times out — condition variable per bucket.
//   "size"       ()                          -> number of keys
//
// Every method is implemented by a private handler carrying an
// ADETS_CONFLICT / ADETS_READS / ADETS_WRITES contract (checked
// transitively by tools/adets-sa pass 5, exported with --conflicts):
// two invocations conflict iff they agree on every dimension, so
// key-disjoint operations are safe to schedule early (ROADMAP seventh
// strategy), while "size" conflicts with everything.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/annotations.hpp"
#include "runtime/context.hpp"
#include "runtime/object.hpp"

namespace adets::workload {

class KvStore : public runtime::ReplicatedObject {
 public:
  explicit KvStore(std::uint32_t buckets = 8) : buckets_(buckets) {}

  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

  /// Marshalling helpers for clients.
  static common::Bytes pack_put(const std::string& key, const std::string& value);
  static common::Bytes pack_key(const std::string& key);
  static common::Bytes pack_cas(const std::string& key, const std::string& expected,
                                const std::string& value);
  static common::Bytes pack_watch(const std::string& key, std::uint64_t timeout_paper_ms);

 private:
  common::Bytes do_put(const std::string& key, const std::string& value,
                       runtime::SyncContext& ctx)
      ADETS_CONFLICT(key) ADETS_WRITES(data_, versions_);
  common::Bytes do_get(const std::string& key, runtime::SyncContext& ctx)
      ADETS_CONFLICT(key) ADETS_READS(data_);
  common::Bytes do_remove(const std::string& key, runtime::SyncContext& ctx)
      ADETS_CONFLICT(key) ADETS_WRITES(data_, versions_);
  // cas mutates through a map iterator (lexically a read of data_), so
  // data_ is over-declared as written — which it is on the success path.
  common::Bytes do_cas(const std::string& key, const std::string& expected,
                       const std::string& value, runtime::SyncContext& ctx)
      ADETS_CONFLICT(key) ADETS_WRITES(data_, versions_);
  // versions_[key] may default-insert the key's counter, hence WRITES.
  common::Bytes do_watch(const std::string& key, common::Duration timeout,
                         runtime::SyncContext& ctx)
      ADETS_CONFLICT(key) ADETS_READS(data_) ADETS_WRITES(versions_);
  common::Bytes do_size(runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_READS(data_);

  [[nodiscard]] common::MutexId bucket_mutex(const std::string& key) const;
  [[nodiscard]] common::CondVarId bucket_condvar(const std::string& key) const;
  void touch(const std::string& key, runtime::SyncContext& ctx);

  const std::uint32_t buckets_;  // configuration, not replicated state
  std::map<std::string, std::string> data_;      // ordered: hash stability
  std::map<std::string, std::uint64_t> versions_;  // bumped on every change
};

}  // namespace adets::workload
