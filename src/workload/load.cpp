#include "workload/load.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "workload/kvstore.hpp"

namespace adets::workload {

namespace {

void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t ns_since_epoch(common::TimePoint t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch())
      .count();
}

/// One logical closed-loop session.  Only ever touched by one thread at
/// a time: the main thread for the first issue, then whichever delivery
/// thread runs the completion callback (the closed loop guarantees at
/// most one outstanding request, and the client-stub mutex provides the
/// happens-before edge between an issue and its completion).
struct LogicalClient {
  common::Rng rng{1};
  runtime::Client* connection = nullptr;
  int issued = 0;  // warmup + measured requests issued so far
  common::TimePoint issue_time{};
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

LoadResult run_load(const LoadConfig& config) {
  LoadResult result;
  const int n = config.logical_clients;
  const int warmup = config.warmup_per_client;
  const int measured = config.requests_per_client;
  const int per_client = warmup + measured;
  if (n <= 0 || measured <= 0 || config.connections <= 0) return result;

  // Driver state is declared before the cluster so delivery-thread
  // callbacks (which die with the cluster) can never outlive it.
  std::vector<LogicalClient> clients(static_cast<std::size_t>(n));
  // Disjoint per-(client, request) slots — callbacks write lock-free.
  std::vector<double> latency_ms(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(measured), -1.0);
  std::atomic<bool> stopping{false};
  std::atomic<std::int64_t> first_issue_ns{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> last_done_ns{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  int finished_clients = 0;
  std::function<void(int)> issue;

  runtime::Cluster cluster(config.cluster);
  sched::SchedulerConfig sched_config;
  if (config.kind == sched::SchedulerKind::kPds) {
    // The paper sizes the PDS pool to the client count; with thousands
    // of logical clients that would be thousands of OS threads per
    // replica, so the pool is capped and excess requests queue.
    sched_config.pds_thread_pool =
        static_cast<std::size_t>(std::min(n, 64));
  }
  const common::GroupId group = cluster.create_group(
      config.replicas, config.kind, [] { return std::make_unique<KvStore>(); },
      sched_config);
  for (int c = 0; c < config.connections; ++c) {
    runtime::Client& connection = cluster.create_client();
    for (int i = c; i < n; i += config.connections) {
      clients[static_cast<std::size_t>(i)].connection = &connection;
    }
  }
  for (int i = 0; i < n; ++i) {
    clients[static_cast<std::size_t>(i)].rng =
        common::Rng(config.seed, static_cast<std::uint64_t>(i) + 1);
  }

  issue = [&](int i) {
    LogicalClient& lc = clients[static_cast<std::size_t>(i)];
    const int idx = lc.issued++;
    const bool timed = idx >= warmup;
    const bool is_put = lc.rng.uniform_real(0.0, 1.0) < config.put_ratio;
    const std::string key =
        "k" + std::to_string(lc.rng.uniform(
                  0, static_cast<std::uint64_t>(config.key_space) - 1));
    common::Bytes args;
    if (is_put) {
      args = KvStore::pack_put(
          key, std::string(static_cast<std::size_t>(config.value_bytes),
                           static_cast<char>('a' + idx % 26)));
    } else {
      args = KvStore::pack_key(key);
    }
    if (timed) {
      lc.issue_time = common::Clock::now();
      atomic_min(first_issue_ns, ns_since_epoch(lc.issue_time));
    }
    lc.connection->invoke_async(
        group, is_put ? "put" : "get", args, [&, i, idx, timed](common::Bytes) {
          LogicalClient& me = clients[static_cast<std::size_t>(i)];
          if (timed) {
            const auto now = common::Clock::now();
            const double real_ms =
                static_cast<double>((now - me.issue_time).count()) / 1e6;
            latency_ms[static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(measured) +
                       static_cast<std::size_t>(idx - warmup)] =
                real_ms / common::Clock::scale();
            atomic_max(last_done_ns, ns_since_epoch(now));
          }
          if (!stopping.load(std::memory_order_relaxed) && me.issued < per_client) {
            issue(i);
            return;
          }
          {
            const std::lock_guard<std::mutex> guard(done_mutex);
            ++finished_clients;
          }
          done_cv.notify_one();
        });
  };

  for (int i = 0; i < n; ++i) issue(i);

  {
    std::unique_lock<std::mutex> lock(done_mutex);
    result.completed = done_cv.wait_for(lock, config.deadline, [&] {
      return finished_clients >= n;
    });
  }
  stopping.store(true, std::memory_order_relaxed);

  if (result.completed) {
    const auto total = static_cast<std::uint64_t>(n) *
                       static_cast<std::uint64_t>(per_client);
    const bool drained =
        cluster.wait_drained(group, total, std::chrono::seconds(60));
    const auto hashes = cluster.state_hashes(group);
    result.converged = drained && !hashes.empty() &&
                       std::all_of(hashes.begin(), hashes.end(),
                                   [&](std::uint64_t h) { return h == hashes[0]; });
  }
  const auto net = cluster.network().stats();
  result.messages_sent = net.messages_sent;
  result.bytes_sent = net.bytes_sent;
  // Quiesce delivery threads before reading the latency slots: after
  // stop() no callback can be mid-write.
  cluster.stop();

  std::vector<double> samples;
  samples.reserve(latency_ms.size());
  for (const double ms : latency_ms) {
    if (ms >= 0.0) samples.push_back(ms);
  }
  std::sort(samples.begin(), samples.end());
  result.invocations = samples.size();
  if (!samples.empty()) {
    double sum = 0.0;
    for (const double ms : samples) sum += ms;
    result.mean_ms = sum / static_cast<double>(samples.size());
    result.p50_ms = percentile(samples, 0.50);
    result.p90_ms = percentile(samples, 0.90);
    result.p99_ms = percentile(samples, 0.99);
    result.max_ms = samples.back();
    const double real_s =
        static_cast<double>(last_done_ns.load() - first_issue_ns.load()) / 1e9;
    result.duration_s = real_s / common::Clock::scale();
    if (result.duration_s > 0.0) {
      result.throughput_rps =
          static_cast<double>(result.invocations) / result.duration_s;
    }
  }
  return result;
}

}  // namespace adets::workload
