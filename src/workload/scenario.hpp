// Fault-injection scenario runner.
//
// Executes one canonical seeded KvStore workload against a replica
// group running an arbitrary scheduler — by SchedulerKind or through a
// custom SchedulerFactory — under a transport::FaultPlan, then audits
// the group for divergence.  This is the harness the fault-injection
// and divergence-audit tests are built on, and the convergence gate
// later performance PRs are validated against: every strategy must
// reach one state hash on every replica under every fault seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lin/checker.hpp"
#include "lin/history.hpp"
#include "replication/audit.hpp"
#include "runtime/cluster.hpp"
#include "transport/fault.hpp"

namespace adets::workload {

struct ScenarioConfig {
  int replicas = 3;
  /// Concurrent client threads; keep 1 when comparing *final hashes
  /// across runs* (a single submission order makes the end state a pure
  /// function of the workload seed).
  int clients = 2;
  int requests_per_client = 12;
  std::uint64_t workload_seed = 1;
  /// Armed on the cluster's network before traffic starts.
  transport::FaultPlan faults;
  sched::SchedulerConfig sched;
  /// >0: run a DivergenceAuditor polling at this real-time period
  /// concurrently with the workload.
  common::Duration audit_period = common::Duration::zero();
  std::chrono::milliseconds drain_timeout = std::chrono::seconds(120);
  /// Per-invocation client timeout (real time).  Lower it for plans
  /// that are expected to starve clients (e.g. total loss).
  std::chrono::milliseconds invoke_timeout = std::chrono::seconds(60);
  /// Run the recorded client history through the linearizability checker
  /// after the workload drains.  A timed-out invocation stays in the
  /// history as a pending operation, so the audit is sound even under
  /// storms that starve clients.
  bool check_linearizability = true;
  /// Search budget forwarded to lin::CheckOptions.
  std::uint64_t lin_max_states = 4'000'000;
};

struct ScenarioResult {
  bool drained = false;
  /// All live replicas reached the same state hash.
  bool converged = false;
  std::vector<std::uint64_t> state_hashes;
  repl::AuditReport audit;  // final one-shot audit (post drain)
  /// Digest of the per-link fault decision streams of this run.
  std::uint64_t fault_digest = 0;
  transport::NetworkStats net;
  std::uint64_t background_audits = 0;
  bool background_divergence = false;
  /// Clients whose invocation timed out (the scenario still returns a
  /// result with drained=false rather than propagating the failure).
  std::uint64_t clients_failed = 0;
  /// The merged client-observable history (always recorded).
  lin::History history;
  /// True when the checker ran (config.check_linearizability).
  bool lin_checked = false;
  /// Checker verdict; see lin.explanation / lin.counterexample on
  /// failure.  Meaningful only when lin_checked.
  lin::CheckResult lin;
  /// Path of the machine-readable artifact dumped when the run diverged
  /// or was non-linearizable ("" when the run was clean or the dump
  /// failed).  Replay with `tools/lincheck <path>`.
  std::string artifact_path;
};

/// Runs the canonical workload under `kind`.
ScenarioResult run_scenario(sched::SchedulerKind kind, const ScenarioConfig& config);

/// Runs it under a caller-supplied scheduler factory (e.g. a broken
/// scheduler used as the auditor's negative control).
ScenarioResult run_scenario(const runtime::SchedulerFactory& scheduler_factory,
                            const ScenarioConfig& config);

/// All six strategies of the paper, in survey order.
[[nodiscard]] std::vector<sched::SchedulerKind> all_scheduler_kinds();

}  // namespace adets::workload
