// Closed-loop load driver for the throughput/latency harness.
//
// Simulates N logical clients, each in a closed loop over a replicated
// KvStore: issue one request, wait for the reply, immediately issue the
// next.  Unlike the figure benchmarks (one OS thread per client, tens of
// clients), thousands of logical clients are multiplexed over a small
// number of client *nodes* via Client::invoke_async — each completion
// callback issues the owning logical client's next request on the GCS
// delivery thread, so 10k clients cost ~16 node thread-triples instead
// of 30k threads.
//
// All reported times are paper time (real time divided by the
// ADETS_TIME_SCALE factor), matching the rest of the bench suite.
#pragma once

#include <chrono>
#include <cstdint>

#include "runtime/cluster.hpp"
#include "sched/api.hpp"

namespace adets::workload {

struct LoadConfig {
  sched::SchedulerKind kind = sched::SchedulerKind::kSat;
  int replicas = 3;
  /// Logical closed-loop clients (the paper-style offered load).
  int logical_clients = 1000;
  /// Client nodes the logical clients are multiplexed over.
  int connections = 16;
  /// Measured requests per logical client (after warmup).
  int requests_per_client = 20;
  /// Untimed leading requests per logical client.
  int warmup_per_client = 2;
  std::uint64_t seed = 1;
  /// KvStore key space; keys are "k<0..key_space-1>".
  int key_space = 256;
  int value_bytes = 32;
  /// Fraction of operations that are puts (the rest are gets).
  double put_ratio = 0.5;
  /// Network latency model and GCS tunables (batching knobs live here).
  runtime::ClusterConfig cluster;
  /// Real-time deadline for the whole run; on expiry the run is cut
  /// short and `completed` is false.
  std::chrono::seconds deadline{180};
};

struct LoadResult {
  /// Every logical client finished its full loop before the deadline.
  bool completed = false;
  /// All replica state hashes were equal after draining.
  bool converged = false;
  /// Measured (post-warmup) invocations that completed.
  std::uint64_t invocations = 0;
  /// Paper-time length of the measured window (first measured issue to
  /// last measured completion).
  double duration_s = 0.0;
  /// invocations / duration_s.
  double throughput_rps = 0.0;
  // Client-observed latency percentiles over measured invocations,
  // in paper milliseconds.
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  // Network totals for the whole run (warmup included) — the datagram
  // count is what sequencer batching is meant to shrink.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Runs one closed-loop experiment; blocks until done or deadline.
LoadResult run_load(const LoadConfig& config);

}  // namespace adets::workload
