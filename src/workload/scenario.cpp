#include "workload/scenario.hpp"

#include <atomic>
#include <optional>
#include <sstream>
#include <thread>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "lin/recorder.hpp"
#include "workload/kvstore.hpp"

namespace adets::workload {

using common::GroupId;

namespace {

/// One client thread's slice of the canonical workload: a seeded mix of
/// put/cas/remove/get/size over a small key space.  Only lock/unlock and
/// notify are exercised, so the same workload is valid for all six
/// strategies (SEQ/SL have no condition-variable support; watch-based
/// scenarios live in the fault-injection tests, gated to capable kinds).
/// Every invocation goes through the recording wrapper so the run's
/// client-observable history can be audited for linearizability.
void run_client(lin::RecordingClient& client, GroupId group, std::uint64_t seed,
                int client_index, int requests,
                std::chrono::milliseconds invoke_timeout) {
  common::Rng rng(seed, static_cast<std::uint64_t>(client_index));
  for (int i = 0; i < requests; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform(0, 7));
    const std::string value =
        "c" + std::to_string(client_index) + "v" + std::to_string(i);
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3:
        client.invoke(group, "put", KvStore::pack_put(key, value), invoke_timeout);
        break;
      case 4:
      case 5:
        client.invoke(group, "cas",
                      KvStore::pack_cas(key, "c0v0", value), invoke_timeout);
        break;
      case 6:
        client.invoke(group, "remove", KvStore::pack_key(key), invoke_timeout);
        break;
      case 7:
        client.invoke(group, "size", {}, invoke_timeout);
        break;
      default:
        client.invoke(group, "get", KvStore::pack_key(key), invoke_timeout);
        break;
    }
  }
}

/// Distinguishes artifacts from scenarios sharing one seed in one run.
std::atomic<std::uint64_t> artifact_counter{0};

/// Dumps the offending history (replayable: `tools/lincheck <path>`)
/// with the failure diagnostic embedded as comment lines, and reports
/// the path on stderr.
std::string dump_failure_artifact(const ScenarioConfig& config,
                                  const ScenarioResult& result,
                                  const std::string& why,
                                  const std::string& diagnostic) {
  const std::uint64_t n =
      artifact_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string name = "scenario-seed" +
                           std::to_string(config.workload_seed) + "-" +
                           std::to_string(n) + ".history";
  std::string text = lin::history_to_text(result.history, "kv");
  text += "# verdict: " + why + "\n";
  std::istringstream detail(diagnostic);
  std::string line;
  while (std::getline(detail, line)) text += "# " + line + "\n";
  const std::string path = lin::write_artifact(name, text);
  if (path.empty()) {
    ADETS_LOG_ERROR("scenario") << "failed to write failure artifact " << name;
  } else {
    ADETS_LOG_ERROR("scenario") << why << "; history artifact: " << path;
  }
  return path;
}

}  // namespace

std::vector<sched::SchedulerKind> all_scheduler_kinds() {
  return {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSl,
          sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
          sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds};
}

ScenarioResult run_scenario(sched::SchedulerKind kind, const ScenarioConfig& config) {
  const sched::SchedulerConfig sched_config = config.sched;
  return run_scenario(
      [kind, sched_config] { return sched::make_scheduler(kind, sched_config); },
      config);
}

ScenarioResult run_scenario(const runtime::SchedulerFactory& scheduler_factory,
                            const ScenarioConfig& config) {
  ScenarioResult result;
  runtime::Cluster cluster;
  const GroupId group = cluster.create_group(
      config.replicas, scheduler_factory, [] { return std::make_unique<KvStore>(); });
  std::vector<runtime::Client*> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) clients.push_back(&cluster.create_client());

  cluster.network().set_fault_plan(config.faults);

  std::optional<repl::DivergenceAuditor> auditor;
  if (config.audit_period > common::Duration::zero()) {
    auditor.emplace(cluster, group);
    auditor->start(config.audit_period);
  }

  // A client whose invocation times out (e.g. under a total-loss plan)
  // aborts its remaining requests; the scenario still returns a result
  // with drained=false instead of letting the exception kill the thread.
  std::atomic<std::uint64_t> clients_failed{0};
  lin::HistoryRecorder recorder(static_cast<std::size_t>(config.clients));
  std::vector<std::thread> workers;
  workers.reserve(clients.size());
  for (int c = 0; c < config.clients; ++c) {
    workers.emplace_back([&, c] {
      lin::RecordingClient recording(*clients[static_cast<std::size_t>(c)],
                                     recorder.client(static_cast<std::size_t>(c)));
      try {
        run_client(recording, group, config.workload_seed, c,
                   config.requests_per_client, config.invoke_timeout);
      } catch (const std::exception&) {
        // The failed invocation stays in the history as a pending op.
        clients_failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result.clients_failed = clients_failed.load(std::memory_order_relaxed);
  result.history = recorder.merge();

  const auto total = static_cast<std::uint64_t>(config.clients) *
                     static_cast<std::uint64_t>(config.requests_per_client);
  result.drained = cluster.wait_drained(group, total, config.drain_timeout);

  if (auditor) {
    auditor->stop();
    result.background_audits = auditor->audits_run();
    result.background_divergence = auditor->divergence_detected();
  }

  result.audit = repl::audit_group(cluster, group);
  result.converged = !result.audit.replicas.empty() && !result.audit.diverged;
  for (const auto& snapshot : result.audit.replicas) {
    result.state_hashes.push_back(snapshot.state_hash);
  }
  result.fault_digest = transport::fault_trace_digest(cluster.network().fault_trace());
  result.net = cluster.network().stats();

  if (config.check_linearizability) {
    lin::CheckOptions options;
    options.max_states = config.lin_max_states;
    result.lin = lin::check_history(result.history, lin::KvSpec{}, options);
    result.lin_checked = true;
  }

  // Any failed consistency gate dumps the run's history for offline
  // replay (satisfying a storm run must be reproducible, not a log line).
  if (result.lin_checked && !result.lin.linearizable &&
      !result.lin.exhausted_budget) {
    result.artifact_path = dump_failure_artifact(
        config, result, "non-linearizable history", result.lin.explanation);
  } else if (result.audit.diverged || result.background_divergence) {
    result.artifact_path = dump_failure_artifact(
        config, result, "replica divergence", result.audit.diagnostic);
  }
  return result;
}

}  // namespace adets::workload
