#include "workload/scenario.hpp"

#include <atomic>
#include <optional>
#include <thread>

#include "common/rng.hpp"
#include "workload/kvstore.hpp"

namespace adets::workload {

using common::GroupId;

namespace {

/// One client thread's slice of the canonical workload: a seeded mix of
/// put/cas/remove/get/size over a small key space.  Only lock/unlock and
/// notify are exercised, so the same workload is valid for all six
/// strategies (SEQ/SL have no condition-variable support; watch-based
/// scenarios live in the fault-injection tests, gated to capable kinds).
void run_client(runtime::Client& client, GroupId group, std::uint64_t seed,
                int client_index, int requests,
                std::chrono::milliseconds invoke_timeout) {
  common::Rng rng(seed, static_cast<std::uint64_t>(client_index));
  for (int i = 0; i < requests; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform(0, 7));
    const std::string value =
        "c" + std::to_string(client_index) + "v" + std::to_string(i);
    switch (rng.uniform(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3:
        client.invoke(group, "put", KvStore::pack_put(key, value), invoke_timeout);
        break;
      case 4:
      case 5:
        client.invoke(group, "cas",
                      KvStore::pack_cas(key, "c0v0", value), invoke_timeout);
        break;
      case 6:
        client.invoke(group, "remove", KvStore::pack_key(key), invoke_timeout);
        break;
      case 7:
        client.invoke(group, "size", {}, invoke_timeout);
        break;
      default:
        client.invoke(group, "get", KvStore::pack_key(key), invoke_timeout);
        break;
    }
  }
}

}  // namespace

std::vector<sched::SchedulerKind> all_scheduler_kinds() {
  return {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSl,
          sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
          sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds};
}

ScenarioResult run_scenario(sched::SchedulerKind kind, const ScenarioConfig& config) {
  const sched::SchedulerConfig sched_config = config.sched;
  return run_scenario(
      [kind, sched_config] { return sched::make_scheduler(kind, sched_config); },
      config);
}

ScenarioResult run_scenario(const runtime::SchedulerFactory& scheduler_factory,
                            const ScenarioConfig& config) {
  ScenarioResult result;
  runtime::Cluster cluster;
  const GroupId group = cluster.create_group(
      config.replicas, scheduler_factory, [] { return std::make_unique<KvStore>(); });
  std::vector<runtime::Client*> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) clients.push_back(&cluster.create_client());

  cluster.network().set_fault_plan(config.faults);

  std::optional<repl::DivergenceAuditor> auditor;
  if (config.audit_period > common::Duration::zero()) {
    auditor.emplace(cluster, group);
    auditor->start(config.audit_period);
  }

  // A client whose invocation times out (e.g. under a total-loss plan)
  // aborts its remaining requests; the scenario still returns a result
  // with drained=false instead of letting the exception kill the thread.
  std::atomic<std::uint64_t> clients_failed{0};
  std::vector<std::thread> workers;
  workers.reserve(clients.size());
  for (int c = 0; c < config.clients; ++c) {
    workers.emplace_back([&, c] {
      try {
        run_client(*clients[static_cast<std::size_t>(c)], group,
                   config.workload_seed, c, config.requests_per_client,
                   config.invoke_timeout);
      } catch (const std::exception&) {
        clients_failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  result.clients_failed = clients_failed.load(std::memory_order_relaxed);

  const auto total = static_cast<std::uint64_t>(config.clients) *
                     static_cast<std::uint64_t>(config.requests_per_client);
  result.drained = cluster.wait_drained(group, total, config.drain_timeout);

  if (auditor) {
    auditor->stop();
    result.background_audits = auditor->audits_run();
    result.background_divergence = auditor->divergence_detected();
  }

  result.audit = repl::audit_group(cluster, group);
  result.converged = !result.audit.replicas.empty() && !result.audit.diverged;
  for (const auto& snapshot : result.audit.replicas) {
    result.state_hashes.push_back(snapshot.state_hash);
  }
  result.fault_digest = transport::fault_trace_digest(cluster.network().fault_trace());
  result.net = cluster.network().stats();
  return result;
}

}  // namespace adets::workload
