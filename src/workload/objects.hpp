// Replicated objects implementing the paper's benchmark workloads
// (Sec. 5.3–5.5), plus small application objects used by the examples.
//
// All "computation" is simulated by suspending the handler thread for
// the configured paper-time duration, exactly as in the paper, and all
// durations/mutex choices are derived from the request id so every
// replica behaves identically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "runtime/context.hpp"
#include "runtime/object.hpp"

namespace adets::workload {

/// Helpers for marshalling small argument tuples.
template <typename... Args>
common::Bytes pack_u64(Args... values) {
  common::Writer w;
  (w.u64(static_cast<std::uint64_t>(values)), ...);
  return w.take();
}
std::vector<std::uint64_t> unpack_u64(const common::Bytes& bytes);

/// Paper Fig. 3 — the four local-computation patterns:
///   method "a": compute
///   method "b": compute - lock - state access - unlock
///   method "c": lock - state access and compute - unlock
///   method "d": lock - state access - unlock - compute
/// Args: (compute_paper_ms, mutex_index).  The object owns `mutexes`
/// logical mutexes (the paper uses 10) and a per-mutex access log as its
/// replicated state.
class ComputePatterns : public runtime::ReplicatedObject {
 public:
  explicit ComputePatterns(std::uint32_t mutexes = 10) : mutexes_(mutexes) {}

  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

 private:
  // Pattern handlers.  "a" is pure computation (conflict-free: touches
  // no replica state); the rest serialize on the chosen logical mutex
  // and append to its access log.
  common::Bytes do_a(std::uint64_t compute_ms, runtime::SyncContext& ctx)
      ADETS_CONFLICT(free);
  common::Bytes do_b(std::uint64_t compute_ms, std::uint64_t mutex_index,
                     runtime::SyncContext& ctx)
      ADETS_CONFLICT(mutex) ADETS_WRITES(access_log_);
  common::Bytes do_c(std::uint64_t compute_ms, std::uint64_t mutex_index,
                     runtime::SyncContext& ctx)
      ADETS_CONFLICT(mutex) ADETS_WRITES(access_log_);
  common::Bytes do_d(std::uint64_t compute_ms, std::uint64_t mutex_index,
                     runtime::SyncContext& ctx)
      ADETS_CONFLICT(mutex) ADETS_WRITES(access_log_);
  common::Bytes do_dy(std::uint64_t compute_ms, std::uint64_t mutex_index,
                      runtime::SyncContext& ctx)
      ADETS_CONFLICT(mutex) ADETS_WRITES(access_log_);

  void access_state(std::uint64_t mutex_index, runtime::SyncContext& ctx);

  const std::uint32_t mutexes_;  // configuration, not replicated state
  std::map<std::uint64_t, std::vector<std::uint64_t>> access_log_;
};

/// Callee object of the nested-invocation benchmarks (paper Sec. 5.4):
///   "echo"   — returns immediately
///   "delay"  — suspends for args[0] paper-ms, then returns
///   "callback" — calls method args[1] back on group args[0] (same
///                logical thread), for callback/deadlock tests.
class EchoService : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override { return calls_; }

 private:
  // Every method bumps the shared call counter, so all three conflict
  // with everything (dimension "all").
  common::Bytes do_echo(const common::Bytes& args)
      ADETS_CONFLICT(all) ADETS_WRITES(calls_);
  common::Bytes do_delay(std::uint64_t delay_ms, runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(calls_);
  common::Bytes do_callback(std::uint64_t group, runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(calls_);

  std::uint64_t calls_ = 0;  // monotone; not lock-protected state
};

/// Front object of the nested benchmarks: executes a permutation of
///   N — nested invocation of "delay" on the callee group,
///   C — local computation,
///   S — synchronized state update (lock, access, unlock)
/// Method name = the permutation ("NCS", "CSN", ...).  Args:
/// (callee_group, nested_lo, nested_hi, compute_lo, compute_hi) in
/// paper-ms; durations are sampled uniformly per request (seeded by the
/// request id, hence replica-independent).
class NestedPatterns : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

 private:
  // Every permutation may contain an S step (shared state-log append),
  // so all patterns are in one conflict class.
  common::Bytes do_pattern(const std::string& pattern,
                           const std::vector<std::uint64_t>& a,
                           runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(state_log_);

  std::vector<std::uint64_t> state_log_;
};

/// Unbounded producer/consumer buffer (paper Sec. 5.5, Fig. 6a):
///   "produce"      — append args[0], notify a waiting consumer
///   "consume"      — blocking: waits on a condition variable until an
///                    item is available, returns it
///   "poll_consume" — non-blocking variant for pure sequential
///                    scheduling: returns (1, item) or (0) if empty
class UnboundedBuffer : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

 private:
  // One queue, one mutex: every operation conflicts with every other.
  common::Bytes do_produce(std::uint64_t item, runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_);
  common::Bytes do_consume(runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, consumed_);
  common::Bytes do_poll_consume(runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, consumed_);

  std::deque<std::uint64_t> items_;
  std::uint64_t consumed_ = 0;
};

/// Bounded buffer with two condition variables (paper Fig. 6b):
/// "produce" blocks while full, "consume" blocks while empty.
/// "poll_produce"/"poll_consume" are non-blocking variants returning a
/// success flag, for polling clients under pure sequential scheduling.
class BoundedBuffer : public runtime::ReplicatedObject {
 public:
  explicit BoundedBuffer(std::size_t capacity = 2) : capacity_(capacity) {}

  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

 private:
  common::Bytes do_produce(std::uint64_t item, runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, produced_);
  common::Bytes do_consume(runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, consumed_);
  common::Bytes do_poll_produce(std::uint64_t item, runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, produced_);
  common::Bytes do_poll_consume(runtime::SyncContext& ctx)
      ADETS_CONFLICT(all) ADETS_WRITES(items_, consumed_);

  const std::size_t capacity_;  // configuration, not replicated state
  std::deque<std::uint64_t> items_;
  std::uint64_t consumed_ = 0;
  std::uint64_t produced_ = 0;
};

/// Bank-account object used by the quickstart/examples: fine-grained
/// locking (one mutex per account), nested auditing, timed waits.
///   "deposit"  (account, amount)        -> new balance
///   "withdraw" (account, amount)        -> 1/0 success (waits up to
///                                          args[2] paper-ms for funds)
///   "balance"  (account)                -> balance
///   "transfer" (from, to, amount)       -> 1/0 success
class BankAccounts : public runtime::ReplicatedObject {
 public:
  explicit BankAccounts(std::uint32_t accounts = 16) : balances_(accounts, 0) {}

  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override;
  [[nodiscard]] std::uint64_t state_hash() const override;

 private:
  // All four operations are keyed by account identity (transfer by both
  // endpoints): operations on disjoint accounts commute, but the lexical
  // footprint is the whole balances_ vector, so the contracts share one
  // "account" dimension rather than splitting into separate classes.
  common::Bytes do_deposit(std::uint64_t account, std::uint64_t amount,
                           runtime::SyncContext& ctx)
      ADETS_CONFLICT(account) ADETS_WRITES(balances_);
  common::Bytes do_withdraw(std::uint64_t account, std::uint64_t amount,
                            common::Duration timeout, runtime::SyncContext& ctx)
      ADETS_CONFLICT(account) ADETS_WRITES(balances_);
  common::Bytes do_balance(std::uint64_t account, runtime::SyncContext& ctx)
      ADETS_CONFLICT(account) ADETS_READS(balances_);
  common::Bytes do_transfer(std::uint64_t from, std::uint64_t to,
                            std::uint64_t amount, runtime::SyncContext& ctx)
      ADETS_CONFLICT(account) ADETS_WRITES(balances_);

  std::vector<std::int64_t> balances_;
};

}  // namespace adets::workload
