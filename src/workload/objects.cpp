#include "workload/objects.hpp"

#include <stdexcept>

#include "replication/statehash.hpp"

namespace adets::workload {

using common::Bytes;
using common::CondVarId;
using common::MutexId;
using common::paper_ms;
using runtime::DetLock;
using runtime::SyncContext;

// --- marshalling -------------------------------------------------------------

std::vector<std::uint64_t> unpack_u64(const Bytes& bytes) {
  common::Reader r(bytes);
  std::vector<std::uint64_t> values;
  while (!r.exhausted()) values.push_back(r.u64());
  return values;
}

// --- ComputePatterns (paper Fig. 3 / Fig. 4) -----------------------------------

void ComputePatterns::access_state(std::uint64_t mutex_index, SyncContext& ctx) {
  // Caller holds the mutex; the access itself is "negligible" (paper).
  access_log_[mutex_index].push_back(ctx.request_id().value());
}

Bytes ComputePatterns::dispatch(const std::string& method, const Bytes& args,
                                SyncContext& ctx) {
  const auto a = unpack_u64(args);
  if (a.size() < 2) throw std::invalid_argument("ComputePatterns needs (ms, mutex)");
  const auto compute = paper_ms(static_cast<long long>(a[0]));
  const MutexId mutex(a[1] % mutexes_);

  if (method == "a") {
    ctx.compute(compute);
  } else if (method == "b") {
    ctx.compute(compute);
    DetLock lock(ctx, mutex);
    access_state(mutex.value(), ctx);
  } else if (method == "c") {
    DetLock lock(ctx, mutex);
    access_state(mutex.value(), ctx);
    ctx.compute(compute);
  } else if (method == "d") {
    {
      DetLock lock(ctx, mutex);
      access_state(mutex.value(), ctx);
    }
    ctx.compute(compute);
  } else if (method == "dy") {
    // Pattern (d) plus an explicit yield: the paper's proposed MAT
    // optimisation — donate the primary token before computing, so the
    // next thread can lock without waiting for our completion.
    {
      DetLock lock(ctx, mutex);
      access_state(mutex.value(), ctx);
    }
    ctx.yield();
    ctx.compute(compute);
  } else {
    throw std::invalid_argument("unknown pattern: " + method);
  }
  return pack_u64(0);
}

std::uint64_t ComputePatterns::state_hash() const {
  repl::StateHash h;
  for (const auto& [mutex, log] : access_log_) {
    h.mix(mutex);
    h.mix_range(log);
  }
  return h.digest();
}

// --- EchoService ----------------------------------------------------------------

Bytes EchoService::dispatch(const std::string& method, const Bytes& args,
                            SyncContext& ctx) {
  calls_++;
  if (method == "echo") {
    return args;
  }
  if (method == "delay") {
    const auto a = unpack_u64(args);
    ctx.compute(paper_ms(static_cast<long long>(a.empty() ? 0 : a[0])));
    return pack_u64(calls_);
  }
  if (method == "callback") {
    const auto a = unpack_u64(args);
    if (a.empty()) throw std::invalid_argument("callback needs (group)");
    return ctx.invoke(common::GroupId(static_cast<std::uint32_t>(a[0])), "__cb", {});
  }
  throw std::invalid_argument("unknown method: " + method);
}

// --- NestedPatterns (paper Fig. 5b) ----------------------------------------------

Bytes NestedPatterns::dispatch(const std::string& method, const Bytes& args,
                               SyncContext& ctx) {
  const auto a = unpack_u64(args);
  if (a.size() < 5) {
    throw std::invalid_argument(
        "NestedPatterns needs (callee, nested_lo, nested_hi, compute_lo, compute_hi)");
  }
  const common::GroupId callee(static_cast<std::uint32_t>(a[0]));
  for (const char op : method) {
    switch (op) {
      case 'N': {
        const auto duration = a[1] + ctx.rng().uniform(0, a[2] - a[1]);
        ctx.invoke(callee, "delay", pack_u64(duration));
        break;
      }
      case 'C': {
        const auto duration = a[3] + ctx.rng().uniform(0, a[4] - a[3]);
        ctx.compute(paper_ms(static_cast<long long>(duration)));
        break;
      }
      case 'S': {
        DetLock lock(ctx, MutexId(0));
        state_log_.push_back(ctx.request_id().value());
        break;
      }
      default:
        throw std::invalid_argument("pattern may only contain N, C, S");
    }
  }
  return pack_u64(0);
}

std::uint64_t NestedPatterns::state_hash() const {
  repl::StateHash h;
  h.mix_range(state_log_);
  return h.digest();
}

// --- UnboundedBuffer (paper Fig. 6a) -----------------------------------------------

Bytes UnboundedBuffer::dispatch(const std::string& method, const Bytes& args,
                                SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId available(0);
  if (method == "produce") {
    const auto a = unpack_u64(args);
    DetLock lock(ctx, m);
    items_.push_back(a.empty() ? 0 : a[0]);
    ctx.notify_one(m, available);
    return pack_u64(items_.size());
  }
  if (method == "consume") {
    DetLock lock(ctx, m);
    while (items_.empty()) ctx.wait(m, available);
    const std::uint64_t item = items_.front();
    items_.pop_front();
    consumed_++;
    return pack_u64(item);
  }
  if (method == "poll_consume") {
    DetLock lock(ctx, m);
    if (items_.empty()) return pack_u64(0);
    const std::uint64_t item = items_.front();
    items_.pop_front();
    consumed_++;
    return pack_u64(1, item);
  }
  throw std::invalid_argument("unknown method: " + method);
}

std::uint64_t UnboundedBuffer::state_hash() const {
  repl::StateHash h;
  h.mix(consumed_);
  h.mix_range(items_);
  return h.digest();
}

// --- BoundedBuffer (paper Fig. 6b) ----------------------------------------------------

Bytes BoundedBuffer::dispatch(const std::string& method, const Bytes& args,
                              SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId not_full(0);
  const CondVarId not_empty(1);
  if (method == "produce") {
    const auto a = unpack_u64(args);
    DetLock lock(ctx, m);
    while (items_.size() >= capacity_) ctx.wait(m, not_full);
    items_.push_back(a.empty() ? 0 : a[0]);
    produced_++;
    ctx.notify_one(m, not_empty);
    return pack_u64(produced_);
  }
  if (method == "consume") {
    DetLock lock(ctx, m);
    while (items_.empty()) ctx.wait(m, not_empty);
    const std::uint64_t item = items_.front();
    items_.pop_front();
    consumed_++;
    ctx.notify_one(m, not_full);
    return pack_u64(item);
  }
  if (method == "poll_produce") {
    const auto a = unpack_u64(args);
    DetLock lock(ctx, m);
    if (items_.size() >= capacity_) return pack_u64(0);
    items_.push_back(a.empty() ? 0 : a[0]);
    produced_++;
    return pack_u64(1);
  }
  if (method == "poll_consume") {
    DetLock lock(ctx, m);
    if (items_.empty()) return pack_u64(0);
    const std::uint64_t item = items_.front();
    items_.pop_front();
    consumed_++;
    return pack_u64(1, item);
  }
  throw std::invalid_argument("unknown method: " + method);
}

std::uint64_t BoundedBuffer::state_hash() const {
  repl::StateHash h;
  h.mix(consumed_);
  h.mix(produced_);
  h.mix_range(items_);
  return h.digest();
}

// --- BankAccounts ------------------------------------------------------------------------

Bytes BankAccounts::dispatch(const std::string& method, const Bytes& args,
                             SyncContext& ctx) {
  const auto a = unpack_u64(args);
  auto account_mutex = [](std::uint64_t account) { return MutexId(account); };
  auto account_cv = [](std::uint64_t account) { return CondVarId(account); };

  if (method == "deposit") {
    const std::uint64_t account = a.at(0) % balances_.size();
    DetLock lock(ctx, account_mutex(account));
    balances_[account] += static_cast<std::int64_t>(a.at(1));
    ctx.notify_all(account_mutex(account), account_cv(account));
    return pack_u64(static_cast<std::uint64_t>(balances_[account]));
  }
  if (method == "withdraw") {
    const std::uint64_t account = a.at(0) % balances_.size();
    const auto amount = static_cast<std::int64_t>(a.at(1));
    const auto timeout = a.size() > 2 ? paper_ms(static_cast<long long>(a[2]))
                                      : common::Duration::zero();
    DetLock lock(ctx, account_mutex(account));
    while (balances_[account] < amount) {
      const bool notified =
          ctx.wait(account_mutex(account), account_cv(account), timeout);
      if (!notified && balances_[account] < amount) return pack_u64(0);
    }
    balances_[account] -= amount;
    return pack_u64(1);
  }
  if (method == "balance") {
    const std::uint64_t account = a.at(0) % balances_.size();
    DetLock lock(ctx, account_mutex(account));
    return pack_u64(static_cast<std::uint64_t>(balances_[account]));
  }
  if (method == "transfer") {
    const std::uint64_t from = a.at(0) % balances_.size();
    const std::uint64_t to = a.at(1) % balances_.size();
    const auto amount = static_cast<std::int64_t>(a.at(2));
    if (from == to) return pack_u64(1);
    // Canonical lock order prevents application-level deadlock.
    const std::uint64_t first = std::min(from, to);
    const std::uint64_t second = std::max(from, to);
    DetLock lock_first(ctx, account_mutex(first));
    DetLock lock_second(ctx, account_mutex(second));
    if (balances_[from] < amount) return pack_u64(0);
    balances_[from] -= amount;
    balances_[to] += amount;
    ctx.notify_all(account_mutex(to), account_cv(to));
    return pack_u64(1);
  }
  throw std::invalid_argument("unknown method: " + method);
}

std::uint64_t BankAccounts::state_hash() const {
  repl::StateHash h;
  h.mix_range(balances_);
  return h.digest();
}

}  // namespace adets::workload
