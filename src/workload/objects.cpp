#include "workload/objects.hpp"

#include <stdexcept>

#include "replication/statehash.hpp"

namespace adets::workload {

using common::Bytes;
using common::CondVarId;
using common::MutexId;
using common::paper_ms;
using runtime::DetLock;
using runtime::SyncContext;

// --- marshalling -------------------------------------------------------------

std::vector<std::uint64_t> unpack_u64(const Bytes& bytes) {
  common::Reader r(bytes);
  std::vector<std::uint64_t> values;
  while (!r.exhausted()) values.push_back(r.u64());
  return values;
}

// --- ComputePatterns (paper Fig. 3 / Fig. 4) -----------------------------------

void ComputePatterns::access_state(std::uint64_t mutex_index, SyncContext& ctx) {
  // Caller holds the mutex; the access itself is "negligible" (paper).
  access_log_[mutex_index].push_back(ctx.request_id().value());
}

Bytes ComputePatterns::dispatch(const std::string& method, const Bytes& args,
                                SyncContext& ctx) {
  const auto a = unpack_u64(args);
  if (a.size() < 2) throw std::invalid_argument("ComputePatterns needs (ms, mutex)");
  if (method == "a") return do_a(a[0], ctx);
  if (method == "b") return do_b(a[0], a[1], ctx);
  if (method == "c") return do_c(a[0], a[1], ctx);
  if (method == "d") return do_d(a[0], a[1], ctx);
  if (method == "dy") return do_dy(a[0], a[1], ctx);
  throw std::invalid_argument("unknown pattern: " + method);
}

Bytes ComputePatterns::do_a(std::uint64_t compute_ms, SyncContext& ctx) {
  ctx.compute(paper_ms(static_cast<long long>(compute_ms)));
  return pack_u64(0);
}

Bytes ComputePatterns::do_b(std::uint64_t compute_ms, std::uint64_t mutex_index,
                            SyncContext& ctx) {
  const MutexId mutex(mutex_index % mutexes_);
  ctx.compute(paper_ms(static_cast<long long>(compute_ms)));
  DetLock lock(ctx, mutex);
  access_state(mutex.value(), ctx);
  return pack_u64(0);
}

Bytes ComputePatterns::do_c(std::uint64_t compute_ms, std::uint64_t mutex_index,
                            SyncContext& ctx) {
  const MutexId mutex(mutex_index % mutexes_);
  DetLock lock(ctx, mutex);
  access_state(mutex.value(), ctx);
  ctx.compute(paper_ms(static_cast<long long>(compute_ms)));
  return pack_u64(0);
}

Bytes ComputePatterns::do_d(std::uint64_t compute_ms, std::uint64_t mutex_index,
                            SyncContext& ctx) {
  const MutexId mutex(mutex_index % mutexes_);
  {
    DetLock lock(ctx, mutex);
    access_state(mutex.value(), ctx);
  }
  ctx.compute(paper_ms(static_cast<long long>(compute_ms)));
  return pack_u64(0);
}

Bytes ComputePatterns::do_dy(std::uint64_t compute_ms, std::uint64_t mutex_index,
                             SyncContext& ctx) {
  // Pattern (d) plus an explicit yield: the paper's proposed MAT
  // optimisation — donate the primary token before computing, so the
  // next thread can lock without waiting for our completion.
  const MutexId mutex(mutex_index % mutexes_);
  {
    DetLock lock(ctx, mutex);
    access_state(mutex.value(), ctx);
  }
  ctx.yield();
  ctx.compute(paper_ms(static_cast<long long>(compute_ms)));
  return pack_u64(0);
}

std::uint64_t ComputePatterns::state_hash() const {
  repl::StateHash h;
  for (const auto& [mutex, log] : access_log_) {
    h.mix(mutex);
    h.mix_range(log);
  }
  return h.digest();
}

// --- EchoService ----------------------------------------------------------------

Bytes EchoService::dispatch(const std::string& method, const Bytes& args,
                            SyncContext& ctx) {
  if (method == "echo") return do_echo(args);
  if (method == "delay") {
    const auto a = unpack_u64(args);
    return do_delay(a.empty() ? 0 : a[0], ctx);
  }
  if (method == "callback") {
    const auto a = unpack_u64(args);
    if (a.empty()) throw std::invalid_argument("callback needs (group)");
    return do_callback(a[0], ctx);
  }
  throw std::invalid_argument("unknown method: " + method);
}

Bytes EchoService::do_echo(const Bytes& args) {
  calls_++;
  return args;
}

Bytes EchoService::do_delay(std::uint64_t delay_ms, SyncContext& ctx) {
  calls_++;
  ctx.compute(paper_ms(static_cast<long long>(delay_ms)));
  return pack_u64(calls_);
}

Bytes EchoService::do_callback(std::uint64_t group, SyncContext& ctx) {
  calls_++;
  return ctx.invoke(common::GroupId(static_cast<std::uint32_t>(group)), "__cb", {});
}

// --- NestedPatterns (paper Fig. 5b) ----------------------------------------------

Bytes NestedPatterns::dispatch(const std::string& method, const Bytes& args,
                               SyncContext& ctx) {
  const auto a = unpack_u64(args);
  if (a.size() < 5) {
    throw std::invalid_argument(
        "NestedPatterns needs (callee, nested_lo, nested_hi, compute_lo, compute_hi)");
  }
  return do_pattern(method, a, ctx);
}

Bytes NestedPatterns::do_pattern(const std::string& method,
                                 const std::vector<std::uint64_t>& a,
                                 SyncContext& ctx) {
  const common::GroupId callee(static_cast<std::uint32_t>(a[0]));
  for (const char op : method) {
    switch (op) {
      case 'N': {
        const auto duration = a[1] + ctx.rng().uniform(0, a[2] - a[1]);
        ctx.invoke(callee, "delay", pack_u64(duration));
        break;
      }
      case 'C': {
        const auto duration = a[3] + ctx.rng().uniform(0, a[4] - a[3]);
        ctx.compute(paper_ms(static_cast<long long>(duration)));
        break;
      }
      case 'S': {
        DetLock lock(ctx, MutexId(0));
        state_log_.push_back(ctx.request_id().value());
        break;
      }
      default:
        throw std::invalid_argument("pattern may only contain N, C, S");
    }
  }
  return pack_u64(0);
}

std::uint64_t NestedPatterns::state_hash() const {
  repl::StateHash h;
  h.mix_range(state_log_);
  return h.digest();
}

// --- UnboundedBuffer (paper Fig. 6a) -----------------------------------------------

Bytes UnboundedBuffer::dispatch(const std::string& method, const Bytes& args,
                                SyncContext& ctx) {
  if (method == "produce") {
    const auto a = unpack_u64(args);
    return do_produce(a.empty() ? 0 : a[0], ctx);
  }
  if (method == "consume") return do_consume(ctx);
  if (method == "poll_consume") return do_poll_consume(ctx);
  throw std::invalid_argument("unknown method: " + method);
}

Bytes UnboundedBuffer::do_produce(std::uint64_t item, SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId available(0);
  DetLock lock(ctx, m);
  items_.push_back(item);
  ctx.notify_one(m, available);
  return pack_u64(items_.size());
}

Bytes UnboundedBuffer::do_consume(SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId available(0);
  DetLock lock(ctx, m);
  while (items_.empty()) ctx.wait(m, available);
  const std::uint64_t item = items_.front();
  items_.pop_front();
  consumed_++;
  return pack_u64(item);
}

Bytes UnboundedBuffer::do_poll_consume(SyncContext& ctx) {
  const MutexId m(0);
  DetLock lock(ctx, m);
  if (items_.empty()) return pack_u64(0);
  const std::uint64_t item = items_.front();
  items_.pop_front();
  consumed_++;
  return pack_u64(1, item);
}

std::uint64_t UnboundedBuffer::state_hash() const {
  repl::StateHash h;
  h.mix(consumed_);
  h.mix_range(items_);
  return h.digest();
}

// --- BoundedBuffer (paper Fig. 6b) ----------------------------------------------------

Bytes BoundedBuffer::dispatch(const std::string& method, const Bytes& args,
                              SyncContext& ctx) {
  if (method == "produce") {
    const auto a = unpack_u64(args);
    return do_produce(a.empty() ? 0 : a[0], ctx);
  }
  if (method == "consume") return do_consume(ctx);
  if (method == "poll_produce") {
    const auto a = unpack_u64(args);
    return do_poll_produce(a.empty() ? 0 : a[0], ctx);
  }
  if (method == "poll_consume") return do_poll_consume(ctx);
  throw std::invalid_argument("unknown method: " + method);
}

Bytes BoundedBuffer::do_produce(std::uint64_t item, SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId not_full(0);
  const CondVarId not_empty(1);
  DetLock lock(ctx, m);
  while (items_.size() >= capacity_) ctx.wait(m, not_full);
  items_.push_back(item);
  produced_++;
  ctx.notify_one(m, not_empty);
  return pack_u64(produced_);
}

Bytes BoundedBuffer::do_consume(SyncContext& ctx) {
  const MutexId m(0);
  const CondVarId not_full(0);
  const CondVarId not_empty(1);
  DetLock lock(ctx, m);
  while (items_.empty()) ctx.wait(m, not_empty);
  const std::uint64_t item = items_.front();
  items_.pop_front();
  consumed_++;
  ctx.notify_one(m, not_full);
  return pack_u64(item);
}

Bytes BoundedBuffer::do_poll_produce(std::uint64_t item, SyncContext& ctx) {
  const MutexId m(0);
  DetLock lock(ctx, m);
  if (items_.size() >= capacity_) return pack_u64(0);
  items_.push_back(item);
  produced_++;
  return pack_u64(1);
}

Bytes BoundedBuffer::do_poll_consume(SyncContext& ctx) {
  const MutexId m(0);
  DetLock lock(ctx, m);
  if (items_.empty()) return pack_u64(0);
  const std::uint64_t item = items_.front();
  items_.pop_front();
  consumed_++;
  return pack_u64(1, item);
}

std::uint64_t BoundedBuffer::state_hash() const {
  repl::StateHash h;
  h.mix(consumed_);
  h.mix(produced_);
  h.mix_range(items_);
  return h.digest();
}

// --- BankAccounts ------------------------------------------------------------------------

namespace {
MutexId account_mutex(std::uint64_t account) { return MutexId(account); }
CondVarId account_cv(std::uint64_t account) { return CondVarId(account); }
}  // namespace

Bytes BankAccounts::dispatch(const std::string& method, const Bytes& args,
                             SyncContext& ctx) {
  const auto a = unpack_u64(args);
  if (method == "deposit") return do_deposit(a.at(0), a.at(1), ctx);
  if (method == "withdraw") {
    const auto timeout = a.size() > 2 ? paper_ms(static_cast<long long>(a[2]))
                                      : common::Duration::zero();
    return do_withdraw(a.at(0), a.at(1), timeout, ctx);
  }
  if (method == "balance") return do_balance(a.at(0), ctx);
  if (method == "transfer") return do_transfer(a.at(0), a.at(1), a.at(2), ctx);
  throw std::invalid_argument("unknown method: " + method);
}

Bytes BankAccounts::do_deposit(std::uint64_t account, std::uint64_t amount,
                               SyncContext& ctx) {
  account %= balances_.size();
  DetLock lock(ctx, account_mutex(account));
  balances_[account] += static_cast<std::int64_t>(amount);
  ctx.notify_all(account_mutex(account), account_cv(account));
  return pack_u64(static_cast<std::uint64_t>(balances_[account]));
}

Bytes BankAccounts::do_withdraw(std::uint64_t account, std::uint64_t amount,
                                common::Duration timeout, SyncContext& ctx) {
  account %= balances_.size();
  const auto debit = static_cast<std::int64_t>(amount);
  DetLock lock(ctx, account_mutex(account));
  while (balances_[account] < debit) {
    const bool notified =
        ctx.wait(account_mutex(account), account_cv(account), timeout);
    if (!notified && balances_[account] < debit) return pack_u64(0);
  }
  balances_[account] -= debit;
  return pack_u64(1);
}

Bytes BankAccounts::do_balance(std::uint64_t account, SyncContext& ctx) {
  account %= balances_.size();
  DetLock lock(ctx, account_mutex(account));
  return pack_u64(static_cast<std::uint64_t>(balances_[account]));
}

Bytes BankAccounts::do_transfer(std::uint64_t from, std::uint64_t to,
                                std::uint64_t amount, SyncContext& ctx) {
  from %= balances_.size();
  to %= balances_.size();
  const auto debit = static_cast<std::int64_t>(amount);
  if (from == to) return pack_u64(1);
  // Canonical lock order prevents application-level deadlock.
  const std::uint64_t first = std::min(from, to);
  const std::uint64_t second = std::max(from, to);
  DetLock lock_first(ctx, account_mutex(first));
  DetLock lock_second(ctx, account_mutex(second));
  if (balances_[from] < debit) return pack_u64(0);
  balances_[from] -= debit;
  balances_[to] += debit;
  ctx.notify_all(account_mutex(to), account_cv(to));
  return pack_u64(1);
}

std::uint64_t BankAccounts::state_hash() const {
  repl::StateHash h;
  h.mix_range(balances_);
  return h.digest();
}

}  // namespace adets::workload
