#include "workload/kvstore.hpp"

#include <stdexcept>

#include "replication/statehash.hpp"

namespace adets::workload {

using common::Bytes;
using common::CondVarId;
using common::MutexId;
using runtime::DetLock;
using runtime::SyncContext;

namespace {
std::uint64_t fnv(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

MutexId KvStore::bucket_mutex(const std::string& key) const {
  return MutexId(fnv(key) % buckets_);
}

CondVarId KvStore::bucket_condvar(const std::string& key) const {
  return CondVarId(fnv(key) % buckets_);
}

void KvStore::touch(const std::string& key, SyncContext& ctx) {
  versions_[key]++;
  // Wake every watcher of this bucket; they re-check their key version.
  ctx.notify_all(bucket_mutex(key), bucket_condvar(key));
}

Bytes KvStore::pack_put(const std::string& key, const std::string& value) {
  common::Writer w;
  w.str(key);
  w.str(value);
  return w.take();
}

Bytes KvStore::pack_key(const std::string& key) {
  common::Writer w;
  w.str(key);
  return w.take();
}

Bytes KvStore::pack_cas(const std::string& key, const std::string& expected,
                        const std::string& value) {
  common::Writer w;
  w.str(key);
  w.str(expected);
  w.str(value);
  return w.take();
}

Bytes KvStore::pack_watch(const std::string& key, std::uint64_t timeout_paper_ms) {
  common::Writer w;
  w.str(key);
  w.u64(timeout_paper_ms);
  return w.take();
}

// dispatch only unmarshals and delegates: all state access lives in the
// conflict-annotated handlers below (adets-sa audits dispatch for strays).
Bytes KvStore::dispatch(const std::string& method, const Bytes& args,
                        SyncContext& ctx) {
  common::Reader r(args);
  if (method == "put") {
    const std::string key = r.str();
    const std::string value = r.str();
    return do_put(key, value, ctx);
  }
  if (method == "get") return do_get(r.str(), ctx);
  if (method == "remove") return do_remove(r.str(), ctx);
  if (method == "cas") {
    const std::string key = r.str();
    const std::string expected = r.str();
    const std::string value = r.str();
    return do_cas(key, expected, value, ctx);
  }
  if (method == "watch") {
    const std::string key = r.str();
    const auto timeout = common::paper_ms(static_cast<long long>(r.u64()));
    return do_watch(key, timeout, ctx);
  }
  if (method == "size") return do_size(ctx);
  throw std::invalid_argument("unknown method: " + method);
}

Bytes KvStore::do_put(const std::string& key, const std::string& value,
                      SyncContext& ctx) {
  common::Writer reply;
  DetLock lock(ctx, bucket_mutex(key));
  const bool existed = data_.count(key) > 0;
  data_[key] = value;
  touch(key, ctx);
  reply.boolean(existed);
  return reply.take();
}

Bytes KvStore::do_get(const std::string& key, SyncContext& ctx) {
  common::Writer reply;
  DetLock lock(ctx, bucket_mutex(key));
  const auto it = data_.find(key);
  reply.boolean(it != data_.end());
  reply.str(it != data_.end() ? it->second : "");
  return reply.take();
}

Bytes KvStore::do_remove(const std::string& key, SyncContext& ctx) {
  common::Writer reply;
  DetLock lock(ctx, bucket_mutex(key));
  const bool existed = data_.erase(key) > 0;
  if (existed) touch(key, ctx);
  reply.boolean(existed);
  return reply.take();
}

Bytes KvStore::do_cas(const std::string& key, const std::string& expected,
                      const std::string& value, SyncContext& ctx) {
  common::Writer reply;
  DetLock lock(ctx, bucket_mutex(key));
  const auto it = data_.find(key);
  const bool success = it != data_.end() && it->second == expected;
  if (success) {
    it->second = value;
    touch(key, ctx);
  }
  reply.boolean(success);
  return reply.take();
}

Bytes KvStore::do_watch(const std::string& key, common::Duration timeout,
                        SyncContext& ctx) {
  common::Writer reply;
  DetLock lock(ctx, bucket_mutex(key));
  const std::uint64_t seen = versions_[key];
  bool changed = versions_[key] != seen;
  while (!changed) {
    const bool notified =
        ctx.wait(bucket_mutex(key), bucket_condvar(key), timeout);
    changed = versions_[key] != seen;
    if (!notified && !changed) break;  // bounded wait expired
  }
  const auto it = data_.find(key);
  reply.boolean(changed);
  reply.str(it != data_.end() ? it->second : "");
  return reply.take();
}

Bytes KvStore::do_size(SyncContext& ctx) {
  common::Writer reply;
  // Size touches every bucket; take them in canonical order.
  for (std::uint32_t b = 0; b < buckets_; ++b) ctx.lock(MutexId(b));
  reply.u64(data_.size());
  for (std::uint32_t b = buckets_; b > 0; --b) ctx.unlock(MutexId(b - 1));
  return reply.take();
}

std::uint64_t KvStore::state_hash() const {
  repl::StateHash h;
  for (const auto& [key, value] : data_) {
    h.mix(key);
    h.mix(value);
  }
  for (const auto& [key, version] : versions_) {
    h.mix(key);
    h.mix(version);
  }
  return h.digest();
}

}  // namespace adets::workload
