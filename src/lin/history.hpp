// Client-observable operation histories for linearizability checking.
//
// A History is the merged, stamp-ordered log of every client's
// invoke/response events against one replicated object.  Stamps come
// from one process-wide monotone counter (see recorder.hpp), so "A
// completed before B was invoked" — the real-time order linearizability
// must respect — is exactly `A.response_stamp < B.invoke_stamp`.
// Operations whose response was never observed (client timeout, crash)
// stay *pending*: a correct checker may linearize them anywhere after
// their invocation or drop them entirely, because the request may or
// may not have taken effect inside the group.
//
// Histories serialise to a line-oriented text format (one operation per
// line, payloads hex-encoded) so fault-storm failures can be dumped as
// artifacts and replayed offline with tools/lincheck.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/serialization.hpp"

namespace adets::lin {

/// One completed (or pending) method invocation as the client saw it.
struct Operation {
  /// Recording client index (0-based); only used for reports.
  std::uint64_t client = 0;
  /// Global monotone stamp taken just before submission (always > 0).
  std::uint64_t invoke_stamp = 0;
  /// Stamp taken when the reply arrived; 0 = pending (no reply observed).
  std::uint64_t response_stamp = 0;
  std::string method;
  common::Bytes args;
  common::Bytes result;  // meaningful only when !pending()

  [[nodiscard]] bool pending() const { return response_stamp == 0; }

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// A merged history, ordered by invoke stamp.
struct History {
  std::vector<Operation> ops;

  [[nodiscard]] std::size_t size() const { return ops.size(); }
  [[nodiscard]] bool empty() const { return ops.empty(); }

  /// Sorts by (invoke_stamp, client) — the canonical order every
  /// consumer (checker, serializer, reports) assumes.
  void normalize();
};

/// "c3 [17,42] put(...)->(...)" — one-line rendering for reports.
[[nodiscard]] std::string to_string(const Operation& op);

/// Multi-line rendering of a (sub-)history, one operation per line.
[[nodiscard]] std::string render_history(const std::vector<Operation>& ops);

/// Text serialization: header line, then one `op ...` line per entry.
void save_history(std::ostream& out, const History& history,
                  const std::string& spec_name);
[[nodiscard]] std::string history_to_text(const History& history,
                                          const std::string& spec_name);

/// Parse result: the history plus the spec name recorded in the header
/// (empty when the file predates the field or omitted it).
struct LoadedHistory {
  History history;
  std::string spec_name;
};

/// Parses the text format; returns nullopt (with a message in `error`)
/// on malformed input.
[[nodiscard]] std::optional<LoadedHistory> load_history(std::istream& in,
                                                        std::string* error);

}  // namespace adets::lin
