#include "lin/spec.hpp"

#include <deque>
#include <map>
#include <utility>

namespace adets::lin {

namespace {

common::Bytes to_bytes(const std::string& s) {
  return common::Bytes(s.begin(), s.end());
}

std::string from_writer(common::Writer& w) {
  const common::Bytes bytes = w.take();
  return std::string(bytes.begin(), bytes.end());
}

// --- KV state --------------------------------------------------------------

using KvState = std::map<std::string, std::string>;

KvState parse_kv(const std::string& state) {
  const common::Bytes bytes = to_bytes(state);
  common::Reader r(bytes);
  KvState map;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    map[std::move(key)] = r.str();
  }
  return map;
}

std::string serialize_kv(const KvState& map) {
  common::Writer w;
  w.u32(static_cast<std::uint32_t>(map.size()));
  for (const auto& [key, value] : map) {  // std::map: canonical order
    w.str(key);
    w.str(value);
  }
  return from_writer(w);
}

// --- buffer state ----------------------------------------------------------

struct BufState {
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  std::deque<std::uint64_t> items;
};

BufState parse_buf(const std::string& state) {
  const common::Bytes bytes = to_bytes(state);
  common::Reader r(bytes);
  BufState s;
  s.produced = r.u64();
  s.consumed = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) s.items.push_back(r.u64());
  return s;
}

std::string serialize_buf(const BufState& s) {
  common::Writer w;
  w.u64(s.produced);
  w.u64(s.consumed);
  w.u32(static_cast<std::uint32_t>(s.items.size()));
  for (const std::uint64_t item : s.items) w.u64(item);
  return from_writer(w);
}

}  // namespace

// --- KvSpec ----------------------------------------------------------------

std::string KvSpec::initial_state() const { return serialize_kv({}); }

std::optional<std::string> KvSpec::apply(const std::string& state,
                                         const Operation& op) const {
  KvState map = parse_kv(state);
  common::Reader args(op.args);
  common::Reader result(op.result);

  if (op.method == "put") {
    const std::string key = args.str();
    const std::string value = args.str();
    const bool existed = map.count(key) > 0;
    if (result.boolean() != existed) return std::nullopt;
    map[key] = value;
    return serialize_kv(map);
  }
  if (op.method == "get") {
    const std::string key = args.str();
    const auto it = map.find(key);
    const bool exists = it != map.end();
    if (result.boolean() != exists) return std::nullopt;
    if (result.str() != (exists ? it->second : std::string())) return std::nullopt;
    return state;  // read-only
  }
  if (op.method == "remove") {
    const std::string key = args.str();
    const bool existed = map.erase(key) > 0;
    if (result.boolean() != existed) return std::nullopt;
    return serialize_kv(map);
  }
  if (op.method == "cas") {
    const std::string key = args.str();
    const std::string expected = args.str();
    const std::string value = args.str();
    const auto it = map.find(key);
    const bool success = it != map.end() && it->second == expected;
    if (result.boolean() != success) return std::nullopt;
    if (!success) return state;
    it->second = value;
    return serialize_kv(map);
  }
  if (op.method == "size") {
    if (result.u64() != map.size()) return std::nullopt;
    return state;
  }
  if (op.method == "watch") {
    // The changed-flag reflects whether the bounded wait saw a version
    // bump — a duration property no single linearization point decides —
    // so only the returned value is checked against the current state.
    const std::string key = args.str();
    (void)result.boolean();
    const auto it = map.find(key);
    if (result.str() != (it != map.end() ? it->second : std::string())) {
      return std::nullopt;
    }
    return state;
  }
  return std::nullopt;  // unknown method can never linearize
}

std::optional<std::string> KvSpec::apply_pending(const std::string& state,
                                                const Operation& op) const {
  // Every KvStore method's *effect* is a deterministic function of the
  // state; only the reply (unobserved here) is unconstrained.
  KvState map = parse_kv(state);
  common::Reader args(op.args);
  if (op.method == "put") {
    const std::string key = args.str();
    map[key] = args.str();
    return serialize_kv(map);
  }
  if (op.method == "remove") {
    map.erase(args.str());
    return serialize_kv(map);
  }
  if (op.method == "cas") {
    const std::string key = args.str();
    const std::string expected = args.str();
    const std::string value = args.str();
    const auto it = map.find(key);
    if (it != map.end() && it->second == expected) it->second = value;
    return serialize_kv(map);
  }
  if (op.method == "get" || op.method == "size" || op.method == "watch") {
    return state;  // read-only
  }
  return std::nullopt;
}

std::optional<std::string> KvSpec::partition_of(const Operation& op) const {
  if (op.method == "size") return std::nullopt;  // touches every key
  common::Reader args(op.args);
  return args.str();  // every other method is keyed by its first arg
}

std::string KvSpec::describe(const Operation& op) const {
  try {
    common::Reader args(op.args);
    std::string out = op.method + "(";
    if (op.method == "put") {
      out += args.str();
      out += ", " + args.str();
    } else if (op.method == "cas") {
      out += args.str();
      out += ", " + args.str();
      out += ", " + args.str();
    } else if (op.method == "get" || op.method == "remove" ||
               op.method == "watch") {
      out += args.str();
    }
    out += ")";
    if (op.pending()) return out + " -> pending";
    common::Reader result(op.result);
    if (op.method == "put" || op.method == "remove" || op.method == "cas") {
      return out + " -> " + (result.boolean() ? "true" : "false");
    }
    if (op.method == "get" || op.method == "watch") {
      const bool flag = result.boolean();
      return out + " -> (" + (flag ? "true" : "false") + ", \"" +
             result.str() + "\")";
    }
    if (op.method == "size") return out + " -> " + std::to_string(result.u64());
    return out;
  } catch (const common::SerializationError&) {
    return to_string(op);  // fall back to the raw rendering
  }
}

// --- BufferSpec ------------------------------------------------------------

std::string BufferSpec::initial_state() const { return serialize_buf({}); }

std::optional<std::string> BufferSpec::apply(const std::string& state,
                                             const Operation& op) const {
  BufState s = parse_buf(state);
  common::Reader args(op.args);
  common::Reader result(op.result);

  if (op.method == "produce") {
    if (capacity_ > 0 && s.items.size() >= capacity_) return std::nullopt;
    s.items.push_back(args.remaining() >= 8 ? args.u64() : 0);
    s.produced++;
    // Unbounded replies with the queue length after the push, bounded
    // with the total produced count (see workload/objects.cpp).
    const std::uint64_t expected =
        capacity_ == 0 ? static_cast<std::uint64_t>(s.items.size()) : s.produced;
    if (result.u64() != expected) return std::nullopt;
    return serialize_buf(s);
  }
  if (op.method == "consume") {
    if (s.items.empty()) return std::nullopt;  // blocking: cannot linearize here
    const std::uint64_t head = s.items.front();
    if (result.u64() != head) return std::nullopt;
    s.items.pop_front();
    s.consumed++;
    return serialize_buf(s);
  }
  if (op.method == "poll_consume") {
    const bool success = result.u64() != 0;
    if (success != !s.items.empty()) return std::nullopt;
    if (!success) return state;
    if (result.u64() != s.items.front()) return std::nullopt;
    s.items.pop_front();
    s.consumed++;
    return serialize_buf(s);
  }
  if (op.method == "poll_produce" && capacity_ > 0) {
    const bool success = result.u64() != 0;
    if (success != (s.items.size() < capacity_)) return std::nullopt;
    if (!success) return state;
    s.items.push_back(args.remaining() >= 8 ? args.u64() : 0);
    s.produced++;
    return serialize_buf(s);
  }
  return std::nullopt;
}

std::optional<std::string> BufferSpec::apply_pending(const std::string& state,
                                                     const Operation& op) const {
  BufState s = parse_buf(state);
  common::Reader args(op.args);
  if (op.method == "produce") {
    if (capacity_ > 0 && s.items.size() >= capacity_) return std::nullopt;
    s.items.push_back(args.remaining() >= 8 ? args.u64() : 0);
    s.produced++;
    return serialize_buf(s);
  }
  if (op.method == "consume") {
    if (s.items.empty()) return std::nullopt;
    s.items.pop_front();
    s.consumed++;
    return serialize_buf(s);
  }
  if (op.method == "poll_consume") {
    if (s.items.empty()) return state;
    s.items.pop_front();
    s.consumed++;
    return serialize_buf(s);
  }
  if (op.method == "poll_produce" && capacity_ > 0) {
    if (s.items.size() >= capacity_) return state;
    s.items.push_back(args.remaining() >= 8 ? args.u64() : 0);
    s.produced++;
    return serialize_buf(s);
  }
  return std::nullopt;
}

std::optional<std::string> BufferSpec::partition_of(const Operation&) const {
  return std::string("q");  // one logical queue: a single partition
}

std::string BufferSpec::describe(const Operation& op) const {
  try {
    common::Reader args(op.args);
    std::string out = op.method + "(";
    if ((op.method == "produce" || op.method == "poll_produce") &&
        args.remaining() >= 8) {
      out += std::to_string(args.u64());
    }
    out += ")";
    if (op.pending()) return out + " -> pending";
    common::Reader result(op.result);
    out += " -> " + std::to_string(result.u64());
    if (result.remaining() >= 8) out += ", " + std::to_string(result.u64());
    return out;
  } catch (const common::SerializationError&) {
    return to_string(op);
  }
}

// --- registry --------------------------------------------------------------

std::unique_ptr<SequentialSpec> make_spec(const std::string& name) {
  if (name == "kv") return std::make_unique<KvSpec>();
  if (name == "unbounded-buffer") return std::make_unique<BufferSpec>(0);
  if (name == "bounded-buffer") return std::make_unique<BufferSpec>(2);
  const std::string prefix = "bounded-buffer:";
  if (name.rfind(prefix, 0) == 0) {
    try {
      const std::size_t capacity = std::stoul(name.substr(prefix.size()));
      if (capacity > 0) return std::make_unique<BufferSpec>(capacity);
    } catch (const std::exception&) {
      return nullptr;
    }
  }
  return nullptr;
}

}  // namespace adets::lin
