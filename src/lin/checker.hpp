// Linearizability checker: Wing-Gong search with P-compositionality
// partitioning and memoized state caching.
//
// The search walks the entry list (invoke/response events in stamp
// order) and tries to pick a linearization point for every operation:
// an operation may linearize anywhere between its invocation and its
// response, an operation whose response precedes another's invocation
// must linearize first, and the spec must accept every observed result
// along the way.  Hitting a response event with no linearizable
// candidate forces a backtrack; exhausting the alternatives at the
// first response event proves the history non-linearizable.
//
// Two optimisations keep fig4/fig6-scale histories in the
// seconds range:
//  - P-compositionality: when every operation maps to one partition
//    (per-key for the KV store), each partition is checked
//    independently — the search cost is exponential only in per-key
//    concurrency, not total concurrency.
//  - Memoization: a (linearized-set, state) configuration reached twice
//    is pruned the second time (Wing-Gong's classic cache; states are
//    canonical strings, see spec.hpp).
//
// Pending operations (no observed response) may linearize with an
// unconstrained result or be dropped — both branches are explored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lin/history.hpp"
#include "lin/spec.hpp"

namespace adets::lin {

struct CheckOptions {
  /// Check per-partition when the spec partitions every operation.
  bool partition = true;
  /// Search budget: configurations explored before giving up across all
  /// partitions (inconclusive result, exhausted_budget set).
  std::uint64_t max_states = 4'000'000;
  /// Shrink the counterexample by greedy operation removal.
  bool minimize = true;
};

struct CheckResult {
  /// True iff the history is linearizable w.r.t. the spec.  False with
  /// exhausted_budget set means *inconclusive*, not proven bad.
  bool linearizable = false;
  bool exhausted_budget = false;
  std::uint64_t ops = 0;
  std::uint64_t partitions = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t memo_hits = 0;
  /// Non-linearizable sub-history (empty when linearizable): minimal
  /// under greedy op removal, each op still carrying its stamps.
  std::vector<Operation> counterexample;
  /// Invoke + response events in the counterexample (acceptance gates
  /// bound this, e.g. "rejects with a counterexample <= 10 events").
  [[nodiscard]] std::uint64_t counterexample_events() const {
    std::uint64_t events = 0;
    for (const Operation& op : counterexample) events += op.pending() ? 1 : 2;
    return events;
  }
  /// Human-readable verdict: the stuck operation and the rendered
  /// counterexample on failure, a one-line summary otherwise.
  std::string explanation;
};

[[nodiscard]] CheckResult check_history(const History& history,
                                        const SequentialSpec& spec,
                                        const CheckOptions& options = {});

}  // namespace adets::lin
