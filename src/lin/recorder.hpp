// History recording: the client-side layer that turns workload
// invocations into a checkable History.
//
// Each client thread appends invoke/response events to its *own*
// ClientRecorder — no lock is taken on the append path; the only shared
// write is one atomic fetch_add on the global stamp counter, which is
// what makes the recorded real-time order a total order that every
// merge produces identically.  After the client threads have joined,
// HistoryRecorder::merge() deterministically interleaves the per-client
// logs by stamp.
//
// An invocation that throws (client timeout, replica crash) stays
// *pending* in the log: the request may still have executed inside the
// group, and the checker accounts for both possibilities.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lin/history.hpp"
#include "runtime/client.hpp"

namespace adets::lin {

class HistoryRecorder;

/// One client's private event log.  NOT thread-safe: owned by exactly
/// one client thread between begin() and the recorder's merge().
class ClientRecorder {
 public:
  /// Records the invocation event; returns the slot to complete later.
  std::size_t begin(const std::string& method, const common::Bytes& args);

  /// Records the response event for `slot`.
  void complete(std::size_t slot, const common::Bytes& result);

 private:
  friend class HistoryRecorder;
  ClientRecorder(HistoryRecorder& owner, std::uint64_t index)
      : owner_(owner), index_(index) {}

  HistoryRecorder& owner_;
  std::uint64_t index_;
  std::vector<Operation> ops_;
};

/// Owns the per-client logs and the global stamp counter.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(std::size_t clients);

  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  [[nodiscard]] ClientRecorder& client(std::size_t index) {
    return *clients_[index];
  }
  [[nodiscard]] std::size_t clients() const { return clients_.size(); }

  /// Stamp-ordered merge of every client log.  Only call after all
  /// recording threads have joined.
  [[nodiscard]] History merge() const;

  [[nodiscard]] std::uint64_t next_stamp() {
    return stamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  std::atomic<std::uint64_t> stamp_{0};
  std::vector<std::unique_ptr<ClientRecorder>> clients_;
};

/// Drop-in recording wrapper for runtime::Client: records the
/// invocation, forwards it, records the response.  A timeout exception
/// propagates and leaves the operation pending.
class RecordingClient {
 public:
  RecordingClient(runtime::Client& client, ClientRecorder& recorder)
      : client_(client), recorder_(recorder) {}

  common::Bytes invoke(common::GroupId group, const std::string& method,
                       const common::Bytes& args,
                       std::chrono::milliseconds timeout = std::chrono::seconds(60)) {
    const std::size_t slot = recorder_.begin(method, args);
    common::Bytes result = client_.invoke(group, method, args, timeout);
    recorder_.complete(slot, result);
    return result;
  }

 private:
  runtime::Client& client_;
  ClientRecorder& recorder_;
};

/// Writes `text` to `<dir>/<file_name>` where `<dir>` is
/// $ADETS_ARTIFACT_DIR (default "adets-artifacts"), creating the
/// directory if needed.  Returns the path written, or "" on IO failure.
/// This is how scenario failures become machine-readable, replayable
/// artifacts (tools/lincheck reads the .history ones back).
[[nodiscard]] std::string write_artifact(const std::string& file_name,
                                         const std::string& text);

}  // namespace adets::lin
