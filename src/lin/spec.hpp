// Sequential specification models for linearizability checking.
//
// A SequentialSpec is the oracle side of the Wing-Gong search: it says
// whether an operation, *with the result the client actually observed*,
// is legal from a given abstract state, and what the successor state is.
// States are canonical byte strings so the checker can memoize visited
// (linearized-set, state) configurations — the optimisation that makes
// fig4/fig6-scale histories check in seconds.
//
// Contract for implementations:
//  - initial_state() and every apply() result must be *canonical*: two
//    semantically equal states serialise identically (sort map keys,
//    no incidental bytes), or memoization silently degrades.
//  - apply() returns nullopt iff the observed result is impossible from
//    `state`; it must never throw on payloads produced by the matching
//    object (malformed payloads from a corrupted artifact may throw
//    SerializationError, which the checker reports as a spec error).
//  - partition_of() implements P-compositionality: operations in
//    different partitions never interact (per-key for the KV store), so
//    each partition is checked independently.  Return nullopt for an
//    operation that spans partitions (KvStore "size"); one such
//    operation collapses the whole history into a single partition.
//
// Adding a spec for a new object type = subclassing SequentialSpec and
// registering it in make_spec(); see docs/linearizability.md.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "lin/history.hpp"

namespace adets::lin {

class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;

  /// Registry name ("kv", "bounded-buffer", "unbounded-buffer").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Canonical serialized initial state.
  [[nodiscard]] virtual std::string initial_state() const = 0;

  /// Successor state if `op` (with its observed result) can linearize
  /// from `state`; nullopt when the observed result is impossible.
  [[nodiscard]] virtual std::optional<std::string> apply(
      const std::string& state, const Operation& op) const = 0;

  /// Successor state when a *pending* op (no observed result — the
  /// request may have executed inside the group even though the client
  /// never saw a reply) linearizes from `state`.  The effect is applied
  /// with the result unconstrained; nullopt when the operation could
  /// not take effect from `state` at all (e.g. a blocking consume of an
  /// empty buffer).  All shipped objects have deterministic effects, so
  /// one successor suffices.
  [[nodiscard]] virtual std::optional<std::string> apply_pending(
      const std::string& state, const Operation& op) const = 0;

  /// P-compositionality partition of `op`; nullopt = spans partitions.
  [[nodiscard]] virtual std::optional<std::string> partition_of(
      const Operation& op) const = 0;

  /// Human-readable rendering ("put(k1, v2) -> existed") for reports.
  [[nodiscard]] virtual std::string describe(const Operation& op) const = 0;
};

/// The KvStore spec (src/workload/kvstore.*): put/get/remove/cas/size/
/// watch over string keys.  State: the sorted (key, value) map.  The
/// `watch` reply's changed-flag is timing-dependent (it reports whether
/// the bounded wait observed a version bump), so only the returned
/// value is checked against the state at the linearization point.
class KvSpec final : public SequentialSpec {
 public:
  [[nodiscard]] std::string name() const override { return "kv"; }
  [[nodiscard]] std::string initial_state() const override;
  [[nodiscard]] std::optional<std::string> apply(
      const std::string& state, const Operation& op) const override;
  [[nodiscard]] std::optional<std::string> apply_pending(
      const std::string& state, const Operation& op) const override;
  [[nodiscard]] std::optional<std::string> partition_of(
      const Operation& op) const override;
  [[nodiscard]] std::string describe(const Operation& op) const override;
};

/// FIFO queue spec shared by the two buffer objects (workload/objects.*):
/// produce/consume plus their poll_* variants.  State: produced count,
/// consumed count and the queued items.  A bounded buffer additionally
/// refuses produce at capacity (the blocking produce can only linearize
/// while the queue has room).
class BufferSpec final : public SequentialSpec {
 public:
  /// `capacity` 0 = unbounded (Fig. 6a), else bounded (Fig. 6b).
  explicit BufferSpec(std::size_t capacity = 0) : capacity_(capacity) {}

  [[nodiscard]] std::string name() const override {
    return capacity_ == 0 ? "unbounded-buffer" : "bounded-buffer";
  }
  [[nodiscard]] std::string initial_state() const override;
  [[nodiscard]] std::optional<std::string> apply(
      const std::string& state, const Operation& op) const override;
  [[nodiscard]] std::optional<std::string> apply_pending(
      const std::string& state, const Operation& op) const override;
  [[nodiscard]] std::optional<std::string> partition_of(
      const Operation& op) const override;
  [[nodiscard]] std::string describe(const Operation& op) const override;

 private:
  std::size_t capacity_;
};

/// Spec registry for tools/lincheck and history headers; nullptr for an
/// unknown name.  "bounded-buffer" uses the BoundedBuffer default
/// capacity (2) unless the name carries an explicit ":<capacity>".
[[nodiscard]] std::unique_ptr<SequentialSpec> make_spec(const std::string& name);

}  // namespace adets::lin
