#include "lin/history.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace adets::lin {

namespace {

constexpr const char* kHeader = "# adets-lin history v1";

std::string hex(const common::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  if (bytes.empty()) return "-";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

std::optional<common::Bytes> unhex(const std::string& text) {
  if (text == "-") return common::Bytes{};
  if (text.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  common::Bytes out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

void History::normalize() {
  std::sort(ops.begin(), ops.end(), [](const Operation& a, const Operation& b) {
    if (a.invoke_stamp != b.invoke_stamp) return a.invoke_stamp < b.invoke_stamp;
    return a.client < b.client;
  });
}

std::string to_string(const Operation& op) {
  std::string out = "c" + std::to_string(op.client) + " [" +
                    std::to_string(op.invoke_stamp) + ",";
  out += op.pending() ? "?" : std::to_string(op.response_stamp);
  out += "] " + op.method + "(" +
         (op.args.empty() ? std::string() : "0x" + hex(op.args)) + ")";
  if (op.pending()) {
    out += " -> pending";
  } else {
    out += " -> (" +
           (op.result.empty() ? std::string() : "0x" + hex(op.result)) + ")";
  }
  return out;
}

std::string render_history(const std::vector<Operation>& ops) {
  std::string out;
  for (const Operation& op : ops) out += "  " + to_string(op) + "\n";
  return out;
}

void save_history(std::ostream& out, const History& history,
                  const std::string& spec_name) {
  out << kHeader << "\n";
  if (!spec_name.empty()) out << "spec " << spec_name << "\n";
  for (const Operation& op : history.ops) {
    out << "op " << op.client << " " << op.invoke_stamp << " ";
    if (op.pending()) {
      out << "pending";
    } else {
      out << op.response_stamp;
    }
    out << " " << op.method << " " << hex(op.args) << " ";
    if (op.pending()) {
      out << "-";
    } else {
      out << hex(op.result);
    }
    out << "\n";
  }
}

std::string history_to_text(const History& history, const std::string& spec_name) {
  std::ostringstream out;
  save_history(out, history, spec_name);
  return out.str();
}

std::optional<LoadedHistory> load_history(std::istream& in, std::string* error) {
  const auto fail = [error](int line_no, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };
  LoadedHistory loaded;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "spec") {
      fields >> loaded.spec_name;
      continue;
    }
    if (tag != "op") return fail(line_no, "unknown record '" + tag + "'");
    Operation op;
    std::string response;
    std::string args_hex;
    std::string result_hex;
    fields >> op.client >> op.invoke_stamp >> response >> op.method >>
        args_hex >> result_hex;
    if (fields.fail()) return fail(line_no, "truncated op record");
    if (response == "pending") {
      op.response_stamp = 0;
    } else {
      try {
        op.response_stamp = std::stoull(response);
      } catch (const std::exception&) {
        return fail(line_no, "bad response stamp '" + response + "'");
      }
      if (op.response_stamp == 0) return fail(line_no, "response stamp 0 is reserved");
      if (op.response_stamp <= op.invoke_stamp) {
        return fail(line_no, "response stamp not after invoke stamp");
      }
    }
    if (op.invoke_stamp == 0) return fail(line_no, "invoke stamp 0 is reserved");
    const auto args = unhex(args_hex);
    if (!args) return fail(line_no, "bad args hex");
    op.args = *args;
    const auto result = unhex(result_hex);
    if (!result) return fail(line_no, "bad result hex");
    if (op.pending() && result_hex != "-") {
      return fail(line_no, "pending op cannot carry a result");
    }
    op.result = *result;
    loaded.history.ops.push_back(std::move(op));
  }
  loaded.history.normalize();
  return loaded;
}

}  // namespace adets::lin
