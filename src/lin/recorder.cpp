#include "lin/recorder.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace adets::lin {

std::size_t ClientRecorder::begin(const std::string& method,
                                  const common::Bytes& args) {
  Operation op;
  op.client = index_;
  op.method = method;
  op.args = args;
  op.invoke_stamp = owner_.next_stamp();
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void ClientRecorder::complete(std::size_t slot, const common::Bytes& result) {
  Operation& op = ops_[slot];
  op.result = result;
  op.response_stamp = owner_.next_stamp();
}

HistoryRecorder::HistoryRecorder(std::size_t clients) {
  clients_.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    clients_.emplace_back(new ClientRecorder(*this, i));
  }
}

History HistoryRecorder::merge() const {
  History history;
  for (const auto& client : clients_) {
    history.ops.insert(history.ops.end(), client->ops_.begin(),
                       client->ops_.end());
  }
  history.normalize();
  return history;
}

std::string write_artifact(const std::string& file_name,
                           const std::string& text) {
  const char* env = std::getenv("ADETS_ARTIFACT_DIR");  // NOLINT(concurrency-mt-unsafe)
  const std::filesystem::path dir =
      (env != nullptr && *env != '\0') ? env : "adets-artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::filesystem::path path = dir / file_name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {};
  out << text;
  out.close();
  if (!out) return {};
  return path.string();
}

}  // namespace adets::lin
