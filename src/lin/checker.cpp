#include "lin/checker.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>

namespace adets::lin {

namespace {

/// One invoke or response event in the stamp-ordered entry list.  The
/// list is a doubly-linked chain over a flat vector; lift() unlinks an
/// operation's pair of entries and unlift() relinks them, in strict
/// LIFO discipline (the unlinked node keeps its neighbour indices).
struct Entry {
  std::size_t op = 0;     // index into the partition's op vector
  bool is_call = false;   // invoke event (response otherwise)
  std::uint64_t stamp = 0;
  int match = -1;         // the paired entry; -1 for a pending call
  int prev = -1;
  int next = -1;
};

class Search {
 public:
  Search(const std::vector<Operation>& ops, const SequentialSpec& spec,
         std::uint64_t budget)
      : ops_(ops), spec_(spec), budget_(budget) {}

  struct Outcome {
    bool linearizable = false;
    bool exhausted = false;
    std::uint64_t states_explored = 0;
    std::uint64_t memo_hits = 0;
  };

  Outcome run() {
    Outcome out;
    build_entries();
    std::string state = spec_.initial_state();
    std::vector<std::uint64_t> linearized((ops_.size() + 63) / 64, 0);
    struct Frame {
      int entry;
      std::string prev_state;
    };
    std::vector<Frame> calls;
    std::size_t remaining_returns = 0;
    for (const Operation& op : ops_) {
      if (!op.pending()) ++remaining_returns;
    }

    int entry = entries_.empty() ? -1 : head_;
    for (;;) {
      if (remaining_returns == 0) {
        // Every completed op linearized; leftover pending ops are
        // legitimately dropped (the request may never have executed).
        out.linearizable = true;
        return out;
      }
      if (out.states_explored + out.memo_hits >= budget_) {
        out.exhausted = true;
        return out;
      }
      if (entry >= 0 && entries_[entry].is_call) {
        const Operation& op = ops_[entries_[entry].op];
        const std::optional<std::string> successor =
            op.pending() ? spec_.apply_pending(state, op) : spec_.apply(state, op);
        bool advanced = false;
        if (successor) {
          set_bit(linearized, entries_[entry].op);
          if (memo_.insert(memo_key(linearized, *successor)).second) {
            ++out.states_explored;
            calls.push_back(Frame{entry, state});
            state = *successor;
            if (!op.pending()) --remaining_returns;
            lift(entry);
            entry = head_;
            advanced = true;
          } else {
            ++out.memo_hits;
            clear_bit(linearized, entries_[entry].op);
          }
        }
        if (!advanced) entry = entries_[entry].next;
        continue;
      }
      // A response event (or the end of the list): every operation that
      // could linearize before this point has been tried — backtrack.
      if (calls.empty()) {
        return out;  // non-linearizable
      }
      const Frame frame = calls.back();
      calls.pop_back();
      state = frame.prev_state;
      clear_bit(linearized, entries_[frame.entry].op);
      if (!ops_[entries_[frame.entry].op].pending()) ++remaining_returns;
      unlift(frame.entry);
      entry = entries_[frame.entry].next;
    }
  }

 private:
  void build_entries() {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      Entry call;
      call.op = i;
      call.is_call = true;
      call.stamp = ops_[i].invoke_stamp;
      entries_.push_back(call);
      if (!ops_[i].pending()) {
        Entry ret;
        ret.op = i;
        ret.is_call = false;
        ret.stamp = ops_[i].response_stamp;
        entries_.push_back(ret);
      }
    }
    std::vector<int> order(entries_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    // Equal stamps: treat as concurrent — calls sort before responses so
    // the pair is considered overlapping rather than ordered.
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      if (entries_[a].stamp != entries_[b].stamp) {
        return entries_[a].stamp < entries_[b].stamp;
      }
      if (entries_[a].is_call != entries_[b].is_call) return entries_[a].is_call;
      return entries_[a].op < entries_[b].op;
    });
    std::vector<int> call_of(ops_.size(), -1);
    int prev = -1;
    for (const int idx : order) {
      if (prev < 0) {
        head_ = idx;
      } else {
        entries_[prev].next = idx;
      }
      entries_[idx].prev = prev;
      prev = idx;
      if (entries_[idx].is_call) {
        call_of[entries_[idx].op] = idx;
      } else {
        entries_[idx].match = call_of[entries_[idx].op];
        entries_[call_of[entries_[idx].op]].match = idx;
      }
    }
    if (prev >= 0) entries_[prev].next = -1;
  }

  void unlink(int idx) {
    Entry& e = entries_[idx];
    if (e.prev >= 0) {
      entries_[e.prev].next = e.next;
    } else {
      head_ = e.next;
    }
    if (e.next >= 0) entries_[e.next].prev = e.prev;
  }

  void relink(int idx) {
    Entry& e = entries_[idx];
    if (e.prev >= 0) {
      entries_[e.prev].next = idx;
    } else {
      head_ = idx;
    }
    if (e.next >= 0) entries_[e.next].prev = idx;
  }

  void lift(int call_idx) {
    unlink(call_idx);
    if (entries_[call_idx].match >= 0) unlink(entries_[call_idx].match);
  }

  void unlift(int call_idx) {
    // Reverse order of lift(): the response first, then the call.
    if (entries_[call_idx].match >= 0) relink(entries_[call_idx].match);
    relink(call_idx);
  }

  static void set_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
    bits[i / 64] |= (std::uint64_t{1} << (i % 64));
  }
  static void clear_bit(std::vector<std::uint64_t>& bits, std::size_t i) {
    bits[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  static std::string memo_key(const std::vector<std::uint64_t>& bits,
                              const std::string& state) {
    std::string key;
    key.reserve(bits.size() * sizeof(std::uint64_t) + 1 + state.size());
    for (const std::uint64_t word : bits) {
      for (int b = 0; b < 8; ++b) {
        key.push_back(static_cast<char>((word >> (b * 8)) & 0xff));
      }
    }
    key.push_back('\0');
    key += state;
    return key;
  }

  const std::vector<Operation>& ops_;
  const SequentialSpec& spec_;
  std::uint64_t budget_;
  std::vector<Entry> entries_;
  int head_ = -1;
  std::unordered_set<std::string> memo_;  // membership only, never iterated
};

/// Checks one op vector outright (no partitioning, no minimization).
Search::Outcome check_ops(const std::vector<Operation>& ops,
                          const SequentialSpec& spec, std::uint64_t budget) {
  return Search(ops, spec, budget).run();
}

/// The event-prefix of `ops` cut just after stamp `cutoff`: operations
/// invoked later vanish, operations still in flight at the cut become
/// pending (result unobserved).  Prefixes are *sound* witnesses — a
/// prefix of a linearizable history is linearizable (restrict the
/// witness; newly-pending ops have unconstrained results) — unlike
/// removing arbitrary operations, which can turn a linearizable history
/// into a non-linearizable one (drop the put feeding a get).
std::vector<Operation> event_prefix(const std::vector<Operation>& ops,
                                    std::uint64_t cutoff) {
  std::vector<Operation> out;
  for (const Operation& op : ops) {
    if (op.invoke_stamp > cutoff) continue;
    Operation copy = op;
    if (!copy.pending() && copy.response_stamp > cutoff) {
      copy.response_stamp = 0;
      copy.result.clear();
    }
    out.push_back(std::move(copy));
  }
  return out;
}

std::string render_ops(const std::vector<Operation>& ops,
                       const SequentialSpec& spec) {
  std::string out;
  for (const Operation& op : ops) {
    out += "  c" + std::to_string(op.client) + " [" +
           std::to_string(op.invoke_stamp) + "," +
           (op.pending() ? std::string("?") : std::to_string(op.response_stamp)) +
           "] " + spec.describe(op) + "\n";
  }
  return out;
}

}  // namespace

CheckResult check_history(const History& history, const SequentialSpec& spec,
                          const CheckOptions& options) {
  CheckResult result;
  result.ops = history.ops.size();

  History sorted = history;
  sorted.normalize();

  // Partition when the spec places every operation (P-compositionality);
  // one cross-partition op (KvStore "size") collapses to a single group.
  std::map<std::string, std::vector<Operation>> partitions;
  bool partitioned = options.partition;
  if (partitioned) {
    try {
      for (const Operation& op : sorted.ops) {
        const auto key = spec.partition_of(op);
        if (!key) {
          partitioned = false;
          break;
        }
        partitions[*key].push_back(op);
      }
    } catch (const common::SerializationError&) {
      partitioned = false;  // malformed args: check unpartitioned, reject there
    }
  }
  if (!partitioned) {
    partitions.clear();
    partitions["*"] = sorted.ops;
  }
  result.partitions = partitions.size();

  std::uint64_t budget = options.max_states;
  for (const auto& [key, ops] : partitions) {
    Search::Outcome outcome;
    try {
      outcome = check_ops(ops, spec, budget);
    } catch (const common::SerializationError& error) {
      result.explanation = "spec error decoding an operation payload: " +
                           std::string(error.what()) + "\n" +
                           render_ops(ops, spec);
      return result;
    }
    result.states_explored += outcome.states_explored;
    result.memo_hits += outcome.memo_hits;
    budget -= std::min(budget, outcome.states_explored + outcome.memo_hits);
    if (outcome.exhausted) {
      result.exhausted_budget = true;
      result.explanation =
          "inconclusive: state budget exhausted in partition '" + key + "'";
      return result;
    }
    if (!outcome.linearizable) {
      // Minimal counterexample: the shortest event-prefix of this
      // partition that is already non-linearizable.  Failure is
      // monotone in the prefix (extending a non-linearizable prefix
      // cannot make it linearizable), so binary-search the response
      // count.  The last response inside the winning prefix is the
      // observation no linearization can explain.
      std::vector<Operation> candidate = ops;
      std::optional<Operation> culprit;
      if (options.minimize) {
        std::vector<std::uint64_t> cuts;
        for (const Operation& op : ops) {
          if (!op.pending()) cuts.push_back(op.response_stamp);
        }
        std::sort(cuts.begin(), cuts.end());
        const auto fails = [&](std::size_t idx) {
          const auto trial_outcome =
              check_ops(event_prefix(ops, cuts[idx]), spec, options.max_states);
          return !trial_outcome.exhausted && !trial_outcome.linearizable;
        };
        // cuts can't be empty (an all-pending history trivially
        // linearizes), but guard against a degenerate spec anyway.
        if (!cuts.empty() && fails(cuts.size() - 1)) {
          std::size_t lo = 0;
          std::size_t hi = cuts.size() - 1;
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (fails(mid)) {
              hi = mid;
            } else {
              lo = mid + 1;
            }
          }
          candidate = event_prefix(ops, cuts[hi]);
          for (const Operation& op : candidate) {
            if (op.response_stamp == cuts[hi]) culprit = op;
          }
        }
      }
      result.counterexample = candidate;
      result.explanation = "non-linearizable";
      if (partitions.size() > 1 || partitioned) {
        result.explanation += " (partition '" + key + "')";
      }
      if (culprit) {
        result.explanation +=
            ": no linearization admits " + spec.describe(*culprit);
      }
      result.explanation += "\nminimal counterexample (" +
                            std::to_string(candidate.size()) + " ops, " +
                            std::to_string(result.counterexample_events()) +
                            " events):\n" + render_ops(candidate, spec);
      return result;
    }
  }

  result.linearizable = true;
  result.explanation =
      "linearizable: " + std::to_string(result.ops) + " ops across " +
      std::to_string(result.partitions) + " partition(s), " +
      std::to_string(result.states_explored) + " states explored";
  return result;
}

}  // namespace adets::lin
