// Unbounded MPMC blocking queue with shutdown support.
//
// Used by the transport delivery service and by scheduler internals.
// pop() blocks with a predicate (CP.42) and returns nullopt once the
// queue is closed and drained, letting consumer threads exit cleanly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/annotations.hpp"
#include "common/clock.hpp"

namespace adets::common {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item; returns false if the queue has been closed.
  bool push(T item) {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed+drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks up to `timeout` (real time); nullopt on timeout or closure.
  std::optional<T> pop_for(Duration timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> guard(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed; pending pops drain remaining items then
  /// return nullopt.  Further pushes are rejected.
  void close() {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> guard(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> guard(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  // Raw std::mutex: this queue sits below common::Mutex (scheduler
  // internals use it on shutdown paths where lock-order recording is
  // already torn down), so the guard facts are declared for adets-sa
  // only.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_ ADETS_GUARDED_BY_STATIC(mutex_);
  bool closed_ ADETS_GUARDED_BY_STATIC(mutex_) = false;
};

}  // namespace adets::common
