// One-shot timer service.
//
// Schedulers use local timers for time-bounded wait() operations: the
// timer fires locally and the scheduler converts the expiry into a
// deterministic, totally-ordered event (a timeout broadcast or an
// ADETS-LSA timeout thread).  Callbacks run on the timer thread and must
// be short.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#include "common/mc_hooks.hpp"

namespace adets::common {

class TimerService {
 public:
  using TimerId = std::uint64_t;

  TimerService() : worker_([this] { run(); }) {}
  ~TimerService() { stop(); }

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Schedules `fn` to run after `delay` (real time); returns a handle
  /// usable with cancel().  Under a model-checking run the expiry is
  /// virtualised: the checker owns when (and whether) `fn` fires, so the
  /// clock never gates exploration (see docs/model-checking.md).
  TimerId schedule(Duration delay, std::function<void()> fn) {
    if (auto* mc = mchook::active()) {
      std::uint64_t virtual_id = 0;
      if (mc->timer_schedule(&fn, &virtual_id)) return virtual_id;
    }
    const std::lock_guard<std::mutex> guard(mutex_);
    const TimerId id = next_id_++;
    // Timer deadlines are wall-clock by design; expiry re-enters
    // scheduling through the total order, so this clock read cannot
    // steer a grant decision.
    // adets-sa:allow(grant-path-taint) deadline arithmetic, not a decision input
    timers_.emplace(Key{Clock::now() + delay, id}, std::move(fn));
    cv_.notify_all();
    return id;
  }

  /// Cancels a pending timer; returns false if it already fired/ran.
  bool cancel(TimerId id) {
    if (auto* mc = mchook::active()) {
      bool cancelled = false;
      if (mc->timer_cancel(id, &cancelled)) return cancelled;
    }
    const std::lock_guard<std::mutex> guard(mutex_);
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->first.id == id) {
        timers_.erase(it);
        return true;
      }
    }
    return false;
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

 private:
  struct Key {
    TimePoint due;
    TimerId id;
    friend bool operator<(const Key& a, const Key& b) {
      return a.due != b.due ? a.due < b.due : a.id < b.id;
    }
  };

  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
      if (timers_.empty()) {
        cv_.wait(lock, [this] { return stopping_ || !timers_.empty(); });
        continue;
      }
      const TimePoint due = timers_.begin()->first.due;
      if (Clock::now() < due) {
        cv_.wait_until(lock, due);
        continue;
      }
      auto fn = std::move(timers_.begin()->second);
      timers_.erase(timers_.begin());
      lock.unlock();
      fn();
      lock.lock();
    }
  }

  // Raw std::mutex: the timer thread fires scheduler callbacks, so a
  // common::Mutex here would feed the lock-order validator events from
  // a context it does not model; guard facts are for adets-sa only.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::function<void()>> timers_ ADETS_GUARDED_BY_STATIC(mutex_);
  TimerId next_id_ ADETS_GUARDED_BY_STATIC(mutex_) = 1;
  bool stopping_ ADETS_GUARDED_BY_STATIC(mutex_) = false;
  std::thread worker_;
};

}  // namespace adets::common
