// Debug-build lock-order validator.
//
// Deadlocks in the ADETS runtime come from lock-order inversions between
// subsystem monitors (e.g. a scheduler hook calling back into the GCS
// while a GCS handler calls into the scheduler).  TSan finds those only
// when both orders actually race in one run; this validator finds the
// *potential*: it maintains a global happens-before graph over mutexes
// ("A was held while B was acquired") and aborts with the offending
// cycle the first time any thread closes one -- even if the run would
// not have deadlocked.
//
// The registry is always compiled; common::Mutex (common/mutex.hpp)
// calls into it only when the build defines ADETS_LOCK_ORDER_CHECK
// (cmake -DADETS_LOCK_ORDER_CHECK=ON -- the CI sanitizer job does).
// Tests drive the registry API directly, so the default build still
// exercises the cycle detection itself.
#pragma once

#include <functional>
#include <string>

namespace adets::common::lock_order {

/// Description of a detected ordering cycle, handed to the failure
/// handler.  `description` is a multi-line human-readable report naming
/// every lock on the cycle.
struct CycleReport {
  std::string description;
};

/// Called by Mutex::lock (and by tests) immediately BEFORE blocking on
/// `lock`, so a potential deadlock is reported instead of hanging.
/// Records an edge held -> lock for every lock the calling thread holds
/// and invokes the failure handler if any edge closes a cycle.
void on_acquire(const void* lock, const char* name);

/// Called after a successful try_lock.  Adds `lock` to the thread's
/// held set without recording ordering edges: a try-lock cannot block,
/// so it cannot complete a deadlock by itself, but locks acquired while
/// it is held still order after it.
void on_try_acquire(const void* lock, const char* name);

/// Called after `lock` is released by the calling thread.
void on_release(const void* lock);

/// Called from the mutex destructor: forgets the lock's node and edges
/// so a new mutex reusing the address does not inherit stale ordering.
void on_destroy(const void* lock);

using Handler = std::function<void(const CycleReport&)>;

/// Replaces the failure handler (default: print the report to stderr
/// and abort).  Returns the previous handler; tests install a capturing
/// handler and restore the old one when done.
Handler set_failure_handler(Handler handler);

/// Drops all recorded edges and names.  Test-only; callers must not
/// hold any instrumented lock.
void reset_for_test();

/// Number of distinct ordering edges currently recorded (test aid).
std::size_t edge_count();

}  // namespace adets::common::lock_order
