// Model-checker interception points (adets-mc, src/mc/).
//
// The stateless model checker explores the scheduler interleaving space
// by serialising every thread of a scenario onto a single logical
// processor and enumerating, at each synchronisation operation, which
// thread may take the next step (CHESS/DPOR lineage; see
// docs/model-checking.md).  The operations it must own are exactly the
// ones the ADETS monitors already route through this directory:
// common::Mutex acquire/release, common::CondVar wait/notify (including
// the timed waits whose expiry the strategies convert into totally
// ordered timeout events), and common::TimerService expiries.
//
// This header is the entire coupling surface: the wrappers consult one
// process-global Interceptor pointer that is null except while a model
// checking run is active, so production builds pay a single relaxed
// atomic load per operation.  Every callback returns false when the
// calling thread is not managed by the checker, in which case the
// wrapper falls back to the real primitive (the checker's own control
// thread, gtest main threads and the TimerService worker all take that
// path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace adets::mchook {

class Interceptor {
 public:
  virtual ~Interceptor() = default;

  // --- common::Mutex ------------------------------------------------------
  // Handled calls perform the underlying std operation themselves (the
  // checker really acquires/releases, so invariants hold if it hands
  // control back to uninstrumented code during teardown).
  virtual bool mutex_lock(void* mutex, const char* name) = 0;
  virtual bool mutex_unlock(void* mutex) = 0;
  virtual bool mutex_try_lock(void* mutex, const char* name, bool* acquired) = 0;

  // --- common::CondVar ----------------------------------------------------
  /// `mutex` is the common::Mutex guarding the wait.  For timed waits the
  /// expiry is a scheduling choice, not a clock read: the checker decides
  /// whether the wait resolves as notified or timed out and reports it
  /// through `*timed_out`.
  virtual bool cv_wait(void* condvar, void* mutex, bool timed, bool* timed_out) = 0;
  virtual bool cv_notify(void* condvar, bool all) = 0;

  // --- common::TimerService ----------------------------------------------
  /// Virtualises a one-shot timer: instead of arming a real clock, the
  /// expiry becomes an explorable choice that runs `*fn` on a checker
  /// managed thread at a point of the checker's choosing.  `*fn` is moved
  /// from only when the call returns true (handled); on false the caller
  /// still owns it and arms a real timer.
  virtual bool timer_schedule(std::function<void()>* fn, std::uint64_t* id) = 0;
  virtual bool timer_cancel(std::uint64_t id, bool* cancelled) = 0;

  // --- scheduler thread lifecycle (sched/base.cpp) ------------------------
  /// Called by the spawning thread immediately before constructing the
  /// std::thread; returns a ticket the child passes to thread_begin so
  /// task identities are assigned in deterministic (spawn) order even
  /// though children start racing.  Ticket 0 means "not managed".
  virtual std::uint64_t thread_spawning() = 0;
  virtual void thread_begin(std::uint64_t ticket) = 0;
  virtual void thread_end() = 0;

  // --- transport delivery choice (transport/network.cpp) ------------------
  /// Given `count` messages that are all releasable now, returns the index
  /// the dispatcher should release next.  Lets the checker enumerate
  /// delivery orders that real link-latency jitter would only sample.
  virtual std::size_t delivery_choice(std::size_t count) = 0;
};

/// Null except while src/mc has a run active.  Ordinary builds never
/// store to this; the wrappers only pay the load.
extern std::atomic<Interceptor*> g_interceptor;

inline Interceptor* active() {
  return g_interceptor.load(std::memory_order_acquire);
}

/// Installs `interceptor` for the duration of a model-checking run.
/// Aborts if another run is active (runs are process-exclusive).
void install(Interceptor* interceptor);
void uninstall(Interceptor* interceptor);

}  // namespace adets::mchook
