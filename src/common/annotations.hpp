// Clang Thread Safety Analysis annotation macros.
//
// These expand to clang's capability attributes when the compiler
// supports them (the CI clang job builds with
// -Wthread-safety -Werror=thread-safety-analysis) and to nothing under
// gcc/msvc, so annotated code stays portable.  Use them through the
// wrappers in common/mutex.hpp rather than annotating raw std types:
// std::mutex cannot carry a capability attribute, which is also why
// detlint's raw-mutex rule bans it from scheduler decision state.
//
// Conventions (see docs/static-analysis.md):
//  - data members protected by a mutex:        ADETS_GUARDED_BY(mu_)
//  - functions that assume the mutex is held:  ADETS_REQUIRES(mu_)
//  - lock/unlock primitives:                   ADETS_ACQUIRE / ADETS_RELEASE
// Attributes are NOT inherited by virtual overrides -- every override of
// an ADETS_REQUIRES function must repeat the annotation.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADETS_TSA(x) __attribute__((x))
#else
#define ADETS_TSA(x)
#endif
#else
#define ADETS_TSA(x)
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define ADETS_CAPABILITY(name) ADETS_TSA(capability(name))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define ADETS_SCOPED_CAPABILITY ADETS_TSA(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define ADETS_GUARDED_BY(x) ADETS_TSA(guarded_by(x))

/// Pointer member whose pointee is protected by `x`.
#define ADETS_PT_GUARDED_BY(x) ADETS_TSA(pt_guarded_by(x))

/// Compiler-invisible guard declaration, read only by the adets-sa
/// whole-program auditor (tools/adets-sa).  Use it where the guard is a
/// raw std::mutex that must stay invisible to clang's analysis -- e.g.
/// the model-checker runtime, whose locks cannot be common::Mutex
/// because that would recurse into the runtime's own mc hooks.
#define ADETS_GUARDED_BY_STATIC(x)

/// Function that must be called with the listed capabilities held.
#define ADETS_REQUIRES(...) ADETS_TSA(requires_capability(__VA_ARGS__))

/// Function that must be called with the capabilities held shared.
#define ADETS_REQUIRES_SHARED(...) \
  ADETS_TSA(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (exclusive).
#define ADETS_ACQUIRE(...) ADETS_TSA(acquire_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (shared).
#define ADETS_ACQUIRE_SHARED(...) ADETS_TSA(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define ADETS_RELEASE(...) ADETS_TSA(release_capability(__VA_ARGS__))

/// Function that releases shared capabilities.
#define ADETS_RELEASE_SHARED(...) ADETS_TSA(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define ADETS_TRY_ACQUIRE(result, ...) \
  ADETS_TSA(try_acquire_capability(result, __VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held.
#define ADETS_EXCLUDES(...) ADETS_TSA(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define ADETS_RETURN_CAPABILITY(x) ADETS_TSA(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use
/// needs a comment explaining why the analysis cannot see the invariant.
#define ADETS_NO_THREAD_SAFETY_ANALYSIS ADETS_TSA(no_thread_safety_analysis)

// --- adets-sa effect/conflict contracts -------------------------------------
// The following macros expand to nothing for every compiler: they are
// read only by the whole-program auditor (tools/adets-sa), which checks
// them interprocedurally.

/// Function that may park the calling thread on the outside world:
/// condvar waits, queue pops, timer waits, network sends, user upcalls.
/// Root fact for the blocking-under-monitor pass, and the boundary at
/// which the grant-path audit stops (control re-enters the total
/// order).  Transitive blocking is inferred; annotate only irreducible
/// boundaries such as virtual interface methods.
#define ADETS_MAY_BLOCK

/// The dual of ADETS_MAY_BLOCK: asserts the function never parks the
/// calling thread even though it lexically appears to (e.g. joining
/// threads already observed finished).  Every use needs a comment
/// explaining why the blocking primitive cannot actually wait.
#define ADETS_NON_BLOCKING

/// Declared conflict class of a replicated-object operation, keyed by
/// the named request parameter(s): two invocations conflict iff they
/// agree on every dimension.  The distinguished terms: `all` conflicts
/// with every operation on the object (always sound); `free` conflicts
/// with nothing and must touch no replica state.  Checked by the
/// conflict-class coverage pass; consumed by the early-scheduling
/// strategy (ROADMAP seventh strategy).
#define ADETS_CONFLICT(...)

/// Member fields the operation (and its same-class call tree) may
/// read.  Reads of fields listed in ADETS_WRITES need not be repeated.
#define ADETS_READS(...)

/// Member fields the operation (and its same-class call tree) may
/// write.  Over-declaration is sound (widens the conflict footprint);
/// an undeclared access is a conflict-uncovered finding.
#define ADETS_WRITES(...)
