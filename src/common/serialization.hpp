// Tiny binary serialisation layer for message payloads.
//
// Messages crossing the simulated network are flat byte vectors; Writer
// appends little-endian primitives / length-prefixed blobs, Reader
// consumes them in the same order.  Reader throws SerializationError on
// malformed input so corrupted payloads surface loudly in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.hpp"
#include "common/types.hpp"

namespace adets::common {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by Reader when a payload is truncated or malformed.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitives to a byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void blob(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  void blob(const SharedBytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  void blob(const std::uint8_t* data, std::size_t size) {
    u32(static_cast<std::uint32_t>(size));
    raw(data, size);
  }

  /// Pre-sizes the buffer; hot-path encoders reserve once instead of
  /// growing through repeated reallocations.
  void reserve(std::size_t size) { bytes_.reserve(size); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> value) {
    u64(static_cast<std::uint64_t>(value.value()));
  }

  [[nodiscard]] Bytes take() { return std::move(bytes_); }
  [[nodiscard]] const Bytes& bytes() const { return bytes_; }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  Bytes bytes_;
};

/// Consumes primitives from a byte buffer in Writer order.  Reader only
/// borrows the underlying storage — via a vector, a SharedBytes view or
/// a raw (pointer, size) span — and never copies it.
class Reader {
 public:
  explicit Reader(const Bytes& bytes) : data_(bytes.data()), size_(bytes.size()) {}
  /// Reader only borrows the buffer; binding a temporary would dangle.
  explicit Reader(Bytes&&) = delete;
  explicit Reader(const SharedBytes& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  explicit Reader(SharedBytes&&) = delete;
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t u64() { return read_pod<std::uint64_t>(); }
  std::int64_t i64() { return read_pod<std::int64_t>(); }
  double f64() { return read_pod<double>(); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const auto size = u32();
    need(size);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
    return s;
  }

  Bytes blob() {
    const auto size = u32();
    need(size);
    Bytes b(data_ + pos_, data_ + pos_ + size);
    pos_ += size;
    return b;
  }

  /// Consumes a blob but returns its (offset, length) within the buffer
  /// instead of copying it — combine with SharedBytes::slice for a
  /// zero-copy view of the payload inside its envelope.
  std::pair<std::size_t, std::size_t> blob_span() {
    const auto size = u32();
    need(size);
    const std::size_t offset = pos_;
    pos_ += size;
    return {offset, size};
  }

  template <typename IdType>
  IdType id() {
    return IdType(static_cast<typename IdType::rep_type>(u64()));
  }

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T read_pod() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void need(std::size_t n) const {
    if (pos_ + n > size_) {
      throw SerializationError("payload truncated: need " + std::to_string(n) +
                               " bytes at offset " + std::to_string(pos_) +
                               " of " + std::to_string(size_));
    }
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace adets::common
