// Capability-annotated mutex / condition-variable wrappers.
//
// The ADETS monitors (scheduler, GCS, replica, network) use these
// instead of raw std::mutex / std::condition_variable so that
//  1. clang's -Wthread-safety can check which functions run under which
//     monitor (see common/annotations.hpp and docs/static-analysis.md);
//  2. the debug lock-order validator (common/lock_order.hpp) observes
//     every acquisition when the build defines ADETS_LOCK_ORDER_CHECK;
//  3. detlint's raw-mutex rule has a sanctioned replacement to point at.
//
// CondVar waits release and reacquire the underlying std::mutex through
// the std::unique_lock that MutexLock manages, bypassing the lock-order
// hooks.  That is intentional: a thread blocked in wait acquires nothing
// else, so treating the monitor as continuously held adds no false
// ordering edges and keeps the relock cheap.
//
// Every blocking/wake operation additionally consults the adets-mc
// interception point (common/mc_hooks.hpp).  Outside a model-checking
// run that is one relaxed atomic load of a null pointer; during a run
// the checker serialises managed threads and decides grant/wakeup
// order itself (see docs/model-checking.md).  The hook contract keeps
// the real primitive state authoritative: lock() blocks in the hook
// until the checker grants, then takes the real mutex (uncontended by
// construction); unlock() releases the real mutex first and tells the
// checker afterwards.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#include "common/mc_hooks.hpp"
#ifdef ADETS_LOCK_ORDER_CHECK
#include "common/lock_order.hpp"
#endif

namespace adets::common {

/// An annotated, optionally order-checked std::mutex.
class ADETS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` appears in lock-order cycle reports; pass a string literal.
  explicit Mutex(const char* name) : name_(name) {}

  ~Mutex() {
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_destroy(this);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADETS_ACQUIRE() {
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_acquire(this, name_);
#endif
    // A handled hook call blocks until the checker grants this thread the
    // mutex; the real lock below is then uncontended.
    if (auto* mc = mchook::active()) mc->mutex_lock(this, name_);
    m_.lock();
  }

  void unlock() ADETS_RELEASE() {
    m_.unlock();
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_release(this);
#endif
    // Real release above precedes the model release, so a thread the
    // checker schedules next never blocks on the real mutex.
    if (auto* mc = mchook::active()) mc->mutex_unlock(this);
  }

  bool try_lock() ADETS_TRY_ACQUIRE(true) {
    if (auto* mc = mchook::active()) {
      bool acquired = false;
      if (mc->mutex_try_lock(this, name_, &acquired)) {
        if (!acquired) return false;
        m_.lock();  // model grant implies the real mutex is free
#ifdef ADETS_LOCK_ORDER_CHECK
        lock_order::on_try_acquire(this, name_);
#endif
        return true;
      }
    }
    const bool ok = m_.try_lock();
#ifdef ADETS_LOCK_ORDER_CHECK
    if (ok) lock_order::on_try_acquire(this, name_);
#endif
    return ok;
  }

  /// The wrapped mutex, for CondVar and std interop.  Locking through
  /// the native handle bypasses the analysis and the order checker;
  /// only MutexLock/CondVar may do so.
  std::mutex& native_handle() { return m_; }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex m_;
  const char* name_ = "mutex";
};

/// Scoped lock over Mutex, usable with CondVar.  Supports explicit
/// unlock()/lock() for monitor code that drops the lock around a
/// callback (e.g. PDS broadcasting while unlocked).
class ADETS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADETS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    lk_ = std::unique_lock<std::mutex>(mu_->native_handle(), std::adopt_lock);
  }

  ~MutexLock() ADETS_RELEASE() {
    if (lk_.owns_lock()) {
      lk_.release();
      mu_->unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the monitor (must currently hold it).
  void unlock() ADETS_RELEASE() {
    lk_.release();
    mu_->unlock();
  }

  /// Reacquires the monitor after unlock().
  void lock() ADETS_ACQUIRE() {
    mu_->lock();
    lk_ = std::unique_lock<std::mutex>(mu_->native_handle(), std::adopt_lock);
  }

  [[nodiscard]] bool owns_lock() const { return lk_.owns_lock(); }

  /// For CondVar only.
  std::unique_lock<std::mutex>& native() { return lk_; }

  /// The wrapped Mutex; CondVar passes it to the model-checker hook so a
  /// wait can be modelled as release+block+reacquire of that mutex.
  [[nodiscard]] Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with Mutex via MutexLock.
///
/// The predicate overloads run their predicate with the lock held, like
/// the std equivalents.  Prefer predicates that only read unguarded or
/// atomic state; clang analyzes lambda bodies as separate functions, so
/// a predicate touching ADETS_GUARDED_BY members may produce
/// false-positive warnings -- restructure such call sites as explicit
/// `while (!cond) cv.wait(lk);` loops instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // The real notify always fires even when a checker consumes the event:
  // during run teardown unmanaged threads may be parked on the real
  // condvar, and a spurious notify is harmless by the wait-loop contract.
  void notify_one() {
    if (auto* mc = mchook::active()) mc->cv_notify(this, /*all=*/false);
    cv_.notify_one();
  }

  void notify_all() {
    if (auto* mc = mchook::active()) mc->cv_notify(this, /*all=*/true);
    cv_.notify_all();
  }

  void wait(MutexLock& lk) {
    if (auto* mc = mchook::active()) {
      bool timed_out = false;
      if (mc->cv_wait(this, lk.mutex(), /*timed=*/false, &timed_out)) return;
    }
    cv_.wait(lk.native());
  }

  // The predicate overloads are explicit loops over the single-step waits
  // (instead of forwarding to the std predicate forms) so that every
  // blocking step passes through the hook above.  Semantics match the
  // std equivalents: predicate evaluated with the lock held, timed form
  // keeps one absolute deadline across spurious wakeups.

  template <typename Pred>
  void wait(MutexLock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  std::cv_status wait_for(MutexLock& lk, Duration timeout) {
    return wait_until(lk, Clock::now() + timeout);
  }

  template <typename Pred>
  bool wait_for(MutexLock& lk, Duration timeout, Pred pred) {
    const TimePoint deadline = Clock::now() + timeout;
    while (!pred()) {
      if (wait_until(lk, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  std::cv_status wait_until(MutexLock& lk, TimePoint deadline) {
    if (auto* mc = mchook::active()) {
      bool timed_out = false;
      if (mc->cv_wait(this, lk.mutex(), /*timed=*/true, &timed_out)) {
        return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
      }
    }
    return cv_.wait_until(lk.native(), deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace adets::common
