// Capability-annotated mutex / condition-variable wrappers.
//
// The ADETS monitors (scheduler, GCS, replica, network) use these
// instead of raw std::mutex / std::condition_variable so that
//  1. clang's -Wthread-safety can check which functions run under which
//     monitor (see common/annotations.hpp and docs/static-analysis.md);
//  2. the debug lock-order validator (common/lock_order.hpp) observes
//     every acquisition when the build defines ADETS_LOCK_ORDER_CHECK;
//  3. detlint's raw-mutex rule has a sanctioned replacement to point at.
//
// CondVar waits release and reacquire the underlying std::mutex through
// the std::unique_lock that MutexLock manages, bypassing the lock-order
// hooks.  That is intentional: a thread blocked in wait acquires nothing
// else, so treating the monitor as continuously held adds no false
// ordering edges and keeps the relock cheap.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"
#include "common/clock.hpp"
#ifdef ADETS_LOCK_ORDER_CHECK
#include "common/lock_order.hpp"
#endif

namespace adets::common {

/// An annotated, optionally order-checked std::mutex.
class ADETS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` appears in lock-order cycle reports; pass a string literal.
  explicit Mutex(const char* name) : name_(name) {}

  ~Mutex() {
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_destroy(this);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADETS_ACQUIRE() {
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_acquire(this, name_);
#endif
    m_.lock();
  }

  void unlock() ADETS_RELEASE() {
    m_.unlock();
#ifdef ADETS_LOCK_ORDER_CHECK
    lock_order::on_release(this);
#endif
  }

  bool try_lock() ADETS_TRY_ACQUIRE(true) {
    const bool ok = m_.try_lock();
#ifdef ADETS_LOCK_ORDER_CHECK
    if (ok) lock_order::on_try_acquire(this, name_);
#endif
    return ok;
  }

  /// The wrapped mutex, for CondVar and std interop.  Locking through
  /// the native handle bypasses the analysis and the order checker;
  /// only MutexLock/CondVar may do so.
  std::mutex& native_handle() { return m_; }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex m_;
  const char* name_ = "mutex";
};

/// Scoped lock over Mutex, usable with CondVar.  Supports explicit
/// unlock()/lock() for monitor code that drops the lock around a
/// callback (e.g. PDS broadcasting while unlocked).
class ADETS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADETS_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    lk_ = std::unique_lock<std::mutex>(mu_->native_handle(), std::adopt_lock);
  }

  ~MutexLock() ADETS_RELEASE() {
    if (lk_.owns_lock()) {
      lk_.release();
      mu_->unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the monitor (must currently hold it).
  void unlock() ADETS_RELEASE() {
    lk_.release();
    mu_->unlock();
  }

  /// Reacquires the monitor after unlock().
  void lock() ADETS_ACQUIRE() {
    mu_->lock();
    lk_ = std::unique_lock<std::mutex>(mu_->native_handle(), std::adopt_lock);
  }

  [[nodiscard]] bool owns_lock() const { return lk_.owns_lock(); }

  /// For CondVar only.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with Mutex via MutexLock.
///
/// The predicate overloads run their predicate with the lock held, like
/// the std equivalents.  Prefer predicates that only read unguarded or
/// atomic state; clang analyzes lambda bodies as separate functions, so
/// a predicate touching ADETS_GUARDED_BY members may produce
/// false-positive warnings -- restructure such call sites as explicit
/// `while (!cond) cv.wait(lk);` loops instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lk) { cv_.wait(lk.native()); }

  template <typename Pred>
  void wait(MutexLock& lk, Pred pred) {
    cv_.wait(lk.native(), std::move(pred));
  }

  std::cv_status wait_for(MutexLock& lk, Duration timeout) {
    return cv_.wait_for(lk.native(), timeout);
  }

  template <typename Pred>
  bool wait_for(MutexLock& lk, Duration timeout, Pred pred) {
    return cv_.wait_for(lk.native(), timeout, std::move(pred));
  }

  std::cv_status wait_until(MutexLock& lk, TimePoint deadline) {
    return cv_.wait_until(lk.native(), deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace adets::common
