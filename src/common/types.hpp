// Strongly-typed identifiers used throughout the ADETS middleware.
//
// Every subsystem (transport, group communication, scheduler, runtime)
// identifies entities by small integer ids.  Raw integers invite mix-ups
// (passing a node id where a thread id is expected), so each id kind is a
// distinct type built from the StrongId template below.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>
#include <string>

namespace adets::common {

/// A type-safe wrapper around an integral identifier.
///
/// `Tag` is an empty struct that makes each instantiation a distinct type.
/// The wrapped value is accessible via value(); comparison and hashing are
/// provided so ids can be used as keys in ordered and unordered containers.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  /// Sentinel used for "no id assigned yet".
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(static_cast<Rep>(-1));
  }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != static_cast<Rep>(-1);
  }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  Rep value_ = static_cast<Rep>(-1);
};

/// Identifies a simulated machine (one transport endpoint).
using NodeId = StrongId<struct NodeIdTag, std::uint32_t>;

/// Identifies a replica group (one replicated object).
using GroupId = StrongId<struct GroupIdTag, std::uint32_t>;

/// Identifies a *logical* thread of execution: a chain of (possibly
/// nested) invocations that originates at one client call.  Propagated in
/// message headers so callbacks can be recognised (Eternal-style SL model).
using LogicalThreadId = StrongId<struct LogicalThreadIdTag>;

/// Identifies a physical request-handler thread inside one scheduler
/// instance.  Assigned deterministically (creation order), so thread ids
/// agree across replicas.
using ThreadId = StrongId<struct ThreadIdTag>;

/// Identifies an application-level mutex managed by the scheduler.
using MutexId = StrongId<struct MutexIdTag>;

/// Identifies an application-level condition variable.
using CondVarId = StrongId<struct CondVarIdTag>;

/// Globally unique id of one method invocation (client or nested).
using RequestId = StrongId<struct RequestIdTag>;

/// Total-order sequence number assigned by a group's sequencer.
using SeqNo = StrongId<struct SeqNoTag>;

/// Monotonically increasing membership-view number of a group.
using ViewId = StrongId<struct ViewIdTag, std::uint32_t>;

}  // namespace adets::common

namespace std {
template <typename Tag, typename Rep>
struct hash<adets::common::StrongId<Tag, Rep>> {
  size_t operator()(adets::common::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
