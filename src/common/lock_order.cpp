#include "common/lock_order.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

namespace adets::common::lock_order {
namespace {

// All registry state lives behind one plain std::mutex.  This file is
// the instrumentation layer itself, so it deliberately uses the raw std
// type: instrumenting the registry's own lock would recurse.
struct Registry {
  std::mutex mu;
  // edges[a] = set of locks ever acquired while `a` was held.
  std::map<const void*, std::set<const void*>> edges;
  std::map<const void*, std::string> names;
  Handler handler;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

// Locks currently held by this thread, in acquisition order.  The name
// rides along so the registry only needs to learn it when the lock
// first participates in an ordering edge.
struct Held {
  const void* lock;
  const char* name;
};

std::vector<Held>& held() {
  static thread_local std::vector<Held> stack;
  return stack;
}

std::string lock_label(const Registry& reg, const void* lock) {
  std::ostringstream out;
  const auto it = reg.names.find(lock);
  out << (it != reg.names.end() ? it->second : std::string("<mutex>")) << " ("
      << lock << ")";
  return out.str();
}

// Depth-first search for a path `from` -> ... -> `to` in the edge graph.
// Appends the path (excluding `from`) to `path` and returns true if found.
bool find_path(const Registry& reg, const void* from, const void* to,
               std::set<const void*>& visited, std::vector<const void*>& path) {
  if (from == to) return true;
  if (!visited.insert(from).second) return false;
  const auto it = reg.edges.find(from);
  if (it == reg.edges.end()) return false;
  for (const void* next : it->second) {
    path.push_back(next);
    if (find_path(reg, next, to, visited, path)) return true;
    path.pop_back();
  }
  return false;
}

void default_handler(const CycleReport& report) {
  std::fprintf(stderr, "%s", report.description.c_str());
  std::fflush(stderr);
  std::abort();
}

// Builds the report for the inversion "acquiring `lock` while `held_lock`
// is held, but `lock` ->* `held_lock` is already an established order".
CycleReport make_report(const Registry& reg, const void* lock,
                        const void* held_lock,
                        const std::vector<const void*>& path) {
  std::ostringstream out;
  out << "adets lock-order violation: acquiring " << lock_label(reg, lock)
      << " while holding " << lock_label(reg, held_lock) << "\n"
      << "established order (held -> acquired):\n"
      << "  " << lock_label(reg, lock) << "\n";
  for (const void* step : path) {
    out << "  -> " << lock_label(reg, step) << "\n";
  }
  out << "this acquisition closes the cycle: " << lock_label(reg, held_lock)
      << " -> " << lock_label(reg, lock) << "\n";
  return CycleReport{out.str()};
}

}  // namespace

void on_acquire(const void* lock, const char* name) {
  auto& stack = held();
  Handler to_fire;
  CycleReport report;
  // Fast path: nothing held means no new ordering edge -- the registry
  // (and its global mutex) is not touched at all.  This keeps the
  // validator's steady-state cost near zero for leaf acquisitions,
  // which dominate: each subsystem monitor is usually taken alone.
  if (!stack.empty()) {
    auto& reg = registry();
    const std::lock_guard<std::mutex> guard(reg.mu);
    for (const Held& h : stack) {
      if (h.lock == lock) continue;  // relock through a condvar wait; not an edge
      auto& targets = reg.edges[h.lock];
      // An edge already present was cycle-checked when first recorded.
      if (targets.count(lock) > 0) continue;
      // Would the new edge h -> lock close a cycle?  It does iff a path
      // lock ->* h already exists.
      std::set<const void*> visited;
      std::vector<const void*> path;
      reg.names[h.lock] = h.name;
      reg.names[lock] = name;
      if (find_path(reg, lock, h.lock, visited, path)) {
        report = make_report(reg, lock, h.lock, path);
        to_fire = reg.handler ? reg.handler : Handler(default_handler);
        break;
      }
      targets.insert(lock);
    }
  }
  // Fire outside the registry lock so a capturing test handler may call
  // back into the registry API.
  if (to_fire) {
    to_fire(report);
    return;  // only reached when the handler did not abort
  }
  stack.push_back({lock, name});
}

void on_try_acquire(const void* lock, const char* name) {
  held().push_back({lock, name});
}

void on_release(const void* lock) {
  auto& stack = held();
  // Unlock is almost always LIFO; search from the back for the rare
  // hand-over-hand pattern.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->lock == lock) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

void on_destroy(const void* lock) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mu);
  reg.edges.erase(lock);
  for (auto& [from, targets] : reg.edges) targets.erase(lock);
  reg.names.erase(lock);
}

Handler set_failure_handler(Handler handler) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mu);
  Handler old = std::move(reg.handler);
  reg.handler = std::move(handler);
  return old;
}

void reset_for_test() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mu);
  reg.edges.clear();
  reg.names.clear();
  held().clear();
}

std::size_t edge_count() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> guard(reg.mu);
  std::size_t n = 0;
  for (const auto& [from, targets] : reg.edges) n += targets.size();
  return n;
}

}  // namespace adets::common::lock_order
