// Minimal leveled logger.
//
// Logging inside a deterministic scheduler must never perturb scheduling
// decisions, so the logger only formats when the level is enabled and
// serialises output with a single global mutex.  Level comes from the
// ADETS_LOG environment variable (error|warn|info|debug|trace) and
// defaults to warn.
#pragma once

#include <sstream>
#include <string>

namespace adets::common {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Returns the process-wide log level.
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

/// True when `level` messages should be emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// Writes one formatted line (thread-safe); used via the LOG macros below.
void log_line(LogLevel level, const std::string& component, const std::string& message);

}  // namespace adets::common

// Streaming log macros: ADETS_LOG_INFO("gcs") << "view " << view_id;
#define ADETS_LOG_AT(level, component)                                     \
  for (bool adets_log_once = ::adets::common::log_enabled(level);          \
       adets_log_once; adets_log_once = false)                             \
  ::adets::common::LogCapture(level, component)

#define ADETS_LOG_ERROR(component) ADETS_LOG_AT(::adets::common::LogLevel::kError, component)
#define ADETS_LOG_WARN(component) ADETS_LOG_AT(::adets::common::LogLevel::kWarn, component)
#define ADETS_LOG_INFO(component) ADETS_LOG_AT(::adets::common::LogLevel::kInfo, component)
#define ADETS_LOG_DEBUG(component) ADETS_LOG_AT(::adets::common::LogLevel::kDebug, component)
#define ADETS_LOG_TRACE(component) ADETS_LOG_AT(::adets::common::LogLevel::kTrace, component)

namespace adets::common {

/// Helper that accumulates one log line and flushes it on destruction.
class LogCapture {
 public:
  LogCapture(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;
  ~LogCapture() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace adets::common
