// Reference-counted immutable byte buffers for the message hot path.
//
// A wire message is encoded once into a SharedBytes and then shared by
// every consumer — the multicast fan-out, the hold-back queue, the
// retained repair window and the delivery event all alias the same
// allocation instead of copying the vector per hop.  slice() carves a
// zero-copy view out of an envelope (shared_ptr aliasing keeps the
// backing buffer alive), which is how a Submission payload inside a
// SeqBatch avoids being re-materialised on every retransmission.
//
// SharedBytes is immutable after construction; concurrent readers need
// no synchronisation beyond the shared_ptr control block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace adets::common {

using Bytes = std::vector<std::uint8_t>;

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Takes ownership of `bytes`; the single allocation is shared by all
  /// copies and slices from here on.
  explicit SharedBytes(Bytes bytes)
      : owner_(std::make_shared<const Bytes>(std::move(bytes))) {
    data_ = owner_->data();
    size_ = owner_->size();
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  /// Zero-copy sub-view [offset, offset+length); shares ownership of the
  /// backing buffer.  Callers must have validated the range (Reader does).
  [[nodiscard]] SharedBytes slice(std::size_t offset, std::size_t length) const {
    SharedBytes s;
    s.owner_ = owner_;
    s.data_ = data_ + offset;
    s.size_ = length;
    return s;
  }

  /// Materialises an owned copy — only for edges where an API needs a
  /// plain vector (e.g. the scheduler's Request::payload).
  [[nodiscard]] Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }

  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    if (a.size_ != b.size()) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) { return b == a; }

 private:
  std::shared_ptr<const Bytes> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace adets::common
