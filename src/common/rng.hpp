// Seedable random-number helpers.
//
// Workload generators must be reproducible run-to-run, and in a
// replicated setting randomness used *inside* a replica's request handler
// must be identical on every replica (it is part of the request's
// deterministic program).  Workloads therefore derive per-request RNGs
// from the request id instead of sampling a shared global generator.
#pragma once

#include <cstdint>
#include <random>

namespace adets::common {

/// SplitMix64 — tiny, fast, well-distributed; good for seed derivation.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic RNG seeded from one or more ids.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)) {}
  Rng(std::uint64_t a, std::uint64_t b) : engine_(mix(mix(a) ^ b)) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t seed) {
    std::uint64_t s = seed;
    return splitmix64(s);
  }

  std::mt19937_64 engine_;
};

}  // namespace adets::common
