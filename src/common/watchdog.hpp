// Test/benchmark watchdog.
//
// A deterministic-scheduler bug typically manifests as a replica-wide
// stall (a thread waiting for a grant that never comes).  Under ctest
// that would be a silent hang; the watchdog converts it into a loud abort
// with a message, so the failing test is attributable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "common/annotations.hpp"

namespace adets::common {

class Watchdog {
 public:
  /// Aborts the process with `label` if not disarmed within `limit`.
  Watchdog(std::string label, std::chrono::milliseconds limit)
      : label_(std::move(label)), thread_([this, limit] { run(limit); }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run(std::chrono::milliseconds limit) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, limit, [this] { return disarmed_; })) {
      std::fprintf(stderr, "WATCHDOG EXPIRED: %s (deadlock or stall)\n", label_.c_str());
      std::fflush(stderr);
      std::abort();
    }
  }

  // label_ is written once in the constructor before the watchdog
  // thread starts; the raw std::mutex (this utility must work even when
  // common::Mutex instrumentation is the thing being debugged) only
  // protects the disarm flag.
  const std::string label_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ ADETS_GUARDED_BY_STATIC(mutex_) = false;
  std::thread thread_;
};

}  // namespace adets::common
