#include "common/mc_hooks.hpp"

#include <cstdio>
#include <cstdlib>

namespace adets::mchook {

std::atomic<Interceptor*> g_interceptor{nullptr};

void install(Interceptor* interceptor) {
  Interceptor* expected = nullptr;
  if (!g_interceptor.compare_exchange_strong(expected, interceptor,
                                             std::memory_order_acq_rel)) {
    std::fprintf(stderr, "adets-mc: an interceptor is already installed; "
                         "model-checking runs are process-exclusive\n");
    std::abort();
  }
}

void uninstall(Interceptor* interceptor) {
  Interceptor* expected = interceptor;
  if (!g_interceptor.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel)) {
    std::fprintf(stderr, "adets-mc: uninstall of an interceptor that is "
                         "not installed\n");
    std::abort();
  }
}

}  // namespace adets::mchook
