#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/clock.hpp"

namespace adets::common {

namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  // NOLINT below: read once under the static-local init guard; nothing
  // in the process calls setenv.
  static std::atomic<int> level{
      static_cast<int>(parse_level(std::getenv("ADETS_LOG")))};  // NOLINT(concurrency-mt-unsafe)
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  static std::mutex io_mutex;
  const auto now = Clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  const std::lock_guard<std::mutex> guard(io_mutex);
  std::fprintf(stderr, "[%12lld] %s [%s] %s\n", static_cast<long long>(us),
               level_name(level), component.c_str(), message.c_str());
}

}  // namespace adets::common
