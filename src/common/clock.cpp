#include "common/clock.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace adets::common {

namespace {

double initial_scale() {
  // NOLINT below: read once during static init, before any thread that
  // could call setenv exists.
  if (const char* env = std::getenv("ADETS_TIME_SCALE")) {  // NOLINT(concurrency-mt-unsafe)
    const double parsed = std::strtod(env, nullptr);
    if (parsed > 0.0) return parsed;
  }
  return 0.05;
}

std::atomic<double>& scale_storage() {
  static std::atomic<double> scale{initial_scale()};
  return scale;
}

}  // namespace

double Clock::scale() { return scale_storage().load(std::memory_order_relaxed); }

void Clock::set_scale(double scale) {
  scale_storage().store(scale, std::memory_order_relaxed);
}

TimePoint Clock::now() { return std::chrono::steady_clock::now(); }

Duration Clock::scaled(Duration paper_time) {
  const double ns = static_cast<double>(paper_time.count()) * scale();
  return Duration(static_cast<Duration::rep>(ns));
}

void Clock::sleep_paper(Duration paper_time) { sleep_real(scaled(paper_time)); }

void Clock::sleep_real(Duration real_time) {
  if (real_time.count() <= 0) return;
  std::this_thread::sleep_for(real_time);
}

}  // namespace adets::common
