// Scaled wall-clock used by workloads and the simulated network.
//
// The paper simulates "computation" by suspending the request-handler
// thread for the computation's duration (Sec. 5.3).  We keep that model
// but introduce a global scale factor so the full benchmark harness runs
// in minutes instead of hours: a workload written in "paper milliseconds"
// sleeps for paper_ms * scale real milliseconds.
//
// The scale is read once from the ADETS_TIME_SCALE environment variable
// (default 0.05, i.e. the paper's 100 ms compute becomes 5 ms) and can be
// overridden programmatically before any sleeping starts.
#pragma once

#include <chrono>

namespace adets::common {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

/// Global time-scaling configuration (process-wide).
class Clock {
 public:
  /// Current scale factor applied to paper-time durations.
  static double scale();

  /// Override the scale factor (used by tests to make sleeps negligible).
  static void set_scale(double scale);

  /// Current monotonic time (unscaled, real).
  static TimePoint now();

  /// Convert a duration expressed in paper time into real time.
  static Duration scaled(Duration paper_time);

  /// Sleep for `paper_time * scale()` of real time.
  static void sleep_paper(Duration paper_time);

  /// Sleep for a real (unscaled) duration.
  static void sleep_real(Duration real_time);
};

/// Convenience literal-ish helpers for paper-time durations.
inline constexpr Duration paper_ms(long long ms) {
  return std::chrono::milliseconds(ms);
}
inline constexpr Duration paper_us(long long us) {
  return std::chrono::microseconds(us);
}

}  // namespace adets::common
