#include "runtime/replica.hpp"

#include "common/logging.hpp"

namespace adets::runtime {

using common::Bytes;
using common::GroupId;
using common::LogicalThreadId;
using common::NodeId;
using common::Reader;
using common::RequestId;

Replica::Replica(gcs::GroupService& gcs, GroupId group,
                 std::vector<NodeId> members,
                 std::unique_ptr<sched::Scheduler> scheduler,
                 std::unique_ptr<ReplicatedObject> object,
                 std::shared_ptr<Directory> directory)
    : gcs_(gcs),
      group_(group),
      scheduler_(std::move(scheduler)),
      object_(std::move(object)),
      directory_(std::move(directory)) {
  gcs::GroupCallbacks callbacks;
  callbacks.deliver = [this](GroupId, const gcs::Sequenced& m) { on_deliver(m); };
  callbacks.on_view = [this](GroupId, const gcs::View& v) { on_view(v); };
  gcs_.join(group_, std::move(members), callbacks);
  scheduler_->start(*this);
}

Replica::~Replica() { stop(); }

void Replica::stop() {
  {
    const common::MutexLock guard(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  scheduler_->stop();
}

// --- delivery path --------------------------------------------------------------

void Replica::on_deliver(const gcs::Sequenced& message) {
  Reader r(message.submission.payload);
  try {
    const auto kind = static_cast<AppWireKind>(r.u8());
    switch (kind) {
      case AppWireKind::kRequest: {
        const RequestId id = r.id<RequestId>();
        const auto logical = r.id<LogicalThreadId>();
        // One materialisation per request: the scheduler API owns plain
        // Bytes (replay logs and the mc harness depend on that), so the
        // zero-copy wire payload becomes a vector exactly once here.
        Bytes payload = message.submission.payload.to_bytes();
        {
          const common::MutexLock guard(mutex_);
          if (stopped_) return;
          if (!seen_requests_.insert(id.value()).second) return;  // at-most-once
          if (event_log_) {
            event_log_->append(EventLog::Event{EventLog::Event::Kind::kRequest,
                                               payload,
                                               RequestId::invalid(),
                                               {},
                                               NodeId::invalid()});
          }
        }
        sched::Request request;
        request.kind = sched::RequestKind::kApplication;
        request.id = id;
        request.logical = logical;
        request.payload = std::move(payload);
        // Peek at the method name for the poison marker.
        r.u8();   // reply mode
        r.u32();  // reply target
        if (r.str() == "__poison") request.kind = sched::RequestKind::kPoison;
        scheduler_->on_request(std::move(request));
        break;
      }
      case AppWireKind::kNestedReply: {
        const RequestId id = r.id<RequestId>();
        Bytes result = r.blob();
        {
          const common::MutexLock guard(mutex_);
          if (stopped_) return;
          if (!seen_replies_.insert(id.value()).second) return;
          if (event_log_) {
            event_log_->append(EventLog::Event{EventLog::Event::Kind::kReply,
                                               {},
                                               id,
                                               result,
                                               NodeId::invalid()});
          }
          nested_results_[id.value()] = std::move(result);
        }
        scheduler_->on_reply(id);
        break;
      }
      case AppWireKind::kSchedMsg: {
        const NodeId sender(r.u32());
        const Bytes payload = r.blob();
        {
          const common::MutexLock guard(mutex_);
          if (event_log_) {
            event_log_->append(EventLog::Event{EventLog::Event::Kind::kSchedMsg,
                                               payload,
                                               RequestId::invalid(),
                                               {},
                                               sender});
          }
        }
        scheduler_->on_scheduler_message(sender, payload);
        break;
      }
    }
  } catch (const common::SerializationError& e) {
    ADETS_LOG_ERROR("replica") << "malformed delivery in group " << group_ << ": "
                               << e.what();
  }
}

void Replica::on_view(const gcs::View& view) {
  scheduler_->on_view_change(view.members);
}

// --- SchedulerEnv ------------------------------------------------------------------

std::optional<Replica::AuditSnapshot> Replica::try_audit_snapshot() {
  std::unique_lock<std::shared_mutex> guard(audit_mutex_, std::try_to_lock);
  if (!guard.owns_lock()) return std::nullopt;
  return AuditSnapshot{object_->state_hash(),
                       applied_.load(std::memory_order_acquire)};
}

void Replica::execute(const sched::Request& request) {
  const std::shared_lock<std::shared_mutex> audit_guard(audit_mutex_);
  Reader r(request.payload);
  RequestMessage message;
  try {
    r.u8();  // kind
    message.id = r.id<RequestId>();
    message.logical = r.id<LogicalThreadId>();
    message.reply_mode = static_cast<ReplyMode>(r.u8());
    message.reply_target = r.u32();
    message.method = r.str();
    message.args = r.blob();
  } catch (const common::SerializationError& e) {
    ADETS_LOG_ERROR("replica") << "unmarshal failed: " << e.what();
    return;
  }
  SyncContext ctx(*this, message.id, message.logical);
  Bytes result;
  try {
    result = object_->dispatch(message.method, message.args, ctx);
  } catch (const ReplicaStopping&) {
    return;  // shutting down; no reply
  } catch (const std::exception& e) {
    ADETS_LOG_ERROR("replica") << "method " << message.method
                               << " threw: " << e.what();
    result.clear();
  }
  applied_.fetch_add(1, std::memory_order_release);
  send_reply(message, result);
}

void Replica::send_reply(const RequestMessage& request, const Bytes& result) {
  switch (request.reply_mode) {
    case ReplyMode::kDirectToNode:
      gcs_.send_direct(NodeId(request.reply_target),
                       encode_client_reply(ClientReply{request.id, result}));
      break;
    case ReplyMode::kIntoGroup: {
      const GroupId target(request.reply_target);
      ensure_connected(target);
      gcs_.submit(target, encode_nested_reply(NestedReplyMessage{request.id, result}));
      break;
    }
    case ReplyMode::kNone:
      break;
  }
}

void Replica::broadcast(const Bytes& payload) {
  gcs_.submit(group_, encode_sched_msg(SchedMsgMessage{gcs_.self(), payload}));
}

// --- nested invocations ----------------------------------------------------------------

void Replica::ensure_connected(GroupId target) {
  {
    const common::MutexLock guard(mutex_);
    if (!connected_groups_.insert(target.value()).second) return;
  }
  gcs_.connect(target, directory_->members(target));
}

Bytes Replica::nested_invoke(SyncContext& ctx, GroupId target,
                             const std::string& method, const Bytes& args) {
  const RequestId nested_id = derive_nested_id(ctx.request_id(), ctx.next_nested_counter());
  RequestMessage request;
  request.id = nested_id;
  request.logical = ctx.logical();
  request.reply_mode = ReplyMode::kIntoGroup;
  request.reply_target = group_.value();
  request.method = method;
  request.args = args;

  ensure_connected(target);
  scheduler_->before_nested_call(nested_id);
  gcs_.submit(target, encode_request(request));
  scheduler_->after_nested_call(nested_id);

  const common::MutexLock guard(mutex_);
  const auto it = nested_results_.find(nested_id.value());
  if (it == nested_results_.end()) throw ReplicaStopping();
  Bytes result = it->second;
  nested_results_.erase(it);
  return result;
}

void Replica::nested_invoke_oneway(SyncContext& ctx, GroupId target,
                                   const std::string& method, const Bytes& args) {
  // Fire-and-forget: all replicas derive the same id, so the callee's
  // at-most-once filter collapses the copies; no reply is produced and
  // the scheduler is not involved (the caller does not block).
  RequestMessage request;
  request.id = derive_nested_id(ctx.request_id(), ctx.next_nested_counter());
  request.logical = ctx.logical();
  request.reply_mode = ReplyMode::kNone;
  request.reply_target = 0;
  request.method = method;
  request.args = args;
  ensure_connected(target);
  gcs_.submit(target, encode_request(request));
}

}  // namespace adets::runtime
