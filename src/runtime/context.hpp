// SyncContext: the synchronisation and interaction API available to
// replicated-object methods, plus RAII helpers.
#pragma once

#include <stdexcept>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"

namespace adets::sched {
class Scheduler;
}  // namespace adets::sched

namespace adets::runtime {

class SyncContext;

/// Thrown out of blocked operations when the replica shuts down mid-run.
class ReplicaStopping : public std::runtime_error {
 public:
  ReplicaStopping() : std::runtime_error("replica stopping") {}
};

/// What a SyncContext needs from its surroundings.  Implemented by the
/// live Replica (nested invocations go over the wire) and by the
/// passive-replication replay harness (nested replies come from the
/// recorded log).
class InvocationHost {
 public:
  virtual ~InvocationHost() = default;
  [[nodiscard]] virtual sched::Scheduler& context_scheduler() = 0;
  virtual common::Bytes nested_invoke(SyncContext& ctx, common::GroupId target,
                                      const std::string& method,
                                      const common::Bytes& args) = 0;
  virtual void nested_invoke_oneway(SyncContext& ctx, common::GroupId target,
                                    const std::string& method,
                                    const common::Bytes& args) = 0;
};

/// Per-invocation context handed to ReplicatedObject::dispatch.
///
/// Lock/wait/notify calls are forwarded to the replica's ADETS scheduler;
/// invoke() performs a synchronous nested invocation of another replica
/// group; compute() simulates computation the way the paper does
/// (suspending the handler thread for the scaled duration); rng() yields
/// a generator seeded by the request id, so "random" workload behaviour
/// is identical on every replica.
class SyncContext {
 public:
  SyncContext(InvocationHost& host, common::RequestId request,
              common::LogicalThreadId logical)
      : host_(host), request_(request), logical_(logical), rng_(request.value()) {}

  SyncContext(const SyncContext&) = delete;
  SyncContext& operator=(const SyncContext&) = delete;

  void lock(common::MutexId mutex);
  void unlock(common::MutexId mutex);
  /// wait() with Java semantics; returns false when the bounded wait
  /// timed out.  `paper_timeout` zero waits indefinitely.
  bool wait(common::MutexId mutex, common::CondVarId condvar,
            common::Duration paper_timeout = common::Duration::zero());
  void notify_one(common::MutexId mutex, common::CondVarId condvar);
  void notify_all(common::MutexId mutex, common::CondVarId condvar);
  /// Voluntary scheduling point (MAT optimisation, paper Sec. 5.3;
  /// no-op for the other strategies).
  void yield();

  /// Synchronous nested invocation of method `method` on `target`.
  common::Bytes invoke(common::GroupId target, const std::string& method,
                       const common::Bytes& args);

  /// Asynchronous (one-way) invocation: fire-and-forget, no reply and no
  /// blocking.  Enables the paper's Sec. 2 pattern — issue an external
  /// request asynchronously, then wait() on a condition variable for the
  /// callback the service sends later.
  void invoke_oneway(common::GroupId target, const std::string& method,
                     const common::Bytes& args);

  /// Simulated local computation of `paper_time` (paper Sec. 5.3).
  void compute(common::Duration paper_time) { common::Clock::sleep_paper(paper_time); }

  /// Replica-independent randomness for workload behaviour.
  [[nodiscard]] common::Rng& rng() { return rng_; }

  [[nodiscard]] common::RequestId request_id() const { return request_; }
  [[nodiscard]] common::LogicalThreadId logical() const { return logical_; }

  /// For InvocationHost implementations only: per-request sequence
  /// number of nested calls (feeds derive_nested_id).
  [[nodiscard]] std::uint64_t next_nested_counter() { return ++nested_counter_; }

 private:
  InvocationHost& host_;
  common::RequestId request_;
  common::LogicalThreadId logical_;
  common::Rng rng_;
  std::uint64_t nested_counter_ = 0;
};

/// RAII deterministic lock (CP.20: never plain lock/unlock in app code).
class DetLock {
 public:
  DetLock(SyncContext& ctx, common::MutexId mutex) : ctx_(ctx), mutex_(mutex) {
    ctx_.lock(mutex_);
  }
  ~DetLock() {
    try {
      ctx_.unlock(mutex_);
    } catch (...) {
      // Unlock failures only occur during replica shutdown; never throw
      // from a destructor mid-unwind.
    }
  }
  DetLock(const DetLock&) = delete;
  DetLock& operator=(const DetLock&) = delete;

 private:
  SyncContext& ctx_;
  common::MutexId mutex_;
};

}  // namespace adets::runtime
