// Replica: one member of a replicated object group on one node.
//
// Mirrors the FTflex stack of paper Sec. 5.1: the group communication
// module (gcs::GroupService) delivers totally-ordered messages to the
// ADETS scheduler plug-in, which creates/admits threads and calls back
// into the object adapter (this class) to unmarshal and dispatch the
// invocation, enforce at-most-once semantics and send the reply.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "gcs/group_service.hpp"
#include "runtime/context.hpp"
#include "runtime/object.hpp"
#include "runtime/wire.hpp"
#include "sched/api.hpp"

namespace adets::runtime {

/// Shared name service: group id -> member nodes (for nested calls).
class Directory {
 public:
  void add(common::GroupId group, std::vector<common::NodeId> members) {
    const common::MutexLock guard(mutex_);
    groups_[group.value()] = std::move(members);
  }
  [[nodiscard]] std::vector<common::NodeId> members(common::GroupId group) const {
    const common::MutexLock guard(mutex_);
    const auto it = groups_.find(group.value());
    return it == groups_.end() ? std::vector<common::NodeId>{} : it->second;
  }

 private:
  mutable common::Mutex mutex_{"runtime::directory"};
  std::map<std::uint32_t, std::vector<common::NodeId>> groups_ ADETS_GUARDED_BY(mutex_);
};

/// A recorded totally-ordered event stream of one replica group, usable
/// for passive-replication style re-execution (paper Sec. 1: a backup
/// re-executes logged requests and, thanks to deterministic scheduling,
/// reaches the identical state).
class EventLog {
 public:
  struct Event {
    enum class Kind : std::uint8_t { kRequest, kReply, kSchedMsg } kind;
    common::Bytes payload;          // kRequest: full request wire payload
    common::RequestId reply_id;     // kReply
    common::Bytes reply_result;     // kReply
    common::NodeId sender;          // kSchedMsg
  };

  void append(Event event) {
    const common::MutexLock guard(mutex_);
    events_.push_back(std::move(event));
  }
  [[nodiscard]] std::vector<Event> snapshot() const {
    const common::MutexLock guard(mutex_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const {
    const common::MutexLock guard(mutex_);
    return events_.size();
  }

 private:
  mutable common::Mutex mutex_{"runtime::eventlog"};
  std::vector<Event> events_ ADETS_GUARDED_BY(mutex_);
};

class Replica : private sched::SchedulerEnv, public InvocationHost {
 public:
  Replica(gcs::GroupService& gcs, common::GroupId group,
          std::vector<common::NodeId> members,
          std::unique_ptr<sched::Scheduler> scheduler,
          std::unique_ptr<ReplicatedObject> object,
          std::shared_ptr<Directory> directory);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  void stop();

  [[nodiscard]] sched::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] ReplicatedObject& object() { return *object_; }
  [[nodiscard]] common::GroupId group() const { return group_; }
  [[nodiscard]] std::uint64_t state_hash() const { return object_->state_hash(); }
  [[nodiscard]] std::uint64_t completed_requests() const {
    return scheduler_->completed_requests();
  }

  /// One quiescent observation of this replica, for divergence auditing.
  struct AuditSnapshot {
    std::uint64_t state_hash = 0;
    /// Application requests fully applied to the object — identifies the
    /// prefix of the total order this hash corresponds to.
    std::uint64_t applied = 0;
  };

  /// Captures state hash + applied count, but only if no request is
  /// mid-execution (auditing a live object while a method mutates it
  /// would race).  Executions hold a shared lock for their whole
  /// dispatch; this try-locks exclusively and never blocks, so a busy
  /// (or parked-in-wait) replica simply yields nullopt.
  [[nodiscard]] std::optional<AuditSnapshot> try_audit_snapshot();

  /// Starts recording this replica's delivered event stream (post
  /// at-most-once filtering) for later re-execution.
  void set_event_log(std::shared_ptr<EventLog> log) {
    const common::MutexLock guard(mutex_);
    event_log_ = std::move(log);
  }

  // --- InvocationHost (used by SyncContext) --------------------------------
  [[nodiscard]] sched::Scheduler& context_scheduler() override { return *scheduler_; }
  common::Bytes nested_invoke(SyncContext& ctx, common::GroupId target,
                              const std::string& method,
                              const common::Bytes& args) override;
  void nested_invoke_oneway(SyncContext& ctx, common::GroupId target,
                            const std::string& method,
                            const common::Bytes& args) override;

 private:
  // SchedulerEnv
  void execute(const sched::Request& request) override;
  void broadcast(const common::Bytes& payload) override;
  [[nodiscard]] common::NodeId self() const override { return gcs_.self(); }
  [[nodiscard]] std::vector<common::NodeId> view_members() const override {
    return gcs_.current_view(group_).members;
  }

  void on_deliver(const gcs::Sequenced& message);
  void on_view(const gcs::View& view);
  void send_reply(const RequestMessage& request, const common::Bytes& result);
  void ensure_connected(common::GroupId target);

  gcs::GroupService& gcs_;
  const common::GroupId group_;
  // Wired once in the constructor, before the replica is visible to any
  // delivery thread; only the pointees (which synchronize themselves)
  // are touched afterwards.
  // adets-sa:allow(unguarded-field) set in the constructor, const thereafter
  std::unique_ptr<sched::Scheduler> scheduler_;
  // adets-sa:allow(unguarded-field) set in the constructor, const thereafter
  std::unique_ptr<ReplicatedObject> object_;
  // adets-sa:allow(unguarded-field) set in the constructor, const thereafter
  std::shared_ptr<Directory> directory_;

  common::Mutex mutex_{"runtime::replica"};
  /// At-most-once (requests).
  std::set<std::uint64_t> seen_requests_ ADETS_GUARDED_BY(mutex_);
  /// At-most-once (nested replies).
  std::set<std::uint64_t> seen_replies_ ADETS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, common::Bytes> nested_results_
      ADETS_GUARDED_BY(mutex_);
  std::set<std::uint32_t> connected_groups_ ADETS_GUARDED_BY(mutex_);
  std::shared_ptr<EventLog> event_log_ ADETS_GUARDED_BY(mutex_);
  bool stopped_ ADETS_GUARDED_BY(mutex_) = false;

  /// Shared: held by execute() around every dispatch.  Exclusive:
  /// try-taken by try_audit_snapshot().  Never blocking-locked
  /// exclusively, so readers are never throttled by a waiting writer.
  std::shared_mutex audit_mutex_;
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace adets::runtime
