// Cluster: a complete simulated deployment (network, group services,
// replica groups, clients) behind one convenient facade.  This is what
// examples, integration tests and the benchmark harness build on.
#pragma once

#include <memory>
#include <vector>

#include "runtime/client.hpp"
#include "runtime/replica.hpp"
#include "transport/network.hpp"

namespace adets::runtime {

struct ClusterConfig {
  transport::LinkConfig link;        // latency model of every link
  gcs::GroupServiceConfig gcs;       // heartbeat / retransmit tunables
  std::uint64_t seed = 1;
};

/// Produces one scheduler instance per replica; lets tests plug custom
/// (e.g. deliberately nondeterministic) schedulers into a group.
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Creates a replica group of `replicas` members, each running the
  /// given scheduler kind over a fresh object from `factory`.
  common::GroupId create_group(int replicas, sched::SchedulerKind kind,
                               ObjectFactory factory,
                               sched::SchedulerConfig sched_config = {});

  /// Same, but each replica's scheduler comes from `scheduler_factory`.
  common::GroupId create_group(int replicas, const SchedulerFactory& scheduler_factory,
                               ObjectFactory factory);

  /// Creates a client on its own simulated node, already connected to
  /// every existing group.
  Client& create_client();

  [[nodiscard]] Replica& replica(common::GroupId group, int index);
  [[nodiscard]] int group_size(common::GroupId group) const;
  [[nodiscard]] std::vector<common::NodeId> members(common::GroupId group) const;

  /// State hash of every replica of `group` (consistency checking).
  [[nodiscard]] std::vector<std::uint64_t> state_hashes(common::GroupId group);

  /// Blocks until every replica of `group` completed `count` requests.
  [[nodiscard]] bool wait_drained(common::GroupId group, std::uint64_t count,
                                  std::chrono::milliseconds timeout =
                                      std::chrono::seconds(120));

  /// Crashes the index-th replica node of `group` (fail-stop).
  void crash_replica(common::GroupId group, int index);

  [[nodiscard]] transport::SimNetwork& network() { return *net_; }
  [[nodiscard]] std::shared_ptr<Directory> directory() { return directory_; }

  void stop();

 private:
  struct GroupHandle {
    common::GroupId id;
    std::vector<common::NodeId> nodes;
    std::vector<std::unique_ptr<gcs::GroupService>> services;
    std::vector<std::unique_ptr<Replica>> replicas;
  };
  struct ClientHandle {
    std::unique_ptr<gcs::GroupService> service;
    std::unique_ptr<Client> client;
  };

  ClusterConfig config_;
  std::unique_ptr<transport::SimNetwork> net_;
  std::shared_ptr<Directory> directory_ = std::make_shared<Directory>();
  std::vector<std::unique_ptr<GroupHandle>> groups_;
  std::vector<std::unique_ptr<ClientHandle>> clients_;
  std::uint32_t next_group_ = 1;
  bool stopped_ = false;
};

}  // namespace adets::runtime
