#include "runtime/cluster.hpp"

#include <stdexcept>

#include "common/clock.hpp"

namespace adets::runtime {

using common::GroupId;
using common::NodeId;

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      net_(std::make_unique<transport::SimNetwork>(config.link, config.seed)) {}

Cluster::~Cluster() { stop(); }

void Cluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Order: replicas (schedulers) first, then group services, then net.
  for (auto& group : groups_) {
    for (auto& replica : group->replicas) replica->stop();
  }
  for (auto& group : groups_) {
    for (auto& service : group->services) service->stop();
  }
  for (auto& client : clients_) client->service->stop();
  net_->stop();
}

GroupId Cluster::create_group(int replicas, sched::SchedulerKind kind,
                              ObjectFactory factory,
                              sched::SchedulerConfig sched_config) {
  return create_group(
      replicas, [kind, sched_config] { return sched::make_scheduler(kind, sched_config); },
      std::move(factory));
}

GroupId Cluster::create_group(int replicas, const SchedulerFactory& scheduler_factory,
                              ObjectFactory factory) {
  auto handle = std::make_unique<GroupHandle>();
  handle->id = GroupId(next_group_++);
  for (int i = 0; i < replicas; ++i) handle->nodes.push_back(net_->create_node());
  directory_->add(handle->id, handle->nodes);
  for (int i = 0; i < replicas; ++i) {
    handle->services.push_back(
        std::make_unique<gcs::GroupService>(*net_, handle->nodes[i], config_.gcs));
  }
  for (int i = 0; i < replicas; ++i) {
    handle->replicas.push_back(std::make_unique<Replica>(
        *handle->services[i], handle->id, handle->nodes, scheduler_factory(),
        factory(), directory_));
  }
  const GroupId id = handle->id;
  groups_.push_back(std::move(handle));
  return id;
}

Client& Cluster::create_client() {
  auto handle = std::make_unique<ClientHandle>();
  const NodeId node = net_->create_node();
  handle->service = std::make_unique<gcs::GroupService>(*net_, node, config_.gcs);
  handle->client = std::make_unique<Client>(*handle->service);
  for (const auto& group : groups_) {
    handle->client->connect(group->id, group->nodes);
  }
  Client& client = *handle->client;
  clients_.push_back(std::move(handle));
  return client;
}

Replica& Cluster::replica(GroupId group, int index) {
  for (auto& handle : groups_) {
    if (handle->id == group) return *handle->replicas.at(index);
  }
  throw std::out_of_range("no such group");
}

int Cluster::group_size(GroupId group) const {
  for (const auto& handle : groups_) {
    if (handle->id == group) return static_cast<int>(handle->replicas.size());
  }
  return 0;
}

std::vector<NodeId> Cluster::members(GroupId group) const {
  for (const auto& handle : groups_) {
    if (handle->id == group) return handle->nodes;
  }
  return {};
}

std::vector<std::uint64_t> Cluster::state_hashes(GroupId group) {
  std::vector<std::uint64_t> hashes;
  for (auto& handle : groups_) {
    if (handle->id != group) continue;
    for (std::size_t i = 0; i < handle->replicas.size(); ++i) {
      if (net_->crashed(handle->nodes[i])) continue;
      hashes.push_back(handle->replicas[i]->state_hash());
    }
  }
  return hashes;
}

bool Cluster::wait_drained(GroupId group, std::uint64_t count,
                           std::chrono::milliseconds timeout) {
  const auto deadline = common::Clock::now() + timeout;
  for (auto& handle : groups_) {
    if (handle->id != group) continue;
    for (std::size_t i = 0; i < handle->replicas.size(); ++i) {
      if (net_->crashed(handle->nodes[i])) continue;
      while (handle->replicas[i]->completed_requests() < count) {
        if (common::Clock::now() > deadline) return false;
        common::Clock::sleep_real(std::chrono::milliseconds(1));
      }
    }
    return true;
  }
  return false;
}

void Cluster::crash_replica(GroupId group, int index) {
  for (auto& handle : groups_) {
    if (handle->id == group) {
      net_->crash(handle->nodes.at(index));
      return;
    }
  }
}

}  // namespace adets::runtime
