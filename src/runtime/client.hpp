// Client stub: invokes methods of a replica group from a non-member node.
//
// Requests are submitted into the group's total order; every replica
// executes the method (active replication) and sends a direct reply; the
// client accepts the first reply per request (the others are duplicates
// by construction).
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "gcs/group_service.hpp"
#include "runtime/wire.hpp"

namespace adets::runtime {

class Client {
 public:
  /// `gcs` must be a service on the client's own node.
  explicit Client(gcs::GroupService& gcs);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Makes `group` (with the given members) invocable.
  void connect(common::GroupId group, std::vector<common::NodeId> members);

  /// Synchronous invocation; returns the first replica reply.  Throws
  /// std::runtime_error on timeout (real time).
  common::Bytes invoke(common::GroupId group, const std::string& method,
                       const common::Bytes& args,
                       std::chrono::milliseconds timeout = std::chrono::seconds(60));

  /// Fire-and-forget invocation (no reply expected).
  void invoke_oneway(common::GroupId group, const std::string& method,
                     const common::Bytes& args);

  [[nodiscard]] common::NodeId node() const { return gcs_.self(); }

 private:
  struct PendingReply {
    bool ready = false;
    common::Bytes result;
  };

  common::RequestId next_request_id();
  void on_direct(common::NodeId src, const common::Bytes& payload);

  gcs::GroupService& gcs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t counter_ = 0;
  std::map<std::uint64_t, PendingReply> pending_;
};

}  // namespace adets::runtime
