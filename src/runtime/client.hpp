// Client stub: invokes methods of a replica group from a non-member node.
//
// Requests are submitted into the group's total order; every replica
// executes the method (active replication) and sends a direct reply; the
// client accepts the first reply per request (the others are duplicates
// by construction).
//
// Two invocation styles share one reply path:
//  - invoke(): synchronous, blocks the calling thread;
//  - invoke_async(): registers a completion callback, so one client
//    node can multiplex many logical closed-loop sessions (the load
//    harness drives thousands of simulated clients over a handful of
//    client nodes this way).  Callbacks run on the GCS delivery thread
//    and must not block.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/annotations.hpp"
#include "gcs/group_service.hpp"
#include "runtime/wire.hpp"

namespace adets::runtime {

class Client {
 public:
  /// Called with the first replica reply of an async invocation.
  using ReplyCallback = std::function<void(common::Bytes result)>;

  /// `gcs` must be a service on the client's own node.
  explicit Client(gcs::GroupService& gcs);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Makes `group` (with the given members) invocable.
  void connect(common::GroupId group, std::vector<common::NodeId> members);

  /// Synchronous invocation; returns the first replica reply.  Throws
  /// std::runtime_error on timeout (real time).
  common::Bytes invoke(common::GroupId group, const std::string& method,
                       const common::Bytes& args,
                       std::chrono::milliseconds timeout = std::chrono::seconds(60));

  /// Asynchronous invocation: `on_reply` fires once, on the delivery
  /// thread, with the first replica reply.  No built-in timeout — a
  /// caller that needs one owns the deadline (the load harness does).
  common::RequestId invoke_async(common::GroupId group, const std::string& method,
                                 const common::Bytes& args, ReplyCallback on_reply);

  /// Fire-and-forget invocation (no reply expected).
  void invoke_oneway(common::GroupId group, const std::string& method,
                     const common::Bytes& args);

  [[nodiscard]] common::NodeId node() const { return gcs_.self(); }

 private:
  struct PendingReply {
    bool ready = false;
    common::Bytes result;
    ReplyCallback callback;  // set for async invocations
  };

  common::RequestId next_request_id();
  void on_direct(common::NodeId src, const common::SharedBytes& payload);

  gcs::GroupService& gcs_;
  // Raw std::mutex: the client is load-generator machinery outside the
  // replica (no lock-order story to record); guards declared for
  // adets-sa only.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t counter_ ADETS_GUARDED_BY_STATIC(mutex_) = 0;
  std::map<std::uint64_t, PendingReply> pending_ ADETS_GUARDED_BY_STATIC(mutex_);
};

}  // namespace adets::runtime
