// The replicated-object programming model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/serialization.hpp"

namespace adets::runtime {

class SyncContext;

/// Base class of application objects deployed in a replica group.
///
/// A replicated object implements `dispatch`, which receives the method
/// name, marshalled arguments and a SyncContext.  All synchronisation —
/// locks, condition variables, nested invocations — must go through the
/// context so the configured ADETS scheduler can keep the replicas
/// deterministic (the C++ analogue of the paper's code transformation /
/// manual deployment, Sec. 3.1).
class ReplicatedObject {
 public:
  virtual ~ReplicatedObject() = default;

  /// Executes one method invocation and returns the marshalled result.
  virtual common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                                 SyncContext& ctx) = 0;

  /// Hash over the replica-visible state; identical across consistent
  /// replicas.  Used by the consistency checker.
  [[nodiscard]] virtual std::uint64_t state_hash() const { return 0; }
};

/// Factory invoked once per replica.
using ObjectFactory = std::function<std::unique_ptr<ReplicatedObject>()>;

}  // namespace adets::runtime
