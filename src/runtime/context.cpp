#include "runtime/context.hpp"

#include "sched/api.hpp"

namespace adets::runtime {

void SyncContext::lock(common::MutexId mutex) { host_.context_scheduler().lock(mutex); }

void SyncContext::unlock(common::MutexId mutex) {
  host_.context_scheduler().unlock(mutex);
}

bool SyncContext::wait(common::MutexId mutex, common::CondVarId condvar,
                       common::Duration paper_timeout) {
  return host_.context_scheduler().wait(mutex, condvar, paper_timeout).notified;
}

void SyncContext::notify_one(common::MutexId mutex, common::CondVarId condvar) {
  host_.context_scheduler().notify_one(mutex, condvar);
}

void SyncContext::notify_all(common::MutexId mutex, common::CondVarId condvar) {
  host_.context_scheduler().notify_all(mutex, condvar);
}

void SyncContext::yield() { host_.context_scheduler().yield(); }

common::Bytes SyncContext::invoke(common::GroupId target, const std::string& method,
                                  const common::Bytes& args) {
  return host_.nested_invoke(*this, target, method, args);
}

void SyncContext::invoke_oneway(common::GroupId target, const std::string& method,
                                const common::Bytes& args) {
  host_.nested_invoke_oneway(*this, target, method, args);
}

}  // namespace adets::runtime
