#include "runtime/client.hpp"

#include <stdexcept>

namespace adets::runtime {

using common::Bytes;
using common::GroupId;
using common::NodeId;
using common::RequestId;
using common::SharedBytes;

Client::Client(gcs::GroupService& gcs) : gcs_(gcs) {
  gcs_.set_direct_handler(
      [this](NodeId src, const SharedBytes& payload) { on_direct(src, payload); });
}

void Client::connect(GroupId group, std::vector<NodeId> members) {
  gcs_.connect(group, std::move(members));
}

RequestId Client::next_request_id() {
  // Globally unique: client node id in the top bits, local counter below.
  return RequestId((static_cast<std::uint64_t>(gcs_.self().value()) << 40) | ++counter_);
}

Bytes Client::invoke(GroupId group, const std::string& method, const Bytes& args,
                     std::chrono::milliseconds timeout) {
  RequestMessage request;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    request.id = next_request_id();
    pending_[request.id.value()];  // create slot
  }
  request.logical = common::LogicalThreadId(request.id.value());
  request.reply_mode = ReplyMode::kDirectToNode;
  request.reply_target = gcs_.self().value();
  request.method = method;
  request.args = args;
  gcs_.submit(group, encode_request(request));

  std::unique_lock<std::mutex> lock(mutex_);
  const bool ok = cv_.wait_for(lock, timeout, [&] {
    return pending_[request.id.value()].ready;
  });
  if (!ok) {
    pending_.erase(request.id.value());
    throw std::runtime_error("client invocation timed out: " + method);
  }
  Bytes result = std::move(pending_[request.id.value()].result);
  pending_.erase(request.id.value());
  return result;
}

RequestId Client::invoke_async(GroupId group, const std::string& method,
                               const Bytes& args, ReplyCallback on_reply) {
  RequestMessage request;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    request.id = next_request_id();
    pending_[request.id.value()].callback = std::move(on_reply);
  }
  request.logical = common::LogicalThreadId(request.id.value());
  request.reply_mode = ReplyMode::kDirectToNode;
  request.reply_target = gcs_.self().value();
  request.method = method;
  request.args = args;
  gcs_.submit(group, encode_request(request));
  return request.id;
}

void Client::invoke_oneway(GroupId group, const std::string& method, const Bytes& args) {
  RequestMessage request;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    request.id = next_request_id();
  }
  request.logical = common::LogicalThreadId(request.id.value());
  request.reply_mode = ReplyMode::kNone;
  request.reply_target = 0;
  request.method = method;
  request.args = args;
  gcs_.submit(group, encode_request(request));
}

void Client::on_direct(NodeId /*src*/, const SharedBytes& payload) {
  auto reply = decode_client_reply(payload);
  if (!reply) return;
  ReplyCallback callback;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    const auto it = pending_.find(reply->request.value());
    if (it == pending_.end() || it->second.ready) return;  // duplicate replica reply
    if (it->second.callback) {
      // Async invocation: complete outside the lock, on this (delivery)
      // thread; the callback may immediately issue the next invocation.
      callback = std::move(it->second.callback);
      pending_.erase(it);
    } else {
      it->second.ready = true;
      it->second.result = std::move(reply->result);
      cv_.notify_all();
      return;
    }
  }
  callback(std::move(reply->result));
}

}  // namespace adets::runtime
