// Application-level message encoding carried inside GCS payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"

namespace adets::runtime {

/// Payload kinds inside a group's total order.
enum class AppWireKind : std::uint8_t {
  kRequest = 1,      // client request or nested invocation
  kNestedReply = 2,  // reply from a callee group into the caller's order
  kSchedMsg = 3,     // scheduler-internal broadcast (LSA tables, timeouts)
};

/// Where the reply of a request must go.
enum class ReplyMode : std::uint8_t {
  kDirectToNode = 0,  // point-to-point datagram to a client node
  kIntoGroup = 1,     // submitted into the caller group's total order
  kNone = 2,          // fire-and-forget (poison etc.)
};

/// Decoded invocation request.
struct RequestMessage {
  common::RequestId id;
  common::LogicalThreadId logical;
  ReplyMode reply_mode = ReplyMode::kDirectToNode;
  std::uint32_t reply_target = 0;  // node id or group id
  std::string method;
  common::Bytes args;
};

struct NestedReplyMessage {
  common::RequestId request;
  common::Bytes result;
};

struct SchedMsgMessage {
  common::NodeId sender;
  common::Bytes payload;
};

inline common::Bytes encode_request(const RequestMessage& m) {
  common::Writer w;
  w.u8(static_cast<std::uint8_t>(AppWireKind::kRequest));
  w.id(m.id);
  w.id(m.logical);
  w.u8(static_cast<std::uint8_t>(m.reply_mode));
  w.u32(m.reply_target);
  w.str(m.method);
  w.blob(m.args);
  return w.take();
}

inline common::Bytes encode_nested_reply(const NestedReplyMessage& m) {
  common::Writer w;
  w.u8(static_cast<std::uint8_t>(AppWireKind::kNestedReply));
  w.id(m.request);
  w.blob(m.result);
  return w.take();
}

inline common::Bytes encode_sched_msg(const SchedMsgMessage& m) {
  common::Writer w;
  w.u8(static_cast<std::uint8_t>(AppWireKind::kSchedMsg));
  w.u32(m.sender.value());
  w.blob(m.payload);
  return w.take();
}

/// Deterministic, collision-resistant nested request id: every replica
/// executing the same logical code derives the same id, so the callee's
/// at-most-once filter and the caller-side reply matching line up.  The
/// passive-replication replay harness derives identical ids to look up
/// recorded replies.
inline common::RequestId derive_nested_id(common::RequestId parent,
                                          std::uint64_t counter) {
  std::uint64_t state = parent.value() ^ (counter * 0x9e3779b97f4a7c15ULL);
  return common::RequestId(common::splitmix64(state) | (1ULL << 63));
}

/// Reply datagram from a replica to a client node.
struct ClientReply {
  common::RequestId request;
  common::Bytes result;
};

inline common::Bytes encode_client_reply(const ClientReply& m) {
  common::Writer w;
  w.id(m.request);
  w.blob(m.result);
  return w.take();
}

namespace detail {
inline std::optional<ClientReply> decode_client_reply(common::Reader r) {
  try {
    ClientReply m;
    m.request = r.id<common::RequestId>();
    m.result = r.blob();
    return m;
  } catch (const common::SerializationError&) {
    return std::nullopt;
  }
}
}  // namespace detail

inline std::optional<ClientReply> decode_client_reply(const common::Bytes& payload) {
  return detail::decode_client_reply(common::Reader(payload));
}

inline std::optional<ClientReply> decode_client_reply(const common::SharedBytes& payload) {
  return detail::decode_client_reply(common::Reader(payload));
}

}  // namespace adets::runtime
