// Wire encoding of group-communication protocol messages.
//
// Payloads are zero-copy: a Submission inside a received envelope is a
// SharedBytes slice of that envelope, so decoding a SeqBatch of N
// submissions performs no per-message allocation — the whole batch
// shares the one buffer the transport delivered.
#pragma once

#include <cstdint>
#include <vector>

#include "common/buffer.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"
#include "gcs/view.hpp"

namespace adets::gcs {

/// Protocol message kinds multiplexed over the transport.
enum class WireKind : std::uint8_t {
  kSubmit = 1,     // sender -> sequencer (or member, forwarded): order me
  kSubmitAck = 2,  // sequencer -> external sender: your message is sequenced
  kSeqMsg = 3,     // sequencer -> members: one totally ordered message
  kNack = 4,       // member -> sequencer: retransmit sequence range
  kHeartbeat = 5,  // member -> members: liveness
  kViewPropose = 6,
  kViewAck = 7,
  kViewCommit = 8,
  kDirect = 9,        // point-to-point datagram outside any total order
  kSeqBatch = 10,     // sequencer -> members: contiguous run of ordered messages
  kSubmitBatch = 11,  // sender -> sequencer: several submissions, one datagram
  kSubmitAckBatch = 12,  // sequencer -> external sender: several acks
};

/// A message submitted for total ordering.  (sender, sender_msg_id) makes
/// submissions idempotent across retransmissions and sequencer fail-over.
struct Submission {
  common::NodeId sender;
  std::uint64_t sender_msg_id = 0;
  common::SharedBytes payload;
};

/// A sequenced message as retained/delivered by members.
struct Sequenced {
  common::SeqNo seq;
  Submission submission;
};

// --- encoding helpers -----------------------------------------------------

inline void encode_submission(common::Writer& w, const Submission& s) {
  w.u32(s.sender.value());
  w.u64(s.sender_msg_id);
  w.blob(s.payload);
}

/// `envelope` is the buffer `r` reads from; the payload becomes a
/// zero-copy slice of it.
inline Submission decode_submission(common::Reader& r,
                                    const common::SharedBytes& envelope) {
  Submission s;
  s.sender = common::NodeId(r.u32());
  s.sender_msg_id = r.u64();
  const auto [offset, length] = r.blob_span();
  s.payload = envelope.slice(offset, length);
  return s;
}

inline void encode_sequenced(common::Writer& w, const Sequenced& m) {
  w.id(m.seq);
  encode_submission(w, m.submission);
}

inline Sequenced decode_sequenced(common::Reader& r,
                                  const common::SharedBytes& envelope) {
  Sequenced m;
  m.seq = r.id<common::SeqNo>();
  m.submission = decode_submission(r, envelope);
  return m;
}

// A SeqBatch is a contiguous run [first_seq, first_seq + count): the per
// message seq is implicit, so the batch header costs 12 bytes total
// instead of 8 per message.  NACK repair responds with the same format
// (any contiguous sub-run of the retained window is a valid SeqBatch).

inline void encode_seq_batch_header(common::Writer& w, std::uint64_t first_seq,
                                    std::uint32_t count) {
  w.u64(first_seq);
  w.u32(count);
}

inline void encode_view(common::Writer& w, const View& v) {
  w.u32(v.id.value());
  w.u32(static_cast<std::uint32_t>(v.members.size()));
  for (auto m : v.members) w.u32(m.value());
}

inline View decode_view(common::Reader& r) {
  View v;
  v.id = common::ViewId(r.u32());
  const auto n = r.u32();
  v.members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.members.emplace_back(r.u32());
  return v;
}

}  // namespace adets::gcs
