// Group communication service: sequencer-based total-order broadcast.
//
// One GroupService runs on every simulated node.  It plays the role of
// the "group communication module" in the FTflex architecture (paper
// Sec. 5.1): all client requests, nested invocations/replies, scheduler
// timeout messages and LSA mutex-table broadcasts travel through it and
// are delivered to every group member in the same total order.
//
// Protocol (fixed-sequencer with fail-over and batching):
//  - The member with the lowest node id in the current view sequences
//    submissions and multicasts them; members deliver in sequence order
//    using a hold-back queue and NACK-based gap repair.
//  - The sequencer coalesces the submissions of one sequencing round
//    into a single SeqBatch multicast (a contiguous run of sequence
//    numbers) instead of one datagram per message; flushing is governed
//    by GcsConfig::max_batch_msgs / max_batch_bytes / batch_flush_delay.
//    Acks to external senders are deferred to the flush, so an ack
//    implies the message was actually multicast.  NACK repair responds
//    at the same granularity (contiguous runs of the retained window).
//  - Submissions are idempotent: (sender, sender_msg_id) pairs are
//    deduplicated by the sequencer, and senders retransmit until their
//    message is observed sequenced (members) or acknowledged (externals).
//  - A heartbeat failure detector drives view changes.  The new
//    coordinator (lowest surviving member) collects each survivor's
//    received messages, recomputes the highest safely-contiguous sequence
//    number, discards anything beyond it (never delivered anywhere, will
//    be re-submitted), and commits the new view.  A batch the old
//    sequencer had not flushed is discarded wholesale: none of it was
//    acked or retained anywhere, so senders re-submit and the new
//    sequencer re-sequences.  View events are delivered in-stream, after
//    all messages of the old view.
//
// Delivery callbacks run on a dedicated per-service delivery thread and
// must not block for long; schedulers only enqueue work there.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/annotations.hpp"
#include "common/blocking_queue.hpp"
#include "common/buffer.hpp"
#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/types.hpp"
#include "gcs/view.hpp"
#include "gcs/wire.hpp"
#include "transport/network.hpp"

namespace adets::gcs {

/// Tunables; all durations are real time (failure detection is a
/// real-time concern, not a workload concern).
struct GcsConfig {
  common::Duration heartbeat_interval = std::chrono::milliseconds(20);
  common::Duration suspect_timeout = std::chrono::milliseconds(150);
  common::Duration retransmit_interval = std::chrono::milliseconds(60);
  common::Duration view_ack_timeout = std::chrono::milliseconds(250);
  common::Duration timer_tick = std::chrono::milliseconds(5);
  /// How many delivered messages each member retains for NACK repair and
  /// view-change reconciliation (a sliding window; older ones cannot be
  /// re-requested, matching a real GC layer's stability horizon).
  std::size_t retained_limit = 8192;
  /// The sequencer's dedup map is pruned once it exceeds
  /// dedup_horizon_factor * retained_limit entries (entries below the
  /// retained window reference messages nobody can re-request anyway).
  std::size_t dedup_horizon_factor = 2;

  // --- sequencer batching ---------------------------------------------
  /// Max sequenced messages multicast per SeqBatch datagram.  1 disables
  /// batching (one datagram per message, the pre-batching wire shape).
  std::size_t max_batch_msgs = 64;
  /// Max payload bytes accumulated before a flush is forced.
  std::size_t max_batch_bytes = 64 * 1024;
  /// How long the sequencer may hold a non-full batch open to coalesce
  /// submissions across sequencing rounds.  Zero flushes at the end of
  /// every round (no added latency); non-zero trades up to that much
  /// latency (quantised by timer_tick) for larger batches.
  common::Duration batch_flush_delay = common::Duration::zero();
  /// When non-zero, submit() defers the initial send to the timer so
  /// several local submissions pack into one SubmitBatch datagram
  /// (effective delay is one timer_tick).  Zero sends immediately.
  common::Duration submit_flush_delay = common::Duration::zero();
};

/// Historical name, kept for existing call sites.
using GroupServiceConfig = GcsConfig;

/// Totally-ordered delivery and view callbacks of one group membership.
struct GroupCallbacks {
  /// Called for every sequenced message, in total order.
  std::function<void(common::GroupId, const Sequenced&)> deliver;
  /// Called when a new view is installed (after all old-view messages).
  std::function<void(common::GroupId, const View&)> on_view;
};

/// Per-node group communication endpoint.
class GroupService {
 public:
  GroupService(transport::SimNetwork& net, common::NodeId self,
               GcsConfig config = {});
  ~GroupService();

  GroupService(const GroupService&) = delete;
  GroupService& operator=(const GroupService&) = delete;

  [[nodiscard]] common::NodeId self() const { return self_; }

  /// Joins `group` as a member with the given static initial membership
  /// (all members must call this with the same list).
  void join(common::GroupId group, std::vector<common::NodeId> initial_members,
            GroupCallbacks callbacks);

  /// Registers an external (non-member) session used to submit messages
  /// into `group`'s total order, e.g. a client or another replica group.
  void connect(common::GroupId group, std::vector<common::NodeId> members);

  /// Submits `payload` into the group's total order; returns the local
  /// message id (useful for tests).  Works for members and externals.
  std::uint64_t submit(common::GroupId group, common::Bytes payload);

  /// Point-to-point datagram outside any total order (used for replies
  /// from replicas to clients).
  void send_direct(common::NodeId dst, common::Bytes payload);

  /// Handler for kDirect datagrams; runs on the delivery thread.  The
  /// payload is a zero-copy view of the received datagram.
  void set_direct_handler(
      std::function<void(common::NodeId, const common::SharedBytes&)> handler);

  /// Current view of a group this node is member of.
  [[nodiscard]] View current_view(common::GroupId group) const;

  /// Highest contiguously delivered sequence number (tests).
  [[nodiscard]] std::uint64_t delivered_up_to(common::GroupId group) const;

  void stop();

 private:
  struct MemberState {
    View view;
    GroupCallbacks callbacks;
    // Sequencer role (used when self is view.sequencer()).
    std::uint64_t next_seq = 1;
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> dedup;
    // Sequencer batching: sequenced but not yet multicast messages, the
    // external acks deferred to their flush, and the highest sequence
    // number actually multicast (what heartbeats may advertise).
    std::vector<Sequenced> batch;
    std::size_t batch_bytes = 0;
    common::TimePoint batch_since{};
    std::map<std::uint32_t, std::vector<std::uint64_t>> batch_acks;
    std::uint64_t flushed_seq = 0;
    // Delivery.
    std::uint64_t delivered_up_to = 0;
    std::map<std::uint64_t, Sequenced> holdback;
    std::map<std::uint64_t, Sequenced> retained;
    common::TimePoint last_nack{};
    // Failure detection.
    std::map<std::uint32_t, common::TimePoint> last_heard;
    std::set<std::uint32_t> suspected;
    common::TimePoint last_heartbeat{};
    // View change (coordinator side).
    bool proposing = false;
    std::uint32_t proposal_view_id = 0;
    std::vector<common::NodeId> proposal_members;
    std::set<std::uint32_t> proposal_acks;
    std::uint64_t proposal_highest = 0;
    common::TimePoint proposal_deadline{};
    // View change (member side).
    bool commit_pending = false;
    View committed_view;
    std::uint64_t commit_final_highest = 0;
  };

  struct SenderState {
    std::vector<common::NodeId> members;
    std::uint64_t next_msg_id = 1;
    struct Pending {
      common::SharedBytes payload;
      common::TimePoint last_send{};  // {} = never sent yet
      std::size_t target = 0;
    };
    std::map<std::uint64_t, Pending> pending;
  };

  struct DeliverEvent {
    common::GroupId group;
    /// One contiguous run of sequenced messages (a delivered batch); the
    /// delivery thread invokes the callback once per message, in order.
    std::vector<Sequenced> messages;
  };
  struct ViewEvent {
    common::GroupId group;
    View view;
  };
  struct DirectEvent {
    common::NodeId src;
    common::SharedBytes payload;
  };
  using Event = std::variant<DeliverEvent, ViewEvent, DirectEvent>;

  // All handlers below run with mutex_ held (enforced by clang's
  // thread-safety analysis via ADETS_REQUIRES) unless stated otherwise.
  void on_message(transport::Message message);  // transport thread
  void handle_submit(common::GroupId group, const transport::Message& m,
                     common::Reader& r) ADETS_REQUIRES(mutex_);
  void handle_submit_batch(common::GroupId group, const transport::Message& m,
                           common::Reader& r) ADETS_REQUIRES(mutex_);
  void handle_submit_ack(common::GroupId group, common::Reader& r)
      ADETS_REQUIRES(mutex_);
  void handle_submit_ack_batch(common::GroupId group, common::Reader& r)
      ADETS_REQUIRES(mutex_);
  void handle_seq_msg(common::GroupId group, const transport::Message& m,
                      common::Reader& r) ADETS_REQUIRES(mutex_);
  void handle_seq_batch(common::GroupId group, const transport::Message& m,
                        common::Reader& r) ADETS_REQUIRES(mutex_);
  void handle_nack(common::GroupId group, common::NodeId from, common::Reader& r)
      ADETS_REQUIRES(mutex_);
  void handle_heartbeat(common::GroupId group, common::NodeId from, common::Reader& r)
      ADETS_REQUIRES(mutex_);
  void handle_view_propose(common::GroupId group, common::NodeId from,
                           common::Reader& r) ADETS_REQUIRES(mutex_);
  void handle_view_ack(common::GroupId group, common::NodeId from,
                       const transport::Message& m, common::Reader& r)
      ADETS_REQUIRES(mutex_);
  void handle_view_commit(common::GroupId group, common::Reader& r)
      ADETS_REQUIRES(mutex_);

  void sequence_submission(common::GroupId group, MemberState& st, Submission submission)
      ADETS_REQUIRES(mutex_);
  /// Flushes the pending batch if a cap is hit or the flush delay
  /// elapsed (`force` flushes unconditionally).
  void maybe_flush(common::GroupId group, MemberState& st, bool force)
      ADETS_REQUIRES(mutex_);
  void flush_batch(common::GroupId group, MemberState& st) ADETS_REQUIRES(mutex_);
  void store_and_deliver(common::GroupId group, MemberState& st, Sequenced message)
      ADETS_REQUIRES(mutex_);
  void try_deliver(common::GroupId group, MemberState& st) ADETS_REQUIRES(mutex_);
  void maybe_install_view(common::GroupId group, MemberState& st) ADETS_REQUIRES(mutex_);
  void start_proposal(common::GroupId group, MemberState& st) ADETS_REQUIRES(mutex_);
  void finish_proposal(common::GroupId group, MemberState& st) ADETS_REQUIRES(mutex_);
  void send_nack_if_gap(common::GroupId group, MemberState& st, bool force)
      ADETS_REQUIRES(mutex_);
  void resend_pending(common::GroupId group, SenderState& sender, bool force)
      ADETS_REQUIRES(mutex_);
  /// Sends one batch of this sender's pending submissions to `target`.
  void send_submissions(common::GroupId group, SenderState& sender,
                        const std::vector<std::uint64_t>& msg_ids, std::size_t target)
      ADETS_REQUIRES(mutex_);
  /// Repairs [from_seq, to_seq] for `dst` out of retained/holdback, as
  /// contiguous SeqBatch runs.
  void send_repair(common::GroupId group, MemberState& st, common::NodeId dst,
                   std::uint64_t from_seq, std::uint64_t to_seq)
      ADETS_REQUIRES(mutex_);

  void send_wire(common::NodeId dst, common::Bytes bytes);
  void send_wire(common::NodeId dst, const common::SharedBytes& bytes);
  void timer_loop();
  void delivery_loop();

  transport::SimNetwork& net_;
  const common::NodeId self_;
  const GcsConfig config_;

  mutable common::Mutex mutex_{"gcs::mutex"};
  std::map<std::uint32_t, MemberState> memberships_ ADETS_GUARDED_BY(mutex_);
  std::map<std::uint32_t, SenderState> senders_ ADETS_GUARDED_BY(mutex_);
  std::function<void(common::NodeId, const common::SharedBytes&)> direct_handler_
      ADETS_GUARDED_BY(mutex_);

  // adets-sa:allow(unguarded-field) BlockingQueue is internally synchronized
  common::BlockingQueue<Event> events_;
  bool stopping_ ADETS_GUARDED_BY(mutex_) = false;
  std::thread timer_;
  std::thread delivery_;
};

}  // namespace adets::gcs
