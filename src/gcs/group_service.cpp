#include "gcs/group_service.hpp"

#include <algorithm>
#include <cassert>

#include "common/clock.hpp"
#include "common/logging.hpp"

namespace adets::gcs {

using common::Bytes;
using common::Duration;
using common::GroupId;
using common::NodeId;
using common::Reader;
using common::SeqNo;
using common::SharedBytes;
using common::TimePoint;
using common::Writer;

GroupService::GroupService(transport::SimNetwork& net, NodeId self, GcsConfig config)
    : net_(net), self_(self), config_(config) {
  net_.set_handler(self_, [this](transport::Message m) { on_message(std::move(m)); });
  timer_ = std::thread([this] { timer_loop(); });
  delivery_ = std::thread([this] { delivery_loop(); });
}

GroupService::~GroupService() { stop(); }

void GroupService::stop() {
  {
    const common::MutexLock guard(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  events_.close();
  if (timer_.joinable()) timer_.join();
  if (delivery_.joinable()) delivery_.join();
}

void GroupService::join(GroupId group, std::vector<NodeId> initial_members,
                        GroupCallbacks callbacks) {
  const common::MutexLock guard(mutex_);
  MemberState st;
  st.view = View::initial(std::move(initial_members));
  st.callbacks = std::move(callbacks);
  const auto now = common::Clock::now();
  for (auto m : st.view.members) {
    if (m != self_) st.last_heard[m.value()] = now;
  }
  memberships_[group.value()] = std::move(st);
  // A member submits through its own membership; register a sender slot
  // so submit() has a pending-tracking structure.
  SenderState sender;
  sender.members = memberships_[group.value()].view.members;
  senders_.emplace(group.value(), std::move(sender));
}

void GroupService::connect(GroupId group, std::vector<NodeId> members) {
  const common::MutexLock guard(mutex_);
  std::sort(members.begin(), members.end());
  SenderState sender;
  sender.members = std::move(members);
  senders_[group.value()] = std::move(sender);
}

std::uint64_t GroupService::submit(GroupId group, Bytes payload) {
  const common::MutexLock guard(mutex_);
  auto it = senders_.find(group.value());
  if (it == senders_.end()) return 0;
  SenderState& sender = it->second;
  const std::uint64_t msg_id = sender.next_msg_id++;
  SenderState::Pending pending;
  pending.payload = SharedBytes(std::move(payload));
  sender.pending[msg_id] = std::move(pending);
  // Send just the new submission (never the whole pending map: that
  // would be O(pending) work per submit under load); with a configured
  // submit_flush_delay the timer packs it into a SubmitBatch instead.
  if (config_.submit_flush_delay == Duration::zero() && !sender.members.empty()) {
    SenderState::Pending& p = sender.pending[msg_id];
    p.last_send = common::Clock::now();
    send_submissions(group, sender, {msg_id}, p.target);
  }
  return msg_id;
}

void GroupService::send_direct(NodeId dst, Bytes payload) {
  Writer w;
  w.reserve(payload.size() + 16);
  w.u8(static_cast<std::uint8_t>(WireKind::kDirect));
  w.u32(0);
  w.blob(payload);
  net_.send(self_, dst, w.take());
}

void GroupService::set_direct_handler(
    std::function<void(NodeId, const SharedBytes&)> handler) {
  const common::MutexLock guard(mutex_);
  direct_handler_ = std::move(handler);
}

View GroupService::current_view(GroupId group) const {
  const common::MutexLock guard(mutex_);
  const auto it = memberships_.find(group.value());
  return it == memberships_.end() ? View{} : it->second.view;
}

std::uint64_t GroupService::delivered_up_to(GroupId group) const {
  const common::MutexLock guard(mutex_);
  const auto it = memberships_.find(group.value());
  return it == memberships_.end() ? 0 : it->second.delivered_up_to;
}

// --- message handling -------------------------------------------------------

void GroupService::on_message(transport::Message message) {
  Reader r(message.payload);
  WireKind kind;
  GroupId group;
  try {
    kind = static_cast<WireKind>(r.u8());
    group = GroupId(r.u32());
  } catch (const common::SerializationError&) {
    return;
  }

  if (kind == WireKind::kDirect) {
    try {
      const auto [offset, length] = r.blob_span();
      events_.push(DirectEvent{message.src, message.payload.slice(offset, length)});
    } catch (const common::SerializationError&) {
    }
    return;
  }

  const common::MutexLock guard(mutex_);
  if (stopping_) return;
  // Any protocol traffic from a peer counts as a liveness signal.
  if (auto it = memberships_.find(group.value()); it != memberships_.end()) {
    it->second.last_heard[message.src.value()] = common::Clock::now();
  }
  try {
    switch (kind) {
      case WireKind::kSubmit: handle_submit(group, message, r); break;
      case WireKind::kSubmitBatch: handle_submit_batch(group, message, r); break;
      case WireKind::kSubmitAck: handle_submit_ack(group, r); break;
      case WireKind::kSubmitAckBatch: handle_submit_ack_batch(group, r); break;
      case WireKind::kSeqMsg: handle_seq_msg(group, message, r); break;
      case WireKind::kSeqBatch: handle_seq_batch(group, message, r); break;
      case WireKind::kNack: handle_nack(group, message.src, r); break;
      case WireKind::kHeartbeat: handle_heartbeat(group, message.src, r); break;
      case WireKind::kViewPropose: handle_view_propose(group, message.src, r); break;
      case WireKind::kViewAck: handle_view_ack(group, message.src, message, r); break;
      case WireKind::kViewCommit: handle_view_commit(group, r); break;
      case WireKind::kDirect: break;  // handled above
    }
  } catch (const common::SerializationError& e) {
    ADETS_LOG_ERROR("gcs") << "malformed message kind=" << static_cast<int>(kind)
                           << ": " << e.what();
  }
}

void GroupService::handle_submit(GroupId group, const transport::Message& m,
                                 Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (st.view.sequencer() != self_) {
    // Forward the original envelope to the current sequencer verbatim
    // (the submission carries its own sender field); the sender will
    // also retry.
    send_wire(st.view.sequencer(), m.payload);
    return;
  }
  sequence_submission(group, st, decode_submission(r, m.payload));
  maybe_flush(group, st, /*force=*/false);
}

void GroupService::handle_submit_batch(GroupId group, const transport::Message& m,
                                       Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (st.view.sequencer() != self_) {
    send_wire(st.view.sequencer(), m.payload);
    return;
  }
  const NodeId sender(r.u32());
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Submission s;
    s.sender = sender;
    s.sender_msg_id = r.u64();
    const auto [offset, length] = r.blob_span();
    s.payload = m.payload.slice(offset, length);
    sequence_submission(group, st, std::move(s));
  }
  maybe_flush(group, st, /*force=*/false);
}

void GroupService::sequence_submission(GroupId group, MemberState& st,
                                       Submission submission) {
  // Between a view-commit and its installation the old sequence space is
  // frozen; the sender retransmits into the new view.
  if (st.commit_pending) return;
  const auto key = std::make_pair(submission.sender.value(), submission.sender_msg_id);
  const auto dup = st.dedup.find(key);
  if (dup != st.dedup.end()) {
    // Already sequenced.  Re-ack externals only once the original was
    // actually multicast — an unflushed original will be acked by its
    // flush anyway, and acking earlier would widen the loss window on a
    // sequencer crash.
    if (!st.view.contains(submission.sender) && dup->second <= st.flushed_seq) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(WireKind::kSubmitAck));
      w.u32(group.value());
      w.u64(submission.sender_msg_id);
      send_wire(submission.sender, w.take());
    }
    return;
  }
  Sequenced message;
  message.seq = SeqNo(st.next_seq++);
  message.submission = std::move(submission);
  st.dedup[key] = message.seq.value();
  if (!st.view.contains(message.submission.sender)) {
    st.batch_acks[message.submission.sender.value()].push_back(
        message.submission.sender_msg_id);
  }
  if (st.batch.empty()) st.batch_since = common::Clock::now();
  st.batch_bytes += message.submission.payload.size();
  st.batch.push_back(std::move(message));
}

void GroupService::maybe_flush(GroupId group, MemberState& st, bool force) {
  if (st.batch.empty()) return;
  if (!force) {
    const bool caps_hit = st.batch.size() >= config_.max_batch_msgs ||
                          st.batch_bytes >= config_.max_batch_bytes;
    const bool delay_elapsed =
        config_.batch_flush_delay == Duration::zero() ||
        common::Clock::now() - st.batch_since >= config_.batch_flush_delay;
    if (!caps_hit && !delay_elapsed) return;
  }
  flush_batch(group, st);
}

void GroupService::flush_batch(GroupId group, MemberState& st) {
  if (st.batch.empty()) return;
  if (st.commit_pending || st.view.sequencer() != self_) {
    // A view change overtook the batch: nothing in it was multicast or
    // acked anywhere, so drop it (senders re-submit into the new view)
    // and let the dedup rebuild forget the discarded sequence numbers.
    for (const auto& m : st.batch) {
      st.dedup.erase({m.submission.sender.value(), m.submission.sender_msg_id});
    }
    st.batch.clear();
    st.batch_bytes = 0;
    st.batch_acks.clear();
    return;
  }
  std::size_t i = 0;
  while (i < st.batch.size()) {
    // One contiguous chunk per datagram, capped by both batch knobs.
    std::size_t count = 1;
    std::size_t bytes = st.batch[i].submission.payload.size();
    while (i + count < st.batch.size() && count < config_.max_batch_msgs &&
           bytes < config_.max_batch_bytes) {
      bytes += st.batch[i + count].submission.payload.size();
      ++count;
    }
    Writer w;
    w.reserve(bytes + 20 * (count + 1));
    if (count == 1) {
      w.u8(static_cast<std::uint8_t>(WireKind::kSeqMsg));
      w.u32(group.value());
      encode_sequenced(w, st.batch[i]);
    } else {
      w.u8(static_cast<std::uint8_t>(WireKind::kSeqBatch));
      w.u32(group.value());
      encode_seq_batch_header(w, st.batch[i].seq.value(),
                              static_cast<std::uint32_t>(count));
      for (std::size_t j = 0; j < count; ++j) {
        encode_submission(w, st.batch[i + j].submission);
      }
    }
    const SharedBytes datagram{w.take()};
    for (auto m : st.view.members) send_wire(m, datagram);
    st.flushed_seq = st.batch[i + count - 1].seq.value();
    i += count;
  }
  st.batch.clear();
  st.batch_bytes = 0;
  // The deferred external acks: the messages are on the wire now.
  for (auto& [node, ids] : st.batch_acks) {
    if (ids.size() == 1) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(WireKind::kSubmitAck));
      w.u32(group.value());
      w.u64(ids.front());
      send_wire(NodeId(node), w.take());
      continue;
    }
    Writer w;
    w.reserve(ids.size() * 8 + 16);
    w.u8(static_cast<std::uint8_t>(WireKind::kSubmitAckBatch));
    w.u32(group.value());
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (const std::uint64_t id : ids) w.u64(id);
    send_wire(NodeId(node), w.take());
  }
  st.batch_acks.clear();
}

void GroupService::handle_submit_ack(GroupId group, Reader& r) {
  const std::uint64_t msg_id = r.u64();
  auto it = senders_.find(group.value());
  if (it == senders_.end()) return;
  it->second.pending.erase(msg_id);
}

void GroupService::handle_submit_ack_batch(GroupId group, Reader& r) {
  auto it = senders_.find(group.value());
  if (it == senders_.end()) return;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    it->second.pending.erase(r.u64());
  }
}

void GroupService::handle_seq_msg(GroupId group, const transport::Message& m,
                                  Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  store_and_deliver(group, st, decode_sequenced(r, m.payload));
}

void GroupService::handle_seq_batch(GroupId group, const transport::Message& m,
                                    Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  const std::uint64_t first_seq = r.u64();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Sequenced message;
    message.seq = SeqNo(first_seq + i);
    message.submission = decode_submission(r, m.payload);
    const std::uint64_t seq = message.seq.value();
    if (message.submission.sender == self_) {
      if (auto sit = senders_.find(group.value()); sit != senders_.end()) {
        sit->second.pending.erase(message.submission.sender_msg_id);
      }
    }
    if (seq <= st.delivered_up_to) continue;
    if (st.commit_pending && seq > st.commit_final_highest) continue;
    st.holdback.emplace(seq, std::move(message));
  }
  try_deliver(group, st);
  send_nack_if_gap(group, st, /*force=*/false);
}

void GroupService::store_and_deliver(GroupId group, MemberState& st,
                                     Sequenced message) {
  const std::uint64_t seq = message.seq.value();
  // A member observing its own submission sequenced can stop retrying it.
  if (message.submission.sender == self_) {
    if (auto sit = senders_.find(group.value()); sit != senders_.end()) {
      sit->second.pending.erase(message.submission.sender_msg_id);
    }
  }
  if (seq <= st.delivered_up_to) return;
  if (st.commit_pending && seq > st.commit_final_highest) return;
  st.holdback.emplace(seq, std::move(message));
  try_deliver(group, st);
  send_nack_if_gap(group, st, /*force=*/false);
}

void GroupService::try_deliver(GroupId group, MemberState& st) {
  // Collect the whole contiguous run and hand it to the delivery thread
  // as one event (one queue operation and one callback lookup per run).
  std::vector<Sequenced> ready;
  while (true) {
    const auto it = st.holdback.find(st.delivered_up_to + 1);
    if (it == st.holdback.end()) break;
    st.delivered_up_to++;
    st.retained.emplace(it->first, it->second);
    ready.push_back(std::move(it->second));
    st.holdback.erase(it);
  }
  if (!ready.empty()) events_.push(DeliverEvent{group, std::move(ready)});
  // Slide the repair window; also bound the sequencer's dedup map (its
  // entries reference sequence numbers below the window anyway).
  while (st.retained.size() > config_.retained_limit) {
    st.retained.erase(st.retained.begin());
  }
  if (st.dedup.size() > config_.dedup_horizon_factor * config_.retained_limit) {
    const std::uint64_t horizon =
        st.delivered_up_to > config_.retained_limit
            ? st.delivered_up_to - config_.retained_limit
            : 0;
    for (auto it = st.dedup.begin(); it != st.dedup.end();) {
      if (it->second < horizon) {
        it = st.dedup.erase(it);
      } else {
        ++it;
      }
    }
  }
  maybe_install_view(group, st);
}

void GroupService::send_nack_if_gap(GroupId group, MemberState& st, bool force) {
  if (st.holdback.empty()) return;
  const std::uint64_t expected = st.delivered_up_to + 1;
  const std::uint64_t first_held = st.holdback.begin()->first;
  if (first_held <= expected) return;
  const auto now = common::Clock::now();
  if (!force && now - st.last_nack < config_.retransmit_interval) return;
  st.last_nack = now;
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kNack));
  w.u32(group.value());
  w.u64(expected);
  w.u64(first_held - 1);
  send_wire(st.view.sequencer(), w.take());
}

void GroupService::handle_nack(GroupId group, NodeId from, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  const std::uint64_t from_seq = r.u64();
  const std::uint64_t to_seq = r.u64();
  send_repair(group, st, from, from_seq, to_seq);
}

void GroupService::send_repair(GroupId group, MemberState& st, NodeId dst,
                               std::uint64_t from_seq, std::uint64_t to_seq) {
  // Repair at batch granularity: every maximal contiguous run of found
  // messages goes out as one SeqBatch (capped by the batch knobs).
  std::vector<const Sequenced*> run;
  std::size_t run_bytes = 0;
  const auto emit = [&]() ADETS_REQUIRES(mutex_) {
    if (run.empty()) return;
    Writer w;
    w.reserve(run_bytes + 20 * (run.size() + 1));
    if (run.size() == 1) {
      w.u8(static_cast<std::uint8_t>(WireKind::kSeqMsg));
      w.u32(group.value());
      encode_sequenced(w, *run.front());
    } else {
      w.u8(static_cast<std::uint8_t>(WireKind::kSeqBatch));
      w.u32(group.value());
      encode_seq_batch_header(w, run.front()->seq.value(),
                              static_cast<std::uint32_t>(run.size()));
      for (const Sequenced* m : run) encode_submission(w, m->submission);
    }
    send_wire(dst, w.take());
    run.clear();
    run_bytes = 0;
  };
  for (std::uint64_t seq = from_seq; seq <= to_seq; ++seq) {
    const Sequenced* found = nullptr;
    if (auto rit = st.retained.find(seq); rit != st.retained.end()) {
      found = &rit->second;
    } else if (auto hit = st.holdback.find(seq); hit != st.holdback.end()) {
      found = &hit->second;
    }
    if (found == nullptr) {
      emit();  // gap in what we hold: close the contiguous run
      continue;
    }
    if (run.size() >= config_.max_batch_msgs ||
        run_bytes + found->submission.payload.size() > config_.max_batch_bytes) {
      emit();
    }
    run.push_back(found);
    run_bytes += found->submission.payload.size();
  }
  emit();
}

void GroupService::handle_heartbeat(GroupId group, NodeId, Reader& r) {
  // Liveness was already recorded in on_message.  The heartbeat also
  // carries the peer's highest known sequence number: that is the only
  // way a member can detect a gap at the TAIL of the stream.  A dropped
  // final SeqMsg leaves the holdback queue empty, so send_nack_if_gap
  // never fires, and once the submitter has seen its own submission
  // sequenced nobody retransmits -- the member would lag forever.
  const std::uint64_t peer_highest = r.u64();
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (st.commit_pending) return;  // view installation repairs its own range
  if (peer_highest <= st.delivered_up_to) return;
  const auto now = common::Clock::now();
  if (now - st.last_nack < config_.retransmit_interval) return;
  st.last_nack = now;
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kNack));
  w.u32(group.value());
  w.u64(st.delivered_up_to + 1);
  w.u64(peer_highest);
  send_wire(st.view.sequencer(), w.take());
}

// --- view changes ------------------------------------------------------------

void GroupService::start_proposal(GroupId group, MemberState& st) {
  std::vector<NodeId> survivors;
  for (auto m : st.view.members) {
    if (m == self_ || st.suspected.count(m.value()) == 0) survivors.push_back(m);
  }
  if (survivors.empty() || survivors.front() != self_) return;
  st.proposing = true;
  st.proposal_view_id = st.view.id.value() + 1;
  st.proposal_members = survivors;
  st.proposal_acks.clear();
  st.proposal_highest = st.delivered_up_to;
  st.proposal_deadline = common::Clock::now() + config_.view_ack_timeout;

  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewPropose));
  w.u32(group.value());
  w.u32(st.proposal_view_id);
  w.u32(static_cast<std::uint32_t>(survivors.size()));
  for (auto m : survivors) w.u32(m.value());
  w.u64(st.delivered_up_to);
  const SharedBytes datagram{w.take()};
  for (auto m : survivors) {
    if (m != self_) send_wire(m, datagram);
  }
  // Coordinator's own ack is implicit.
  st.proposal_acks.insert(self_.value());
  ADETS_LOG_INFO("gcs") << "node " << self_ << " proposing view "
                        << st.proposal_view_id << " for group " << group
                        << " with " << survivors.size() << " members";
}

void GroupService::handle_view_propose(GroupId group, NodeId from, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  const std::uint32_t proposal_view_id = r.u32();
  const auto member_count = r.u32();
  std::vector<NodeId> members;
  members.reserve(member_count);
  for (std::uint32_t i = 0; i < member_count; ++i) members.emplace_back(r.u32());
  const std::uint64_t coord_highest = r.u64();
  if (proposal_view_id <= st.view.id.value()) return;
  if (std::find(members.begin(), members.end(), self_) == members.end()) return;

  // Reply with everything we received beyond the coordinator's horizon.
  std::vector<const Sequenced*> extra;
  for (const auto& [seq, msg] : st.retained) {
    if (seq > coord_highest) extra.push_back(&msg);
  }
  for (const auto& [seq, msg] : st.holdback) {
    if (seq > coord_highest) extra.push_back(&msg);
  }
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewAck));
  w.u32(group.value());
  w.u32(proposal_view_id);
  w.u64(st.delivered_up_to);
  w.u32(static_cast<std::uint32_t>(extra.size()));
  for (const Sequenced* msg : extra) encode_sequenced(w, *msg);
  send_wire(from, w.take());
}

void GroupService::handle_view_ack(GroupId group, NodeId from,
                                   const transport::Message& m, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (!st.proposing) return;
  const std::uint32_t proposal_view_id = r.u32();
  if (proposal_view_id != st.proposal_view_id) return;
  r.u64();  // member's delivered_up_to (informational)
  const auto count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Sequenced msg = decode_sequenced(r, m.payload);
    const std::uint64_t seq = msg.seq.value();
    if (seq > st.delivered_up_to && st.holdback.count(seq) == 0) {
      st.holdback.emplace(seq, std::move(msg));
    }
  }
  try_deliver(group, st);
  st.proposal_acks.insert(from.value());
  const bool all_acked = std::all_of(
      st.proposal_members.begin(), st.proposal_members.end(),
      [&](NodeId member) { return st.proposal_acks.count(member.value()) > 0; });
  if (all_acked) finish_proposal(group, st);
}

void GroupService::finish_proposal(GroupId group, MemberState& st) {
  st.proposing = false;
  // After merging all survivors' messages, the highest contiguous seq the
  // coordinator holds is safe: anything above it was never delivered by
  // any survivor and is discarded (senders will re-submit).
  std::uint64_t final_highest = st.delivered_up_to;
  while (st.holdback.count(final_highest + 1) > 0) final_highest++;

  View new_view;
  new_view.id = common::ViewId(st.proposal_view_id);
  new_view.members = st.proposal_members;
  std::sort(new_view.members.begin(), new_view.members.end());

  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewCommit));
  w.u32(group.value());
  encode_view(w, new_view);
  w.u64(final_highest);
  const SharedBytes datagram{w.take()};
  for (auto m : new_view.members) {
    if (m != self_) send_wire(m, datagram);
  }
  // Apply locally without a network round-trip.
  st.commit_pending = true;
  st.committed_view = new_view;
  st.commit_final_highest = final_highest;
  for (auto hb = st.holdback.upper_bound(final_highest); hb != st.holdback.end();) {
    hb = st.holdback.erase(hb);
  }
  try_deliver(group, st);
  send_nack_if_gap(group, st, /*force=*/true);
}

void GroupService::handle_view_commit(GroupId group, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  View new_view = decode_view(r);
  const std::uint64_t final_highest = r.u64();
  if (new_view.id.value() <= st.view.id.value()) return;
  st.commit_pending = true;
  st.committed_view = std::move(new_view);
  st.commit_final_highest = final_highest;
  for (auto hb = st.holdback.upper_bound(final_highest); hb != st.holdback.end();) {
    hb = st.holdback.erase(hb);
  }
  try_deliver(group, st);
  // Any gap below final_highest must be repaired by the new sequencer.
  if (st.delivered_up_to < final_highest) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kNack));
    w.u32(group.value());
    w.u64(st.delivered_up_to + 1);
    w.u64(final_highest);
    send_wire(st.committed_view.sequencer(), w.take());
  }
}

void GroupService::maybe_install_view(GroupId group, MemberState& st) {
  if (!st.commit_pending || st.delivered_up_to < st.commit_final_highest) return;
  st.commit_pending = false;
  st.view = st.committed_view;
  st.proposing = false;
  st.suspected.clear();
  const auto now = common::Clock::now();
  st.last_heard.clear();
  for (auto m : st.view.members) {
    if (m != self_) st.last_heard[m.value()] = now;
  }
  // A batch sequenced in the old view was never multicast or acked;
  // discard it, the senders re-submit into the new sequence space.
  st.batch.clear();
  st.batch_bytes = 0;
  st.batch_acks.clear();
  if (st.view.sequencer() == self_) {
    st.next_seq = st.commit_final_highest + 1;
    st.flushed_seq = st.commit_final_highest;
    // Rebuild the dedup map from everything that survived the change so
    // re-submissions of already-sequenced messages are not duplicated.
    st.dedup.clear();
    for (const auto& [seq, msg] : st.retained) {
      st.dedup[{msg.submission.sender.value(), msg.submission.sender_msg_id}] = seq;
    }
  }
  events_.push(ViewEvent{group, st.view});
  // Re-target our own pending submissions at the new sequencer: marking
  // them never-sent makes resend_pending address the new members[0]
  // immediately instead of rotating past it.
  if (auto sit = senders_.find(group.value()); sit != senders_.end()) {
    sit->second.members = st.view.members;
    for (auto& [msg_id, pending] : sit->second.pending) {
      pending.target = 0;
      pending.last_send = TimePoint{};
    }
    resend_pending(group, sit->second, /*force=*/true);
  }
  ADETS_LOG_INFO("gcs") << "node " << self_ << " installed view "
                        << st.view.id << " of group " << group << " ("
                        << st.view.members.size() << " members, final="
                        << st.commit_final_highest << ")";
}

// --- timers -------------------------------------------------------------------

void GroupService::resend_pending(GroupId group, SenderState& sender, bool force) {
  if (sender.members.empty()) return;
  const auto now = common::Clock::now();
  // Collect everything due per target so each target gets one batch.
  std::map<std::size_t, std::vector<std::uint64_t>> by_target;
  for (auto& [msg_id, pending] : sender.pending) {
    const bool unsent = pending.last_send == TimePoint{};
    if (!unsent && !force &&
        now - pending.last_send < config_.retransmit_interval) {
      continue;
    }
    if (!unsent) {
      // Previous attempt unanswered: rotate to the next candidate.
      pending.target = (pending.target + 1) % sender.members.size();
    }
    pending.last_send = now;
    by_target[pending.target].push_back(msg_id);
  }
  for (const auto& [target, msg_ids] : by_target) {
    send_submissions(group, sender, msg_ids, target);
  }
}

void GroupService::send_submissions(GroupId group, SenderState& sender,
                                    const std::vector<std::uint64_t>& msg_ids,
                                    std::size_t target) {
  const NodeId dst = sender.members[target];
  std::size_t i = 0;
  while (i < msg_ids.size()) {
    std::size_t count = 1;
    std::size_t bytes = sender.pending[msg_ids[i]].payload.size();
    while (i + count < msg_ids.size() && count < config_.max_batch_msgs &&
           bytes < config_.max_batch_bytes) {
      bytes += sender.pending[msg_ids[i + count]].payload.size();
      ++count;
    }
    Writer w;
    w.reserve(bytes + 20 * (count + 1));
    if (count == 1) {
      w.u8(static_cast<std::uint8_t>(WireKind::kSubmit));
      w.u32(group.value());
      Submission submission{self_, msg_ids[i], sender.pending[msg_ids[i]].payload};
      encode_submission(w, submission);
    } else {
      w.u8(static_cast<std::uint8_t>(WireKind::kSubmitBatch));
      w.u32(group.value());
      w.u32(self_.value());
      w.u32(static_cast<std::uint32_t>(count));
      for (std::size_t j = 0; j < count; ++j) {
        const std::uint64_t id = msg_ids[i + j];
        w.u64(id);
        w.blob(sender.pending[id].payload);
      }
    }
    send_wire(dst, w.take());
    i += count;
  }
}

void GroupService::timer_loop() {
  while (true) {
    {
      const common::MutexLock guard(mutex_);
      if (stopping_) return;
      const auto now = common::Clock::now();
      for (auto& [group_raw, st] : memberships_) {
        const GroupId group(group_raw);
        // Flush a batch the sequencing rounds left open (flush-delay
        // policy); do it before heartbeats so known_highest is current.
        if (st.view.sequencer() == self_ && !st.batch.empty() &&
            now - st.batch_since >= config_.batch_flush_delay) {
          maybe_flush(group, st, /*force=*/true);
        }
        // Heartbeats.
        if (now - st.last_heartbeat >= config_.heartbeat_interval) {
          st.last_heartbeat = now;
          Writer w;
          w.u8(static_cast<std::uint8_t>(WireKind::kHeartbeat));
          w.u32(group_raw);
          // Highest sequence this node knows of, so receivers can detect
          // (and NACK) a gap at the tail of the stream.  The sequencer
          // advertises only what it has multicast (flushed_seq): an
          // unflushed batch is not repairable, NACKing it would spin.
          std::uint64_t known_highest = st.delivered_up_to;
          if (!st.holdback.empty()) {
            known_highest = std::max(known_highest, st.holdback.rbegin()->first);
          }
          if (st.view.sequencer() == self_) {
            known_highest = std::max(known_highest, st.flushed_seq);
          }
          w.u64(known_highest);
          const SharedBytes datagram{w.take()};
          for (auto m : st.view.members) {
            if (m != self_) send_wire(m, datagram);
          }
        }
        // Failure detection.
        bool new_suspicion = false;
        for (auto m : st.view.members) {
          if (m == self_ || st.suspected.count(m.value()) > 0) continue;
          const auto heard = st.last_heard.find(m.value());
          if (heard != st.last_heard.end() &&
              now - heard->second > config_.suspect_timeout) {
            st.suspected.insert(m.value());
            new_suspicion = true;
            ADETS_LOG_INFO("gcs") << "node " << self_ << " suspects node " << m
                                  << " in group " << group;
          }
        }
        // Coordinator drives the view change.
        if (!st.suspected.empty() && !st.commit_pending) {
          const bool proposal_expired =
              st.proposing && now > st.proposal_deadline;
          if ((new_suspicion && !st.proposing) || proposal_expired) {
            start_proposal(group, st);
          }
        }
        send_nack_if_gap(group, st, /*force=*/false);
      }
      for (auto& [group_raw, sender] : senders_) {
        resend_pending(GroupId(group_raw), sender, /*force=*/false);
      }
    }
    common::Clock::sleep_real(config_.timer_tick);
  }
}

void GroupService::delivery_loop() {
  while (auto event = events_.pop()) {
    if (auto* deliver = std::get_if<DeliverEvent>(&*event)) {
      GroupCallbacks callbacks;
      {
        const common::MutexLock guard(mutex_);
        const auto it = memberships_.find(deliver->group.value());
        if (it != memberships_.end()) callbacks = it->second.callbacks;
      }
      if (callbacks.deliver) {
        for (const Sequenced& message : deliver->messages) {
          callbacks.deliver(deliver->group, message);
        }
      }
    } else if (auto* view = std::get_if<ViewEvent>(&*event)) {
      GroupCallbacks callbacks;
      {
        const common::MutexLock guard(mutex_);
        const auto it = memberships_.find(view->group.value());
        if (it != memberships_.end()) callbacks = it->second.callbacks;
      }
      if (callbacks.on_view) callbacks.on_view(view->group, view->view);
    } else if (auto* direct = std::get_if<DirectEvent>(&*event)) {
      std::function<void(NodeId, const SharedBytes&)> handler;
      {
        const common::MutexLock guard(mutex_);
        handler = direct_handler_;
      }
      if (handler) handler(direct->src, direct->payload);
    }
  }
}

void GroupService::send_wire(NodeId dst, Bytes bytes) {
  net_.send(self_, dst, std::move(bytes));
}

void GroupService::send_wire(NodeId dst, const SharedBytes& bytes) {
  net_.send(self_, dst, bytes);
}

}  // namespace adets::gcs
