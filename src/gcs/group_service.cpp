#include "gcs/group_service.hpp"

#include <algorithm>
#include <cassert>

#include "common/clock.hpp"
#include "common/logging.hpp"

namespace adets::gcs {

using common::Bytes;
using common::GroupId;
using common::NodeId;
using common::Reader;
using common::SeqNo;
using common::TimePoint;
using common::Writer;

GroupService::GroupService(transport::SimNetwork& net, NodeId self,
                           GroupServiceConfig config)
    : net_(net), self_(self), config_(config) {
  net_.set_handler(self_, [this](transport::Message m) { on_message(std::move(m)); });
  timer_ = std::thread([this] { timer_loop(); });
  delivery_ = std::thread([this] { delivery_loop(); });
}

GroupService::~GroupService() { stop(); }

void GroupService::stop() {
  {
    const common::MutexLock guard(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  events_.close();
  if (timer_.joinable()) timer_.join();
  if (delivery_.joinable()) delivery_.join();
}

void GroupService::join(GroupId group, std::vector<NodeId> initial_members,
                        GroupCallbacks callbacks) {
  const common::MutexLock guard(mutex_);
  MemberState st;
  st.view = View::initial(std::move(initial_members));
  st.callbacks = std::move(callbacks);
  const auto now = common::Clock::now();
  for (auto m : st.view.members) {
    if (m != self_) st.last_heard[m.value()] = now;
  }
  memberships_[group.value()] = std::move(st);
  // A member submits through its own membership; register a sender slot
  // so submit() has a pending-tracking structure.
  SenderState sender;
  sender.members = memberships_[group.value()].view.members;
  senders_.emplace(group.value(), std::move(sender));
}

void GroupService::connect(GroupId group, std::vector<NodeId> members) {
  const common::MutexLock guard(mutex_);
  std::sort(members.begin(), members.end());
  SenderState sender;
  sender.members = std::move(members);
  senders_[group.value()] = std::move(sender);
}

std::uint64_t GroupService::submit(GroupId group, Bytes payload) {
  const common::MutexLock guard(mutex_);
  auto it = senders_.find(group.value());
  if (it == senders_.end()) return 0;
  SenderState& sender = it->second;
  const std::uint64_t msg_id = sender.next_msg_id++;
  SenderState::Pending pending;
  pending.payload = std::move(payload);
  sender.pending[msg_id] = std::move(pending);
  resend_pending(group, sender, /*force=*/true);
  return msg_id;
}

void GroupService::send_direct(NodeId dst, Bytes payload) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kDirect));
  w.u32(0);
  w.blob(payload);
  net_.send(self_, dst, w.take());
}

void GroupService::set_direct_handler(
    std::function<void(NodeId, const Bytes&)> handler) {
  const common::MutexLock guard(mutex_);
  direct_handler_ = std::move(handler);
}

View GroupService::current_view(GroupId group) const {
  const common::MutexLock guard(mutex_);
  const auto it = memberships_.find(group.value());
  return it == memberships_.end() ? View{} : it->second.view;
}

std::uint64_t GroupService::delivered_up_to(GroupId group) const {
  const common::MutexLock guard(mutex_);
  const auto it = memberships_.find(group.value());
  return it == memberships_.end() ? 0 : it->second.delivered_up_to;
}

// --- message handling -------------------------------------------------------

void GroupService::on_message(transport::Message message) {
  Reader r(message.payload);
  WireKind kind;
  GroupId group;
  try {
    kind = static_cast<WireKind>(r.u8());
    group = GroupId(r.u32());
  } catch (const common::SerializationError&) {
    return;
  }

  if (kind == WireKind::kDirect) {
    events_.push(DirectEvent{message.src, r.blob()});
    return;
  }

  const common::MutexLock guard(mutex_);
  if (stopping_) return;
  // Any protocol traffic from a peer counts as a liveness signal.
  if (auto it = memberships_.find(group.value()); it != memberships_.end()) {
    it->second.last_heard[message.src.value()] = common::Clock::now();
  }
  try {
    switch (kind) {
      case WireKind::kSubmit: handle_submit(group, r); break;
      case WireKind::kSubmitAck: handle_submit_ack(group, r); break;
      case WireKind::kSeqMsg: handle_seq_msg(group, r); break;
      case WireKind::kNack: handle_nack(group, message.src, r); break;
      case WireKind::kHeartbeat: handle_heartbeat(group, message.src, r); break;
      case WireKind::kViewPropose: handle_view_propose(group, message.src, r); break;
      case WireKind::kViewAck: handle_view_ack(group, message.src, r); break;
      case WireKind::kViewCommit: handle_view_commit(group, r); break;
      case WireKind::kDirect: break;  // handled above
    }
  } catch (const common::SerializationError& e) {
    ADETS_LOG_ERROR("gcs") << "malformed message kind=" << static_cast<int>(kind)
                           << ": " << e.what();
  }
}

void GroupService::handle_submit(GroupId group, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  Submission submission = decode_submission(r);

  if (st.view.sequencer() != self_) {
    // Forward to the current sequencer; the sender will also retry.
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kSubmit));
    w.u32(group.value());
    encode_submission(w, submission);
    send_wire(st.view.sequencer(), w.take());
    return;
  }
  sequence_submission(group, st, std::move(submission));
}

void GroupService::sequence_submission(GroupId group, MemberState& st,
                                       Submission submission) {
  const auto key = std::make_pair(submission.sender.value(), submission.sender_msg_id);
  const auto dup = st.dedup.find(key);
  if (dup != st.dedup.end()) {
    // Already sequenced: re-ack externals; members will see the SeqMsg.
    if (!st.view.contains(submission.sender)) {
      Writer w;
      w.u8(static_cast<std::uint8_t>(WireKind::kSubmitAck));
      w.u32(group.value());
      w.u64(submission.sender_msg_id);
      send_wire(submission.sender, w.take());
    }
    return;
  }
  Sequenced message;
  message.seq = SeqNo(st.next_seq++);
  message.submission = std::move(submission);
  st.dedup[key] = message.seq.value();
  if (!st.view.contains(message.submission.sender)) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kSubmitAck));
    w.u32(group.value());
    w.u64(message.submission.sender_msg_id);
    send_wire(message.submission.sender, w.take());
  }
  multicast_seq(st, group, message);
}

void GroupService::multicast_seq(const MemberState& st, GroupId group,
                                 const Sequenced& message) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kSeqMsg));
  w.u32(group.value());
  encode_sequenced(w, message);
  const Bytes bytes = w.take();
  for (auto m : st.view.members) send_wire(m, bytes);
}

void GroupService::handle_submit_ack(GroupId group, Reader& r) {
  const std::uint64_t msg_id = r.u64();
  auto it = senders_.find(group.value());
  if (it == senders_.end()) return;
  it->second.pending.erase(msg_id);
}

void GroupService::handle_seq_msg(GroupId group, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  Sequenced message = decode_sequenced(r);
  store_and_deliver(group, st, std::move(message));
}

void GroupService::store_and_deliver(GroupId group, MemberState& st,
                                     Sequenced message) {
  const std::uint64_t seq = message.seq.value();
  // A member observing its own submission sequenced can stop retrying it.
  if (message.submission.sender == self_) {
    if (auto sit = senders_.find(group.value()); sit != senders_.end()) {
      sit->second.pending.erase(message.submission.sender_msg_id);
    }
  }
  if (seq <= st.delivered_up_to) return;
  if (st.commit_pending && seq > st.commit_final_highest) return;
  st.holdback.emplace(seq, std::move(message));
  try_deliver(group, st);
  send_nack_if_gap(group, st, /*force=*/false);
}

void GroupService::try_deliver(GroupId group, MemberState& st) {
  while (true) {
    const auto it = st.holdback.find(st.delivered_up_to + 1);
    if (it == st.holdback.end()) break;
    st.delivered_up_to++;
    st.retained.emplace(it->first, it->second);
    events_.push(DeliverEvent{group, it->second});
    st.holdback.erase(it);
  }
  // Slide the repair window; also bound the sequencer's dedup map (its
  // entries reference sequence numbers below the window anyway).
  while (st.retained.size() > config_.retained_limit) {
    st.retained.erase(st.retained.begin());
  }
  if (st.dedup.size() > 2 * config_.retained_limit) {
    const std::uint64_t horizon =
        st.delivered_up_to > config_.retained_limit
            ? st.delivered_up_to - config_.retained_limit
            : 0;
    for (auto it = st.dedup.begin(); it != st.dedup.end();) {
      if (it->second < horizon) {
        it = st.dedup.erase(it);
      } else {
        ++it;
      }
    }
  }
  maybe_install_view(group, st);
}

void GroupService::send_nack_if_gap(GroupId group, MemberState& st, bool force) {
  if (st.holdback.empty()) return;
  const std::uint64_t expected = st.delivered_up_to + 1;
  const std::uint64_t first_held = st.holdback.begin()->first;
  if (first_held <= expected) return;
  const auto now = common::Clock::now();
  if (!force && now - st.last_nack < config_.retransmit_interval) return;
  st.last_nack = now;
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kNack));
  w.u32(group.value());
  w.u64(expected);
  w.u64(first_held - 1);
  send_wire(st.view.sequencer(), w.take());
}

void GroupService::handle_nack(GroupId group, NodeId from, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  const std::uint64_t from_seq = r.u64();
  const std::uint64_t to_seq = r.u64();
  for (std::uint64_t seq = from_seq; seq <= to_seq; ++seq) {
    const Sequenced* found = nullptr;
    if (auto rit = st.retained.find(seq); rit != st.retained.end()) {
      found = &rit->second;
    } else if (auto hit = st.holdback.find(seq); hit != st.holdback.end()) {
      found = &hit->second;
    }
    if (found == nullptr) continue;
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kSeqMsg));
    w.u32(group.value());
    encode_sequenced(w, *found);
    send_wire(from, w.take());
  }
}

void GroupService::handle_heartbeat(GroupId group, NodeId, Reader& r) {
  // Liveness was already recorded in on_message.  The heartbeat also
  // carries the peer's highest known sequence number: that is the only
  // way a member can detect a gap at the TAIL of the stream.  A dropped
  // final SeqMsg leaves the holdback queue empty, so send_nack_if_gap
  // never fires, and once the submitter has seen its own submission
  // sequenced nobody retransmits -- the member would lag forever.
  const std::uint64_t peer_highest = r.u64();
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (st.commit_pending) return;  // view installation repairs its own range
  if (peer_highest <= st.delivered_up_to) return;
  const auto now = common::Clock::now();
  if (now - st.last_nack < config_.retransmit_interval) return;
  st.last_nack = now;
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kNack));
  w.u32(group.value());
  w.u64(st.delivered_up_to + 1);
  w.u64(peer_highest);
  send_wire(st.view.sequencer(), w.take());
}

// --- view changes ------------------------------------------------------------

void GroupService::start_proposal(GroupId group, MemberState& st) {
  std::vector<NodeId> survivors;
  for (auto m : st.view.members) {
    if (m == self_ || st.suspected.count(m.value()) == 0) survivors.push_back(m);
  }
  if (survivors.empty() || survivors.front() != self_) return;
  st.proposing = true;
  st.proposal_view_id = st.view.id.value() + 1;
  st.proposal_members = survivors;
  st.proposal_acks.clear();
  st.proposal_highest = st.delivered_up_to;
  st.proposal_deadline = common::Clock::now() + config_.view_ack_timeout;

  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewPropose));
  w.u32(group.value());
  w.u32(st.proposal_view_id);
  w.u32(static_cast<std::uint32_t>(survivors.size()));
  for (auto m : survivors) w.u32(m.value());
  w.u64(st.delivered_up_to);
  const Bytes bytes = w.take();
  for (auto m : survivors) {
    if (m != self_) send_wire(m, bytes);
  }
  // Coordinator's own ack is implicit.
  st.proposal_acks.insert(self_.value());
  ADETS_LOG_INFO("gcs") << "node " << self_ << " proposing view "
                        << st.proposal_view_id << " for group " << group
                        << " with " << survivors.size() << " members";
}

void GroupService::handle_view_propose(GroupId group, NodeId from, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  const std::uint32_t proposal_view_id = r.u32();
  const auto member_count = r.u32();
  std::vector<NodeId> members;
  members.reserve(member_count);
  for (std::uint32_t i = 0; i < member_count; ++i) members.emplace_back(r.u32());
  const std::uint64_t coord_highest = r.u64();
  if (proposal_view_id <= st.view.id.value()) return;
  if (std::find(members.begin(), members.end(), self_) == members.end()) return;

  // Reply with everything we received beyond the coordinator's horizon.
  std::vector<const Sequenced*> extra;
  for (const auto& [seq, msg] : st.retained) {
    if (seq > coord_highest) extra.push_back(&msg);
  }
  for (const auto& [seq, msg] : st.holdback) {
    if (seq > coord_highest) extra.push_back(&msg);
  }
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewAck));
  w.u32(group.value());
  w.u32(proposal_view_id);
  w.u64(st.delivered_up_to);
  w.u32(static_cast<std::uint32_t>(extra.size()));
  for (const Sequenced* msg : extra) encode_sequenced(w, *msg);
  send_wire(from, w.take());
}

void GroupService::handle_view_ack(GroupId group, NodeId from, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  if (!st.proposing) return;
  const std::uint32_t proposal_view_id = r.u32();
  if (proposal_view_id != st.proposal_view_id) return;
  r.u64();  // member's delivered_up_to (informational)
  const auto count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Sequenced msg = decode_sequenced(r);
    const std::uint64_t seq = msg.seq.value();
    if (seq > st.delivered_up_to && st.holdback.count(seq) == 0) {
      st.holdback.emplace(seq, std::move(msg));
    }
  }
  try_deliver(group, st);
  st.proposal_acks.insert(from.value());
  const bool all_acked = std::all_of(
      st.proposal_members.begin(), st.proposal_members.end(),
      [&](NodeId m) { return st.proposal_acks.count(m.value()) > 0; });
  if (all_acked) finish_proposal(group, st);
}

void GroupService::finish_proposal(GroupId group, MemberState& st) {
  st.proposing = false;
  // After merging all survivors' messages, the highest contiguous seq the
  // coordinator holds is safe: anything above it was never delivered by
  // any survivor and is discarded (senders will re-submit).
  std::uint64_t final_highest = st.delivered_up_to;
  while (st.holdback.count(final_highest + 1) > 0) final_highest++;

  View new_view;
  new_view.id = common::ViewId(st.proposal_view_id);
  new_view.members = st.proposal_members;
  std::sort(new_view.members.begin(), new_view.members.end());

  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kViewCommit));
  w.u32(group.value());
  encode_view(w, new_view);
  w.u64(final_highest);
  const Bytes bytes = w.take();
  for (auto m : new_view.members) {
    if (m != self_) send_wire(m, bytes);
  }
  // Apply locally without a network round-trip.
  st.commit_pending = true;
  st.committed_view = new_view;
  st.commit_final_highest = final_highest;
  for (auto hb = st.holdback.upper_bound(final_highest); hb != st.holdback.end();) {
    hb = st.holdback.erase(hb);
  }
  try_deliver(group, st);
  send_nack_if_gap(group, st, /*force=*/true);
}

void GroupService::handle_view_commit(GroupId group, Reader& r) {
  auto it = memberships_.find(group.value());
  if (it == memberships_.end()) return;
  MemberState& st = it->second;
  View new_view = decode_view(r);
  const std::uint64_t final_highest = r.u64();
  if (new_view.id.value() <= st.view.id.value()) return;
  st.commit_pending = true;
  st.committed_view = std::move(new_view);
  st.commit_final_highest = final_highest;
  for (auto hb = st.holdback.upper_bound(final_highest); hb != st.holdback.end();) {
    hb = st.holdback.erase(hb);
  }
  try_deliver(group, st);
  // Any gap below final_highest must be repaired by the new sequencer.
  if (st.delivered_up_to < final_highest) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kNack));
    w.u32(group.value());
    w.u64(st.delivered_up_to + 1);
    w.u64(final_highest);
    send_wire(st.committed_view.sequencer(), w.take());
  }
}

void GroupService::maybe_install_view(GroupId group, MemberState& st) {
  if (!st.commit_pending || st.delivered_up_to < st.commit_final_highest) return;
  st.commit_pending = false;
  st.view = st.committed_view;
  st.proposing = false;
  st.suspected.clear();
  const auto now = common::Clock::now();
  st.last_heard.clear();
  for (auto m : st.view.members) {
    if (m != self_) st.last_heard[m.value()] = now;
  }
  if (st.view.sequencer() == self_) {
    st.next_seq = st.commit_final_highest + 1;
    // Rebuild the dedup map from everything that survived the change so
    // re-submissions of already-sequenced messages are not duplicated.
    st.dedup.clear();
    for (const auto& [seq, msg] : st.retained) {
      st.dedup[{msg.submission.sender.value(), msg.submission.sender_msg_id}] = seq;
    }
  }
  events_.push(ViewEvent{group, st.view});
  // Re-target our own pending submissions at the new sequencer.
  if (auto sit = senders_.find(group.value()); sit != senders_.end()) {
    sit->second.members = st.view.members;
    for (auto& [msg_id, pending] : sit->second.pending) pending.target = 0;
    resend_pending(group, sit->second, /*force=*/true);
  }
  ADETS_LOG_INFO("gcs") << "node " << self_ << " installed view "
                        << st.view.id << " of group " << group << " ("
                        << st.view.members.size() << " members, final="
                        << st.commit_final_highest << ")";
}

// --- timers -------------------------------------------------------------------

void GroupService::resend_pending(GroupId group, SenderState& sender, bool force) {
  if (sender.members.empty()) return;
  const auto now = common::Clock::now();
  for (auto& [msg_id, pending] : sender.pending) {
    if (!force && now - pending.last_send < config_.retransmit_interval) continue;
    if (pending.last_send != TimePoint{}) {
      // Previous attempt unanswered: rotate to the next candidate.
      pending.target = (pending.target + 1) % sender.members.size();
    }
    pending.last_send = now;
    Writer w;
    w.u8(static_cast<std::uint8_t>(WireKind::kSubmit));
    w.u32(group.value());
    Submission submission{self_, msg_id, pending.payload};
    encode_submission(w, submission);
    send_wire(sender.members[pending.target], w.take());
  }
}

void GroupService::timer_loop() {
  while (true) {
    {
      const common::MutexLock guard(mutex_);
      if (stopping_) return;
      const auto now = common::Clock::now();
      for (auto& [group_raw, st] : memberships_) {
        const GroupId group(group_raw);
        // Heartbeats.
        if (now - st.last_heartbeat >= config_.heartbeat_interval) {
          st.last_heartbeat = now;
          Writer w;
          w.u8(static_cast<std::uint8_t>(WireKind::kHeartbeat));
          w.u32(group_raw);
          // Highest sequence this node knows of, so receivers can detect
          // (and NACK) a gap at the tail of the stream.
          std::uint64_t known_highest = st.delivered_up_to;
          if (!st.holdback.empty()) {
            known_highest = std::max(known_highest, st.holdback.rbegin()->first);
          }
          if (st.view.sequencer() == self_) {
            known_highest = std::max(known_highest, st.next_seq - 1);
          }
          w.u64(known_highest);
          const Bytes bytes = w.take();
          for (auto m : st.view.members) {
            if (m != self_) send_wire(m, bytes);
          }
        }
        // Failure detection.
        bool new_suspicion = false;
        for (auto m : st.view.members) {
          if (m == self_ || st.suspected.count(m.value()) > 0) continue;
          const auto heard = st.last_heard.find(m.value());
          if (heard != st.last_heard.end() &&
              now - heard->second > config_.suspect_timeout) {
            st.suspected.insert(m.value());
            new_suspicion = true;
            ADETS_LOG_INFO("gcs") << "node " << self_ << " suspects node " << m
                                  << " in group " << group;
          }
        }
        // Coordinator drives the view change.
        if (!st.suspected.empty() && !st.commit_pending) {
          const bool proposal_expired =
              st.proposing && now > st.proposal_deadline;
          if ((new_suspicion && !st.proposing) || proposal_expired) {
            start_proposal(group, st);
          }
        }
        send_nack_if_gap(group, st, /*force=*/false);
      }
      for (auto& [group_raw, sender] : senders_) {
        resend_pending(GroupId(group_raw), sender, /*force=*/false);
      }
    }
    common::Clock::sleep_real(config_.timer_tick);
  }
}

void GroupService::delivery_loop() {
  while (auto event = events_.pop()) {
    if (auto* deliver = std::get_if<DeliverEvent>(&*event)) {
      GroupCallbacks callbacks;
      {
        const common::MutexLock guard(mutex_);
        const auto it = memberships_.find(deliver->group.value());
        if (it != memberships_.end()) callbacks = it->second.callbacks;
      }
      if (callbacks.deliver) callbacks.deliver(deliver->group, deliver->message);
    } else if (auto* view = std::get_if<ViewEvent>(&*event)) {
      GroupCallbacks callbacks;
      {
        const common::MutexLock guard(mutex_);
        const auto it = memberships_.find(view->group.value());
        if (it != memberships_.end()) callbacks = it->second.callbacks;
      }
      if (callbacks.on_view) callbacks.on_view(view->group, view->view);
    } else if (auto* direct = std::get_if<DirectEvent>(&*event)) {
      std::function<void(NodeId, const Bytes&)> handler;
      {
        const common::MutexLock guard(mutex_);
        handler = direct_handler_;
      }
      if (handler) handler(direct->src, direct->payload);
    }
  }
}

void GroupService::send_wire(NodeId dst, const Bytes& bytes) {
  net_.send(self_, dst, bytes);
}

}  // namespace adets::gcs
