// Membership views.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace adets::gcs {

/// A membership view of one replica group.  Members are kept sorted by
/// node id; the sequencer (and, for ADETS-LSA, the leader) is the member
/// with the lowest id.
struct View {
  common::ViewId id;
  std::vector<common::NodeId> members;

  [[nodiscard]] common::NodeId sequencer() const {
    return members.empty() ? common::NodeId::invalid() : members.front();
  }

  [[nodiscard]] bool contains(common::NodeId node) const {
    return std::find(members.begin(), members.end(), node) != members.end();
  }

  static View initial(std::vector<common::NodeId> members) {
    std::sort(members.begin(), members.end());
    return View{common::ViewId(0), std::move(members)};
  }
};

}  // namespace adets::gcs
