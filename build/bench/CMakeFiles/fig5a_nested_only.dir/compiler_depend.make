# Empty compiler generated dependencies file for fig5a_nested_only.
# This may be replaced when dependencies are built.
