file(REMOVE_RECURSE
  "CMakeFiles/fig5a_nested_only.dir/fig5a_nested_only.cpp.o"
  "CMakeFiles/fig5a_nested_only.dir/fig5a_nested_only.cpp.o.d"
  "fig5a_nested_only"
  "fig5a_nested_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_nested_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
