file(REMOVE_RECURSE
  "CMakeFiles/ablation_pds_assignment.dir/ablation_pds_assignment.cpp.o"
  "CMakeFiles/ablation_pds_assignment.dir/ablation_pds_assignment.cpp.o.d"
  "ablation_pds_assignment"
  "ablation_pds_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pds_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
