# Empty compiler generated dependencies file for ablation_pds_assignment.
# This may be replaced when dependencies are built.
