file(REMOVE_RECURSE
  "CMakeFiles/fig5b_nested_patterns.dir/fig5b_nested_patterns.cpp.o"
  "CMakeFiles/fig5b_nested_patterns.dir/fig5b_nested_patterns.cpp.o.d"
  "fig5b_nested_patterns"
  "fig5b_nested_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_nested_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
