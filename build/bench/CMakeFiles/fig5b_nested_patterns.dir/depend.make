# Empty dependencies file for fig5b_nested_patterns.
# This may be replaced when dependencies are built.
