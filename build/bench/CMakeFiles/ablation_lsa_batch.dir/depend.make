# Empty dependencies file for ablation_lsa_batch.
# This may be replaced when dependencies are built.
