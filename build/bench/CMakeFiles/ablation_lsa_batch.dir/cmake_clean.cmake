file(REMOVE_RECURSE
  "CMakeFiles/ablation_lsa_batch.dir/ablation_lsa_batch.cpp.o"
  "CMakeFiles/ablation_lsa_batch.dir/ablation_lsa_batch.cpp.o.d"
  "ablation_lsa_batch"
  "ablation_lsa_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lsa_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
