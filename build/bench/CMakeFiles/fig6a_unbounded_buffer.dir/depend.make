# Empty dependencies file for fig6a_unbounded_buffer.
# This may be replaced when dependencies are built.
