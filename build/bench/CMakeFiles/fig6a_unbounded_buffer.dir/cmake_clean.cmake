file(REMOVE_RECURSE
  "CMakeFiles/fig6a_unbounded_buffer.dir/fig6a_unbounded_buffer.cpp.o"
  "CMakeFiles/fig6a_unbounded_buffer.dir/fig6a_unbounded_buffer.cpp.o.d"
  "fig6a_unbounded_buffer"
  "fig6a_unbounded_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_unbounded_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
