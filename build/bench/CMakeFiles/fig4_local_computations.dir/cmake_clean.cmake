file(REMOVE_RECURSE
  "CMakeFiles/fig4_local_computations.dir/fig4_local_computations.cpp.o"
  "CMakeFiles/fig4_local_computations.dir/fig4_local_computations.cpp.o.d"
  "fig4_local_computations"
  "fig4_local_computations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_local_computations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
