# Empty compiler generated dependencies file for fig4_local_computations.
# This may be replaced when dependencies are built.
