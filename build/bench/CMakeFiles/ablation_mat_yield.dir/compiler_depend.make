# Empty compiler generated dependencies file for ablation_mat_yield.
# This may be replaced when dependencies are built.
