file(REMOVE_RECURSE
  "CMakeFiles/ablation_mat_yield.dir/ablation_mat_yield.cpp.o"
  "CMakeFiles/ablation_mat_yield.dir/ablation_mat_yield.cpp.o.d"
  "ablation_mat_yield"
  "ablation_mat_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mat_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
