# Empty dependencies file for ablation_pds_variants.
# This may be replaced when dependencies are built.
