file(REMOVE_RECURSE
  "CMakeFiles/ablation_pds_variants.dir/ablation_pds_variants.cpp.o"
  "CMakeFiles/ablation_pds_variants.dir/ablation_pds_variants.cpp.o.d"
  "ablation_pds_variants"
  "ablation_pds_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pds_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
