file(REMOVE_RECURSE
  "CMakeFiles/fig6b_bounded_buffer.dir/fig6b_bounded_buffer.cpp.o"
  "CMakeFiles/fig6b_bounded_buffer.dir/fig6b_bounded_buffer.cpp.o.d"
  "fig6b_bounded_buffer"
  "fig6b_bounded_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_bounded_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
