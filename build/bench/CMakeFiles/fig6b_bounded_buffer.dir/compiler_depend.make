# Empty compiler generated dependencies file for fig6b_bounded_buffer.
# This may be replaced when dependencies are built.
