file(REMOVE_RECURSE
  "CMakeFiles/adets_replication.dir/consistency.cpp.o"
  "CMakeFiles/adets_replication.dir/consistency.cpp.o.d"
  "CMakeFiles/adets_replication.dir/replay.cpp.o"
  "CMakeFiles/adets_replication.dir/replay.cpp.o.d"
  "libadets_replication.a"
  "libadets_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
