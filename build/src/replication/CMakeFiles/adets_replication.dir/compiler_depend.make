# Empty compiler generated dependencies file for adets_replication.
# This may be replaced when dependencies are built.
