file(REMOVE_RECURSE
  "libadets_replication.a"
)
