file(REMOVE_RECURSE
  "CMakeFiles/adets_common.dir/clock.cpp.o"
  "CMakeFiles/adets_common.dir/clock.cpp.o.d"
  "CMakeFiles/adets_common.dir/logging.cpp.o"
  "CMakeFiles/adets_common.dir/logging.cpp.o.d"
  "libadets_common.a"
  "libadets_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
