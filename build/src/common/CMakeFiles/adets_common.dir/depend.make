# Empty dependencies file for adets_common.
# This may be replaced when dependencies are built.
