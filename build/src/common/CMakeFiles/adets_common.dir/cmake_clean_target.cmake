file(REMOVE_RECURSE
  "libadets_common.a"
)
