file(REMOVE_RECURSE
  "libadets_transport.a"
)
