file(REMOVE_RECURSE
  "CMakeFiles/adets_transport.dir/network.cpp.o"
  "CMakeFiles/adets_transport.dir/network.cpp.o.d"
  "libadets_transport.a"
  "libadets_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
