# Empty compiler generated dependencies file for adets_transport.
# This may be replaced when dependencies are built.
