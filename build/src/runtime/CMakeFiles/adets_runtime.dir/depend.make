# Empty dependencies file for adets_runtime.
# This may be replaced when dependencies are built.
