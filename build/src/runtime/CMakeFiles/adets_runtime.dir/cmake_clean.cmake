file(REMOVE_RECURSE
  "CMakeFiles/adets_runtime.dir/client.cpp.o"
  "CMakeFiles/adets_runtime.dir/client.cpp.o.d"
  "CMakeFiles/adets_runtime.dir/cluster.cpp.o"
  "CMakeFiles/adets_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/adets_runtime.dir/context.cpp.o"
  "CMakeFiles/adets_runtime.dir/context.cpp.o.d"
  "CMakeFiles/adets_runtime.dir/replica.cpp.o"
  "CMakeFiles/adets_runtime.dir/replica.cpp.o.d"
  "libadets_runtime.a"
  "libadets_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
