file(REMOVE_RECURSE
  "libadets_runtime.a"
)
