
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/client.cpp" "src/runtime/CMakeFiles/adets_runtime.dir/client.cpp.o" "gcc" "src/runtime/CMakeFiles/adets_runtime.dir/client.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/adets_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/adets_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/runtime/CMakeFiles/adets_runtime.dir/context.cpp.o" "gcc" "src/runtime/CMakeFiles/adets_runtime.dir/context.cpp.o.d"
  "/root/repo/src/runtime/replica.cpp" "src/runtime/CMakeFiles/adets_runtime.dir/replica.cpp.o" "gcc" "src/runtime/CMakeFiles/adets_runtime.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adets_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/adets_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/adets_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
