
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/base.cpp" "src/sched/CMakeFiles/adets_sched.dir/base.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/base.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/adets_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/lsa.cpp" "src/sched/CMakeFiles/adets_sched.dir/lsa.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/lsa.cpp.o.d"
  "/root/repo/src/sched/mat.cpp" "src/sched/CMakeFiles/adets_sched.dir/mat.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/mat.cpp.o.d"
  "/root/repo/src/sched/pds.cpp" "src/sched/CMakeFiles/adets_sched.dir/pds.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/pds.cpp.o.d"
  "/root/repo/src/sched/sat.cpp" "src/sched/CMakeFiles/adets_sched.dir/sat.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/sat.cpp.o.d"
  "/root/repo/src/sched/seq.cpp" "src/sched/CMakeFiles/adets_sched.dir/seq.cpp.o" "gcc" "src/sched/CMakeFiles/adets_sched.dir/seq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
