# Empty compiler generated dependencies file for adets_sched.
# This may be replaced when dependencies are built.
