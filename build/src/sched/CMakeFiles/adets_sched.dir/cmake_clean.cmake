file(REMOVE_RECURSE
  "CMakeFiles/adets_sched.dir/base.cpp.o"
  "CMakeFiles/adets_sched.dir/base.cpp.o.d"
  "CMakeFiles/adets_sched.dir/factory.cpp.o"
  "CMakeFiles/adets_sched.dir/factory.cpp.o.d"
  "CMakeFiles/adets_sched.dir/lsa.cpp.o"
  "CMakeFiles/adets_sched.dir/lsa.cpp.o.d"
  "CMakeFiles/adets_sched.dir/mat.cpp.o"
  "CMakeFiles/adets_sched.dir/mat.cpp.o.d"
  "CMakeFiles/adets_sched.dir/pds.cpp.o"
  "CMakeFiles/adets_sched.dir/pds.cpp.o.d"
  "CMakeFiles/adets_sched.dir/sat.cpp.o"
  "CMakeFiles/adets_sched.dir/sat.cpp.o.d"
  "CMakeFiles/adets_sched.dir/seq.cpp.o"
  "CMakeFiles/adets_sched.dir/seq.cpp.o.d"
  "libadets_sched.a"
  "libadets_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
