file(REMOVE_RECURSE
  "libadets_sched.a"
)
