file(REMOVE_RECURSE
  "libadets_workload.a"
)
