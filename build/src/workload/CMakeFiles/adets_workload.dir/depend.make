# Empty dependencies file for adets_workload.
# This may be replaced when dependencies are built.
