file(REMOVE_RECURSE
  "CMakeFiles/adets_workload.dir/kvstore.cpp.o"
  "CMakeFiles/adets_workload.dir/kvstore.cpp.o.d"
  "CMakeFiles/adets_workload.dir/objects.cpp.o"
  "CMakeFiles/adets_workload.dir/objects.cpp.o.d"
  "libadets_workload.a"
  "libadets_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
