# Empty dependencies file for adets_gcs.
# This may be replaced when dependencies are built.
