file(REMOVE_RECURSE
  "libadets_gcs.a"
)
