file(REMOVE_RECURSE
  "CMakeFiles/adets_gcs.dir/group_service.cpp.o"
  "CMakeFiles/adets_gcs.dir/group_service.cpp.o.d"
  "libadets_gcs.a"
  "libadets_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adets_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
