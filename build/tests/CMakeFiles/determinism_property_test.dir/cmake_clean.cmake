file(REMOVE_RECURSE
  "CMakeFiles/determinism_property_test.dir/determinism_property_test.cpp.o"
  "CMakeFiles/determinism_property_test.dir/determinism_property_test.cpp.o.d"
  "determinism_property_test"
  "determinism_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
