# Empty compiler generated dependencies file for gcs_extra_test.
# This may be replaced when dependencies are built.
