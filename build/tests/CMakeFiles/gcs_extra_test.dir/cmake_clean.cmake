file(REMOVE_RECURSE
  "CMakeFiles/gcs_extra_test.dir/gcs_extra_test.cpp.o"
  "CMakeFiles/gcs_extra_test.dir/gcs_extra_test.cpp.o.d"
  "gcs_extra_test"
  "gcs_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
