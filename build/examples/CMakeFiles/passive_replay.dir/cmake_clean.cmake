file(REMOVE_RECURSE
  "CMakeFiles/passive_replay.dir/passive_replay.cpp.o"
  "CMakeFiles/passive_replay.dir/passive_replay.cpp.o.d"
  "passive_replay"
  "passive_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
