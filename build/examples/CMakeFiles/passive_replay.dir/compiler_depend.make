# Empty compiler generated dependencies file for passive_replay.
# This may be replaced when dependencies are built.
