file(REMOVE_RECURSE
  "CMakeFiles/leader_failover.dir/leader_failover.cpp.o"
  "CMakeFiles/leader_failover.dir/leader_failover.cpp.o.d"
  "leader_failover"
  "leader_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
