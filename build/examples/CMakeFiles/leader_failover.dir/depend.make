# Empty dependencies file for leader_failover.
# This may be replaced when dependencies are built.
