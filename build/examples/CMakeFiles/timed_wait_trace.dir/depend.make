# Empty dependencies file for timed_wait_trace.
# This may be replaced when dependencies are built.
