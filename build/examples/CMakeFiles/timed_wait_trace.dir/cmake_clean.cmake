file(REMOVE_RECURSE
  "CMakeFiles/timed_wait_trace.dir/timed_wait_trace.cpp.o"
  "CMakeFiles/timed_wait_trace.dir/timed_wait_trace.cpp.o.d"
  "timed_wait_trace"
  "timed_wait_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_wait_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
