// Ablation: PDS-1 versus PDS-2 (paper Sec. 3.2).
//
// PDS-2 grants one extra in-round mutex acquisition, so workloads whose
// requests take two locks need roughly half as many rounds.  The bench
// runs a two-lock request (lock A, lock B, short accesses) under both
// variants and reports time/invocation plus the rounds executed.
#include "bench_common.hpp"

#include "sched/pds.hpp"

namespace adets::bench {
namespace {

/// Object that takes two mutexes per request (disjoint pairs per client).
class TwoLockObject : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string&, const common::Bytes& args,
                         runtime::SyncContext& ctx) override {
    const auto a = workload::unpack_u64(args);
    const common::MutexId first(a.at(0));
    const common::MutexId second(100 + a.at(0));
    runtime::DetLock lock1(ctx, first);
    runtime::DetLock lock2(ctx, second);
    ctx.compute(common::paper_ms(static_cast<long long>(a.at(1))));
    count_++;
    return workload::pack_u64(count_);
  }
  [[nodiscard]] std::uint64_t state_hash() const override { return count_; }

 private:
  std::uint64_t count_ = 0;
};

void run_point(benchmark::State& state, int variant, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    sched::SchedulerConfig config = pds_config_for(clients);
    config.pds_variant = variant;
    const auto group = cluster.create_group(
        3, sched::SchedulerKind::kPds, [] { return std::make_unique<TwoLockObject>(); },
        config);
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng& rng, int) {
          client.invoke(group, "run", workload::pack_u64(rng.uniform(0, 7), 10));
        });
    auto& pds =
        dynamic_cast<sched::PdsScheduler&>(cluster.replica(group, 0).scheduler());
    state.counters["rounds"] = static_cast<double>(pds.rounds());
    report(state, result);
  }
}

void register_all() {
  const int clients = fast_mode() ? 4 : 8;
  for (const int variant : {1, 2}) {
    const std::string name = "AblationPdsVariant/PDS-" + std::to_string(variant) +
                             "/clients:" + std::to_string(clients);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [variant, clients](benchmark::State& s) {
                                   run_point(s, variant, clients);
                                 })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
