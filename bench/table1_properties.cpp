// Reproduces paper Table 1: overview of multithreading algorithms and
// their properties.  The rows are generated from the live scheduler
// implementations (capabilities()), plus runtime probes that verify the
// claimed support actually works (reentrancy, condition variables).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "sched/api.hpp"

namespace adets::bench {

void print_table() {
  std::printf("\nTable 1. Overview of multithreading algorithms and their properties\n");
  std::printf("%-12s %-14s %-12s %-16s %-14s %-6s %-5s %-6s\n", "Algorithm",
              "Coordination", "Deadl.-Free", "Deployment", "Multithreading",
              "Reent", "CondV", "Comm");
  std::printf("%s\n", std::string(92, '-').c_str());
  const std::vector<std::pair<std::string, sched::SchedulerKind>> rows = {
      {"SEQ", sched::SchedulerKind::kSeq},
      {"Eternal/SL", sched::SchedulerKind::kSl},
      {"ADETS-SAT", sched::SchedulerKind::kSat},
      {"ADETS-MAT", sched::SchedulerKind::kMat},
      {"ADETS-LSA", sched::SchedulerKind::kLsa},
      {"ADETS-PDS", sched::SchedulerKind::kPds},
  };
  for (const auto& [name, kind] : rows) {
    const auto scheduler = sched::make_scheduler(kind);
    const auto caps = scheduler->capabilities();
    std::printf("%-12s %-14s %-12s %-16s %-14s %-6s %-5s %-6s\n", name.c_str(),
                caps.coordination.c_str(), caps.deadlock_free.c_str(),
                caps.deployment.c_str(), caps.multithreading.c_str(),
                caps.reentrant_locks ? "yes" : "no",
                caps.condition_variables ? "yes" : "no",
                caps.needs_communication ? "yes" : "no");
  }
  std::printf("\n");
}

void BM_Table1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::make_scheduler(sched::SchedulerKind::kSat));
  }
}
BENCHMARK(BM_Table1)->Iterations(1);

}  // namespace adets::bench

int main(int argc, char** argv) {
  adets::bench::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
