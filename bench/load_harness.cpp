// Closed-loop load harness (BENCH_load.json).
//
// Drives N logical closed-loop clients (default 1000, see --clients)
// against a 3-replica KvStore group for each scheduler strategy, twice
// per strategy: once with sequencer batching disabled (max_batch_msgs=1,
// the pre-batching wire behaviour) and once with batching enabled.
// Reports throughput and p50/p90/p99 latency per run and emits the
// machine-readable trajectory consumed by CI.
//
// The built-in regression gate (--gate R, default 0.8) fails the
// process if, for any scheduler, the batched run's throughput drops
// below R x the in-run batch=1 baseline — i.e. CI fails on a >20%
// regression of the batching win without needing cross-run history.
//
// JSON schema ("adets-bench-load/v1") is documented in
// docs/benchmarking.md.  All times are paper time (real / time scale).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/clock.hpp"
#include "workload/load.hpp"

namespace {

using adets::bench::JsonWriter;
using adets::workload::LoadConfig;
using adets::workload::LoadResult;

struct Options {
  int clients = 1000;
  int requests = 20;
  int warmup = 2;
  int connections = 16;
  int replicas = 3;
  std::uint64_t seed = 1;
  double gate = 0.8;  // 0 disables the regression gate
  std::string out = "BENCH_load.json";
  std::vector<adets::sched::SchedulerKind> kinds = {
      adets::sched::SchedulerKind::kSat, adets::sched::SchedulerKind::kMat,
      adets::sched::SchedulerKind::kLsa, adets::sched::SchedulerKind::kPds};
};

std::vector<adets::sched::SchedulerKind> parse_kinds(const std::string& list) {
  const std::map<std::string, adets::sched::SchedulerKind> names = {
      {"sat", adets::sched::SchedulerKind::kSat},
      {"mat", adets::sched::SchedulerKind::kMat},
      {"lsa", adets::sched::SchedulerKind::kLsa},
      {"pds", adets::sched::SchedulerKind::kPds}};
  std::vector<adets::sched::SchedulerKind> kinds;
  std::string token;
  for (std::size_t i = 0; i <= list.size(); ++i) {
    if (i == list.size() || list[i] == ',') {
      const auto it = names.find(token);
      if (it == names.end()) {
        std::fprintf(stderr, "unknown scheduler '%s' (want sat,mat,lsa,pds)\n",
                     token.c_str());
        std::exit(2);
      }
      kinds.push_back(it->second);
      token.clear();
    } else {
      token += list[i];
    }
  }
  return kinds;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      opt.clients = std::atoi(next());
    } else if (arg == "--requests") {
      opt.requests = std::atoi(next());
    } else if (arg == "--warmup") {
      opt.warmup = std::atoi(next());
    } else if (arg == "--connections") {
      opt.connections = std::atoi(next());
    } else if (arg == "--replicas") {
      opt.replicas = std::atoi(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--gate") {
      opt.gate = std::atof(next());
    } else if (arg == "--out") {
      opt.out = next();
    } else if (arg == "--schedulers") {
      opt.kinds = parse_kinds(next());
    } else {
      std::fprintf(stderr,
                   "usage: load_harness [--clients N] [--requests N] [--warmup N]\n"
                   "                    [--connections N] [--replicas N] [--seed S]\n"
                   "                    [--schedulers sat,mat,lsa,pds] [--gate R]\n"
                   "                    [--out BENCH_load.json]\n");
      std::exit(2);
    }
  }
  return opt;
}

LoadConfig make_config(const Options& opt, adets::sched::SchedulerKind kind,
                       bool batched) {
  LoadConfig config;
  config.kind = kind;
  config.replicas = opt.replicas;
  config.logical_clients = opt.clients;
  config.connections = opt.connections;
  config.requests_per_client = opt.requests;
  config.warmup_per_client = opt.warmup;
  config.seed = opt.seed;
  // A fine timer tick in both modes so the flush-delay quantisation is
  // the only latency the batched run adds.
  config.cluster.gcs.timer_tick = std::chrono::milliseconds(1);
  if (batched) {
    config.cluster.gcs.max_batch_msgs = 64;
    config.cluster.gcs.max_batch_bytes = 64 * 1024;
    config.cluster.gcs.batch_flush_delay = std::chrono::milliseconds(2);
    config.cluster.gcs.submit_flush_delay = std::chrono::milliseconds(2);
  } else {
    config.cluster.gcs.max_batch_msgs = 1;
    config.cluster.gcs.batch_flush_delay = std::chrono::milliseconds(0);
    config.cluster.gcs.submit_flush_delay = std::chrono::milliseconds(0);
  }
  return config;
}

void write_result(JsonWriter& json, const std::string& scheduler,
                  const std::string& mode, const LoadResult& r) {
  json.begin_object();
  json.field("scheduler", scheduler);
  json.field("mode", mode);
  json.field("completed", r.completed);
  json.field("converged", r.converged);
  json.field("invocations", r.invocations);
  json.field("duration_s", r.duration_s);
  json.field("throughput_rps", r.throughput_rps);
  json.field("p50_ms", r.p50_ms);
  json.field("p90_ms", r.p90_ms);
  json.field("p99_ms", r.p99_ms);
  json.field("mean_ms", r.mean_ms);
  json.field("max_ms", r.max_ms);
  json.field("messages_sent", r.messages_sent);
  json.field("bytes_sent", r.bytes_sent);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  JsonWriter json;
  json.begin_object();
  json.field("schema", "adets-bench-load/v1");
  json.field("time_scale", adets::common::Clock::scale());
  json.key("config");
  json.begin_object();
  json.field("clients", opt.clients);
  json.field("requests_per_client", opt.requests);
  json.field("warmup_per_client", opt.warmup);
  json.field("connections", opt.connections);
  json.field("replicas", opt.replicas);
  json.field("seed", opt.seed);
  json.field("gate", opt.gate);
  json.end_object();
  json.key("results");
  json.begin_array();

  bool failed = false;
  for (const auto kind : opt.kinds) {
    const std::string name = adets::sched::to_string(kind);
    double baseline_rps = 0.0;
    for (const bool batched : {false, true}) {
      const char* mode = batched ? "batched" : "batch1";
      std::fprintf(stderr, "[load] %s/%s: %d clients x %d requests ...\n",
                   name.c_str(), mode, opt.clients, opt.requests);
      const LoadResult r = run_load(make_config(opt, kind, batched));
      std::fprintf(stderr,
                   "[load] %s/%s: %s rps=%.0f p50=%.2fms p99=%.2fms msgs=%llu\n",
                   name.c_str(), mode,
                   r.completed && r.converged ? "ok" : "FAILED",
                   r.throughput_rps, r.p50_ms, r.p99_ms,
                   static_cast<unsigned long long>(r.messages_sent));
      write_result(json, name, mode, r);
      if (!r.completed || !r.converged) failed = true;
      if (!batched) {
        baseline_rps = r.throughput_rps;
      } else if (opt.gate > 0.0 && r.throughput_rps < opt.gate * baseline_rps) {
        std::fprintf(stderr,
                     "[load] GATE: %s batched throughput %.0f rps is below "
                     "%.2f x batch1 baseline %.0f rps\n",
                     name.c_str(), r.throughput_rps, opt.gate, baseline_rps);
        failed = true;
      }
    }
  }

  json.end_array();
  json.field("gate_passed", !failed);
  json.end_object();

  std::ofstream out(opt.out);
  out << json.str() << "\n";
  out.close();
  std::fprintf(stderr, "[load] wrote %s\n", opt.out.c_str());
  return failed ? 1 : 0;
}
