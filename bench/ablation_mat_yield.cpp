// Ablation: the paper's proposed yield() optimisation for ADETS-MAT
// (Sec. 5.3: "The poor performance of MAT can be alleviated by the
// introduction of yield operations, which enable a selection of a new
// primary thread without reaching an implicit scheduling point").
//
// Pattern (d) lock-unlock-compute serialises MAT because the token is
// only released at request completion; pattern "dy" yields right after
// the critical section, restoring the concurrency of the computation.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

void run_point(benchmark::State& state, const std::string& pattern,
               sched::SchedulerKind kind, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    const auto group = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::ComputePatterns>(10); },
        sched_config_for(kind, clients));
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng& rng, int) {
          client.invoke(group, pattern, workload::pack_u64(100, rng.uniform(0, 9)));
        });
    (void)drain(cluster, group, clients);
    auto verdict = repl::check_group(cluster, group);
    LoopResult reported = result;
    reported.consistent = verdict.consistent();
    report(state, reported);
  }
}

void register_all() {
  const int clients = fast_mode() ? 4 : 8;
  for (const std::string pattern : {"d", "dy"}) {
    for (const auto kind : {sched::SchedulerKind::kMat, sched::SchedulerKind::kSat}) {
      const std::string name = "AblationMatYield/" + pattern + "/" +
                               sched::to_string(kind) +
                               "/clients:" + std::to_string(clients);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [pattern, kind, clients](benchmark::State& s) {
                                     run_point(s, pattern, kind, clients);
                                   })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
