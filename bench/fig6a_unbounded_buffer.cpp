// Reproduces paper Figure 6(a): unbounded buffer (producer/consumer
// with condition variables).
//
// One producer client and 1..10 consumer clients in closed loops.  SEQ
// cannot block inside consume(), so its consumers poll periodically
// (paper Sec. 5.5); all other strategies use the blocking consume()
// with a condition variable.  Metric: average time per *consumer*
// invocation.
//
// Expected shapes: the condvar strategies scale linearly with a gentle
// slope (SAT minimally best, PDS close, LSA pays the leader-follower
// communication); SEQ's polling steepens as consumers multiply.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

constexpr std::uint64_t kPollPeriodPaperMs = 5;

void run_point(benchmark::State& state, sched::SchedulerKind kind, int consumers) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    // PDS pool: producer + consumers can all be in flight.
    sched::SchedulerConfig sched_config = sched_config_for(kind, consumers + 1);
    const auto buffer = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::UnboundedBuffer>(); },
        sched_config);

    // Producer: closed loop; its rate is bounded by its own invocation
    // round trip, as in the paper.
    runtime::Client& producer = cluster.create_client();
    std::atomic<bool> stop_producer{false};
    std::thread producer_thread([&] {
      std::uint64_t item = 0;
      while (!stop_producer.load()) {
        producer.invoke(buffer, "produce", workload::pack_u64(item++));
      }
    });

    const bool polling = kind == sched::SchedulerKind::kSeq;
    PointGuard stall_guard(cluster, buffer, "Fig6a" + std::string("/") + std::to_string(consumers));
    const auto result = run_closed_loop(
        cluster, consumers, [&](runtime::Client& client, common::Rng&, int) {
          if (!polling) {
            client.invoke(buffer, "consume", {});
            return;
          }
          // Polling variant for the sequential scheduler.
          while (true) {
            const auto reply =
                workload::unpack_u64(client.invoke(buffer, "poll_consume", {}));
            if (reply[0] == 1) return;
            common::Clock::sleep_paper(common::paper_ms(kPollPeriodPaperMs));
          }
        });
    stop_producer.store(true);
    producer_thread.join();
    report(state, result);
  }
}

void register_all() {
  for (const auto kind :
       {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSat,
        sched::SchedulerKind::kMat, sched::SchedulerKind::kLsa,
        sched::SchedulerKind::kPds}) {
    for (const int consumers : client_counts()) {
      const std::string name = "Fig6a/" + sched::to_string(kind) +
                               "/consumers:" + std::to_string(consumers);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [kind, consumers](benchmark::State& s) {
                                     run_point(s, kind, consumers);
                                   })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
