// Reproduces paper Figure 4: local computations with mutex locks.
//
// Patterns (Fig. 3):
//   (a) compute
//   (b) compute - lock - state access - unlock
//   (c) lock - state access and compute - unlock
//   (d) lock - state access - unlock - compute
// 3 replicas, 1..10 clients, 100 ms computation, 10 mutexes selected
// uniformly at random per invocation.  Reported metric: client-side
// time per invocation in paper milliseconds.
//
// Expected shapes (paper Sec. 5.3):
//   (a) SAT grows linearly (serialises everything); MAT/LSA flat; PDS
//       flat with a slight queue-mutex overhead.
//   (b) like (a); MAT best, LSA pays grant communication.
//   (c) MAT degenerates to SAT (lock-first serialises); LSA best at
//       high client counts; PDS suffers from round collisions.
//   (d) PDS best (collisions only cover the short state access), LSA
//       slightly slower, SAT and MAT serialise.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

constexpr std::uint64_t kComputePaperMs = 100;
constexpr std::uint32_t kMutexes = 10;

void run_point(benchmark::State& state, const std::string& pattern,
               sched::SchedulerKind kind, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    const auto group = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::ComputePatterns>(kMutexes); },
        sched_config_for(kind, clients));
    PointGuard stall_guard(cluster, group, "Fig4" + std::string("/") + std::to_string(clients));
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng& rng, int) {
          const std::uint64_t mutex = rng.uniform(0, kMutexes - 1);
          client.invoke(group, pattern, workload::pack_u64(kComputePaperMs, mutex));
        });
    (void)drain(cluster, group, clients);
    auto verdict = repl::check_group(cluster, group);
    LoopResult reported = result;
    reported.consistent = verdict.consistent();
    report(state, reported);
  }
}

void register_all() {
  for (const std::string pattern : {"a", "b", "c", "d"}) {
    for (const auto kind : figure_schedulers()) {
      for (const int clients : client_counts()) {
        const std::string name =
            "Fig4/" + pattern + "/" + sched::to_string(kind) + "/clients:" +
            std::to_string(clients);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [pattern, kind, clients](benchmark::State& s) {
                                       run_point(s, pattern, kind, clients);
                                     })
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
