// Ablation: ADETS-PDS request-assignment strategies (paper Sec. 4.2).
//
// The paper proposes two strategies — round-robin (request i goes to
// worker i mod N; "works fine if requests have identical computation
// times") and synchronized assignment via a scheduler-managed queue
// mutex (the variant the paper evaluates).  This bench compares both on
// (i) a uniform workload and (ii) a skewed workload where every fourth
// request computes 4x longer, which stalls the round-robin pipeline.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

void run_point(benchmark::State& state, bool round_robin, bool skewed, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    sched::SchedulerConfig config = pds_config_for(clients);
    config.pds_round_robin_assignment = round_robin;
    const auto group = cluster.create_group(
        3, sched::SchedulerKind::kPds,
        [] { return std::make_unique<workload::ComputePatterns>(10); }, config);
    std::atomic<std::uint64_t> sequence{0};
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng& rng, int) {
          const std::uint64_t n = sequence.fetch_add(1);
          const std::uint64_t compute = skewed && (n % 4 == 0) ? 100 : 25;
          client.invoke(group, "b",
                        workload::pack_u64(compute, rng.uniform(0, 9)));
        });
    report(state, result);
  }
}

void register_all() {
  const int clients = fast_mode() ? 4 : 8;
  for (const bool round_robin : {false, true}) {
    for (const bool skewed : {false, true}) {
      const std::string name = std::string("AblationPdsAssign/") +
                               (round_robin ? "round_robin" : "synchronized") + "/" +
                               (skewed ? "skewed" : "uniform") +
                               "/clients:" + std::to_string(clients);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [round_robin, skewed, clients](benchmark::State& s) {
            run_point(s, round_robin, skewed, clients);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
