// Scheduler microbenchmark (BENCH_sched.json): raw grants per second.
//
// Measures the scheduler layer in isolation — no simulated network, no
// paper-time sleeps.  A single replica of each scheduler kind executes R
// requests whose bodies are K lock/unlock pairs over a small mutex set,
// driven through the in-process SchedulerCluster harness (an emulated
// total-order bus).  The reported figure is base-level lock grants per
// real second, i.e. the synchronisation-primitive overhead each strategy
// adds on top of the (here absent) network and computation costs.
//
// JSON schema ("adets-bench-sched/v1") is documented in
// docs/benchmarking.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/clock.hpp"
#include "sched_harness.hpp"

namespace {

using adets::bench::JsonWriter;

struct Options {
  int requests = 2000;
  int locks_per_request = 8;
  int mutexes = 4;
  std::string out = "BENCH_sched.json";
  std::vector<adets::sched::SchedulerKind> kinds = {
      adets::sched::SchedulerKind::kSat, adets::sched::SchedulerKind::kMat,
      adets::sched::SchedulerKind::kLsa, adets::sched::SchedulerKind::kPds};
};

Options parse_args(int argc, char** argv) {
  Options opt;
  const std::map<std::string, adets::sched::SchedulerKind> names = {
      {"sat", adets::sched::SchedulerKind::kSat},
      {"mat", adets::sched::SchedulerKind::kMat},
      {"lsa", adets::sched::SchedulerKind::kLsa},
      {"pds", adets::sched::SchedulerKind::kPds}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = std::atoi(next());
    } else if (arg == "--locks") {
      opt.locks_per_request = std::atoi(next());
    } else if (arg == "--mutexes") {
      opt.mutexes = std::atoi(next());
    } else if (arg == "--out") {
      opt.out = next();
    } else if (arg == "--schedulers") {
      opt.kinds.clear();
      std::string token;
      const std::string list = next();
      for (std::size_t j = 0; j <= list.size(); ++j) {
        if (j == list.size() || list[j] == ',') {
          const auto it = names.find(token);
          if (it == names.end()) {
            std::fprintf(stderr, "unknown scheduler '%s'\n", token.c_str());
            std::exit(2);
          }
          opt.kinds.push_back(it->second);
          token.clear();
        } else {
          token += list[j];
        }
      }
    } else {
      std::fprintf(stderr,
                   "usage: sched_microbench [--requests N] [--locks K] "
                   "[--mutexes M] [--schedulers sat,mat,lsa,pds] "
                   "[--out BENCH_sched.json]\n");
      std::exit(2);
    }
  }
  return opt;
}

struct Point {
  std::string scheduler;
  bool completed = false;
  std::uint64_t lock_grants = 0;
  std::uint64_t broadcasts = 0;
  double duration_s = 0.0;
  double grants_per_s = 0.0;
  double requests_per_s = 0.0;
};

Point run_point(const Options& opt, adets::sched::SchedulerKind kind) {
  Point point;
  point.scheduler = adets::sched::to_string(kind);
  adets::testing::SchedulerCluster cluster(kind, /*replicas=*/1);
  for (int r = 1; r <= opt.requests; ++r) {
    cluster.set_body(static_cast<std::uint64_t>(r), [&opt](adets::testing::BodyCtx& ctx) {
      for (int k = 0; k < opt.locks_per_request; ++k) {
        const auto m = static_cast<std::uint64_t>(k % opt.mutexes);
        ctx.lock(m);
        ctx.unlock(m);
      }
    });
  }
  const auto start = adets::common::Clock::now();
  for (int r = 1; r <= opt.requests; ++r) {
    cluster.submit(static_cast<std::uint64_t>(r));
  }
  point.completed = cluster.wait_completed(
      static_cast<std::uint64_t>(opt.requests), std::chrono::seconds(120));
  const auto elapsed = adets::common::Clock::now() - start;
  const auto stats = cluster.replica(0).stats();
  cluster.stop();
  point.lock_grants = stats.lock_grants;
  point.broadcasts = stats.broadcasts;
  point.duration_s = static_cast<double>(elapsed.count()) / 1e9;
  if (point.duration_s > 0.0) {
    point.grants_per_s = static_cast<double>(point.lock_grants) / point.duration_s;
    point.requests_per_s = static_cast<double>(opt.requests) / point.duration_s;
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  JsonWriter json;
  json.begin_object();
  json.field("schema", "adets-bench-sched/v1");
  json.key("config");
  json.begin_object();
  json.field("requests", opt.requests);
  json.field("locks_per_request", opt.locks_per_request);
  json.field("mutexes", opt.mutexes);
  json.end_object();
  json.key("results");
  json.begin_array();

  bool failed = false;
  for (const auto kind : opt.kinds) {
    const Point p = run_point(opt, kind);
    std::fprintf(stderr, "[sched] %s: %s grants/s=%.0f req/s=%.0f (%.2fs)\n",
                 p.scheduler.c_str(), p.completed ? "ok" : "TIMEOUT",
                 p.grants_per_s, p.requests_per_s, p.duration_s);
    if (!p.completed) failed = true;
    json.begin_object();
    json.field("scheduler", p.scheduler);
    json.field("completed", p.completed);
    json.field("lock_grants", p.lock_grants);
    json.field("broadcasts", p.broadcasts);
    json.field("duration_s", p.duration_s);
    json.field("grants_per_s", p.grants_per_s);
    json.field("requests_per_s", p.requests_per_s);
    json.end_object();
  }

  json.end_array();
  json.end_object();

  std::ofstream out(opt.out);
  out << json.str() << "\n";
  out.close();
  std::fprintf(stderr, "[sched] wrote %s\n", opt.out.c_str());
  return failed ? 1 : 0;
}
