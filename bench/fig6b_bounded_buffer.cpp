// Reproduces paper Figure 6(b): bounded buffer of capacity 2 with two
// condition variables ("not full", "not empty").
//
// The same number of producer and consumer clients (1..5) run in closed
// loops; produce() blocks while the buffer is full, consume() while it
// is empty.  Metric: average time per consumer invocation (the paper
// observed identical averages for producers).
//
// Expected shapes: SAT and MAT clearly best; LSA suffers from the extra
// scheduling communication, PDS from the next-round delay of resumed
// waiters — both can fall behind even the polling-free SEQ baseline.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

constexpr std::uint64_t kPollPeriodPaperMs = 5;

void run_point(benchmark::State& state, sched::SchedulerKind kind, int pairs) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    sched::SchedulerConfig sched_config = sched_config_for(kind, 2 * pairs);
    const bool polling = kind == sched::SchedulerKind::kSeq;
    const auto buffer = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::BoundedBuffer>(2); },
        sched_config);

    // Producers: one per consumer, same invocation count, closed loop.
    const int invocations = invocations_per_client() + warmup_per_client();
    std::vector<std::thread> producer_threads;
    std::vector<runtime::Client*> producer_clients;
    for (int p = 0; p < pairs; ++p) producer_clients.push_back(&cluster.create_client());
    std::atomic<bool> abort_producers{false};
    for (int p = 0; p < pairs; ++p) {
      producer_threads.emplace_back([&, p] {
        for (int i = 0; i < invocations && !abort_producers.load(); ++i) {
          if (!polling) {
            producer_clients[p]->invoke(
                buffer, "produce", workload::pack_u64(static_cast<std::uint64_t>(i)));
            continue;
          }
          // Sequential scheduling: non-blocking produce with polling.
          while (!abort_producers.load()) {
            const auto reply = workload::unpack_u64(producer_clients[p]->invoke(
                buffer, "poll_produce", workload::pack_u64(static_cast<std::uint64_t>(i))));
            if (reply[0] == 1) break;
            common::Clock::sleep_paper(common::paper_ms(kPollPeriodPaperMs));
          }
        }
      });
    }

    PointGuard stall_guard(cluster, buffer, "Fig6b" + std::string("/") + std::to_string(pairs));
    const auto result = run_closed_loop(
        cluster, pairs, [&](runtime::Client& client, common::Rng&, int) {
          if (!polling) {
            client.invoke(buffer, "consume", {});
            return;
          }
          while (true) {
            const auto reply =
                workload::unpack_u64(client.invoke(buffer, "poll_consume", {}));
            if (reply[0] == 1) return;
            common::Clock::sleep_paper(common::paper_ms(kPollPeriodPaperMs));
          }
        });
    abort_producers.store(true);
    for (auto& t : producer_threads) t.join();
    report(state, result);
  }
}

void register_all() {
  std::vector<int> pair_counts = fast_mode() ? std::vector<int>{1, 3, 5}
                                             : std::vector<int>{1, 2, 3, 4, 5};
  for (const auto kind :
       {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSat,
        sched::SchedulerKind::kMat, sched::SchedulerKind::kLsa,
        sched::SchedulerKind::kPds}) {
    for (const int pairs : pair_counts) {
      const std::string name =
          "Fig6b/" + sched::to_string(kind) + "/pairs:" + std::to_string(pairs);
      benchmark::RegisterBenchmark(name.c_str(), [kind, pairs](benchmark::State& s) {
        run_point(s, kind, pairs);
      })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
