// Minimal JSON emitter for the BENCH_*.json trajectory files.
//
// The bench harnesses write small, flat documents (a config object plus
// an array of result rows), so this is a deliberately tiny append-only
// builder rather than a JSON library: values are escaped, structure is
// the caller's responsibility (begin/end calls must nest correctly).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace adets::bench {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    comma();
    out_ += quote(name);
    out_ += ": ";
    pending_value_ = true;
  }

  void value(const std::string& v) { raw(quote(v)); }
  void value(const char* v) { raw(quote(v)); }
  void value(bool v) { raw(v ? "true" : "false"); }
  void value(std::uint64_t v) { raw(std::to_string(v)); }
  void value(int v) { raw(std::to_string(v)); }
  void value(double v) {
    if (!std::isfinite(v)) {
      raw("null");
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    raw(buf);
  }

  void field(const std::string& name, const std::string& v) { key(name); value(v); }
  void field(const std::string& name, const char* v) { key(name); value(v); }
  void field(const std::string& name, bool v) { key(name); value(v); }
  void field(const std::string& name, std::uint64_t v) { key(name); value(v); }
  void field(const std::string& name, int v) { key(name); value(v); }
  void field(const std::string& name, double v) { key(name); value(v); }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\t': q += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            q += buf;
          } else {
            q += c;
          }
      }
    }
    q += '"';
    return q;
  }

  void comma() {
    if (need_comma_) out_ += ", ";
    need_comma_ = false;
  }

  void open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
    pending_value_ = false;
  }

  void close(char c) {
    out_ += c;
    need_comma_ = true;
  }

  void raw(const std::string& v) {
    if (!pending_value_) comma();
    out_ += v;
    pending_value_ = false;
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace adets::bench
