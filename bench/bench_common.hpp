// Shared benchmark harness.
//
// Reproduces the paper's measurement methodology (Sec. 5.2): a replica
// group of three nodes, N client nodes started simultaneously, each in a
// closed loop; the measured value is the client-side average invocation
// time, excluding a small warm-up.  All times are reported in *paper
// milliseconds* (real time divided by the ADETS_TIME_SCALE factor), so
// the numbers are directly comparable to the figures.
//
// Environment knobs:
//   ADETS_TIME_SCALE        time scale (default 0.05)
//   ADETS_BENCH_INVOCATIONS invocations per client per point (default 20)
//   ADETS_BENCH_WARMUP      warm-up invocations per client (default 3)
//   ADETS_BENCH_FAST        =1: fewer points and invocations (smoke run)
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <mutex>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "replication/consistency.hpp"
#include "sched/base.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

namespace adets::bench {

inline int env_int(const char* name, int fallback) {
  if (const char* value = std::getenv(name)) {
    const int parsed = std::atoi(value);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

inline bool fast_mode() {
  const char* value = std::getenv("ADETS_BENCH_FAST");
  return value != nullptr && value[0] == '1';
}

inline int invocations_per_client() {
  return env_int("ADETS_BENCH_INVOCATIONS", fast_mode() ? 6 : 20);
}

inline int warmup_per_client() { return env_int("ADETS_BENCH_WARMUP", 3); }

/// Client counts swept by the figures (paper: 1..10).
inline std::vector<int> client_counts(int max_clients = 10) {
  if (fast_mode()) return {1, 4, std::min(10, max_clients)};
  std::vector<int> counts;
  for (int n : {1, 2, 4, 6, 8, 10}) {
    if (n <= max_clients) counts.push_back(n);
  }
  return counts;
}

/// One invocation performed by a closed-loop client.
/// Returns the latency contribution in real seconds.
using ClientOp = std::function<void(runtime::Client&, common::Rng&, int iteration)>;

struct LoopResult {
  double paper_ms_per_invocation = 0.0;
  std::uint64_t invocations = 0;
  bool consistent = true;
};

/// Runs `clients` closed-loop client threads against `cluster`; each
/// performs warm-up + measured invocations of `op`.  Returns the average
/// measured latency in paper milliseconds.
inline LoopResult run_closed_loop(runtime::Cluster& cluster, int clients,
                                  const ClientOp& op,
                                  int invocations = invocations_per_client(),
                                  int warmup = warmup_per_client()) {
  std::vector<runtime::Client*> handles;
  handles.reserve(clients);
  for (int c = 0; c < clients; ++c) handles.push_back(&cluster.create_client());

  std::atomic<std::int64_t> total_ns{0};
  std::atomic<std::uint64_t> measured{0};
  std::barrier sync(clients);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      common::Rng rng(static_cast<std::uint64_t>(c) + 1);
      sync.arrive_and_wait();
      for (int i = 0; i < warmup; ++i) op(*handles[c], rng, -1 - i);
      sync.arrive_and_wait();  // all clients enter the measured phase together
      for (int i = 0; i < invocations; ++i) {
        const auto start = common::Clock::now();
        op(*handles[c], rng, i);
        const auto elapsed = common::Clock::now() - start;
        total_ns.fetch_add(elapsed.count());
        measured.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  LoopResult result;
  result.invocations = measured.load();
  const double real_ms =
      static_cast<double>(total_ns.load()) / 1e6 / static_cast<double>(result.invocations);
  result.paper_ms_per_invocation = real_ms / common::Clock::scale();
  return result;
}

/// Waits until every replica executed all client requests (clients only
/// wait for the first reply, so replicas may lag behind the loop).
inline bool drain(runtime::Cluster& cluster, common::GroupId group, int clients,
                  int invocations = invocations_per_client(),
                  int warmup = warmup_per_client()) {
  const auto total = static_cast<std::uint64_t>(clients) *
                     static_cast<std::uint64_t>(invocations + warmup);
  return cluster.wait_drained(group, total);
}

/// Standard cluster for the figures: moderate LAN-like latency.
inline runtime::ClusterConfig figure_cluster_config() {
  runtime::ClusterConfig config;
  config.link.base_latency = common::paper_us(500);
  config.link.jitter = common::paper_us(200);
  return config;
}

/// PDS pool sized to the client count, as in the paper (Sec. 5.2).
inline sched::SchedulerConfig pds_config_for(int clients) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = static_cast<std::size_t>(clients);
  return config;
}

inline sched::SchedulerConfig sched_config_for(sched::SchedulerKind kind, int clients) {
  if (kind == sched::SchedulerKind::kPds) return pds_config_for(clients);
  return {};
}

/// Per-point stall guard: if a benchmark point does not finish within
/// `limit`, dumps every replica's scheduler state and aborts, so a rare
/// scheduling stall becomes a diagnosable failure instead of a silent
/// multi-hour hang.
class PointGuard {
 public:
  PointGuard(runtime::Cluster& cluster, common::GroupId group, std::string label,
             std::chrono::seconds limit = std::chrono::seconds(120))
      : cluster_(cluster), group_(group), label_(std::move(label)) {
    guard_ = std::thread([this, limit] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, limit, [this] { return done_; })) return;
      std::fprintf(stderr, "STALL in %s\n", label_.c_str());
      for (int i = 0; i < cluster_.group_size(group_); ++i) {
        auto* base = dynamic_cast<sched::SchedulerBase*>(
            &cluster_.replica(group_, i).scheduler());
        std::fprintf(stderr, "replica %d completed=%llu %s\n", i,
                     static_cast<unsigned long long>(
                         cluster_.replica(group_, i).completed_requests()),
                     base != nullptr ? base->debug_dump().c_str() : "?");
      }
      std::fflush(stderr);
      std::abort();
    });
  }
  PointGuard(const PointGuard&) = delete;
  PointGuard& operator=(const PointGuard&) = delete;
  ~PointGuard() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    guard_.join();
  }

 private:
  runtime::Cluster& cluster_;
  common::GroupId group_;
  std::string label_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread guard_;
};

/// Registers the benchmark result on the google-benchmark state.
inline void report(benchmark::State& state, const LoopResult& result) {
  state.counters["paper_ms_per_inv"] = result.paper_ms_per_invocation;
  state.counters["consistent"] = result.consistent ? 1.0 : 0.0;
  state.SetIterationTime(result.paper_ms_per_invocation / 1e3);
}

/// The scheduler line-up of the local-computation figures.
inline std::vector<sched::SchedulerKind> figure_schedulers() {
  return {sched::SchedulerKind::kSat, sched::SchedulerKind::kMat,
          sched::SchedulerKind::kLsa, sched::SchedulerKind::kPds};
}

}  // namespace adets::bench
