// Reproduces paper Figure 5(b): nested invocations, local computations,
// and mutex locks, in all six permutations.
//
// Each request executes a permutation of:
//   N — nested invocation of group B taking 100..150 paper-ms,
//   C — local computation of 75..125 paper-ms,
//   S — synchronized state update (lock, access, unlock).
// 10 clients, strategies SEQ, SAT, PDS, LSA, MAT.
//
// Expected shapes (paper Sec. 5.4): SAT beats SEQ everywhere (uses
// nested idle time) but cannot parallelise C.  MAT is best for NCS/CSN
// and no better than SAT for NSC/SCN (an S followed by C pins the
// primary token through the computation).  PDS and LSA are insensitive
// to the permutation; PDS slightly ahead of LSA.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

const std::vector<std::string> kPatterns = {"NCS", "CNS", "NSC", "CSN", "SCN", "SNC"};

void run_point(benchmark::State& state, const std::string& pattern,
               sched::SchedulerKind kind, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    // The callee must execute concurrently (MAT): the paper measures the
    // *caller's* strategy, not a bottleneck at B.
    const auto callee = cluster.create_group(
        3, sched::SchedulerKind::kMat,
        [] { return std::make_unique<workload::EchoService>(); });
    const auto front = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::NestedPatterns>(); },
        sched_config_for(kind, clients));
    PointGuard stall_guard(cluster, front, "Fig5b" + std::string("/") + std::to_string(clients));
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng&, int) {
          client.invoke(front, pattern,
                        workload::pack_u64(callee.value(), 100, 150, 75, 125));
        });
    (void)drain(cluster, front, clients);
    auto verdict = repl::check_group(cluster, front);
    LoopResult reported = result;
    reported.consistent = verdict.consistent();
    report(state, reported);
  }
}

void register_all() {
  const int clients = fast_mode() ? 4 : 10;
  for (const auto& pattern : kPatterns) {
    for (const auto kind :
         {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSat,
          sched::SchedulerKind::kPds, sched::SchedulerKind::kLsa,
          sched::SchedulerKind::kMat}) {
      const std::string name =
          "Fig5b/" + pattern + "/" + sched::to_string(kind) + "/clients:" +
          std::to_string(clients);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [pattern, kind, clients](benchmark::State& s) {
                                     run_point(s, pattern, kind, clients);
                                   })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
