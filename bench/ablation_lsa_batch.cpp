// Ablation: ADETS-LSA mutex-table batching.
//
// The paper's LSA broadcasts the grant table "periodically"; our
// default flushes after every grant.  This bench varies the batch size:
// larger batches reduce communication (fewer broadcasts) but delay
// followers, trading message count for follower lag.  Metric:
// time/invocation on the lock-heavy pattern (c) plus the number of
// broadcast messages the leader produced.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

void run_point(benchmark::State& state, std::size_t batch, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    sched::SchedulerConfig config;
    config.lsa_batch_grants = batch;
    config.lsa_batch_delay = std::chrono::milliseconds(batch > 1 ? 5 : 0);
    const auto group = cluster.create_group(
        3, sched::SchedulerKind::kLsa,
        [] { return std::make_unique<workload::ComputePatterns>(10); }, config);
    const auto before = cluster.network().stats().messages_sent;
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng& rng, int) {
          client.invoke(group, "c", workload::pack_u64(25, rng.uniform(0, 9)));
        });
    const auto after = cluster.network().stats().messages_sent;
    state.counters["messages"] = static_cast<double>(after - before);
    report(state, result);
  }
}

void register_all() {
  const int clients = fast_mode() ? 4 : 8;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const std::string name = "AblationLsaBatch/batch:" + std::to_string(batch) +
                             "/clients:" + std::to_string(clients);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [batch, clients](benchmark::State& s) {
                                   run_point(s, batch, clients);
                                 })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
