// Reproduces paper Figure 5(a): nested invocations only.
//
// Two replica groups A (front) and B (callee), 3 replicas each.  A
// variable number of clients invokes a method at A that performs one
// nested invocation of B; B either returns immediately or suspends for
// 2 ms (paper time).  Compared strategies: strictly sequential (SEQ)
// versus ADETS-SAT.  Expected shape: SAT increasingly better with more
// clients; with the 2 ms callee delay the gap becomes dramatic, because
// SAT accepts new requests at A while the nested call is in progress.
#include "bench_common.hpp"

namespace adets::bench {
namespace {

void run_point(benchmark::State& state, sched::SchedulerKind kind,
               std::uint64_t callee_delay_paper_ms, int clients) {
  for (auto _ : state) {
    runtime::Cluster cluster(figure_cluster_config());
    // The callee must execute concurrently (MAT): the paper measures the
    // *caller's* strategy, not a bottleneck at B.
    const auto callee = cluster.create_group(
        3, sched::SchedulerKind::kMat,
        [] { return std::make_unique<workload::EchoService>(); });
    const auto front = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::NestedPatterns>(); },
        sched_config_for(kind, clients));
    const auto result = run_closed_loop(
        cluster, clients, [&](runtime::Client& client, common::Rng&, int) {
          client.invoke(front, "N",
                        workload::pack_u64(callee.value(), callee_delay_paper_ms,
                                           callee_delay_paper_ms, 0, 0));
        });
    report(state, result);
  }
}

void register_all() {
  for (const auto kind : {sched::SchedulerKind::kSeq, sched::SchedulerKind::kSat}) {
    for (const std::uint64_t delay : {0ULL, 2ULL}) {
      for (const int clients : client_counts()) {
        const std::string name = "Fig5a/" + sched::to_string(kind) + "/delay_ms:" +
                                 std::to_string(delay) +
                                 "/clients:" + std::to_string(clients);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [kind, delay, clients](benchmark::State& s) {
              run_point(s, kind, delay, clients);
            })
            ->Iterations(1)
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

const bool registered = (register_all(), true);

}  // namespace
}  // namespace adets::bench

BENCHMARK_MAIN();
