#include "sa.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>

#include "detlint.hpp"

namespace adets::sa {
namespace {

namespace fs = std::filesystem;

/// Files whose whole job is to wrap nondeterminism or implement the
/// locks themselves; the model neither parses nor audits them.
const std::vector<std::string>& exempt_suffixes() {
  static const std::vector<std::string>* s = new std::vector<std::string>{
      "common/annotations.hpp", "common/mutex.hpp",   "common/mutex.cpp",
      "common/lock_order.hpp",  "common/lock_order.cpp",
      "common/mc_hooks.hpp",    "common/mc_hooks.cpp",
      "common/clock.hpp",       "common/clock.cpp",
  };
  return *s;
}

bool is_exempt(const std::string& path) {
  for (const auto& suffix : exempt_suffixes()) {
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
      return true;
    }
  }
  return false;
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".hh" || ext == ".h";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule>* r = new std::vector<Rule>{
      {"lock-cycle",
       "cycle in the static lock graph (acquire-while-held edges over the "
       "approximate call graph)"},
      {"requires-unheld",
       "call into an ADETS_REQUIRES function on a path that does not hold "
       "the required mutex"},
      {"unguarded-field",
       "mutable field of a mutex-owning class without ADETS_GUARDED_BY "
       "(or ADETS_GUARDED_BY_STATIC)"},
      {"condvar-unguarded",
       "condition-variable wait in a class with unguarded mutable state"},
      {"public-requires",
       "ADETS_REQUIRES function exposed as a public entry point without a "
       "lock-passing signature"},
      {"det-taint",
       "nondeterministic value (clock, thread id, pointer key, local rng) "
       "flows into scheduler decision state or a grant-path call"},
      {"blocking-under-monitor",
       "call chain that may block (condvar wait, sleep, ADETS_MAY_BLOCK "
       "boundary) while holding a scheduler/strategy mutex"},
      {"grant-path-taint",
       "nondeterminism source in a function reachable from a grant "
       "decision (interprocedural)"},
      {"grant-path-write",
       "write to a field with no ADETS_GUARDED_BY contract in a function "
       "reachable from a grant decision"},
      {"conflict-uncovered",
       "state access in a handler's call tree not covered by its declared "
       "ADETS_CONFLICT/READS/WRITES contract"},
      {"conflict-overlap",
       "handlers in different conflict classes share written state, so "
       "parallel execution could diverge"},
      {"bad-allow", "adets-sa:allow suppression without a justification"},
  };
  return *r;
}

Allows collect_allows(const std::string& path, const std::string& content) {
  static const std::regex allow_re(
      R"(adets-sa:allow\(([A-Za-z0-9_-]+)\)\s*(.*))");
  Allows out;
  const std::vector<detlint::Line> lines = detlint::preprocess(content);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line = static_cast<int>(i) + 1;
    std::smatch m;
    std::string comment = lines[i].comment;
    while (std::regex_search(comment, m, allow_re)) {
      const std::string rule = m[1];
      const std::string reason = m[2];
      if (reason.find_first_not_of(" \t") == std::string::npos) {
        out.bad.push_back({path, line, "bad-allow",
                           "adets-sa:allow(" + rule +
                               ") has no justification; state why the "
                               "finding is safe"});
      } else {
        out.by_line[line].insert(rule);
        // An allow alone on a line also covers the next line.
        if (lines[i].code.find_first_not_of(" \t") == std::string::npos) {
          out.by_line[line + 1].insert(rule);
        }
      }
      comment = m.suffix();
    }
  }
  return out;
}

namespace {

/// Process-wide parsed-file memo: repeated scans (the test binary runs
/// dozens; shared headers appear under several roots) tokenize and
/// harvest suppressions once per (path, mtime, size).
struct MemoEntry {
  fs::file_time_type mtime;
  std::uintmax_t size = 0;
  std::vector<Token> tokens;
  Allows allows;
};

std::map<std::string, MemoEntry>& parse_memo() {
  static auto* m = new std::map<std::string, MemoEntry>();
  return *m;
}

}  // namespace

std::vector<Finding> scan(const std::vector<std::string>& paths,
                          Program* model_out, ScanStats* stats_out) {
  using clock = std::chrono::steady_clock;
  ScanStats stats;
  // Expand to the file list.
  std::vector<std::string> files;
  std::vector<Finding> out;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      out.push_back({p, 0, "io-error", "cannot read path"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const auto parse_start = clock::now();
  Program local;
  Program& prog = model_out != nullptr ? *model_out : local;
  std::map<std::string, Allows> allows;
  for (const auto& f : files) {
    if (is_exempt(f)) continue;
    stats.files++;
    std::error_code ec;
    const auto mtime = fs::last_write_time(f, ec);
    const auto size = fs::file_size(f, ec);
    const auto memo = parse_memo().find(f);
    if (!ec && memo != parse_memo().end() && memo->second.mtime == mtime &&
        memo->second.size == size) {
      stats.memo_hits++;
      prog.parse_tokens(f, memo->second.tokens);  // copy; parse consumes
      allows[f] = memo->second.allows;
      continue;
    }
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      out.push_back({f, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    const std::vector<detlint::Line> lines = detlint::preprocess(content);
    std::vector<std::string> code;
    code.reserve(lines.size());
    for (const auto& l : lines) code.push_back(l.code);
    std::vector<Token> tokens = tokenize(code);
    Allows a = collect_allows(f, content);
    prog.parse_tokens(f, tokens);  // copy survives in the memo
    allows[f] = a;
    if (!ec) parse_memo()[f] = {mtime, size, std::move(tokens), std::move(a)};
  }
  const auto analyze_start = clock::now();
  prog.finalize();

  std::vector<Finding> raw;
  for (auto& f : lock_graph_pass(prog)) raw.push_back(std::move(f));
  for (auto& f : guard_pass(prog)) raw.push_back(std::move(f));
  for (auto& f : taint_pass(prog)) raw.push_back(std::move(f));
  for (auto& f : effects_pass(prog)) raw.push_back(std::move(f));
  for (auto& f : conflicts_pass(prog)) raw.push_back(std::move(f));

  for (auto& f : raw) {
    const auto it = allows.find(f.file);
    if (it != allows.end()) {
      const auto at = it->second.by_line.find(f.line);
      if (at != it->second.by_line.end() && at->second.count(f.rule) > 0) {
        continue;
      }
    }
    out.push_back(std::move(f));
  }
  for (auto& [file, a] : allows) {
    for (auto& f : a.bad) out.push_back(std::move(f));
  }

  // condvar-unguarded is derived from unguarded fields; once every such
  // field in the class is fixed or carries a justified suppression, the
  // wait-site findings would only restate the same decision.
  std::set<std::string> still_unguarded;
  for (const auto& f : out) {
    if (f.rule == "unguarded-field") still_unguarded.insert(f.cls);
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Finding& f) {
                             return f.rule == "condvar-unguarded" &&
                                    still_unguarded.count(f.cls) == 0;
                           }),
            out.end());

  // Stable report order: file, then line, then rule.
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  using ms = std::chrono::duration<double, std::milli>;
  stats.parse_ms = ms(analyze_start - parse_start).count();
  stats.analyze_ms = ms(clock::now() - analyze_start).count();
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"adets-sa\", \"rules\": [";
  bool first = true;
  for (const auto& r : rules()) {
    out << (first ? "" : ", ") << "{\"id\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.summary)
        << "\"}}";
    first = false;
  }
  out << "]}},\n    \"results\": [";
  first = true;
  for (const auto& f : findings) {
    out << (first ? "\n" : ",\n")
        << "      {\"ruleId\": \"" << f.rule
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}";
    first = false;
  }
  out << "\n    ]\n  }]\n}\n";
  return out.str();
}

int run_cli(const std::vector<std::string>& args) {
  bool report = false;
  std::string sarif_path;
  std::string conflicts_path;
  std::vector<std::string> paths;
  static const char* usage =
      "usage: adets-sa [--report] [--rules] [--sarif out.sarif] "
      "[--conflicts out.json] <path>...\n";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--report") {
      report = true;
    } else if (a == "--rules") {
      for (const auto& r : rules()) {
        std::cout << r.name << ": " << r.summary << "\n";
      }
      return 0;
    } else if (a == "--sarif") {
      if (i + 1 >= args.size()) {
        std::cerr << "adets-sa: --sarif requires a file argument\n";
        return 2;
      }
      sarif_path = args[++i];
    } else if (a == "--conflicts") {
      if (i + 1 >= args.size()) {
        std::cerr << "adets-sa: --conflicts requires a file argument\n";
        return 2;
      }
      conflicts_path = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "adets-sa: unknown flag '" << a << "'\n" << usage;
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << usage;
    return 2;
  }
  Program prog;
  ScanStats stats;
  const std::vector<Finding> findings = scan(paths, &prog, &stats);
  bool io_error = false;
  for (const auto& f : findings) {
    if (f.rule == "io-error") io_error = true;
    std::cout << to_string(f) << "\n";
  }
  if (report) {
    std::size_t bodies = 0;
    std::size_t acquisitions = 0;
    std::size_t annotated = 0;
    std::set<std::string> mutexes;
    for (const auto& fn : prog.functions) {
      if (!fn.statements.empty() || !fn.calls.empty()) bodies++;
      acquisitions += fn.acquisitions.size();
      if (!fn.requires_held.empty() || !fn.acquires.empty()) annotated++;
      for (const auto& a : fn.acquisitions) mutexes.insert(a.mutex_key);
    }
    std::size_t guarded = 0;
    std::size_t fields = 0;
    for (const auto& c : prog.classes) {
      for (const auto& f : c.fields) {
        fields++;
        if (!f.guarded_by.empty()) guarded++;
      }
    }
    std::size_t handlers = 0;
    for (const auto& fn : prog.functions) {
      if (!fn.conflict_dims.empty()) handlers++;
    }
    std::cerr << "adets-sa model: " << prog.classes.size() << " classes, "
              << prog.functions.size() << " functions (" << bodies
              << " with bodies), " << fields << " fields (" << guarded
              << " lock-annotated), " << annotated
              << " annotated functions, " << acquisitions
              << " lock acquisitions over " << mutexes.size()
              << " distinct mutexes, " << handlers
              << " conflict-annotated handlers; " << findings.size()
              << " finding(s)\n";
    std::cerr << "adets-sa timing: " << stats.files << " files ("
              << stats.memo_hits << " memo hits), parse "
              << static_cast<long long>(stats.parse_ms) << " ms, analyze "
              << static_cast<long long>(stats.analyze_ms) << " ms\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "adets-sa: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << to_sarif(findings);
  }
  if (!conflicts_path.empty()) {
    std::ofstream out(conflicts_path, std::ios::binary);
    if (!out) {
      std::cerr << "adets-sa: cannot write " << conflicts_path << "\n";
      return 2;
    }
    out << conflict_manifest(prog);
  }
  if (io_error) return 2;
  return findings.empty() ? 0 : 1;
}

}  // namespace adets::sa
