// Pass 3: determinism taint.
//
// The ADETS contract (src/sched/api.hpp) lets a scheduler consume only
// the totally-ordered event stream and per-thread program order.  This
// pass does a forward intra-procedural dataflow from textual
// nondeterminism sources to scheduler decision state:
//
//   sources: real-clock reads, thread-identity handles, pointers cast
//   to integers (address-as-ordering-key), locally seeded random
//   engines;
//
//   sinks: assignments to member fields of sched-scoped classes
//   (derived from Scheduler/SchedulerBase, or defined under src/sched),
//   and arguments of grant-path calls (record_grant, record_decision,
//   spawn_thread, wake).
//
// Sink scoping matters: layers *below* the total order (e.g. the group
// communication service tracking liveness deadlines) legitimately store
// clock readings under a lock; only the strategy layer must stay
// replica-blind, so only it is audited.

#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sa.hpp"

namespace adets::sa {
namespace {

struct Source {
  const char* kind;
  std::regex re;
};

const std::vector<Source>& sources() {
  static const std::vector<Source>* s = new std::vector<Source>{
      {"real-clock read",
       std::regex(R"(\b(Clock|steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b)")},
      {"real-clock read", std::regex(R"(\b(gettimeofday|clock_gettime|time)\s*\()")},
      {"thread identity",
       std::regex(R"(\bthis_thread\s*::\s*get_id\b|\bpthread_self\s*\(|\.\s*get_id\s*\()")},
      {"pointer as ordering key",
       std::regex(R"(\breinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t\b)")},
      {"locally seeded randomness",
       std::regex(R"(\brandom_device\b|\bmt19937\b|\brand\s*\(|\bsrand\s*\()")},
  };
  return *s;
}

const std::set<std::string>& grant_calls() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "record_grant", "record_decision", "spawn_thread", "wake",
  };
  return *k;
}

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

bool is_ident(const std::string& w) {
  if (w.empty()) return false;
  const unsigned char c = static_cast<unsigned char>(w[0]);
  return std::isalpha(c) != 0 || c == '_';
}

/// Index of a plain `=` assignment (not ==, !=, <=, >=, +=, ...), or -1.
int assign_at(const std::vector<std::string>& t) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] != "=") continue;
    if (i + 1 < t.size() && t[i + 1] == "=") return -1;  // comparison
    if (i > 0) {
      const std::string& p = t[i - 1];
      if (p == "=" || p == "!" || p == "<" || p == ">" || p == "+" ||
          p == "-" || p == "*" || p == "/" || p == "%" || p == "&" ||
          p == "|" || p == "^") {
        return -1;
      }
    }
    return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const char* nondet_source_kind(const std::string& text) {
  for (const auto& s : sources()) {
    if (std::regex_search(text, s.re)) return s.kind;
  }
  return nullptr;
}

bool sched_scoped(const Program& prog, const Function& fn) {
  if (fn.file.find("sched/") != std::string::npos) return true;
  const int cls = fn.cls.empty() ? -1 : prog.find_class(fn.cls);
  return cls >= 0 && (prog.derives_from(cls, "Scheduler") ||
                      prog.derives_from(cls, "SchedulerBase"));
}

std::vector<Finding> taint_pass(const Program& prog) {
  std::vector<Finding> out;
  for (const Function& fn : prog.functions) {
    if (fn.no_analysis || fn.statements.empty()) continue;
    const int cls = fn.cls.empty() ? -1 : prog.find_class(fn.cls);
    if (!sched_scoped(prog, fn)) continue;

    std::map<std::string, std::string> tainted;  // var -> source kind
    for (const Statement& st : fn.statements) {
      const std::vector<std::string> t = split_tokens(st.text);
      const char* direct = nondet_source_kind(st.text);

      // Does the RHS / argument list mention a tainted variable?
      std::string via;
      std::string via_kind;
      for (const auto& w : t) {
        const auto it = tainted.find(w);
        if (it != tainted.end()) {
          via = it->first;
          via_kind = it->second;
          break;
        }
      }

      const int eq = assign_at(t);
      std::string lhs;
      if (eq > 0 && is_ident(t[eq - 1])) lhs = t[eq - 1];

      if (!lhs.empty() && (direct != nullptr || !via.empty())) {
        const std::string kind = direct != nullptr ? direct : via_kind;
        // Member fields of the sched-scoped class are decision state.
        const bool member_sink =
            prog.find_member(cls, lhs) != nullptr ||
            (lhs.size() > 1 && lhs.back() == '_');
        if (member_sink) {
          std::string how = direct != nullptr
                                ? std::string(kind)
                                : kind + std::string(" via '") + via + "'";
          out.push_back({fn.file, st.line, "det-taint",
                         "nondeterministic value (" + how +
                             ") stored into scheduler state '" + lhs + "' in " +
                             (fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name)});
        } else {
          tainted[lhs] = kind;
        }
        continue;
      }
      // Declarations with initialisers: `auto x = ...` handled above via
      // assign_at; `Type x ( expr )` initialisation from a source:
      if (lhs.empty() && direct != nullptr) {
        // `auto now = Clock::now()` has `=`; `Timestamp now ( ... )` --
        // take the identifier right before the first `(`.
        for (std::size_t i = 1; i + 1 < t.size(); ++i) {
          if (t[i + 1] == "(" && is_ident(t[i]) && is_ident(t[i - 1])) {
            tainted[t[i]] = direct;
            break;
          }
        }
      }
      // Grant-path call with a tainted argument or inline source.
      for (const auto& w : t) {
        if (grant_calls().count(w) == 0) continue;
        if (direct != nullptr || !via.empty()) {
          const std::string kind = direct != nullptr ? direct : via_kind;
          const std::string how =
              direct != nullptr ? kind : kind + std::string(" via '") + via + "'";
          out.push_back({fn.file, st.line, "det-taint",
                         "nondeterministic value (" + how +
                             ") reaches grant-path call '" + w + "' in " +
                             (fn.cls.empty() ? fn.name
                                             : fn.cls + "::" + fn.name)});
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace adets::sa
