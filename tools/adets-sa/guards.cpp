// Pass 2: guard-coverage audit.
//
// A class that owns a mutex has opted into lock-based protection, so
// every mutable field it declares must say which lock guards it
// (ADETS_GUARDED_BY, or ADETS_GUARDED_BY_STATIC for classes -- like the
// model-checker runtime -- whose raw std::mutex must stay invisible to
// clang's thread-safety analysis).  Fields that are const, static
// constants, atomics, references, or the synchronisation members
// themselves are exempt: they are safe, or they *are* the protection.
//
// Two companion rules ride on the same ownership facts:
//   * condvar-unguarded: a wait on a member condition variable in a
//     class that still has unguarded mutable state -- the predicate the
//     wait re-checks may be read unlocked;
//   * public-requires: an ADETS_REQUIRES function exposed as a public
//     entry point, which outside callers cannot legally satisfy.

#include <regex>
#include <string>
#include <vector>

#include "sa.hpp"

namespace adets::sa {
namespace {

/// Thread handles are lifecycle members (written once at start, joined
/// at stop), not lock-protected data; flagging them is pure noise.
bool is_thread_handle(const Field& f) {
  static const std::regex re(R"(\b(jthread|thread)\b)");
  return std::regex_search(f.type, re);
}

}  // namespace

std::vector<Finding> guard_pass(const Program& prog) {
  std::vector<Finding> out;
  for (std::size_t ci = 0; ci < prog.classes.size(); ++ci) {
    const Class& c = prog.classes[ci];
    if (!c.owns_mutex()) continue;
    std::vector<const Field*> unguarded;
    for (const Field& f : c.fields) {
      if (f.is_mutex || f.is_condvar || f.is_atomic || f.is_const ||
          f.is_static || !f.guarded_by.empty() || is_thread_handle(f)) {
        continue;
      }
      unguarded.push_back(&f);
      out.push_back({c.file, f.line, "unguarded-field",
                     "mutable field '" + f.name + "' of mutex-owning class '" +
                         c.name + "' has no ADETS_GUARDED_BY",
                     c.name});
    }
    if (!unguarded.empty() && c.owns_condvar()) {
      for (const std::size_t m : c.methods) {
        const Function& fn = prog.functions[m];
        if (fn.no_analysis) continue;
        for (const auto& w : fn.cv_waits) {
          std::string names;
          for (const Field* f : unguarded) {
            if (!names.empty()) names += ", ";
            names += f->name;
          }
          out.push_back({fn.file, w.line, "condvar-unguarded",
                         "wait on '" + w.condvar + "' in class '" + c.name +
                             "' whose mutable state {" + names +
                             "} is not lock-annotated",
                         c.name});
        }
      }
    }
  }
  // public-requires is independent of mutex ownership: the annotation
  // itself names the lock.
  for (const Function& fn : prog.functions) {
    if (fn.requires_held.empty() || !fn.is_public || fn.cls.empty()) continue;
    if (fn.no_analysis || fn.defined_out_of_class || fn.takes_lock_param) {
      continue;
    }
    std::string req;
    for (const auto& r : fn.requires_held) {
      if (!req.empty()) req += ", ";
      req += r;
    }
    out.push_back({fn.file, fn.line, "public-requires",
                   "public entry point '" + fn.cls + "::" + fn.name +
                       "' carries ADETS_REQUIRES(" + req +
                       "); outside callers cannot hold a private lock"});
  }
  return out;
}

}  // namespace adets::sa
