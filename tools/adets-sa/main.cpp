#include <string>
#include <vector>

#include "sa.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return adets::sa::run_cli(args);
}
