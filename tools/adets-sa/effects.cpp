// Pass 4: interprocedural effects.
//
// Two analyses share one reachability substrate over the approximate
// call graph (Program::resolve_call):
//
// blocking-under-monitor.  A function *may block* if it waits on a
// member condvar, calls a sleep/join primitive, or is declared
// ADETS_MAY_BLOCK (the annotation marks the repo's irreducible
// blocking boundaries: network sends, queue pops, user upcalls).  The
// fact is propagated callee-to-caller to a fixpoint; each propagated
// fact remembers the call edge it came through, so a finding carries a
// witness chain `f -> g -> h blocks at file:line`.  A call made while
// holding a scheduler/strategy mutex into a may-block function defeats
// the paper's progress argument -- every other scheduler thread parks
// behind a lock whose holder is waiting on the outside world -- unless
// the ultimate blocker is the monitor idiom itself (a condvar wait in
// the same class as the held mutex: the wait atomically releases it).
//
// grant-path effect audit.  Grant decisions must be a pure function of
// the delivered total order.  Starting from the strategy hook points
// (handle_request, handle_reply, base_wait, ...) and any sched-scoped
// function that records a grant, we walk the call graph -- cutting at
// ADETS_MAY_BLOCK boundaries, which is where control re-enters the
// total order -- and audit every reachable function for (a)
// nondeterminism sources (grant-path-taint; the intra-procedural pass 3
// only sees one hop) and (b) writes to fields that no ADETS_GUARDED_BY
// contract covers (grant-path-write: state mutated during a decision
// but invisible to the guard audit).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sa.hpp"

namespace adets::sa {
namespace {

/// Free/static primitives that park the calling thread.
const std::set<std::string>& blocking_primitives() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "sleep_for", "sleep_until", "sleep_paper", "sleep_real", "join",
  };
  return *k;
}

/// Strategy hook points: entered with the scheduler monitor held, and
/// the only places a grant decision can originate.
const std::set<std::string>& grant_hooks() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "handle_request", "handle_reply",   "base_wait",
      "base_notify",    "base_lock",      "base_unlock",
      "base_resume_timed_out", "base_before_nested", "base_after_nested",
      "on_thread_done", "on_thread_start",
  };
  return *k;
}

/// Why (and where) a function may block.
struct BlockFact {
  bool blocks = false;
  bool intrinsic = false;
  std::string reason;          // intrinsic only: what blocks
  int line = 0;                // intrinsic: block site; else: call site
  std::size_t via = SIZE_MAX;  // propagated: callee the fact came through
};

std::string qualified_name(const Function& fn) {
  return fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
}

/// "Class" part of a "Class::member" mutex key.
std::string key_class(const std::string& key) {
  const std::size_t at = key.rfind("::");
  return at == std::string::npos ? "" : key.substr(0, at);
}

/// Walks a propagated fact to its intrinsic root, collecting the
/// witness chain ("f -> g -> h blocks at file:line: reason").
std::string witness(const Program& prog, const std::vector<BlockFact>& facts,
                    std::size_t from) {
  std::string chain = qualified_name(prog.functions[from]);
  std::size_t at = from;
  std::set<std::size_t> seen;
  while (facts[at].via != SIZE_MAX && seen.insert(at).second) {
    at = facts[at].via;
    chain += " -> " + qualified_name(prog.functions[at]);
  }
  const Function& leaf = prog.functions[at];
  chain += " blocks at " + leaf.file + ":" + std::to_string(facts[at].line) +
           " (" + facts[at].reason + ")";
  return chain;
}

/// Index of the intrinsic root of a fact chain.
std::size_t ultimate_blocker(const std::vector<BlockFact>& facts,
                             std::size_t from) {
  std::size_t at = from;
  std::set<std::size_t> seen;
  while (facts[at].via != SIZE_MAX && seen.insert(at).second) at = facts[at].via;
  return at;
}

}  // namespace

std::vector<Finding> effects_pass(const Program& prog) {
  std::vector<Finding> out;
  const std::size_t n = prog.functions.size();

  // --- may-block facts: intrinsic seeds -----------------------------------
  std::vector<BlockFact> facts(n);
  // Keys this function is REQUIRED to hold (for the release gate below).
  std::vector<std::vector<std::string>> required(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = prog.functions[i];
    const int cls = fn.cls.empty() ? -1 : prog.find_class(fn.cls);
    for (const auto& r : fn.requires_held) {
      const std::string key = prog.mutex_key(cls, r);
      required[i].push_back(key.empty() ? r : key);
    }
    BlockFact& f = facts[i];
    if (fn.may_block) {
      f = {true, true, "declared ADETS_MAY_BLOCK", fn.line, SIZE_MAX};
      continue;
    }
    if (fn.non_blocking) continue;  // declared never to park
    for (const CondVarWait& w : fn.cv_waits) {
      if (w.deferred) continue;  // a lambda body waits, not this fn
      f = {true, true, "waits on condvar '" + w.condvar + "'", w.line,
           SIZE_MAX};
      break;
    }
    if (f.blocks) continue;
    for (const CallSite& c : fn.calls) {
      if (c.deferred) continue;
      if (blocking_primitives().count(c.callee) > 0) {
        f = {true, true, "calls blocking primitive '" + c.callee + "'", c.line,
             SIZE_MAX};
        break;
      }
    }
  }

  // --- fixpoint: propagate callee-to-caller -------------------------------
  // Release gate: if a function drops its REQUIRES-held lock (via a
  // lock-passing parameter) before the blocking call, the caller's lock
  // is released for the duration -- the wait does not endanger it, so
  // the fact stops there (the monitor-release idiom, e.g. unlock ->
  // broadcast -> relock).
  auto held_covers = [](const std::vector<std::string>& held,
                        const std::vector<std::string>& req) {
    for (const auto& k : req) {
      if (std::find(held.begin(), held.end(), k) == held.end()) return false;
    }
    return true;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (facts[i].blocks || prog.functions[i].non_blocking) continue;
      const Function& fn = prog.functions[i];
      for (const CallSite& c : fn.calls) {
        if (c.deferred) continue;  // runs later, elsewhere
        if (!held_covers(c.held, required[i])) continue;  // released first
        for (const std::size_t callee : prog.resolve_call(fn, c)) {
          if (callee == i || !facts[callee].blocks) continue;
          facts[i] = {true, false, "", c.line, callee};
          changed = true;
          break;
        }
        if (facts[i].blocks) break;
      }
    }
  }

  // --- check: regions holding a scheduler/strategy mutex ------------------
  auto is_sched_mutex = [&](const std::string& key) {
    const int cls = prog.find_class(key_class(key));
    if (cls < 0) return false;
    return prog.classes[cls].file.find("sched/") != std::string::npos ||
           prog.derives_from(cls, "Scheduler") ||
           prog.derives_from(cls, "SchedulerBase");
  };
  auto first_sched_key = [&](const std::vector<std::string>& held) {
    for (const auto& k : held) {
      if (is_sched_mutex(k)) return k;
    }
    return std::string();
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = prog.functions[i];
    if (fn.no_analysis) continue;
    // Direct condvar waits under a *foreign* scheduler mutex.  Waiting
    // on the own class's condvar is the monitor idiom (the wait
    // releases the mutex); waiting while holding someone else's lock
    // parks that lock for the duration.
    for (const CondVarWait& w : fn.cv_waits) {
      for (const auto& key : w.held) {
        if (!is_sched_mutex(key)) continue;
        if (key_class(key) == fn.cls) continue;  // monitor wait
        out.push_back({fn.file, w.line, "blocking-under-monitor",
                       qualified_name(fn) + " waits on condvar '" + w.condvar +
                           "' while holding " + key,
                       fn.cls});
      }
    }
    // Call sites under a scheduler mutex into may-block callees are
    // collected first; the report below keeps only the frame closest to
    // the blocking boundary, so one justified suppression at the
    // boundary call silences the (redundant) callers of that function.
  }
  struct Candidate {
    std::size_t fn = 0;
    std::size_t callee = 0;
    int line = 0;
    std::string key;
  };
  std::vector<Candidate> candidates;
  std::set<std::size_t> flagged;  // functions with >= 1 candidate
  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = prog.functions[i];
    if (fn.no_analysis) continue;
    for (const CallSite& c : fn.calls) {
      const std::string key = first_sched_key(c.held);
      if (key.empty()) continue;
      for (const std::size_t callee : prog.resolve_call(fn, c)) {
        if (!facts[callee].blocks) continue;
        const std::size_t leaf = ultimate_blocker(facts, callee);
        const Function& lf = prog.functions[leaf];
        // Monitor idiom: the chain bottoms out in a condvar wait of the
        // class owning the held mutex -- the wait releases it.
        if (facts[leaf].intrinsic && !lf.cv_waits.empty() &&
            lf.cls == key_class(key)) {
          continue;
        }
        candidates.push_back({i, callee, c.line, key});
        flagged.insert(i);
        break;  // one witness per call site
      }
    }
  }
  for (const Candidate& cand : candidates) {
    // A caller of a function that is itself flagged would only restate
    // the same boundary; report the innermost frame.
    if (!facts[cand.callee].intrinsic && flagged.count(cand.callee) > 0) {
      continue;
    }
    const Function& fn = prog.functions[cand.fn];
    std::vector<BlockFact> with_here = facts;
    with_here[cand.fn] = {true, false, "", cand.line, cand.callee};
    out.push_back({fn.file, cand.line, "blocking-under-monitor",
                   "may-block call under " + cand.key + ": " +
                       witness(prog, with_here, cand.fn),
                   fn.cls});
  }

  // --- grant-path reachability --------------------------------------------
  // Roots: strategy hook points plus any sched-scoped function that
  // records a grant decision.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const Function& fn = prog.functions[i];
    if (!sched_scoped(prog, fn) || fn.statements.empty()) continue;
    bool is_root = grant_hooks().count(fn.name) > 0;
    for (const CallSite& c : fn.calls) {
      if (c.callee == "record_grant" || c.callee == "record_decision") {
        is_root = true;
        break;
      }
    }
    if (is_root) roots.push_back(i);
  }
  std::map<std::size_t, std::size_t> parent;  // reached -> via caller
  std::set<std::size_t> reached;
  std::vector<std::size_t> work = roots;
  for (const std::size_t r : roots) reached.insert(r);
  while (!work.empty()) {
    const std::size_t at = work.back();
    work.pop_back();
    const Function& fn = prog.functions[at];
    for (const CallSite& c : fn.calls) {
      const std::vector<std::size_t> targets = prog.resolve_call(fn, c);
      // The ADETS_MAY_BLOCK boundary re-enters the total order
      // (execute/broadcast); past it the audit belongs to the lower
      // layer.  The annotation lives on the interface declaration, so
      // one annotated candidate makes the whole call site a boundary
      // (attributes are not inherited by overrides).
      const bool boundary =
          std::any_of(targets.begin(), targets.end(), [&](std::size_t k) {
            return prog.functions[k].may_block;
          });
      if (boundary) continue;
      for (const std::size_t callee : targets) {
        if (prog.functions[callee].no_analysis) continue;
        if (!reached.insert(callee).second) continue;
        parent[callee] = at;
        work.push_back(callee);
      }
    }
  }
  auto grant_chain = [&](std::size_t at) {
    std::string chain = qualified_name(prog.functions[at]);
    std::set<std::size_t> seen{at};
    while (parent.count(at) > 0 && seen.insert(parent[at]).second) {
      at = parent[at];
      chain = qualified_name(prog.functions[at]) + " -> " + chain;
    }
    return chain;
  };

  for (const std::size_t i : reached) {
    const Function& fn = prog.functions[i];
    if (fn.no_analysis) continue;
    const int cls = fn.cls.empty() ? -1 : prog.find_class(fn.cls);
    // (a) nondeterminism sources anywhere on the grant path.
    for (const Statement& st : fn.statements) {
      if (const char* kind = nondet_source_kind(st.text)) {
        out.push_back({fn.file, st.line, "grant-path-taint",
                       std::string(kind) + " on the grant path: " +
                           grant_chain(i),
                       fn.cls});
      }
    }
    // (b) writes to state no guard contract covers.
    for (const FieldAccess& a : fn.accesses) {
      if (!a.is_write) continue;
      int owner = -1;
      const Field* f = prog.find_member(cls, a.field, &owner);
      if (f == nullptr || f->is_const || f->is_atomic) continue;
      if (!f->guarded_by.empty()) continue;  // guard audit covers it
      out.push_back({fn.file, a.line, "grant-path-write",
                     "write to unguarded field '" + a.field +
                         "' on the grant path: " + grant_chain(i),
                     fn.cls});
    }
  }

  return out;
}

}  // namespace adets::sa
