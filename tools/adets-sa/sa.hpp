// adets-sa: whole-program static concurrency auditor.
//
// Five passes over the lexical program model (model.hpp):
//
//   1. lock-graph   -- builds a static lock graph whose nodes are mutex
//      identities ("Class::member") and whose edges are acquire-while-
//      held facts, direct (a MutexLock taken while another is held) and
//      transitive (a call made under lock into a function that acquires,
//      via a may-acquire fixpoint over the approximate call graph).
//      Cycles are reported with one witness edge per participant.
//
//   2. guard-coverage -- classes owning a mutex must annotate their
//      mutable fields with ADETS_GUARDED_BY (or the compiler-invisible
//      ADETS_GUARDED_BY_STATIC for raw std::mutex members); condvar
//      waits in classes with unguarded mutable state, and REQUIRES
//      functions callable from unannotated public entry points, are
//      flagged alongside.
//
//   3. determinism-taint -- intra-procedural dataflow from
//      nondeterminism sources (real-clock reads, thread handles,
//      pointer-as-ordering-key, locally seeded Rng) into scheduler
//      decision state: assignments to fields of sched-scoped classes
//      and arguments of grant-path calls.
//
//   4. effects -- interprocedural may-block effect analysis.  A
//      transitive "may block" fact (condvar waits, sleep primitives,
//      ADETS_MAY_BLOCK declarations such as network sends and user
//      upcalls) is propagated over the approximate call graph and
//      checked against every region that holds a scheduler/strategy
//      mutex, with a call-chain witness.  The same reachability,
//      rooted at grant-decision hooks and cut at the ADETS_MAY_BLOCK
//      boundary, audits the full grant path for nondeterministic
//      reads and writes to unguarded state (the PR 8 taint pass saw
//      only one hop).
//
//   5. conflicts -- conflict-class coverage.  Workload operations
//      declare their conflict class with ADETS_CONFLICT plus the state
//      they touch with ADETS_READS/ADETS_WRITES; the pass proves every
//      field access in the handler's (same-class) call tree is covered
//      by the declaration, so the parallel early-scheduling strategy
//      can trust the classes it is given.
//
// Suppression mirrors detlint: `// adets-sa:allow(<rule>) <reason>` on
// the finding line or alone on the line directly above.  A reasonless
// allow is itself a finding (rule bad-allow).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace adets::sa {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// Qualified class the finding is about (guard-coverage rules only);
  /// lets scan() drop condvar-unguarded findings once every unguarded
  /// field of the class has been fixed or explicitly suppressed.
  std::string cls;
};

struct Rule {
  std::string name;
  std::string summary;
};

/// The rule set, in reporting order.
const std::vector<Rule>& rules();

/// Pass 1: static lock graph + cycle detection.
std::vector<Finding> lock_graph_pass(const Program& prog);

/// Pass 2: guard-coverage audit.
std::vector<Finding> guard_pass(const Program& prog);

/// Pass 3: determinism taint.
std::vector<Finding> taint_pass(const Program& prog);

/// Pass 4: interprocedural may-block effects (blocking-under-monitor)
/// and grant-path effect audit (grant-path-taint, grant-path-write).
std::vector<Finding> effects_pass(const Program& prog);

/// Pass 5: conflict-class coverage (conflict-uncovered, conflict-overlap).
std::vector<Finding> conflicts_pass(const Program& prog);

/// Shared by passes 3 and 4: true when `fn` belongs to the
/// scheduler/strategy layer (defined under src/sched, or member of a
/// class deriving Scheduler/SchedulerBase).
bool sched_scoped(const Program& prog, const Function& fn);

/// Nondeterminism-source kind matched by a statement, or nullptr.
const char* nondet_source_kind(const std::string& text);

/// JSON manifest of declared conflict classes (class -> handlers ->
/// dims/reads/writes): the statically verified input format for the
/// early-scheduling strategy.
std::string conflict_manifest(const Program& prog);

/// Per-file `adets-sa:allow` suppressions harvested from comments.
struct Allows {
  /// line -> allowed rule names (an allow on line N covers N and N+1).
  std::map<int, std::set<std::string>> by_line;
  /// Reasonless allows (reported as bad-allow).
  std::vector<Finding> bad;
};

/// Extracts suppressions from one source (uses the shared detlint
/// preprocessor, so markers inside strings do not count).
Allows collect_allows(const std::string& path, const std::string& content);

/// Timing/caching counters for one scan() (reported by --report and the
/// CI job log).
struct ScanStats {
  std::size_t files = 0;
  std::size_t memo_hits = 0;  // files served from the parsed-file memo
  double parse_ms = 0.0;      // read+preprocess+tokenize+parse
  double analyze_ms = 0.0;    // finalize + all passes
};

/// Builds the model over `paths` (files or directories recursed for C++
/// sources), runs all passes, applies suppressions.  `model_out`, when
/// non-null, receives the finalized program (for --report).  Tokenized
/// files are memoized process-wide (keyed by mtime+size), so repeated
/// scans of shared headers parse once; `stats_out` receives counters.
std::vector<Finding> scan(const std::vector<std::string>& paths,
                          Program* model_out = nullptr,
                          ScanStats* stats_out = nullptr);

/// Formats a finding as "file:line: [rule] message".
std::string to_string(const Finding& finding);

/// Serialises findings as minimal SARIF 2.1.0.
std::string to_sarif(const std::vector<Finding>& findings);

/// CLI entry.  Flags: --report (model statistics + timing), --sarif
/// <file>, --conflicts <file> (conflict-class manifest), --rules.
/// Exit 0 clean, 1 findings, 2 usage/io error.
int run_cli(const std::vector<std::string>& args);

}  // namespace adets::sa
