// adets-sa: whole-program static concurrency auditor.
//
// Three passes over the lexical program model (model.hpp):
//
//   1. lock-graph   -- builds a static lock graph whose nodes are mutex
//      identities ("Class::member") and whose edges are acquire-while-
//      held facts, direct (a MutexLock taken while another is held) and
//      transitive (a call made under lock into a function that acquires,
//      via a may-acquire fixpoint over the approximate call graph).
//      Cycles are reported with one witness edge per participant.
//
//   2. guard-coverage -- classes owning a mutex must annotate their
//      mutable fields with ADETS_GUARDED_BY (or the compiler-invisible
//      ADETS_GUARDED_BY_STATIC for raw std::mutex members); condvar
//      waits in classes with unguarded mutable state, and REQUIRES
//      functions callable from unannotated public entry points, are
//      flagged alongside.
//
//   3. determinism-taint -- intra-procedural dataflow from
//      nondeterminism sources (real-clock reads, thread handles,
//      pointer-as-ordering-key, locally seeded Rng) into scheduler
//      decision state: assignments to fields of sched-scoped classes
//      and arguments of grant-path calls.
//
// Suppression mirrors detlint: `// adets-sa:allow(<rule>) <reason>` on
// the finding line or alone on the line directly above.  A reasonless
// allow is itself a finding (rule bad-allow).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace adets::sa {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// Qualified class the finding is about (guard-coverage rules only);
  /// lets scan() drop condvar-unguarded findings once every unguarded
  /// field of the class has been fixed or explicitly suppressed.
  std::string cls;
};

struct Rule {
  std::string name;
  std::string summary;
};

/// The rule set, in reporting order.
const std::vector<Rule>& rules();

/// Pass 1: static lock graph + cycle detection.
std::vector<Finding> lock_graph_pass(const Program& prog);

/// Pass 2: guard-coverage audit.
std::vector<Finding> guard_pass(const Program& prog);

/// Pass 3: determinism taint.
std::vector<Finding> taint_pass(const Program& prog);

/// Per-file `adets-sa:allow` suppressions harvested from comments.
struct Allows {
  /// line -> allowed rule names (an allow on line N covers N and N+1).
  std::map<int, std::set<std::string>> by_line;
  /// Reasonless allows (reported as bad-allow).
  std::vector<Finding> bad;
};

/// Extracts suppressions from one source (uses the shared detlint
/// preprocessor, so markers inside strings do not count).
Allows collect_allows(const std::string& path, const std::string& content);

/// Builds the model over `paths` (files or directories recursed for C++
/// sources), runs all passes, applies suppressions.  `model_out`, when
/// non-null, receives the finalized program (for --report).
std::vector<Finding> scan(const std::vector<std::string>& paths,
                          Program* model_out = nullptr);

/// Formats a finding as "file:line: [rule] message".
std::string to_string(const Finding& finding);

/// Serialises findings as minimal SARIF 2.1.0.
std::string to_sarif(const std::vector<Finding>& findings);

/// CLI entry.  Flags: --report (model statistics), --sarif <file>,
/// --rules.  Exit 0 clean, 1 findings, 2 usage/io error.
int run_cli(const std::vector<std::string>& args);

}  // namespace adets::sa
