// Pass 1: static lock graph.
//
// Nodes are mutex identities ("Class::member", instance-insensitive by
// design: every instance of a class shares one lock-order role, which
// is exactly the granularity the runtime lock-order validator enforces).
// Edges are acquire-while-held facts:
//
//   * direct: an Acquisition whose `held` set is non-empty;
//   * transitive: a CallSite made under lock resolving to a callee
//     whose may-acquire closure (fixpoint over the approximate call
//     graph) contains another mutex.
//
// Any strongly connected component with more than one node -- or a
// self-loop, since common::Mutex is non-recursive -- is a potential
// deadlock and is reported with one witness edge per hop.
//
// The same call resolution also powers the requires-unheld rule: a call
// into an ADETS_REQUIRES function where no candidate's requirement is
// in the caller's held set.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sa.hpp"

namespace adets::sa {
namespace {

struct Witness {
  std::string file;
  int line = 0;
};

using EdgeMap = std::map<std::pair<std::string, std::string>, Witness>;

/// May-acquire closure: for each function, the set of mutex keys it can
/// acquire directly or through any resolvable call chain.
std::vector<std::set<std::string>> may_acquire(const Program& prog) {
  std::vector<std::set<std::string>> acq(prog.functions.size());
  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    const Function& fn = prog.functions[i];
    const int cls = fn.cls.empty() ? -1 : prog.find_class(fn.cls);
    for (const auto& a : fn.acquisitions) acq[i].insert(a.mutex_key);
    for (const auto& m : fn.acquires) {
      const std::string key = prog.mutex_key(cls, m);
      if (!key.empty()) acq[i].insert(key);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < prog.functions.size(); ++i) {
      const Function& fn = prog.functions[i];
      for (const auto& c : fn.calls) {
        for (const std::size_t callee : prog.resolve_call(fn, c)) {
          for (const auto& k : acq[callee]) {
            if (acq[i].insert(k).second) changed = true;
          }
        }
      }
    }
  }
  return acq;
}

/// Tarjan SCC over the lock graph; returns components of size > 1 plus
/// single nodes with a self-loop.
std::vector<std::vector<std::string>> cycles(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  nodes.reserve(adj.size());
  for (const auto& [n, _] : adj) nodes.push_back(n);
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> out;
  int next = 0;

  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    std::size_t at = 0;
  };
  for (const auto& root : nodes) {
    if (index.count(root) > 0) continue;
    std::vector<Frame> work;
    auto push = [&](const std::string& n) {
      index[n] = low[n] = next++;
      stack.push_back(n);
      on_stack[n] = true;
      Frame f;
      f.node = n;
      const auto it = adj.find(n);
      if (it != adj.end()) f.succ.assign(it->second.begin(), it->second.end());
      work.push_back(std::move(f));
    };
    push(root);
    while (!work.empty()) {
      Frame& f = work.back();
      if (f.at < f.succ.size()) {
        const std::string& w = f.succ[f.at++];
        if (index.count(w) == 0) {
          push(w);
        } else if (on_stack[w]) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
      } else {
        if (low[f.node] == index[f.node]) {
          std::vector<std::string> comp;
          while (true) {
            const std::string n = stack.back();
            stack.pop_back();
            on_stack[n] = false;
            comp.push_back(n);
            if (n == f.node) break;
          }
          const auto it = adj.find(f.node);
          const bool self_loop = comp.size() == 1 && it != adj.end() &&
                                 it->second.count(f.node) > 0;
          if (comp.size() > 1 || self_loop) out.push_back(std::move(comp));
        }
        const std::string done = f.node;
        work.pop_back();
        if (!work.empty()) {
          low[work.back().node] = std::min(low[work.back().node], low[done]);
        }
      }
    }
  }
  return out;
}

std::string member_of(const std::string& key) {
  const std::size_t at = key.rfind("::");
  return at == std::string::npos ? key : key.substr(at + 2);
}

}  // namespace

std::vector<Finding> lock_graph_pass(const Program& prog) {
  std::vector<Finding> out;
  const std::vector<std::set<std::string>> acq = may_acquire(prog);

  EdgeMap edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line) {
    if (from == to) {
      // Self-acquisition: report immediately (non-recursive mutexes).
      edges.emplace(std::make_pair(from, to), Witness{file, line});
      return;
    }
    edges.emplace(std::make_pair(from, to), Witness{file, line});
  };

  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    const Function& fn = prog.functions[i];
    if (fn.no_analysis) continue;
    for (const auto& a : fn.acquisitions) {
      for (const auto& h : a.held) add_edge(h, a.mutex_key, fn.file, a.line);
    }
    for (const auto& c : fn.calls) {
      if (c.held.empty()) continue;
      for (const std::size_t callee : prog.resolve_call(fn, c)) {
        if (prog.functions[callee].no_analysis) continue;
        // A callee that REQUIRES a held mutex re-enters under the same
        // lock by contract; only *new* acquisitions create edges.
        for (const auto& k : acq[callee]) {
          for (const auto& h : c.held) {
            if (std::find(c.held.begin(), c.held.end(), k) == c.held.end()) {
              add_edge(h, k, fn.file, c.line);
            }
          }
        }
      }
    }
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [e, w] : edges) adj[e.first].insert(e.second);

  for (const auto& comp : cycles(adj)) {
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    // Describe the component with its internal witness edges.
    std::string path;
    const Witness* first = nullptr;
    for (const auto& [e, w] : edges) {
      if (in_comp.count(e.first) == 0 || in_comp.count(e.second) == 0) continue;
      if (first == nullptr) first = &w;
      if (!path.empty()) path += ", ";
      path += e.first + " -> " + e.second + " at " + w.file + ":" +
              std::to_string(w.line);
    }
    if (first == nullptr) continue;
    std::string names;
    for (const auto& n : comp) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    out.push_back({first->file, first->line, "lock-cycle",
                   "lock graph cycle through {" + names + "}: " + path});
  }

  // requires-unheld: a resolvable call into an ADETS_REQUIRES function
  // where no candidate's requirement appears in the caller's held set.
  for (const Function& fn : prog.functions) {
    if (fn.no_analysis || !fn.has_body) continue;
    for (const auto& c : fn.calls) {
      const std::vector<std::size_t> cands = prog.resolve_call(fn, c);
      if (cands.empty()) continue;
      bool any_satisfied = false;
      bool any_required = false;
      std::string wanted;
      for (const std::size_t k : cands) {
        const Function& callee = prog.functions[k];
        if (callee.requires_held.empty()) {
          any_satisfied = true;  // an overload without a requirement
          continue;
        }
        any_required = true;
        bool ok = true;
        for (const auto& r : callee.requires_held) {
          const std::string want = member_of(r);
          const bool held = std::any_of(
              c.held.begin(), c.held.end(),
              [&](const std::string& h) { return member_of(h) == want; });
          if (!held) {
            ok = false;
            if (!wanted.empty()) wanted += ", ";
            wanted += r;
          }
        }
        if (ok) any_satisfied = true;
      }
      if (any_required && !any_satisfied) {
        out.push_back({fn.file, c.line, "requires-unheld",
                       "call to '" + c.callee +
                           "' requires holding {" + wanted +
                           "} but no lock is held on this path"});
      }
    }
  }
  return out;
}

}  // namespace adets::sa
