// adets-sa program model: a declaration- and scope-aware view of the
// tree's own structure, built lexically (no compiler front end).
//
// The parser grows detlint's comment/string-stripped line scanner
// (tools/detlint, shared via adets::detlint::preprocess) into a
// tokenizer plus a recursive scope walker that recognises the subset of
// C++ this repository actually writes: namespaces, (nested) classes,
// member fields with ADETS_* thread-safety annotations, member/free
// function declarations and definitions, `common::Mutex` /
// `common::CondVar` / raw `std::mutex` members, and `MutexLock`-style
// scoped acquisitions inside bodies.  It is deliberately approximate --
// the three analysis passes (sa.hpp) are written so that imprecision
// surfaces as a suppressible finding or a missing edge, never a crash.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace adets::sa {

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;  // identifier or keyword (vs punctuation/literal)
};

/// One data member of a class.
struct Field {
  std::string name;
  std::string type;  // joined type tokens, e.g. "std::vector<GrantRecord>"
  int line = 0;
  /// Mutex member name from ADETS_GUARDED_BY / ADETS_PT_GUARDED_BY /
  /// ADETS_GUARDED_BY_STATIC; empty when unannotated.
  std::string guarded_by;
  bool is_mutex = false;    // common::Mutex or raw std::mutex family
  bool is_condvar = false;  // common::CondVar or std::condition_variable
  bool is_atomic = false;
  bool is_const = false;  // const/constexpr or reference member
  bool is_static = false;
};

/// One call site inside a function body.
struct CallSite {
  std::string callee;     // unqualified name
  std::string receiver;   // `x` of `x.f()` / `x->f()`, or ""
  std::string qualifier;  // `C` of `C::f()`, or ""
  int line = 0;
  /// Mutex keys ("Class::member") held when the call is made.
  std::vector<std::string> held;
  /// Inside a lambda body: runs later, possibly on another thread, so
  /// effects do not propagate to the enclosing function.
  bool deferred = false;
};

/// One direct acquisition of a member mutex (MutexLock ctor, .lock()).
struct Acquisition {
  std::string mutex_key;  // "Class::member"
  int line = 0;
  std::vector<std::string> held;  // keys held *before* this acquisition
};

/// One `cv.wait*(...)` on a member condvar.
struct CondVarWait {
  std::string condvar;  // member name
  int line = 0;
  /// Mutex keys ("Class::member") held when the wait starts.
  std::vector<std::string> held;
  bool deferred = false;  // inside a lambda body (see CallSite)
};

/// One textual read or write of a member field inside a function body
/// (the conflict-class coverage pass consumes these).
struct FieldAccess {
  std::string field;  // unqualified member name
  int line = 0;
  bool is_write = false;
};

/// One flattened statement (for the intra-procedural taint pass).
struct Statement {
  std::string text;  // tokens joined by single spaces
  int line = 0;
};

struct Function {
  std::string name;  // unqualified ("submit", "operator=", "~Foo")
  std::string cls;   // qualified owning class, or "" for free functions
  std::string file;
  int line = 0;
  bool is_public = false;
  bool has_body = false;
  bool no_analysis = false;  // ADETS_NO_THREAD_SAFETY_ANALYSIS
  bool defined_out_of_class = false;
  /// Takes a MutexLock&/Lk& parameter -- a lock-passing signature, so a
  /// REQUIRES annotation on a public method is satisfiable by callers.
  bool takes_lock_param = false;
  /// Declared as potentially blocking (ADETS_MAY_BLOCK): condvar waits,
  /// queue pops, network sends, user upcalls.  Root facts for the
  /// interprocedural may-block effect analysis.
  bool may_block = false;
  /// Declared as never parking (ADETS_NON_BLOCKING) despite lexical
  /// appearances -- e.g. a join of threads already known finished.
  bool non_blocking = false;
  /// Parameter names of MutexLock&/Lk& parameters; `name.unlock()` on
  /// one of these suspends the REQUIRES-implied held set.
  std::vector<std::string> lock_params;
  /// Raw annotation arguments (member names as written, e.g. "mon_").
  std::vector<std::string> requires_held;
  std::vector<std::string> acquires;
  std::vector<std::string> releases;
  /// Conflict-class contract (ADETS_CONFLICT / ADETS_READS / ADETS_WRITES):
  /// the dimension terms of the declared conflict class ("key", "account",
  /// "all", "free") and the member fields the handler declares it reads
  /// and writes.  Empty conflict_dims = not a declared handler.
  std::vector<std::string> conflict_dims;
  std::vector<std::string> declared_reads;
  std::vector<std::string> declared_writes;

  // Derived by analyze_bodies():
  std::vector<CallSite> calls;
  std::vector<Acquisition> acquisitions;
  std::vector<CondVarWait> cv_waits;
  std::vector<Statement> statements;
  std::vector<FieldAccess> accesses;  // member-field reads/writes
};

struct Class {
  std::string name;  // qualified by namespace and outer class
  std::string file;
  int line = 0;
  std::vector<std::string> bases;  // unqualified base-class names
  std::vector<Field> fields;
  std::vector<std::size_t> methods;  // indexes into Program::functions

  [[nodiscard]] bool owns_mutex() const {
    for (const auto& f : fields) {
      if (f.is_mutex) return true;
    }
    return false;
  }
  [[nodiscard]] bool owns_condvar() const {
    for (const auto& f : fields) {
      if (f.is_condvar) return true;
    }
    return false;
  }
};

class Program {
 public:
  std::vector<Class> classes;
  std::vector<Function> functions;

  /// Parses one preprocessed source into the model.  Call once per file;
  /// then finalize() exactly once.
  void parse_file(const std::string& path, const std::string& content);

  /// Like parse_file, but from an already-tokenized stream (the scan
  /// driver memoizes preprocess+tokenize per file; see sa.cpp).
  void parse_tokens(const std::string& path, std::vector<Token> tokens);

  /// Attaches out-of-class definitions to their in-class declarations
  /// (merging annotations and access), resolves inheritance, and runs
  /// body analysis (lock scopes, call sites, statements).
  void finalize();

  // --- lookups (valid after finalize) -----------------------------------
  /// Index of a class by qualified name, or unqualified name when that
  /// is unambiguous; -1 if unknown.
  [[nodiscard]] int find_class(const std::string& name) const;
  /// The field `member` of `cls` or any (transitive) base; nullptr when
  /// absent.  `owner` receives the index of the defining class.
  [[nodiscard]] const Field* find_member(int cls, const std::string& member,
                                         int* owner = nullptr) const;
  /// True if `cls` derives (transitively) from a class whose unqualified
  /// name is `base`.
  [[nodiscard]] bool derives_from(int cls, const std::string& base) const;
  /// Candidate functions a call may land on (same-class first, then
  /// receiver-typed, then unique global).  Indexes into `functions`.
  [[nodiscard]] std::vector<std::size_t> resolve_call(const Function& from,
                                                      const CallSite& call) const;
  /// "Class::member" key for a mutex member reachable from `cls`;
  /// empty when `expr` does not name a known mutex member.
  [[nodiscard]] std::string mutex_key(int cls, const std::string& expr) const;
  /// Unqualified tail of a qualified class name.
  static std::string unqualified(const std::string& name);

 private:
  void analyze_bodies();
  [[nodiscard]] std::vector<std::size_t> resolve_call_uncached(
      const Function& from, const CallSite& call) const;

  std::map<std::string, int> by_qualified_;
  /// Resolution depends only on (caller class, callee, receiver,
  /// qualifier); the fixpoint passes re-resolve the same sites every
  /// iteration, so cache by that key.  Cleared by finalize().
  mutable std::map<std::string, std::vector<std::size_t>> resolve_memo_;
  std::map<std::string, std::vector<int>> by_unqualified_;
  // Raw token bodies, held until analyze_bodies() consumes them.
  friend class Parser;
  std::vector<std::vector<Token>> bodies_;  // parallel to functions
};

/// Tokenizes preprocessed code lines (identifiers, numbers, `::`, `->`,
/// single punctuation; string literals appear as `""`).  Preprocessor
/// directive lines are dropped.
std::vector<Token> tokenize(const std::vector<std::string>& code_lines);

}  // namespace adets::sa
