#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

#include "detlint.hpp"

namespace adets::sa {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

const std::set<std::string>& type_keywords() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "void", "int",  "bool",   "char",     "auto",     "float",    "double",
      "long", "short", "signed", "unsigned", "decltype", "typename", "wchar_t",
  };
  return *k;
}

const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "if",     "for",        "while",      "switch",     "return",
      "sizeof", "alignof",    "catch",      "throw",      "new",
      "delete", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "static_assert", "noexcept", "assert", "defined",
      "int",    "bool",       "void",       "char",       "double",
      "float",  "long",       "unsigned",   "co_await",   "co_return",
  };
  return *k;
}

/// Names that introduce a scoped lock over their first constructor arg.
const std::set<std::string>& lock_types() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "MutexLock", "Lk", "lock_guard", "unique_lock", "scoped_lock",
  };
  return *k;
}

/// Container/atomic methods that mutate their receiver.
const std::set<std::string>& mutating_methods() {
  static const std::set<std::string>* k = new std::set<std::string>{
      "push_back", "push_front", "pop_back", "pop_front", "emplace",
      "emplace_back", "emplace_front", "insert", "erase", "clear",
      "resize", "assign", "store", "fetch_add", "fetch_sub", "swap",
  };
  return *k;
}

bool type_is_mutex(const std::string& type) {
  static const std::regex re(
      R"(\b(Mutex|(recursive_|timed_|recursive_timed_|shared_timed_|shared_)?mutex)\b)");
  if (type.find("MutexLock") != std::string::npos) return false;
  return std::regex_search(type, re);
}

bool type_is_condvar(const std::string& type) {
  static const std::regex re(R"(\b(CondVar|condition_variable(_any)?)\b)");
  return std::regex_search(type, re);
}

bool type_is_atomic(const std::string& type) {
  static const std::regex re(R"(\batomic\b)");
  return std::regex_search(type, re);
}

}  // namespace

std::vector<Token> tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Token> out;
  bool in_directive = false;
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& s = code_lines[li];
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) i++;
    // Preprocessor lines (and their continuations) carry no declarations.
    if (!in_directive && i < s.size() && s[i] == '#') in_directive = true;
    if (in_directive) {
      in_directive = !s.empty() && s.back() == '\\';
      continue;
    }
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        i++;
      } else if (is_ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
        std::size_t j = i;
        while (j < s.size() && is_ident_char(s[j])) j++;
        out.push_back({s.substr(i, j - i), line, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t j = i;
        while (j < s.size() && (is_ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) j++;
        out.push_back({s.substr(i, j - i), line, false});
        i = j;
      } else if (c == '"' || c == '\'') {
        // preprocess() blanks literal contents, so the delimiters abut.
        const std::size_t j = i + 1 < s.size() && s[i + 1] == c ? i + 2 : i + 1;
        out.push_back({std::string(2, c), line, false});
        i = j;
      } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        out.push_back({"::", line, false});
        i += 2;
      } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        out.push_back({"->", line, false});
        i += 2;
      } else {
        out.push_back({std::string(1, c), line, false});
        i++;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser: a cursor over the token stream with a recursive scope walker.

class Parser {
 public:
  Parser(Program& prog, std::string file, std::vector<Token> toks)
      : prog_(prog), file_(std::move(file)), t_(std::move(toks)) {}

  void run() { parse_scope("", /*in_class=*/-1, /*access_public=*/true); }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= t_.size(); }
  [[nodiscard]] const Token& cur() const { return t_[pos_]; }
  [[nodiscard]] const std::string& txt(std::size_t off = 0) const {
    static const std::string empty;
    return pos_ + off < t_.size() ? t_[pos_ + off].text : empty;
  }

  /// Consumes a balanced group starting at the current `open` token.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (!at_end()) {
      if (cur().text == open) depth++;
      if (cur().text == close) depth--;
      pos_++;
      if (depth == 0) return;
    }
  }

  /// Consumes a `<...>` template group (approximate: `>` closes).
  void skip_angles() {
    int depth = 0;
    while (!at_end()) {
      if (cur().text == "<") depth++;
      if (cur().text == ">") depth--;
      pos_++;
      if (depth == 0) return;
    }
  }

  void skip_to_semicolon() {
    int paren = 0;
    while (!at_end()) {
      if (cur().text == "(") paren++;
      if (cur().text == ")") paren--;
      if (cur().text == "{") {
        // A brace group ends the construct (friend/inline definitions,
        // enum bodies); a trailing `;` is consumed by the scope loop.
        skip_balanced("{", "}");
        return;
      }
      if (cur().text == "}" && paren <= 0) return;  // enclosing scope ends
      if (cur().text == ";" && paren <= 0) {
        pos_++;
        return;
      }
      pos_++;
    }
  }

  /// `scope`: qualified prefix ("ns::Class").  `cls`: index of enclosing
  /// class in prog_.classes, or -1 at namespace scope.
  void parse_scope(const std::string& scope, int cls, bool access_public) {
    while (!at_end()) {
      const std::string& w = cur().text;
      if (w == "}") {
        pos_++;
        return;
      }
      if (w == "namespace") {
        pos_++;
        std::string name;
        while (!at_end() && cur().ident) {
          name = cur().text;
          pos_++;
          if (txt() == "::") {
            pos_++;
            continue;
          }
          break;
        }
        if (txt() == "{") {
          pos_++;
          std::string inner = scope;
          if (!name.empty()) inner = scope.empty() ? name : scope + "::" + name;
          parse_scope(inner, -1, true);
        } else {
          skip_to_semicolon();  // namespace alias
        }
        continue;
      }
      if (w == "template") {
        pos_++;
        if (txt() == "<") skip_angles();
        continue;  // prefix of the next declaration
      }
      if (w == "class" || w == "struct") {
        if (!parse_class_or_skip(scope)) skip_to_semicolon();
        continue;
      }
      if (w == "enum") {
        skip_to_semicolon();
        continue;
      }
      if (w == "using" || w == "typedef" || w == "friend" || w == "static_assert" ||
          w == "extern") {
        skip_to_semicolon();
        continue;
      }
      if (cls >= 0 && (w == "public" || w == "protected" || w == "private") &&
          txt(1) == ":") {
        access_public = (w == "public");
        pos_ += 2;
        continue;
      }
      if (w == ";") {
        pos_++;
        continue;
      }
      parse_declaration(scope, cls, access_public);
    }
  }

  /// At a `class`/`struct` token: parses a definition (returns true) or
  /// leaves the cursor for skip_to_semicolon on forward declarations.
  bool parse_class_or_skip(const std::string& scope) {
    const bool is_struct = cur().text == "struct";
    const int line = cur().line;
    pos_++;
    // Scan for the name, skipping attribute macros like
    // ADETS_CAPABILITY("mutex") and alignas(...).
    std::string name;
    std::size_t probe = pos_;
    while (probe < t_.size()) {
      const Token& tk = t_[probe];
      if (tk.text == "{" || tk.text == ";" || tk.text == ":") break;
      if (tk.ident && tk.text != "final" && tk.text != "alignas") {
        if (probe + 1 < t_.size() && t_[probe + 1].text == "(") {
          // macro call: skip its group
          std::size_t q = probe + 1;
          int depth = 0;
          while (q < t_.size()) {
            if (t_[q].text == "(") depth++;
            if (t_[q].text == ")") depth--;
            q++;
            if (depth == 0) break;
          }
          probe = q;
          continue;
        }
        name = tk.text;
      }
      probe++;
    }
    if (probe >= t_.size() || t_[probe].text == ";" || name.empty()) {
      return false;  // forward declaration / unrecognised
    }
    // Base list.
    std::vector<std::string> bases;
    if (t_[probe].text == ":") {
      std::size_t q = probe + 1;
      std::string last;
      while (q < t_.size() && t_[q].text != "{") {
        const Token& tk = t_[q];
        if (tk.text == "<") {  // template args of a base
          int depth = 0;
          while (q < t_.size()) {
            if (t_[q].text == "<") depth++;
            if (t_[q].text == ">") depth--;
            q++;
            if (depth == 0) break;
          }
          continue;
        }
        if (tk.text == ",") {
          if (!last.empty()) bases.push_back(last);
          last.clear();
        } else if (tk.ident && tk.text != "public" && tk.text != "protected" &&
                   tk.text != "private" && tk.text != "virtual") {
          last = tk.text;  // last component of a qualified name wins
        }
        q++;
      }
      if (!last.empty()) bases.push_back(last);
      probe = q;
    }
    // probe now at `{`.
    pos_ = probe + 1;
    Class c;
    c.name = scope.empty() ? name : scope + "::" + name;
    c.file = file_;
    c.line = line;
    c.bases = std::move(bases);
    prog_.classes.push_back(std::move(c));
    const int idx = static_cast<int>(prog_.classes.size()) - 1;
    parse_scope(prog_.classes[idx].name, idx, is_struct);
    if (!at_end() && cur().text == ";") pos_++;
    return true;
  }

  struct DeclRun {
    std::vector<Token> toks;
    // Index (into toks) of the name token of the first ident-`(` group
    // whose name is not a type keyword; -1 when absent.
    int fn_name = -1;
    int paren_close = -1;  // index of the `)` closing the parameter list
    bool saw_operator = false;
  };

  /// Collects a declaration at class/namespace scope, classifying it as
  /// a function (with or without body) or a field/variable.
  void parse_declaration(const std::string& scope, int cls, bool access_public) {
    DeclRun run;
    int paren_depth = 0;
    bool body_found = false;
    while (!at_end()) {
      const Token& tk = cur();
      if (tk.text == ";" && paren_depth == 0) {
        pos_++;
        break;
      }
      if (tk.text == "}" && paren_depth == 0) break;  // malformed; bail
      if (tk.text == "{" && paren_depth == 0) {
        if (classify_brace(run)) {
          body_found = true;
          break;
        }
        // Initializer / init-list brace: fold it into the run.
        const std::size_t start = pos_;
        skip_balanced("{", "}");
        for (std::size_t k = start; k < pos_ && k < t_.size(); ++k) {
          run.toks.push_back(t_[k]);
        }
        continue;
      }
      if (tk.text == "(") paren_depth++;
      if (tk.text == ")") {
        paren_depth--;
        if (paren_depth == 0 && run.fn_name >= 0 && run.paren_close < 0) {
          run.paren_close = static_cast<int>(run.toks.size());
        }
      }
      if (tk.text == "operator") run.saw_operator = true;
      if (tk.text == "(" && paren_depth == 1 && run.fn_name < 0 &&
          !run.toks.empty()) {
        const Token& prev = run.toks.back();
        const bool eq_before =
            std::any_of(run.toks.begin(), run.toks.end(),
                        [](const Token& x) { return x.text == "="; });
        if (!eq_before && prev.ident && type_keywords().count(prev.text) == 0 &&
            prev.text.rfind("ADETS_", 0) != 0) {
          run.fn_name = static_cast<int>(run.toks.size()) - 1;
        } else if (!eq_before && run.saw_operator) {
          run.fn_name = static_cast<int>(run.toks.size()) - 1;
        }
      }
      run.toks.push_back(tk);
      pos_++;
    }
    if (run.toks.empty()) return;
    if (run.fn_name >= 0) {
      emit_function(run, scope, cls, access_public, body_found);
    } else if (cls >= 0) {
      emit_field(run, cls);
    }
    // Namespace-scope variables are not modelled.
  }

  /// At a top-level `{` inside a declaration run: true if it opens a
  /// function body (parse_declaration stops; emit_function consumes it).
  bool classify_brace(const DeclRun& run) {
    if (run.fn_name < 0) return false;  // brace-init member / aggregate
    if (run.toks.empty()) return false;
    const Token& last = run.toks.back();
    if (last.text == ")" || last.text == ">" || last.text == "}") return true;
    if (last.ident &&
        (last.text == "const" || last.text == "noexcept" || last.text == "override" ||
         last.text == "final" || last.text == "mutable" || last.text == "try")) {
      return true;
    }
    // `Ctor() : member_{init} {` -- an identifier directly before `{`
    // inside a constructor initialiser list is an init brace.
    if (run.paren_close >= 0) {
      for (std::size_t k = run.paren_close; k < run.toks.size(); ++k) {
        if (run.toks[k].text == ":") return false;  // init-list context
      }
    }
    // Annotation macro close also ends in ")"; anything else (e.g. an
    // identifier with no ctor context) is a brace initialiser.
    return false;
  }

  void emit_function(const DeclRun& run, const std::string& scope, int cls,
                     bool access_public, bool body_follows) {
    Function fn;
    fn.file = file_;
    fn.is_public = cls < 0 || access_public;
    const Token& name_tok = run.toks[run.fn_name];
    fn.name = name_tok.text;
    fn.line = name_tok.line;
    if (run.saw_operator) fn.name = "operator";
    // Destructor / qualified name.
    int before = run.fn_name - 1;
    if (before >= 0 && run.toks[before].text == "~") fn.name = "~" + fn.name;
    if (before >= 1 && run.toks[before].text == "::" && run.toks[before - 1].ident) {
      // Out-of-class definition `Class::name` (possibly `ns::Class::name`).
      fn.cls = run.toks[before - 1].text;
      fn.defined_out_of_class = true;
    } else if (cls >= 0) {
      fn.cls = prog_.classes[cls].name;
    }
    (void)scope;
    // Parameter list: detect lock-passing signatures and remember the
    // parameter names, so `lk.unlock()` in the body can suspend the
    // REQUIRES-implied held set.
    if (run.paren_close >= 0) {
      for (int k = run.fn_name + 1; k < run.paren_close; ++k) {
        const std::string& w = run.toks[k].text;
        if (w == "MutexLock" || w == "Lk") {
          fn.takes_lock_param = true;
          for (int j = k + 1; j < run.paren_close; ++j) {
            const std::string& p = run.toks[j].text;
            if (p == "&" || p == "*" || p == "const") continue;
            if (p == "," || p == ")") break;
            if (run.toks[j].ident) {
              fn.lock_params.push_back(p);
              break;
            }
          }
        }
      }
    }
    // Annotations after the parameter list.
    if (run.paren_close >= 0) {
      for (std::size_t k = run.paren_close; k < run.toks.size(); ++k) {
        const std::string& w = run.toks[k].text;
        auto args_of = [&](std::size_t at) {
          std::vector<std::string> args;
          std::string curarg;
          int depth = 0;
          for (std::size_t q = at; q < run.toks.size(); ++q) {
            const std::string& a = run.toks[q].text;
            if (a == "(") {
              depth++;
              if (depth == 1) continue;
            }
            if (a == ")") {
              depth--;
              if (depth == 0) break;
            }
            if (depth >= 1) {
              if (a == "," && depth == 1) {
                if (!curarg.empty()) args.push_back(curarg);
                curarg.clear();
              } else if (a != "this" && a != "->" && a != ".") {
                curarg += a;
              }
            }
          }
          if (!curarg.empty()) args.push_back(curarg);
          return args;
        };
        if (w == "ADETS_REQUIRES" || w == "ADETS_REQUIRES_SHARED") {
          for (auto& a : args_of(k + 1)) fn.requires_held.push_back(a);
        } else if (w == "ADETS_ACQUIRE" || w == "ADETS_ACQUIRE_SHARED") {
          for (auto& a : args_of(k + 1)) fn.acquires.push_back(a);
        } else if (w == "ADETS_RELEASE" || w == "ADETS_RELEASE_SHARED") {
          for (auto& a : args_of(k + 1)) fn.releases.push_back(a);
        } else if (w == "ADETS_NO_THREAD_SAFETY_ANALYSIS") {
          fn.no_analysis = true;
        } else if (w == "ADETS_MAY_BLOCK") {
          fn.may_block = true;
        } else if (w == "ADETS_NON_BLOCKING") {
          fn.non_blocking = true;
        } else if (w == "ADETS_CONFLICT") {
          for (auto& a : args_of(k + 1)) fn.conflict_dims.push_back(a);
        } else if (w == "ADETS_READS") {
          for (auto& a : args_of(k + 1)) fn.declared_reads.push_back(a);
        } else if (w == "ADETS_WRITES") {
          for (auto& a : args_of(k + 1)) fn.declared_writes.push_back(a);
        }
      }
    }
    std::vector<Token> body;
    if (body_follows) {
      fn.has_body = true;
      const std::size_t start = pos_;
      skip_balanced("{", "}");
      body.assign(t_.begin() + static_cast<std::ptrdiff_t>(start),
                  t_.begin() + static_cast<std::ptrdiff_t>(pos_));
      if (!at_end() && cur().text == ";") pos_++;
    }
    if (cls >= 0 && !fn.defined_out_of_class) {
      prog_.classes[cls].methods.push_back(prog_.functions.size());
    }
    prog_.functions.push_back(std::move(fn));
    prog_.bodies_.push_back(std::move(body));
  }

  void emit_field(const DeclRun& run, int cls) {
    Field f;
    // Locate an annotation macro, the `=`, or fall back to the last
    // identifier to find the member name.
    int name_at = -1;
    for (std::size_t k = 0; k < run.toks.size(); ++k) {
      const std::string& w = run.toks[k].text;
      if ((w == "ADETS_GUARDED_BY" || w == "ADETS_PT_GUARDED_BY" ||
           w == "ADETS_GUARDED_BY_STATIC") &&
          k + 2 < run.toks.size() && run.toks[k + 1].text == "(") {
        // argument: joined tokens to the matching `)`
        std::string arg;
        int depth = 0;
        for (std::size_t q = k + 1; q < run.toks.size(); ++q) {
          if (run.toks[q].text == "(") {
            depth++;
            if (depth == 1) continue;
          }
          if (run.toks[q].text == ")") {
            depth--;
            if (depth == 0) break;
          }
          arg += run.toks[q].text;
        }
        f.guarded_by = arg;
        if (name_at < 0) {
          for (int q = static_cast<int>(k) - 1; q >= 0; --q) {
            if (run.toks[q].ident) {
              name_at = q;
              break;
            }
          }
        }
      }
      if (w == "=" && name_at < 0) {
        for (int q = static_cast<int>(k) - 1; q >= 0; --q) {
          if (run.toks[q].ident) {
            name_at = q;
            break;
          }
        }
      }
    }
    if (name_at < 0) {
      // Last identifier not inside a brace initialiser.
      int depth = 0;
      for (std::size_t k = 0; k < run.toks.size(); ++k) {
        const std::string& w = run.toks[k].text;
        if (w == "{" || w == "(") depth++;
        if (w == "}" || w == ")") depth--;
        if (depth == 0 && run.toks[k].ident) name_at = static_cast<int>(k);
      }
    }
    if (name_at < 0) return;
    f.name = run.toks[name_at].text;
    f.line = run.toks[name_at].line;
    std::string type;
    for (int k = 0; k < name_at; ++k) {
      const std::string& w = run.toks[k].text;
      if (w == "static") f.is_static = true;
      if (w == "const" || w == "constexpr") f.is_const = true;
      if (w == "&") f.is_const = true;  // reference binding is immutable
      if (w == "mutable") f.is_const = false;
      if (!type.empty() && run.toks[k].ident && run.toks[k - 1].ident) type += " ";
      type += w;
    }
    f.type = type;
    f.is_mutex = type_is_mutex(type);
    f.is_condvar = type_is_condvar(type);
    f.is_atomic = type_is_atomic(type);
    if (f.is_static && f.is_const) return;  // constants are not state
    if (f.name == "const") return;          // parse noise
    prog_.classes[cls].fields.push_back(std::move(f));
  }

  Program& prog_;
  std::string file_;
  std::vector<Token> t_;
  std::size_t pos_ = 0;
};

void Program::parse_file(const std::string& path, const std::string& content) {
  const std::vector<detlint::Line> lines = detlint::preprocess(content);
  std::vector<std::string> code;
  code.reserve(lines.size());
  for (const auto& l : lines) code.push_back(l.code);
  parse_tokens(path, tokenize(code));
}

void Program::parse_tokens(const std::string& path, std::vector<Token> tokens) {
  Parser(*this, path, std::move(tokens)).run();
}

std::string Program::unqualified(const std::string& name) {
  const std::size_t at = name.rfind("::");
  return at == std::string::npos ? name : name.substr(at + 2);
}

int Program::find_class(const std::string& name) const {
  const auto q = by_qualified_.find(name);
  if (q != by_qualified_.end()) return q->second;
  const auto u = by_unqualified_.find(unqualified(name));
  if (u != by_unqualified_.end() && u->second.size() == 1) return u->second[0];
  return -1;
}

const Field* Program::find_member(int cls, const std::string& member,
                                  int* owner) const {
  std::set<int> seen;
  std::vector<int> work{cls};
  while (!work.empty()) {
    const int at = work.back();
    work.pop_back();
    if (at < 0 || at >= static_cast<int>(classes.size()) || !seen.insert(at).second) {
      continue;
    }
    for (const auto& f : classes[at].fields) {
      if (f.name == member) {
        if (owner != nullptr) *owner = at;
        return &f;
      }
    }
    for (const auto& base : classes[at].bases) work.push_back(find_class(base));
  }
  return nullptr;
}

bool Program::derives_from(int cls, const std::string& base) const {
  std::set<int> seen;
  std::vector<int> work{cls};
  while (!work.empty()) {
    const int at = work.back();
    work.pop_back();
    if (at < 0 || at >= static_cast<int>(classes.size()) || !seen.insert(at).second) {
      continue;
    }
    if (unqualified(classes[at].name) == base) return true;
    for (const auto& b : classes[at].bases) {
      if (b == base) return true;
      work.push_back(find_class(b));
    }
  }
  return false;
}

std::string Program::mutex_key(int cls, const std::string& expr) const {
  // Strip `this->` / leading `*`/`&` and reject compound expressions.
  std::string e = expr;
  if (e.rfind("this->", 0) == 0) e = e.substr(6);
  while (!e.empty() && (e.front() == '*' || e.front() == '&')) e.erase(e.begin());
  if (e.empty() || !std::all_of(e.begin(), e.end(), is_ident_char)) return "";
  int owner = -1;
  const Field* f = find_member(cls, e, &owner);
  if (f == nullptr || !f->is_mutex) return "";
  return classes[owner].name + "::" + e;
}

std::vector<std::size_t> Program::resolve_call(const Function& from,
                                               const CallSite& call) const {
  const std::string key =
      from.cls + '\n' + call.callee + '\n' + call.receiver + '\n' + call.qualifier;
  const auto hit = resolve_memo_.find(key);
  if (hit != resolve_memo_.end()) return hit->second;
  std::vector<std::size_t> resolved = resolve_call_uncached(from, call);
  resolve_memo_.emplace(key, resolved);
  return resolved;
}

std::vector<std::size_t> Program::resolve_call_uncached(
    const Function& from, const CallSite& call) const {
  std::vector<std::size_t> out;
  auto methods_of = [&](int cls, bool include_derived) {
    std::set<int> wanted;
    std::set<int> seen;
    std::vector<int> work{cls};
    while (!work.empty()) {  // the class and its bases
      const int at = work.back();
      work.pop_back();
      if (at < 0 || !seen.insert(at).second) continue;
      wanted.insert(at);
      for (const auto& b : classes[at].bases) work.push_back(find_class(b));
    }
    if (include_derived && cls >= 0) {
      const std::string base_name = unqualified(classes[cls].name);
      for (std::size_t k = 0; k < classes.size(); ++k) {
        if (derives_from(static_cast<int>(k), base_name)) {
          wanted.insert(static_cast<int>(k));
        }
      }
    }
    for (const int k : wanted) {
      if (k < 0 || k >= static_cast<int>(classes.size())) continue;
      for (const std::size_t m : classes[k].methods) {
        if (functions[m].name == call.callee) out.push_back(m);
      }
    }
  };
  if (!call.qualifier.empty()) {
    methods_of(find_class(call.qualifier), false);
    return out;
  }
  if (call.receiver.empty()) {
    if (!from.cls.empty()) methods_of(find_class(from.cls), false);
    if (!out.empty()) return out;
    // Unique free function.
    std::vector<std::size_t> frees;
    for (std::size_t k = 0; k < functions.size(); ++k) {
      if (functions[k].cls.empty() && functions[k].name == call.callee) {
        frees.push_back(k);
      }
    }
    if (frees.size() == 1) return frees;
    return {};
  }
  // Receiver-typed: the receiver must be a member whose type names a
  // known class; virtual dispatch pulls in derived overrides.
  const int from_cls = from.cls.empty() ? -1 : find_class(from.cls);
  const Field* f = find_member(from_cls, call.receiver);
  if (f == nullptr) return {};
  for (std::size_t k = 0; k < classes.size(); ++k) {
    const std::string uq = unqualified(classes[k].name);
    const std::regex word("\\b" + uq + "\\b");
    if (std::regex_search(f->type, word)) {
      methods_of(static_cast<int>(k), true);
      break;
    }
  }
  return out;
}

void Program::finalize() {
  by_qualified_.clear();
  by_unqualified_.clear();
  resolve_memo_.clear();
  for (std::size_t k = 0; k < classes.size(); ++k) {
    by_qualified_[classes[k].name] = static_cast<int>(k);
    by_unqualified_[unqualified(classes[k].name)].push_back(static_cast<int>(k));
  }
  // Attach out-of-class definitions: resolve the class-name hint, adopt
  // the declaration's annotations and access, register as a method.
  for (std::size_t k = 0; k < functions.size(); ++k) {
    Function& fn = functions[k];
    if (!fn.defined_out_of_class) continue;
    const int cls = find_class(fn.cls);
    if (cls < 0) {
      fn.cls.clear();
      continue;
    }
    fn.cls = classes[cls].name;
    bool merged = false;
    for (const std::size_t m : classes[cls].methods) {
      Function& decl = functions[m];
      if (decl.name != fn.name || decl.has_body) continue;
      for (const auto& r : decl.requires_held) fn.requires_held.push_back(r);
      for (const auto& a : decl.acquires) fn.acquires.push_back(a);
      for (const auto& r : decl.releases) fn.releases.push_back(r);
      fn.is_public = decl.is_public;
      fn.no_analysis = fn.no_analysis || decl.no_analysis;
      fn.takes_lock_param = fn.takes_lock_param || decl.takes_lock_param;
      fn.may_block = fn.may_block || decl.may_block;
      fn.non_blocking = fn.non_blocking || decl.non_blocking;
      for (const auto& d : decl.conflict_dims) fn.conflict_dims.push_back(d);
      for (const auto& d : decl.declared_reads) fn.declared_reads.push_back(d);
      for (const auto& d : decl.declared_writes) fn.declared_writes.push_back(d);
      merged = true;
    }
    (void)merged;
    classes[cls].methods.push_back(k);
  }
  analyze_bodies();
}

void Program::analyze_bodies() {
  for (std::size_t fi = 0; fi < functions.size(); ++fi) {
    Function& fn = functions[fi];
    if (fi >= bodies_.size() || bodies_[fi].empty()) continue;
    const std::vector<Token>& t = bodies_[fi];
    const int cls = fn.cls.empty() ? -1 : find_class(fn.cls);

    struct LockScope {
      std::string key;
      std::string var;
      int depth = 0;
      bool active = true;
    };
    std::vector<LockScope> scopes;
    std::set<std::string> manual;
    std::vector<std::string> base_held;
    // `lk.unlock()` on a MutexLock&/Lk& parameter suspends the
    // REQUIRES-implied set until a matching `lk.lock()`.
    bool base_suspended = false;
    for (const auto& r : fn.requires_held) {
      std::string key = mutex_key(cls, r);
      base_held.push_back(key.empty() ? r : key);
    }
    // Depths at which lambda bodies begin: code inside a lambda executes
    // later (another thread, a timer, a deferred callback), so it does
    // not inherit the enclosing function's held locks.
    std::vector<int> lambda_depths;
    auto held_now = [&]() {
      std::vector<std::string> h;
      const int lambda_floor = lambda_depths.empty() ? -1 : lambda_depths.back();
      if (lambda_floor < 0) {
        if (!base_suspended) h = base_held;
        for (const auto& m : manual) h.push_back(m);
      }
      for (const auto& s : scopes) {
        if (s.active && s.depth >= lambda_floor) h.push_back(s.key);
      }
      std::sort(h.begin(), h.end());
      h.erase(std::unique(h.begin(), h.end()), h.end());
      return h;
    };

    int depth = 0;
    std::string stmt;
    int stmt_line = 0;
    std::set<std::size_t> lambda_braces;  // token indexes of lambda `{`
    auto flush_stmt = [&]() {
      if (!stmt.empty()) fn.statements.push_back({stmt, stmt_line});
      stmt.clear();
      stmt_line = 0;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
      const Token& tk = t[i];
      if (tk.text == "{") {
        depth++;
        if (lambda_braces.count(i) > 0) lambda_depths.push_back(depth);
        flush_stmt();
        continue;
      }
      if (tk.text == "}") {
        for (auto& s : scopes) {
          if (s.depth >= depth) s.active = false;
        }
        depth--;
        if (!lambda_depths.empty() && depth < lambda_depths.back()) {
          lambda_depths.pop_back();
        }
        flush_stmt();
        continue;
      }
      if (tk.text == ";") {
        flush_stmt();
        continue;
      }
      if (stmt_line == 0) stmt_line = tk.line;
      if (!stmt.empty()) stmt += " ";
      stmt += tk.text;

      // Lambda introducer: mark the body-opening brace so code inside
      // it does not inherit the current held set.
      if (tk.text == "[") {
        std::size_t j = i;
        int bd = 0;
        while (j < t.size()) {
          if (t[j].text == "[") bd++;
          if (t[j].text == "]") bd--;
          j++;
          if (bd == 0) break;
        }
        if (j < t.size() && t[j].text == "(") {
          int pd = 0;
          while (j < t.size()) {
            if (t[j].text == "(") pd++;
            if (t[j].text == ")") pd--;
            j++;
            if (pd == 0) break;
          }
          // Trailing specifiers / return type before the body.
          std::size_t guard = 0;
          while (j < t.size() && guard++ < 12 &&
                 (t[j].ident || t[j].text == "->" || t[j].text == "::" ||
                  t[j].text == "<" || t[j].text == ">" || t[j].text == "*" ||
                  t[j].text == "&")) {
            j++;
          }
        }
        if (j < t.size() && t[j].text == "{") lambda_braces.insert(j);
        continue;
      }

      if (!tk.ident) continue;

      // Scoped lock declaration: LockType [<...>] var ( first-arg ... )
      if (lock_types().count(tk.text) > 0) {
        std::size_t j = i + 1;
        if (j < t.size() && t[j].text == "<") {
          int ad = 0;
          while (j < t.size()) {
            if (t[j].text == "<") ad++;
            if (t[j].text == ">") ad--;
            j++;
            if (ad == 0) break;
          }
        }
        if (j + 1 < t.size() && t[j].ident && t[j + 1].text == "(") {
          std::string arg;
          int pd = 0;
          for (std::size_t q = j + 1; q < t.size(); ++q) {
            if (t[q].text == "(") {
              pd++;
              if (pd == 1) continue;
            }
            if (t[q].text == ")") {
              pd--;
              if (pd == 0) break;
            }
            if (t[q].text == "," && pd == 1) break;
            if (t[q].text != "this" && t[q].text != "->") arg += t[q].text;
          }
          const std::string key = mutex_key(cls, arg);
          if (!key.empty()) {
            fn.acquisitions.push_back({key, t[j].line, held_now()});
            scopes.push_back({key, t[j].text, depth, true});
          }
        }
        continue;
      }

      // Member access: recv . name ( ... )  /  recv -> name ( ... )
      const bool memberish =
          i + 3 < t.size() && (t[i + 1].text == "." || t[i + 1].text == "->") &&
          t[i + 2].ident && t[i + 3].text == "(";
      if (memberish) {
        const std::string& recv = tk.text;
        const std::string& mname = t[i + 2].text;
        const int mline = t[i + 2].line;
        stmt += " " + t[i + 1].text + " " + mname;  // tokens consumed below
        if (mname == "lock" || mname == "unlock") {
          // Lock-passing parameter: toggles the REQUIRES-implied set.
          if (std::find(fn.lock_params.begin(), fn.lock_params.end(), recv) !=
              fn.lock_params.end()) {
            base_suspended = (mname == "unlock");
            i += 2;
            continue;
          }
          // Innermost lock variable with this name?
          LockScope* lv = nullptr;
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->var == recv) {
              lv = &*it;
              break;
            }
          }
          if (lv != nullptr) {
            if (mname == "lock") {
              fn.acquisitions.push_back({lv->key, mline, held_now()});
              lv->active = true;
            } else {
              lv->active = false;
            }
            i += 2;
            continue;
          }
          const std::string key = mutex_key(cls, recv);
          if (!key.empty()) {
            if (mname == "lock") {
              fn.acquisitions.push_back({key, mline, held_now()});
              manual.insert(key);
            } else {
              manual.erase(key);
            }
            i += 2;
            continue;
          }
        }
        if (mname.rfind("wait", 0) == 0) {
          const Field* f = find_member(cls, recv);
          if (f != nullptr && f->is_condvar) {
            fn.cv_waits.push_back({recv, mline, held_now(), !lambda_depths.empty()});
          }
        }
        if (const Field* rf = find_member(cls, recv);
            rf != nullptr && !rf->is_mutex && !rf->is_condvar) {
          fn.accesses.push_back({recv, tk.line, mutating_methods().count(mname) > 0});
        }
        fn.calls.push_back(
            {mname, recv, "", mline, held_now(), !lambda_depths.empty()});
        i += 2;  // resume after the method name; args scanned normally
        continue;
      }

      // Qualified call: Qual :: name ( ... )
      const bool qualified = i + 3 < t.size() && t[i + 1].text == "::" &&
                             t[i + 2].ident && t[i + 3].text == "(";
      if (qualified) {
        stmt += " :: " + t[i + 2].text;  // tokens consumed by the skip below
        fn.calls.push_back({t[i + 2].text, "", tk.text, t[i + 2].line, held_now(),
                            !lambda_depths.empty()});
        i += 2;
        continue;
      }

      // Direct member-field access (read or write classification).
      if (cls >= 0) {
        const bool after_access =
            i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                      t[i - 1].text == "::");
        const bool via_this = i >= 2 && t[i - 1].text == "->" &&
                              t[i - 2].text == "this";
        if (!after_access || via_this) {
          const Field* f = find_member(cls, tk.text);
          if (f != nullptr && !f->is_mutex && !f->is_condvar) {
            // Prefix ++/-- before the field token.
            bool write = i >= 2 && ((t[i - 1].text == "+" && t[i - 2].text == "+") ||
                                    (t[i - 1].text == "-" && t[i - 2].text == "-"));
            std::size_t j = i + 1;
            while (j < t.size() && t[j].text == "[") {  // skip subscripts
              int bd = 0;
              while (j < t.size()) {
                if (t[j].text == "[") bd++;
                if (t[j].text == "]") bd--;
                j++;
                if (bd == 0) break;
              }
            }
            if (!write && j < t.size()) {
              static const std::string ops = "+-*/%&|^";
              const std::string& nx = t[j].text;
              const std::string nx2 = j + 1 < t.size() ? t[j + 1].text : "";
              if (nx == "=" && nx2 != "=") {
                write = true;  // plain assignment
              } else if (nx.size() == 1 && ops.find(nx[0]) != std::string::npos &&
                         nx2 == "=") {
                write = true;  // compound assignment
              } else if ((nx == "+" && nx2 == "+") || (nx == "-" && nx2 == "-")) {
                write = true;  // postfix ++/--
              } else if ((nx == "." || nx == "->") && j + 2 < t.size() &&
                         t[j + 1].ident && t[j + 2].text == "(" &&
                         mutating_methods().count(nx2) > 0) {
                write = true;  // items_[k].push_back(...) after a subscript
              }
            }
            fn.accesses.push_back({tk.text, tk.line, write});
          }
        }
      }

      // Plain call: name ( ... )
      if (i + 1 < t.size() && t[i + 1].text == "(" &&
          non_call_keywords().count(tk.text) == 0 &&
          tk.text.rfind("ADETS_", 0) != 0) {
        const bool after_access = i > 0 && (t[i - 1].text == "." ||
                                            t[i - 1].text == "->" ||
                                            t[i - 1].text == "::");
        const bool after_type = i > 0 && t[i - 1].ident &&
                                lock_types().count(t[i - 1].text) > 0;
        if (!after_access && !after_type) {
          fn.calls.push_back(
              {tk.text, "", "", tk.line, held_now(), !lambda_depths.empty()});
        }
      }
    }
    flush_stmt();
  }
  bodies_.clear();
  bodies_.shrink_to_fit();
}

}  // namespace adets::sa
