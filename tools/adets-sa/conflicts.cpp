// Pass 5: conflict-class coverage.
//
// The early-scheduling strategy (ROADMAP: PSMR per Alchieri et al.)
// runs requests in parallel when their declared conflict classes are
// disjoint.  That is only sound if the declaration *covers* the state
// the handler actually touches, transitively through its helpers --
// otherwise two "non-conflicting" requests race on shared state and
// replicas silently diverge.  Handlers declare:
//
//   ADETS_CONFLICT(dim...)  -- the conflict dimension(s): a parameter
//       the runtime keys on ("key", "account"), or the distinguished
//       terms "all" (conflicts with everything; always sound) and
//       "free" (conflicts with nothing; must touch no replica state).
//   ADETS_READS(field...) / ADETS_WRITES(field...) -- the member
//       fields the handler (and everything it calls in its own class)
//       may read resp. write.  Over-declaration is allowed -- the
//       check is accessed-subset-of-declared -- because a lexical
//       model can miss writes through iterators; under-declaration is
//       the bug this pass exists to catch.
//
// Checks: (1) every field access in the handler's same-class call tree
// is declared (reads may be covered by ADETS_WRITES; writes need
// ADETS_WRITES); (2) "free" handlers access no mutable state; (3) the
// dispatch entry point of a class with declared handlers touches no
// state outside those handlers; (4) handlers in *different* conflict
// classes must not write-share a field (conflict-overlap) -- the
// declared classes would let them run in parallel.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sa.hpp"

namespace adets::sa {
namespace {

struct Access {
  std::string field;
  std::string file;
  int line = 0;
  bool is_write = false;
  std::string chain;  // "dispatch -> touch" (empty when direct)
};

std::string qualified_name(const Function& fn) {
  return fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
}

/// Collects field accesses of `root` and every same-class function it
/// (transitively) calls, cut at declared handlers when `cut_handlers`.
void collect_accesses(const Program& prog, std::size_t root, bool cut_handlers,
                      std::vector<Access>& out) {
  std::set<std::size_t> seen{root};
  // (function, chain-so-far)
  std::vector<std::pair<std::size_t, std::string>> work{
      {root, prog.functions[root].name}};
  while (!work.empty()) {
    const auto [at, chain] = work.back();
    work.pop_back();
    const Function& fn = prog.functions[at];
    for (const FieldAccess& a : fn.accesses) {
      out.push_back({a.field, fn.file, a.line, a.is_write,
                     at == root ? "" : chain});
    }
    for (const CallSite& c : fn.calls) {
      for (const std::size_t callee : prog.resolve_call(fn, c)) {
        const Function& cf = prog.functions[callee];
        if (cf.cls != prog.functions[root].cls) continue;  // own state only
        if (cut_handlers && !cf.conflict_dims.empty()) continue;
        if (!seen.insert(callee).second) continue;
        work.push_back({callee, chain + " -> " + cf.name});
      }
    }
  }
}

bool declares(const std::vector<std::string>& declared, const std::string& f) {
  return std::find(declared.begin(), declared.end(), f) != declared.end();
}

}  // namespace

std::vector<Finding> conflicts_pass(const Program& prog) {
  std::vector<Finding> out;

  // Handlers grouped by class (for the overlap check and dispatch audit).
  std::map<std::string, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < prog.functions.size(); ++i) {
    const Function& fn = prog.functions[i];
    if (fn.conflict_dims.empty() || fn.cls.empty()) continue;
    if (!fn.statements.empty() || !fn.has_body) {
      // Bodied definition (or pure declaration merged with one).
      by_class[fn.cls].push_back(i);
    }
  }

  for (const auto& [cls_name, handlers] : by_class) {
    const int cls = prog.find_class(cls_name);
    for (const std::size_t h : handlers) {
      const Function& fn = prog.functions[h];
      if (fn.no_analysis) continue;
      const bool is_free = declares(fn.conflict_dims, "free");
      std::vector<Access> accesses;
      collect_accesses(prog, h, /*cut_handlers=*/false, accesses);
      for (const Access& a : accesses) {
        const Field* f = prog.find_member(cls, a.field);
        if (f == nullptr || f->is_const) continue;  // config, not state
        const std::string where =
            a.chain.empty() ? "" : " (via " + a.chain + ")";
        if (is_free) {
          out.push_back({a.file, a.line, "conflict-uncovered",
                         qualified_name(fn) +
                             " is declared ADETS_CONFLICT(free) but " +
                             (a.is_write ? "writes" : "reads") + " '" +
                             a.field + "'" + where,
                         fn.cls});
          continue;
        }
        if (a.is_write && !declares(fn.declared_writes, a.field)) {
          out.push_back({a.file, a.line, "conflict-uncovered",
                         qualified_name(fn) + " writes '" + a.field +
                             "' outside its declared ADETS_WRITES set" + where,
                         fn.cls});
        } else if (!a.is_write && !declares(fn.declared_reads, a.field) &&
                   !declares(fn.declared_writes, a.field)) {
          out.push_back({a.file, a.line, "conflict-uncovered",
                         qualified_name(fn) + " reads '" + a.field +
                             "' outside its declared ADETS_READS/WRITES set" +
                             where,
                         fn.cls});
        }
      }
    }

    // Dispatch entry point: state accesses must live inside handlers.
    for (const std::size_t m :
         cls >= 0 ? prog.classes[cls].methods : std::vector<std::size_t>{}) {
      const Function& fn = prog.functions[m];
      if (fn.name != "dispatch" || fn.statements.empty() || fn.no_analysis) {
        continue;
      }
      if (!fn.conflict_dims.empty()) continue;  // itself a declared handler
      std::vector<Access> accesses;
      collect_accesses(prog, m, /*cut_handlers=*/true, accesses);
      for (const Access& a : accesses) {
        const Field* f = prog.find_member(cls, a.field);
        if (f == nullptr || f->is_const) continue;
        const std::string where =
            a.chain.empty() ? "" : " (via " + a.chain + ")";
        out.push_back({a.file, a.line, "conflict-uncovered",
                       qualified_name(fn) + " touches '" + a.field +
                           "' outside any declared conflict handler" + where,
                       fn.cls});
      }
    }

    // Overlap: handlers whose declared classes are disjoint (differing
    // dims, neither "all") must not write-share state.
    for (std::size_t x = 0; x < handlers.size(); ++x) {
      for (std::size_t y = x + 1; y < handlers.size(); ++y) {
        const Function& a = prog.functions[handlers[x]];
        const Function& b = prog.functions[handlers[y]];
        auto dims = [](const Function& f) {
          return std::set<std::string>(f.conflict_dims.begin(),
                                       f.conflict_dims.end());
        };
        const auto da = dims(a);
        const auto db = dims(b);
        if (da == db || da.count("all") > 0 || db.count("all") > 0) continue;
        auto touches = [](const Function& f, const std::string& field,
                          bool write_only) {
          return std::find(f.declared_writes.begin(), f.declared_writes.end(),
                           field) != f.declared_writes.end() ||
                 (!write_only &&
                  std::find(f.declared_reads.begin(), f.declared_reads.end(),
                            field) != f.declared_reads.end());
        };
        for (const std::string& w : a.declared_writes) {
          if (touches(b, w, false)) {
            out.push_back(
                {a.file, a.line, "conflict-overlap",
                 qualified_name(a) + " (" + a.conflict_dims[0] + ") and " +
                     b.name + " (" + b.conflict_dims[0] +
                     ") are in different conflict classes but share written "
                     "field '" +
                     w + "'",
                 a.cls});
            break;
          }
        }
        for (const std::string& w : b.declared_writes) {
          if (!touches(a, w, true) && touches(a, w, false)) {
            out.push_back(
                {b.file, b.line, "conflict-overlap",
                 qualified_name(b) + " (" + b.conflict_dims[0] + ") writes '" +
                     w + "' which " + a.name + " (" + a.conflict_dims[0] +
                     ") reads, but they are in different conflict classes",
                 b.cls});
            break;
          }
        }
      }
    }
  }

  return out;
}

std::string conflict_manifest(const Program& prog) {
  std::ostringstream out;
  std::map<std::string, std::vector<const Function*>> by_class;
  for (const Function& fn : prog.functions) {
    if (fn.conflict_dims.empty() || fn.cls.empty()) continue;
    if (!fn.has_body && fn.statements.empty()) {
      by_class[fn.cls].push_back(&fn);  // in-class declaration
    } else if (!fn.defined_out_of_class) {
      by_class[fn.cls].push_back(&fn);  // inline definition
    }
  }
  auto list = [&](const std::vector<std::string>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      s += (i > 0 ? ", " : "") + ("\"" + v[i] + "\"");
    }
    return s + "]";
  };
  out << "{\n  \"classes\": [";
  bool first_cls = true;
  for (const auto& [cls, fns] : by_class) {
    out << (first_cls ? "\n" : ",\n") << "    {\"class\": \"" << cls
        << "\", \"handlers\": [";
    bool first_fn = true;
    for (const Function* fn : fns) {
      out << (first_fn ? "\n" : ",\n") << "      {\"method\": \"" << fn->name
          << "\", \"conflict\": " << list(fn->conflict_dims)
          << ", \"reads\": " << list(fn->declared_reads)
          << ", \"writes\": " << list(fn->declared_writes) << "}";
      first_fn = false;
    }
    out << "\n    ]}";
    first_cls = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace adets::sa
