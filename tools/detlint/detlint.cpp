#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace adets::detlint {
namespace {

const char* kWallClock = "wall-clock";
const char* kThreadId = "thread-id";
const char* kRandomness = "randomness";
const char* kUnorderedIter = "unordered-iter";
const char* kRawMutex = "raw-mutex";
const char* kPtrKey = "ptr-key";
const char* kRealTimeWait = "real-time-wait";
const char* kSleepFor = "sleep-for";
const char* kBadAllow = "bad-allow";

/// True if `path` ends with `suffix` (normalised to forward slashes).
bool path_ends_with(const std::string& path, const std::string& suffix) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.size() >= suffix.size() &&
         p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Files allowed to use a construct the rule bans elsewhere.
bool exempt(const std::string& path, const std::string& rule) {
  if (rule == kWallClock || rule == kSleepFor) {
    // The single sanctioned wall-clock / real-sleep escape hatch.
    return path_ends_with(path, "common/clock.hpp") ||
           path_ends_with(path, "common/clock.cpp");
  }
  if (rule == kRandomness) {
    // Seeded deterministic Rng lives here.
    return path_ends_with(path, "common/rng.hpp");
  }
  if (rule == kRawMutex || rule == kRealTimeWait) {
    // The annotated wrapper layer and the lock-order validator ARE the
    // sanctioned replacement; they wrap the raw std types by design.
    return path_ends_with(path, "common/mutex.hpp") ||
           path_ends_with(path, "common/lock_order.cpp") ||
           path_ends_with(path, "common/lock_order.hpp");
  }
  return false;
}

/// True if `code` ends with a raw-string prefix whose `R` starts a new
/// token: `R`, `u8R`, `uR`, `LR` (the next char is the opening quote).
bool raw_string_prefix(const std::string& code) {
  std::size_t n = code.size();
  if (n == 0 || code[n - 1] != 'R') return false;
  std::size_t start = n - 1;  // first char of the prefix token
  if (n >= 3 && code[n - 3] == 'u' && code[n - 2] == '8') {
    start = n - 3;
  } else if (n >= 2 && (code[n - 2] == 'u' || code[n - 2] == 'L')) {
    start = n - 2;
  }
  if (start == 0) return true;
  const unsigned char before = static_cast<unsigned char>(code[start - 1]);
  return std::isalnum(before) == 0 && before != '_';
}

/// True if a `'` appearing after `code` is a digit separator inside a
/// numeric literal (`1'000'000`, `0xFF'FF`) rather than the start of a
/// char literal.  A separator sits between alphanumerics of a pp-number
/// token, i.e. a run of identifier chars / `.` / `'` that *starts with a
/// digit* -- which excludes prefixed char literals like `L'a'` or
/// `u8'x'`, whose preceding token starts with a letter.
bool digit_separator(const std::string& code, char next) {
  if (code.empty() || std::isalnum(static_cast<unsigned char>(next)) == 0) {
    return false;
  }
  std::size_t start = code.size();
  while (start > 0) {
    const unsigned char c = static_cast<unsigned char>(code[start - 1]);
    if (std::isalnum(c) != 0 || c == '_' || c == '.' || c == '\'') {
      start--;
    } else {
      break;
    }
  }
  if (start == code.size()) return false;  // no preceding token char
  return std::isdigit(static_cast<unsigned char>(code[start])) != 0;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

/// Names of unordered containers declared in this file.  Handles nested
/// template arguments by matching angle brackets manually.
std::set<std::string> unordered_names(const std::vector<Line>& lines) {
  std::set<std::string> names;
  std::string all;
  for (const auto& line : lines) {
    all += line.code;
    all += '\n';
  }
  static const std::regex decl(R"(unordered_(?:map|set|multimap|multiset)\s*<)");
  for (auto it = std::sregex_iterator(all.begin(), all.end(), decl);
       it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;
    while (pos < all.size() && depth > 0) {
      if (all[pos] == '<') depth++;
      if (all[pos] == '>') depth--;
      pos++;
    }
    // Expect: [&*]* identifier [attribute-macro] followed by ; = { or (
    while (pos < all.size() &&
           (std::isspace(static_cast<unsigned char>(all[pos])) != 0 ||
            all[pos] == '&' || all[pos] == '*')) {
      pos++;
    }
    std::string name;
    while (pos < all.size() &&
           (std::isalnum(static_cast<unsigned char>(all[pos])) != 0 ||
            all[pos] == '_')) {
      name += all[pos++];
    }
    if (!name.empty() && name != "const") names.insert(name);
  }
  return names;
}

struct Allows {
  // line (1-based) -> rules explicitly allowed there
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> bad;  // allow comments missing a reason
};

Allows collect_allows(const std::string& path, const std::vector<Line>& lines) {
  Allows allows;
  static const std::regex allow_re(R"(detlint:allow\(([A-Za-z0-9_-]+)\)\s*(.*))");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    std::smatch m;
    std::string text = lines[i].comment;
    while (std::regex_search(text, m, allow_re)) {
      const std::string rule = m[1];
      const std::string reason = m[2];
      if (blank(reason)) {
        allows.bad.push_back(
            {path, lineno, kBadAllow,
             "detlint:allow(" + rule + ") has no justification; write "
             "`// detlint:allow(" + rule + ") <why this is deterministic>`"});
      } else {
        allows.by_line[lineno].insert(rule);
        // A comment-only line covers the next code line.
        if (blank(lines[i].code) && i + 1 < lines.size()) {
          allows.by_line[lineno + 1].insert(rule);
        }
      }
      text = m.suffix();
    }
  }
  return allows;
}

struct Pattern {
  const char* rule;
  std::regex re;
  const char* message;
};

const std::vector<Pattern>& patterns() {
  static const std::vector<Pattern>* p = new std::vector<Pattern>{
      {kWallClock,
       std::regex(R"((steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b)"),
       "direct wall-clock read; route real-time needs through common::Clock "
       "(common/clock.hpp), which is the single sanctioned escape hatch"},
      {kThreadId, std::regex(R"(this_thread\s*::\s*get_id\b)"),
       "OS thread ids differ across replicas; use the scheduler-assigned "
       "common::ThreadId instead"},
      {kRandomness, std::regex(R"(\brandom_device\b|\bs?rand\s*\()"),
       "unseeded randomness diverges across replicas; use common::Rng with a "
       "replica-independent seed (common/rng.hpp)"},
      {kRawMutex,
       std::regex(R"(std\s*::\s*(recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|shared_mutex|mutex|condition_variable_any|condition_variable)\b)"),
       "raw std synchronisation type in scheduler/replication state; use "
       "common::Mutex / common::CondVar (annotated for clang thread-safety "
       "and hooked into the lock-order validator)"},
      {kPtrKey, std::regex(R"(std\s*::\s*(?:multi)?(?:map|set)\s*<\s*[^,<>]*\*)"),
       "pointer-keyed ordered container: iteration follows allocation "
       "addresses, which differ across replicas; key by a stable id"},
      {kRealTimeWait, std::regex(R"(\.\s*wait_(for|until)\s*\()"),
       "timed wait: the wakeup time depends on this replica's clock; route "
       "the outcome through the totally-ordered stream (see the timeout "
       "broadcast mechanism) or justify with detlint:allow"},
      {kSleepFor, std::regex(R"(this_thread\s*::\s*sleep_(for|until)\s*\()"),
       "raw real-time sleep; use common::Clock::sleep_real / sleep_paper "
       "(common/clock.hpp) so every real-time suspension goes through the "
       "one scaled, auditable hatch"},
  };
  return *p;
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule>* r = new std::vector<Rule>{
      {kWallClock, "wall-clock reads outside common/clock.hpp"},
      {kThreadId, "std::this_thread::get_id in replicated code"},
      {kRandomness, "rand()/std::random_device (unseeded randomness)"},
      {kUnorderedIter, "iteration over std::unordered_map/unordered_set"},
      {kRawMutex, "raw std::mutex/std::condition_variable declarations"},
      {kPtrKey, "pointer-keyed std::map/std::set"},
      {kRealTimeWait, "timed condition-variable waits (wait_for/wait_until)"},
      {kSleepFor, "raw std::this_thread::sleep_for/sleep_until"},
      {kBadAllow, "detlint:allow without a justification"},
  };
  return *r;
}

std::vector<Line> preprocess(const std::string& content) {
  std::vector<Line> lines;
  Line cur;
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment, kRawString };
  State state = State::kCode;
  // Raw-string bookkeeping: the delimiter between `R"` and `(`, and the
  // closing sentinel `)delim"` we are scanning for.
  std::string raw_delim;
  bool raw_in_delim = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      // A backslash continuation extends string/char literals and line
      // comments across the physical newline, but the *line* still ends
      // here -- emitting it keeps every later finding's line number true.
      if (state == State::kLineComment &&
          (cur.comment.empty() || cur.comment.back() != '\\')) {
        state = State::kCode;
      }
      lines.push_back(std::move(cur));
      cur = Line{};
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && raw_string_prefix(cur.code)) {
          cur.code += '"';
          state = State::kRawString;
          raw_delim.clear();
          raw_in_delim = true;
        } else if (c == '"') {
          cur.code += '"';
          state = State::kString;
        } else if (c == '\'' && digit_separator(cur.code, next)) {
          cur.code += '\'';  // numeric literal separator, not a char literal
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kChar;
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          // Skip the escaped character -- unless it is the newline of a
          // line continuation, which the top of the loop must still see.
          if (next != '\n') ++i;
        } else if (c == '"') {
          cur.code += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (next != '\n') ++i;
        } else if (c == '\'') {
          cur.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (raw_in_delim) {
          if (c == '(') {
            raw_in_delim = false;
          } else {
            raw_delim += c;
          }
        } else if (c == ')' &&
                   content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
                   i + 1 + raw_delim.size() < content.size() &&
                   content[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;  // consume `delim"`
          cur.code += '"';
          state = State::kCode;
        }
        // Raw-string content (including embedded newlines, handled at
        // the top of the loop) is blanked like any other literal.
        break;
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

std::vector<Finding> scan_source(const std::string& path, const std::string& content) {
  const std::vector<Line> lines = preprocess(content);
  Allows allows = collect_allows(path, lines);
  std::vector<Finding> findings = std::move(allows.bad);

  const std::set<std::string> unordered = unordered_names(lines);
  static const std::regex range_for(R"(for\s*\([^;()]*:\s*(?:this\s*->\s*)?([A-Za-z_]\w*)\s*\))");
  static const std::regex begin_call(R"(\b([A-Za-z_]\w*)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\()");

  auto allowed = [&](int lineno, const std::string& rule) {
    const auto it = allows.by_line.find(lineno);
    return it != allows.by_line.end() && it->second.count(rule) > 0;
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    const std::string& code = lines[i].code;
    if (blank(code)) continue;

    for (const auto& pattern : patterns()) {
      if (exempt(path, pattern.rule)) continue;
      if (!std::regex_search(code, pattern.re)) continue;
      if (allowed(lineno, pattern.rule)) continue;
      findings.push_back({path, lineno, pattern.rule, pattern.message});
    }

    if (!unordered.empty() && !exempt(path, kUnorderedIter) &&
        !allowed(lineno, kUnorderedIter)) {
      std::set<std::string> hit;
      std::smatch m;
      std::string text = code;
      while (std::regex_search(text, m, range_for)) {
        if (unordered.count(m[1]) > 0) hit.insert(m[1]);
        text = m.suffix();
      }
      text = code;
      while (std::regex_search(text, m, begin_call)) {
        if (unordered.count(m[1]) > 0) hit.insert(m[1]);
        text = m.suffix();
      }
      for (const auto& name : hit) {
        findings.push_back(
            {path, lineno, kUnorderedIter,
             "iteration over unordered container `" + name +
                 "`: hash order is replica-local; use std::map/std::set or "
                 "copy into a sorted sequence first"});
      }
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

std::vector<Finding> scan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return scan_source(path, buffer.str());
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

int run_cli(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  if (!paths.empty() && paths.front() == "--list-rules") {
    for (const auto& rule : rules()) {
      std::printf("%-16s %s\n", rule.name.c_str(), rule.summary.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: detlint [--list-rules] <file-or-directory>...\n");
    return 2;
  }
  static const std::set<std::string> kExtensions = {".hpp", ".h",  ".hh", ".ipp",
                                                    ".cpp", ".cc", ".cxx"};
  std::vector<std::string> files;
  for (const auto& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() &&
            kExtensions.count(entry.path().extension().string()) > 0) {
          files.push_back(entry.path().string());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  std::size_t total = 0;
  for (const auto& file : files) {
    for (const auto& finding : scan_file(file)) {
      std::printf("%s\n", to_string(finding).c_str());
      total++;
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "detlint: %zu finding(s) in %zu file(s) scanned\n",
                 total, files.size());
    return 1;
  }
  std::fprintf(stderr, "detlint: clean (%zu file(s) scanned)\n", files.size());
  return 0;
}

}  // namespace adets::detlint
