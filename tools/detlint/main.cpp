#include <string>
#include <vector>

#include "detlint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths(argv + 1, argv + argc);
  return adets::detlint::run_cli(paths);
}
