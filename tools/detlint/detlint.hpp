// detlint: the ADETS determinism linter.
//
// Scans scheduler / replication translation units for constructs that
// violate the determinism contract stated in src/sched/api.hpp: a
// scheduler may consume only the totally-ordered event stream and
// per-thread program order, so anything that smuggles replica-local
// information into a decision path is a bug that the divergence auditor
// would otherwise only catch at runtime.
//
// The scanner is deliberately lexical (comment/string-stripped regex
// over each line, plus a declared-identifier pass for container
// tracking), not a full AST: the rules target constructs that are
// textually recognisable, false positives are suppressible with an
// explicit justification, and the tool must build in seconds with no
// dependency beyond the standard library.
//
// Suppression: `// detlint:allow(<rule>) <reason>` on the offending
// line, or alone on the line directly above it.  The reason is
// mandatory; an allow without one is itself reported (rule bad-allow).
#pragma once

#include <string>
#include <vector>

namespace adets::detlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Rule {
  std::string name;
  std::string summary;
};

/// One source line after preprocessing: code with comments removed and
/// string/char literal contents blanked (delimiters kept), plus the
/// comment text (where `detlint:allow` / `adets-sa:allow` markers live).
struct Line {
  std::string code;
  std::string comment;
};

/// Splits source into lines, stripping comments and literal contents
/// from the code part.  Handles line comments, block comments, ordinary
/// and raw (`R"delim(...)delim"`) string literals, char literals, and
/// backslash line continuations inside literals and line comments; line
/// numbering is preserved through all of them.  Shared by detlint and
/// the adets-sa whole-program auditor (tools/adets-sa), which parses
/// the resulting code stream into a declaration-level model.
std::vector<Line> preprocess(const std::string& content);

/// The rule set, in reporting order.
const std::vector<Rule>& rules();

/// Scans one in-memory source.  `path` is used for exemption matching
/// (e.g. common/clock.* may read the wall clock) and for Finding::file.
std::vector<Finding> scan_source(const std::string& path, const std::string& content);

/// Reads and scans one file; returns a single io-error finding if the
/// file cannot be read.
std::vector<Finding> scan_file(const std::string& path);

/// Formats a finding as "file:line: [rule] message".
std::string to_string(const Finding& finding);

/// CLI entry: scans every path (files, or directories recursed for
/// C++ sources), prints findings, returns 1 if any were found.
int run_cli(const std::vector<std::string>& paths);

}  // namespace adets::detlint
