// lincheck: offline linearizability checker for recorded histories.
//
//   lincheck run.history                    # spec from the file header
//   lincheck --spec kv run.history          # override / supply the spec
//   lincheck --spec bounded-buffer:4 *.history
//   lincheck --no-partition --max-states 100000 run.history
//
// History files are what the scenario runner dumps on a failed run (and
// what tests/data/ pins); the point of this tool is replaying such an
// artifact offline and getting the same verdict with a minimal
// counterexample report.
//
// Exit codes: 0 = every history linearizable, 1 = at least one
// non-linearizable (or inconclusive: budget exhausted), 2 = usage,
// unreadable file, or unknown spec.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lin/checker.hpp"
#include "lin/history.hpp"
#include "lin/spec.hpp"

namespace {

struct Cli {
  std::string spec_name;
  bool partition = true;
  bool minimize = true;
  std::uint64_t max_states = 4'000'000;
  std::vector<std::string> files;
};

void usage() {
  std::fprintf(stderr,
               "usage: lincheck [options] FILE...\n"
               "  --spec NAME       sequential spec: kv, unbounded-buffer,\n"
               "                    bounded-buffer[:CAPACITY]\n"
               "                    (default: the 'spec' header of each file)\n"
               "  --no-partition    disable P-compositionality partitioning\n"
               "  --no-minimize     report the raw failing prefix, unshrunk\n"
               "  --max-states N    search budget per history (default 4000000)\n");
}

bool parse_args(int argc, char** argv, Cli* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lincheck: --spec needs a value\n");
        return false;
      }
      cli->spec_name = argv[++i];
    } else if (arg == "--no-partition") {
      cli->partition = false;
    } else if (arg == "--no-minimize") {
      cli->minimize = false;
    } else if (arg == "--max-states") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lincheck: --max-states needs a value\n");
        return false;
      }
      try {
        cli->max_states = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "lincheck: bad --max-states value\n");
        return false;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lincheck: unknown option %s\n", arg.c_str());
      return false;
    } else {
      cli->files.push_back(arg);
    }
  }
  if (cli->files.empty()) {
    usage();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, &cli)) return 2;

  adets::lin::CheckOptions options;
  options.partition = cli.partition;
  options.minimize = cli.minimize;
  options.max_states = cli.max_states;

  int worst = 0;
  for (const std::string& file : cli.files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "lincheck: cannot open %s\n", file.c_str());
      return 2;
    }
    std::string error;
    const auto loaded = adets::lin::load_history(in, &error);
    if (!loaded) {
      std::fprintf(stderr, "lincheck: %s: %s\n", file.c_str(), error.c_str());
      return 2;
    }
    const std::string spec_name =
        !cli.spec_name.empty() ? cli.spec_name : loaded->spec_name;
    if (spec_name.empty()) {
      std::fprintf(stderr,
                   "lincheck: %s has no 'spec' header; pass --spec NAME\n",
                   file.c_str());
      return 2;
    }
    const auto spec = adets::lin::make_spec(spec_name);
    if (!spec) {
      std::fprintf(stderr, "lincheck: unknown spec '%s'\n", spec_name.c_str());
      return 2;
    }

    const adets::lin::CheckResult result =
        adets::lin::check_history(loaded->history, *spec, options);
    std::printf("%s: %s [spec %s, %llu ops, %llu partition(s), %llu states, "
                "%llu memo hits]\n",
                file.c_str(),
                result.linearizable
                    ? "linearizable"
                    : (result.exhausted_budget ? "INCONCLUSIVE" : "NON-LINEARIZABLE"),
                spec_name.c_str(),
                static_cast<unsigned long long>(result.ops),
                static_cast<unsigned long long>(result.partitions),
                static_cast<unsigned long long>(result.states_explored),
                static_cast<unsigned long long>(result.memo_hits));
    if (!result.linearizable) {
      std::printf("%s\n", result.explanation.c_str());
      worst = 1;
    }
  }
  return worst;
}
