// adetsmc: CLI front-end of the adets-mc model checker (src/mc/).
//
//   adetsmc                          # bounded sweep: all strategies/scenarios
//   adetsmc --strategy seq --scenario locks --exhaustive
//   adetsmc --strategy racy --trace-out racy.trace
//   adetsmc --replay racy.trace      # byte-for-byte re-execution
//   adetsmc --list
//
// Exit codes: 0 = no violations, 1 = violation found (or reproduced on
// replay), 2 = usage/configuration error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/harness.hpp"
#include "mc/scenario.hpp"
#include "mc/trace.hpp"

namespace {

struct Cli {
  std::vector<std::string> strategies;
  std::vector<std::string> scenario_names;
  int preemption_bound = 2;
  bool exhaustive = false;
  std::uint64_t max_schedules = 2000;
  double max_seconds = 60.0;
  std::size_t max_steps = 20000;
  int max_timeout_firings = 4;
  std::string trace_out;
  std::string replay_path;
  bool require_exhausted = false;
  bool list = false;
  bool verbose = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: adetsmc [options]\n"
               "  --strategy NAME[,NAME...]   seq sl sat mat lsa pds racy (default: all but racy)\n"
               "  --scenario NAME[,NAME...]   see --list (default: all applicable)\n"
               "  --preemption-bound N        bounded mode, N preemptions (default 2)\n"
               "  --exhaustive                full DPOR instead of bounded mode\n"
               "  --max-schedules N           per-(strategy,scenario) budget (default 2000)\n"
               "  --max-seconds S             per-(strategy,scenario) budget (default 60)\n"
               "  --max-steps N               per-execution step cap (default 20000)\n"
               "  --max-timeout-firings N     timed-wait expiries per execution (default 4)\n"
               "  --trace-out FILE            write the minimized witness trace\n"
               "  --require-exhausted         fail (exit 1) unless every pair's space\n"
               "                              was fully covered within its budgets\n"
               "  --replay FILE               re-run a recorded trace exactly\n"
               "  --list                      print strategies and scenarios\n"
               "  --verbose                   progress output\n");
}

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Cli* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "adetsmc: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--strategy") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->strategies = split(v);
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->scenario_names = split(v);
    } else if (arg == "--preemption-bound") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->preemption_bound = std::atoi(v);
    } else if (arg == "--exhaustive") {
      cli->exhaustive = true;
    } else if (arg == "--max-schedules") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->max_schedules = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-seconds") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->max_seconds = std::atof(v);
    } else if (arg == "--max-steps") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->max_steps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-timeout-firings") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->max_timeout_firings = std::atoi(v);
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->trace_out = v;
    } else if (arg == "--require-exhausted") {
      cli->require_exhausted = true;
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      cli->replay_path = v;
    } else if (arg == "--list") {
      cli->list = true;
    } else if (arg == "--verbose") {
      cli->verbose = true;
    } else {
      std::fprintf(stderr, "adetsmc: unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

adets::mc::RunOptions run_options(const Cli& cli) {
  adets::mc::RunOptions run;
  run.max_steps = cli.max_steps;
  run.runtime.max_timeout_firings = cli.max_timeout_firings;
  return run;
}

int do_list() {
  std::printf("strategies:");
  for (const std::string& s : adets::mc::known_strategies()) {
    std::printf(" %s", s.c_str());
  }
  std::printf("\nscenarios:\n");
  for (const auto& scenario : adets::mc::scenarios()) {
    std::printf("  %-12s %s%s\n", scenario.name.c_str(),
                scenario.description.c_str(),
                scenario.racy_only ? " (racy only)" : "");
  }
  return 0;
}

int do_replay(const Cli& cli) {
  const auto trace = adets::mc::load_trace(cli.replay_path);
  if (!trace) {
    std::fprintf(stderr, "adetsmc: cannot read trace %s\n",
                 cli.replay_path.c_str());
    return 2;
  }
  const auto* scenario = adets::mc::find_scenario(trace->scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "adetsmc: unknown scenario %s\n",
                 trace->scenario.c_str());
    return 2;
  }
  std::printf("replaying %s: strategy %s, scenario %s, %zu choices\n",
              cli.replay_path.c_str(), trace->strategy.c_str(),
              trace->scenario.c_str(), trace->choices.size());
  const adets::mc::ExecutionResult result = adets::mc::replay_trace(
      *scenario, trace->strategy, trace->choices, run_options(cli));
  std::printf("%s", result.report.c_str());
  if (result.violations.empty()) {
    std::printf("replay: no violations\n");
    return 0;
  }
  for (const auto& v : result.violations) {
    std::printf("replay violation [%s]\n%s\n", v.property.c_str(),
                v.detail.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, &cli)) {
    usage();
    return 2;
  }
  if (cli.list) return do_list();
  if (!cli.replay_path.empty()) return do_replay(cli);

  if (cli.strategies.empty()) {
    cli.strategies = {"seq", "sl", "sat", "mat", "lsa", "pds"};
  }
  bool any_violation = false;
  bool all_exhausted = true;
  for (const std::string& strategy : cli.strategies) {
    bool known = false;
    for (const std::string& k : adets::mc::known_strategies()) {
      known = known || k == strategy;
    }
    if (!known) {
      std::fprintf(stderr, "adetsmc: unknown strategy %s\n", strategy.c_str());
      return 2;
    }
    for (const auto& scenario : adets::mc::scenarios()) {
      if (!cli.scenario_names.empty()) {
        bool wanted = false;
        for (const std::string& n : cli.scenario_names) {
          wanted = wanted || n == scenario.name;
        }
        if (!wanted) continue;
      }
      if (!adets::mc::strategy_supports(strategy, scenario)) continue;

      adets::mc::ExploreOptions options;
      options.preemption_bound = cli.exhaustive ? -1 : cli.preemption_bound;
      options.max_schedules = cli.max_schedules;
      options.max_seconds = cli.max_seconds;
      options.run = run_options(cli);
      if (cli.verbose) {
        options.progress = [](const std::string& line) {
          std::printf("%s\n", line.c_str());
        };
        std::printf("exploring %s / %s ...\n", strategy.c_str(),
                    scenario.name.c_str());
      }
      const adets::mc::ExploreReport report =
          adets::mc::explore(scenario, strategy, options);
      std::printf("%s", report.report.c_str());
      if (!report.exhausted) {
        all_exhausted = false;
        if (cli.require_exhausted) {
          std::fprintf(stderr,
                       "adetsmc: %s/%s not exhausted within its budgets\n",
                       strategy.c_str(), scenario.name.c_str());
        }
      }
      if (report.found_violation) {
        any_violation = true;
        adets::mc::TraceFile trace;
        trace.strategy = strategy;
        trace.scenario = scenario.name;
        trace.choices = report.witness;
        if (!cli.trace_out.empty()) {
          if (adets::mc::save_trace(cli.trace_out, trace)) {
            std::printf("witness trace written to %s\n", cli.trace_out.c_str());
          } else {
            std::fprintf(stderr, "adetsmc: cannot write %s\n",
                         cli.trace_out.c_str());
          }
        } else {
          std::printf("--- witness trace (replay with --replay)\n%s",
                      adets::mc::render_trace(trace).c_str());
        }
      }
    }
  }
  if (any_violation) return 1;
  if (cli.require_exhausted && !all_exhausted) return 1;
  return 0;
}
