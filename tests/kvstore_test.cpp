// KvStore application tests across schedulers: semantics, blocking
// watch, CAS races, cross-replica consistency, and log replay.
#include <gtest/gtest.h>

#include <thread>

#include "lin/checker.hpp"
#include "lin/recorder.hpp"
#include "lin/spec.hpp"
#include "replication/consistency.hpp"
#include "replication/replay.hpp"
#include "runtime/cluster.hpp"
#include "workload/kvstore.hpp"

namespace adets::workload {
namespace {

using common::Bytes;
using common::GroupId;
using sched::SchedulerKind;

std::pair<bool, std::string> flag_value(const Bytes& reply) {
  common::Reader r(reply);
  const bool flag = r.boolean();
  return {flag, r.str()};
}

bool flag_of(const Bytes& reply) {
  common::Reader r(reply);
  return r.boolean();
}

class KvStoreTest : public ::testing::Test,
                    public ::testing::WithParamInterface<SchedulerKind> {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
    config_.pds_thread_pool = 4;
    store_ = cluster_.create_group(
        3, GetParam(), [] { return std::make_unique<KvStore>(8); }, config_);
    client_ = &cluster_.create_client();
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }

  double saved_scale_ = 1.0;
  sched::SchedulerConfig config_;
  runtime::Cluster cluster_;
  GroupId store_;
  runtime::Client* client_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(Kinds, KvStoreTest,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(KvStoreTest, PutGetRemoveRoundTrip) {
  EXPECT_FALSE(flag_of(client_->invoke(store_, "put", KvStore::pack_put("a", "1"))));
  EXPECT_TRUE(flag_of(client_->invoke(store_, "put", KvStore::pack_put("a", "2"))));
  const auto [found, value] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("a")));
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "2");
  EXPECT_TRUE(flag_of(client_->invoke(store_, "remove", KvStore::pack_key("a"))));
  EXPECT_FALSE(flag_of(client_->invoke(store_, "remove", KvStore::pack_key("a"))));
  const auto [found2, _] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("a")));
  EXPECT_FALSE(found2);
}

TEST_P(KvStoreTest, CasSucceedsOnlyOnExpectedValue) {
  client_->invoke(store_, "put", KvStore::pack_put("k", "v1"));
  EXPECT_TRUE(flag_of(client_->invoke(store_, "cas", KvStore::pack_cas("k", "v1", "v2"))));
  EXPECT_FALSE(flag_of(client_->invoke(store_, "cas", KvStore::pack_cas("k", "v1", "v3"))));
  const auto [_, value] = flag_value(client_->invoke(store_, "get", KvStore::pack_key("k")));
  EXPECT_EQ(value, "v2");
}

TEST_P(KvStoreTest, WatchWokenByPut) {
  runtime::Client& watcher = cluster_.create_client();
  std::thread watch_thread([&] {
    // 60000 paper-ms = 600 ms real at this scale: ample margin over the
    // 30 ms delay below, so the bounded wait cannot expire first.
    const auto [changed, value] = flag_value(
        watcher.invoke(store_, "watch", KvStore::pack_watch("w", 60000)));
    EXPECT_TRUE(changed);
    EXPECT_EQ(value, "arrived");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  client_->invoke(store_, "put", KvStore::pack_put("w", "arrived"));
  watch_thread.join();
  ASSERT_TRUE(cluster_.wait_drained(store_, 2));
  EXPECT_TRUE(repl::check_group(cluster_, store_).consistent());
}

TEST_P(KvStoreTest, WatchTimesOutWithoutChange) {
  const auto [changed, _] = flag_value(
      client_->invoke(store_, "watch", KvStore::pack_watch("silent", 50)));
  EXPECT_FALSE(changed);
  ASSERT_TRUE(cluster_.wait_drained(store_, 1));
  EXPECT_TRUE(repl::check_group(cluster_, store_).consistent());
}

TEST_P(KvStoreTest, ConcurrentCasIsLinearizedIdentically) {
  client_->invoke(store_, "put", KvStore::pack_put("ctr", "0"));
  constexpr int kClients = 4;
  std::vector<runtime::Client*> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(&cluster_.create_client());
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // All race the same CAS; exactly one may win.
      if (flag_of(clients[c]->invoke(
              store_, "cas", KvStore::pack_cas("ctr", "0", "w" + std::to_string(c))))) {
        successes.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 1);
  ASSERT_TRUE(cluster_.wait_drained(store_, 1 + kClients));
  EXPECT_TRUE(repl::check_group(cluster_, store_).consistent());
}

TEST_P(KvStoreTest, EdgeOpsOnAbsentAndOverwrittenKeys) {
  // Absent key: get reports not-found with an empty value.
  const auto [found0, value0] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("ghost")));
  EXPECT_FALSE(found0);
  EXPECT_TRUE(value0.empty());
  // Remove and cas on an absent key fail without creating it.
  EXPECT_FALSE(flag_of(client_->invoke(store_, "remove", KvStore::pack_key("ghost"))));
  EXPECT_FALSE(
      flag_of(client_->invoke(store_, "cas", KvStore::pack_cas("ghost", "", "v"))));
  const auto [found1, _] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("ghost")));
  EXPECT_FALSE(found1);

  // Overwrite: the second put reports the key existed; get sees the
  // latest value, and size does not double-count.
  EXPECT_FALSE(flag_of(client_->invoke(store_, "put", KvStore::pack_put("o", "v1"))));
  EXPECT_TRUE(flag_of(client_->invoke(store_, "put", KvStore::pack_put("o", "v2"))));
  const auto [found2, value2] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("o")));
  EXPECT_TRUE(found2);
  EXPECT_EQ(value2, "v2");
  const Bytes size_reply = client_->invoke(store_, "size", {});
  common::Reader size_reader(size_reply);
  EXPECT_EQ(size_reader.u64(), 1u);

  // Delete-then-get: removal reports the key was present, after which
  // the key reads as absent and a re-put reports existed=false again.
  EXPECT_TRUE(flag_of(client_->invoke(store_, "remove", KvStore::pack_key("o"))));
  const auto [found3, value3] =
      flag_value(client_->invoke(store_, "get", KvStore::pack_key("o")));
  EXPECT_FALSE(found3);
  EXPECT_TRUE(value3.empty());
  EXPECT_FALSE(flag_of(client_->invoke(store_, "put", KvStore::pack_put("o", "v3"))));
}

// Pins the implementation to lin::KvSpec: a recorded single-client run
// over the edge ops must be accepted by the checker, i.e. the sequential
// spec and the replicated object agree on every observable.
TEST_P(KvStoreTest, EdgeOpHistoryAcceptedByTheSequentialSpec) {
  lin::HistoryRecorder recorder(1);
  lin::RecordingClient recording(*client_, recorder.client(0));
  recording.invoke(store_, "get", KvStore::pack_key("e"));
  recording.invoke(store_, "put", KvStore::pack_put("e", "1"));
  recording.invoke(store_, "put", KvStore::pack_put("e", "2"));
  recording.invoke(store_, "cas", KvStore::pack_cas("e", "2", "3"));
  recording.invoke(store_, "cas", KvStore::pack_cas("e", "2", "4"));
  recording.invoke(store_, "remove", KvStore::pack_key("e"));
  recording.invoke(store_, "get", KvStore::pack_key("e"));
  recording.invoke(store_, "remove", KvStore::pack_key("e"));
  recording.invoke(store_, "size", {});
  const auto result = check_history(recorder.merge(), lin::KvSpec{});
  EXPECT_TRUE(result.linearizable) << result.explanation;
  EXPECT_EQ(result.ops, 9u);
}

TEST_P(KvStoreTest, SizeCountsKeys) {
  client_->invoke(store_, "put", KvStore::pack_put("x", "1"));
  client_->invoke(store_, "put", KvStore::pack_put("y", "2"));
  const Bytes reply = client_->invoke(store_, "size", {});
  common::Reader r(reply);
  EXPECT_EQ(r.u64(), 2u);
}

TEST_P(KvStoreTest, LogReplayRebuildsStore) {
  auto log = std::make_shared<runtime::EventLog>();
  cluster_.replica(store_, 1).set_event_log(log);
  for (int i = 0; i < 10; ++i) {
    client_->invoke(store_, "put",
                    KvStore::pack_put("k" + std::to_string(i % 3), std::to_string(i)));
  }
  ASSERT_TRUE(cluster_.wait_drained(store_, 10));
  const auto live = cluster_.replica(store_, 1).state_hash();
  const auto replayed = repl::replay_log(*log, GetParam(), config_, [] {
    return std::make_unique<KvStore>(8);
  });
  EXPECT_TRUE(replayed.complete);
  EXPECT_EQ(replayed.state_hash, live);
}

}  // namespace
}  // namespace adets::workload
