// API-contract tests: misuse of the synchronisation API must fail loudly
// and identically across schedulers.
#include <gtest/gtest.h>

#include <atomic>

#include "sched_harness.hpp"

namespace adets::testing {
namespace {

using sched::SchedulerKind;

class ContractTest : public ::testing::Test,
                     public ::testing::WithParamInterface<SchedulerKind> {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.05);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

INSTANTIATE_TEST_SUITE_P(Kinds, ContractTest,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(ContractTest, UnlockWithoutLockThrows) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 2;
  SchedulerCluster cluster(GetParam(), 1, config);
  std::atomic<bool> threw{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    try {
      ctx.unlock(9);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(threw.load());
}

TEST_P(ContractTest, WaitWithoutMutexThrows) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 2;
  SchedulerCluster cluster(GetParam(), 1, config);
  std::atomic<bool> threw{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    try {
      ctx.wait(9, 9);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(threw.load());
}

TEST_P(ContractTest, NotifyWithoutMutexThrows) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 2;
  SchedulerCluster cluster(GetParam(), 1, config);
  std::atomic<bool> threw{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    try {
      ctx.notify_one(9, 9);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(threw.load());
}

TEST_P(ContractTest, UnlockingAnotherThreadsMutexThrows) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  SchedulerCluster cluster(GetParam(), 1, config);
  std::atomic<bool> threw{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    ctx.lock(3);
    ctx.compute(std::chrono::milliseconds(5));
    ctx.unlock(3);
  });
  cluster.set_body(1, [&](BodyCtx& ctx) {
    try {
      // Whether request 0 currently holds mutex 3 or has already
      // released it, this logical thread never acquired it.
      ctx.unlock(3);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  cluster.submit(0);
  cluster.submit(1);
  ASSERT_TRUE(cluster.wait_completed(2));
  EXPECT_TRUE(threw.load());
}

TEST_F(ContractTest, SeqWaitIsRejected) {
  SchedulerCluster cluster(SchedulerKind::kSeq, 1);
  std::atomic<bool> threw{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    ctx.lock(1);
    try {
      ctx.wait(1, 1);
    } catch (const std::logic_error&) {
      threw.store(true);
    }
    ctx.unlock(1);
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(threw.load());
}

TEST_F(ContractTest, SeqNotifyIsHarmlessNoOp) {
  SchedulerCluster cluster(SchedulerKind::kSeq, 1);
  std::atomic<bool> ok{false};
  cluster.set_body(0, [&](BodyCtx& ctx) {
    ctx.lock(1);
    ctx.notify_one(1, 1);
    ctx.notify_all(1, 1);
    ctx.unlock(1);
    ok.store(true);
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(ok.load());
}

TEST_F(ContractTest, SyncCallFromForeignThreadThrows) {
  SchedulerCluster cluster(SchedulerKind::kSat, 1);
  EXPECT_THROW(cluster.replica(0).lock(common::MutexId(1)), std::logic_error);
}

}  // namespace
}  // namespace adets::testing
