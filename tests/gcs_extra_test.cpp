// Additional group-communication tests: multi-group isolation, large
// payloads, non-sequencer member crash, progress introspection.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/clock.hpp"
#include "gcs/group_service.hpp"

namespace adets::gcs {
namespace {

using common::Bytes;
using common::GroupId;
using common::NodeId;

class GcsExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
    net_ = std::make_unique<transport::SimNetwork>();
    for (int i = 0; i < 3; ++i) nodes_.push_back(net_->create_node());
    for (int i = 0; i < 3; ++i) {
      services_.push_back(std::make_unique<GroupService>(*net_, nodes_[i]));
    }
  }
  void TearDown() override {
    for (auto& s : services_) s->stop();
    net_->stop();
    common::Clock::set_scale(saved_scale_);
  }

  struct Sink {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Bytes> messages;
    std::vector<std::uint32_t> views;
    GroupCallbacks callbacks() {
      GroupCallbacks cb;
      cb.deliver = [this](GroupId, const Sequenced& m) {
        const std::lock_guard<std::mutex> guard(mutex);
        messages.push_back(m.submission.payload.to_bytes());
        cv.notify_all();
      };
      cb.on_view = [this](GroupId, const View& v) {
        const std::lock_guard<std::mutex> guard(mutex);
        views.push_back(v.id.value());
        cv.notify_all();
      };
      return cb;
    }
    bool wait_count(std::size_t n, std::chrono::seconds timeout = std::chrono::seconds(10)) {
      std::unique_lock<std::mutex> lock(mutex);
      return cv.wait_for(lock, timeout, [&] { return messages.size() >= n; });
    }
  };

  double saved_scale_ = 1.0;
  std::unique_ptr<transport::SimNetwork> net_;
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<GroupService>> services_;
};

TEST_F(GcsExtraTest, TailGapRepairedByHeartbeat) {
  // A dropped FINAL SeqMsg leaves the receiver's holdback empty, so the
  // gap NACK never fires, and once the submitter has seen its own
  // message sequenced nobody retransmits it either.  The only repair
  // path is the highest known sequence piggybacked on heartbeats.
  // Suspicion is effectively disabled so the outage cannot be healed by
  // a view change instead.
  GroupServiceConfig patient;
  patient.suspect_timeout = std::chrono::seconds(30);
  const NodeId a = net_->create_node();
  const NodeId b = net_->create_node();
  GroupService sa(*net_, a, patient);
  GroupService sb(*net_, b, patient);
  Sink s0;
  Sink s1;
  const GroupId g(7);
  const std::vector<NodeId> members{a, b};
  sa.join(g, members, s0.callbacks());
  sb.join(g, members, s1.callbacks());
  sa.submit(g, Bytes{1});
  ASSERT_TRUE(s0.wait_count(1));
  ASSERT_TRUE(s1.wait_count(1));

  // Cut a -> b only: the sequencer (a, lowest id) sequences and delivers
  // locally; b misses the tail message and will never see a later one.
  transport::LinkConfig dead;
  dead.drop_probability = 1.0;
  net_->set_link(a, b, dead);
  sa.submit(g, Bytes{2});
  ASSERT_TRUE(s0.wait_count(2));
  net_->set_link(a, b, transport::LinkConfig{});

  ASSERT_TRUE(s1.wait_count(2, std::chrono::seconds(10)));
  EXPECT_EQ(s0.messages, s1.messages);
}

TEST_F(GcsExtraTest, MultipleGroupsAreIsolated) {
  Sink a0;
  Sink a1;
  Sink b0;
  Sink b1;
  const GroupId ga(1);
  const GroupId gb(2);
  services_[0]->join(ga, {nodes_[0], nodes_[1]}, a0.callbacks());
  services_[1]->join(ga, {nodes_[0], nodes_[1]}, a1.callbacks());
  services_[0]->join(gb, {nodes_[0], nodes_[1]}, b0.callbacks());
  services_[1]->join(gb, {nodes_[0], nodes_[1]}, b1.callbacks());

  services_[0]->submit(ga, Bytes{'A'});
  services_[1]->submit(gb, Bytes{'B'});
  ASSERT_TRUE(a0.wait_count(1));
  ASSERT_TRUE(b0.wait_count(1));
  ASSERT_TRUE(a1.wait_count(1));
  ASSERT_TRUE(b1.wait_count(1));
  EXPECT_EQ(a0.messages[0], Bytes{'A'});
  EXPECT_EQ(b0.messages[0], Bytes{'B'});
  EXPECT_EQ(a0.messages.size(), 1u);
  EXPECT_EQ(b0.messages.size(), 1u);
}

TEST_F(GcsExtraTest, LargePayloadRoundTrips) {
  Sink sink;
  const GroupId g(1);
  services_[0]->join(g, {nodes_[0]}, sink.callbacks());
  Bytes big(256 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  services_[0]->submit(g, big);
  ASSERT_TRUE(sink.wait_count(1));
  EXPECT_EQ(sink.messages[0], big);
}

TEST_F(GcsExtraTest, SubmitWithoutSessionReturnsZero) {
  EXPECT_EQ(services_[0]->submit(GroupId(42), Bytes{'x'}), 0u);
}

TEST_F(GcsExtraTest, DeliveredUpToAdvances) {
  Sink sink;
  const GroupId g(1);
  services_[0]->join(g, {nodes_[0]}, sink.callbacks());
  EXPECT_EQ(services_[0]->delivered_up_to(g), 0u);
  for (int i = 0; i < 5; ++i) services_[0]->submit(g, Bytes{static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(sink.wait_count(5));
  EXPECT_EQ(services_[0]->delivered_up_to(g), 5u);
}

TEST_F(GcsExtraTest, NonSequencerCrashTriggersViewChangeWithoutLoss) {
  Sink s0;
  Sink s1;
  Sink s2;
  const GroupId g(1);
  const std::vector<NodeId> members{nodes_[0], nodes_[1], nodes_[2]};
  services_[0]->join(g, members, s0.callbacks());
  services_[1]->join(g, members, s1.callbacks());
  services_[2]->join(g, members, s2.callbacks());

  for (int i = 0; i < 5; ++i) services_[0]->submit(g, Bytes{static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(s0.wait_count(5));
  ASSERT_TRUE(s1.wait_count(5));

  net_->crash(nodes_[2]);  // highest member, not the sequencer
  const auto deadline = common::Clock::now() + std::chrono::seconds(10);
  while (services_[0]->current_view(g).members.size() != 2 &&
         common::Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(services_[0]->current_view(g).members.size(), 2u);
  EXPECT_EQ(services_[0]->current_view(g).sequencer(), nodes_[0]);

  for (int i = 5; i < 10; ++i) services_[0]->submit(g, Bytes{static_cast<std::uint8_t>(i)});
  ASSERT_TRUE(s0.wait_count(10));
  ASSERT_TRUE(s1.wait_count(10));
  EXPECT_EQ(s0.messages, s1.messages);
}

TEST_F(GcsExtraTest, TotalOrderSurvivesLossyLinks) {
  // 20% message loss on every link: sender retransmission, NACK repair
  // and ack dedup must still deliver everything exactly once, in order.
  Sink s0;
  Sink s1;
  Sink s2;
  const GroupId g(1);
  const std::vector<NodeId> members{nodes_[0], nodes_[1], nodes_[2]};
  transport::LinkConfig lossy;
  lossy.drop_probability = 0.2;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a != b) net_->set_link(nodes_[a], nodes_[b], lossy);
    }
  }
  services_[0]->join(g, members, s0.callbacks());
  services_[1]->join(g, members, s1.callbacks());
  services_[2]->join(g, members, s2.callbacks());

  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    services_[i % 3]->submit(g, Bytes{static_cast<std::uint8_t>(i)});
  }
  ASSERT_TRUE(s0.wait_count(kMessages, std::chrono::seconds(30)));
  ASSERT_TRUE(s1.wait_count(kMessages, std::chrono::seconds(30)));
  ASSERT_TRUE(s2.wait_count(kMessages, std::chrono::seconds(30)));
  // Wait a little longer: duplicates would arrive late.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(s0.messages.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(s0.messages, s1.messages);
  EXPECT_EQ(s0.messages, s2.messages);
}

TEST_F(GcsExtraTest, ViewEventDeliveredToApp) {
  Sink s0;
  Sink s1;
  const GroupId g(1);
  const std::vector<NodeId> members{nodes_[0], nodes_[1], nodes_[2]};
  Sink s2;
  services_[0]->join(g, members, s0.callbacks());
  services_[1]->join(g, members, s1.callbacks());
  services_[2]->join(g, members, s2.callbacks());
  net_->crash(nodes_[1]);
  const auto deadline = common::Clock::now() + std::chrono::seconds(10);
  while (common::Clock::now() < deadline) {
    const std::lock_guard<std::mutex> guard(s0.mutex);
    if (!s0.views.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::lock_guard<std::mutex> guard(s0.mutex);
  ASSERT_FALSE(s0.views.empty());
  EXPECT_GE(s0.views.back(), 1u);
}

}  // namespace
}  // namespace adets::gcs
