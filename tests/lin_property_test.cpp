// Property test for the linearizability checker.
//
// For 100+ seeds: generate a random *valid sequential* KV history
// (every result computed from a model map, so it is linearizable by
// construction), then
//  - accept it as-is,
//  - accept a concurrency-preserving reordering: widening an
//    operation's interval can only add legal linearization points, so
//    the original witness survives,
//  - reject a spec-violating edit: in a strictly sequential history
//    every observable is uniquely determined, so corrupting one result
//    (poison read value, flipped existed/success flag, wrong size)
//    guarantees non-linearizability.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "lin/checker.hpp"
#include "lin/history.hpp"
#include "lin/spec.hpp"
#include "workload/kvstore.hpp"

namespace adets {
namespace {

constexpr int kSeeds = 120;
constexpr int kOpsPerHistory = 30;

struct Model {
  std::map<std::string, std::string> map;
};

lin::Operation random_sequential_op(common::Rng& rng, Model& model,
                                    std::uint64_t index) {
  lin::Operation op;
  op.client = rng.uniform(0, 3);
  // Scaled stamps leave room for interval widening between neighbours.
  op.invoke_stamp = index * 10 + 1;
  op.response_stamp = index * 10 + 5;

  const std::string key = "k" + std::to_string(rng.uniform(0, 3));
  const std::string value = std::string(1, static_cast<char>('a' + rng.uniform(0, 3)));
  common::Writer result;
  switch (rng.uniform(0, 9)) {
    case 0:
    case 1:
    case 2: {
      op.method = "put";
      op.args = workload::KvStore::pack_put(key, value);
      result.boolean(model.map.count(key) > 0);
      model.map[key] = value;
      break;
    }
    case 3:
    case 4: {
      op.method = "cas";
      // Half the time aim at the current value so successes happen.
      const auto it = model.map.find(key);
      const std::string expected =
          (rng.uniform(0, 1) == 0 && it != model.map.end()) ? it->second : "x";
      op.args = workload::KvStore::pack_cas(key, expected, value);
      const bool success = it != model.map.end() && it->second == expected;
      result.boolean(success);
      if (success) model.map[key] = value;
      break;
    }
    case 5: {
      op.method = "remove";
      op.args = workload::KvStore::pack_key(key);
      result.boolean(model.map.erase(key) > 0);
      break;
    }
    case 6: {
      op.method = "size";
      result.u64(model.map.size());
      break;
    }
    default: {
      op.method = "get";
      op.args = workload::KvStore::pack_key(key);
      const auto it = model.map.find(key);
      result.boolean(it != model.map.end());
      result.str(it != model.map.end() ? it->second : "");
      break;
    }
  }
  op.result = result.take();
  return op;
}

lin::History random_sequential_history(common::Rng& rng) {
  lin::History h;
  Model model;
  for (int i = 0; i < kOpsPerHistory; ++i) {
    h.ops.push_back(random_sequential_op(rng, model, static_cast<std::uint64_t>(i)));
  }
  return h;
}

/// Widens random intervals: invoke earlier, response later, by up to 4
/// ticks (neighbouring ops are 10 apart, so overlaps stay local).
lin::History widen_intervals(const lin::History& h, common::Rng& rng) {
  lin::History out = h;
  for (lin::Operation& op : out.ops) {
    if (rng.uniform(0, 2) == 0) continue;
    const std::uint64_t earlier = rng.uniform(0, 4);
    op.invoke_stamp = op.invoke_stamp > earlier ? op.invoke_stamp - earlier : 1;
    op.response_stamp += rng.uniform(0, 4);
  }
  out.normalize();
  return out;
}

/// Corrupts one completed op's result so no sequential execution
/// explains it (the poison value "zz" is never written by the
/// generator; booleans/sizes flip to the unique wrong answer).
lin::History corrupt_one_result(const lin::History& h, common::Rng& rng) {
  lin::History out = h;
  lin::Operation& op =
      out.ops[rng.uniform(0, static_cast<int>(out.ops.size()) - 1)];
  common::Reader old(op.result);
  common::Writer result;
  if (op.method == "get") {
    (void)old.boolean();
    result.boolean(true);
    result.str("zz");
  } else if (op.method == "size") {
    result.u64(old.u64() + 1);
  } else {  // put / remove / cas: flip the unique correct flag
    result.boolean(!old.boolean());
  }
  op.result = result.take();
  return out;
}

TEST(LinProperty, SequentialWidenedAndCorruptedHistories) {
  int rejected_checked = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    common::Rng rng(0xf00d, static_cast<std::uint64_t>(seed));
    const lin::History sequential = random_sequential_history(rng);

    const lin::CheckResult base = check_history(sequential, lin::KvSpec{});
    ASSERT_TRUE(base.linearizable)
        << "seed " << seed << ": " << base.explanation;

    const lin::History widened = widen_intervals(sequential, rng);
    const lin::CheckResult widened_result = check_history(widened, lin::KvSpec{});
    ASSERT_TRUE(widened_result.linearizable)
        << "seed " << seed << " (widened): " << widened_result.explanation;

    const lin::History corrupted = corrupt_one_result(sequential, rng);
    const lin::CheckResult corrupted_result =
        check_history(corrupted, lin::KvSpec{});
    ASSERT_FALSE(corrupted_result.linearizable) << "seed " << seed;
    ASSERT_FALSE(corrupted_result.exhausted_budget) << "seed " << seed;
    EXPECT_FALSE(corrupted_result.counterexample.empty()) << "seed " << seed;
    ++rejected_checked;
  }
  EXPECT_EQ(rejected_checked, kSeeds);
}

}  // namespace
}  // namespace adets
