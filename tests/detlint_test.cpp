// Per-rule positive/negative fixtures for the determinism linter, plus
// whole-tree checks: the scanned source dirs must lint clean and the
// RacyScheduler fixture must not.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

using adets::detlint::Finding;
using adets::detlint::scan_source;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const auto& finding : findings) rules.push_back(finding.rule);
  return rules;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(DetlintTest, WallClockFlagged) {
  const auto findings = scan_source(
      "src/sched/x.cpp", "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(DetlintTest, SystemAndHighResolutionClockFlagged) {
  EXPECT_TRUE(has_rule(
      scan_source("a.cpp", "std::chrono::system_clock::now();\n"), "wall-clock"));
  EXPECT_TRUE(has_rule(
      scan_source("a.cpp", "std::chrono::high_resolution_clock::now();\n"),
      "wall-clock"));
}

TEST(DetlintTest, WallClockExemptInCommonClock) {
  EXPECT_TRUE(scan_source("src/common/clock.hpp",
                          "return std::chrono::steady_clock::now();\n")
                  .empty());
  EXPECT_TRUE(scan_source("/abs/path/src/common/clock.cpp",
                          "return std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(DetlintTest, CommonClockFacadeNotFlagged) {
  EXPECT_TRUE(scan_source("a.cpp", "auto t = common::Clock::now();\n").empty());
}

TEST(DetlintTest, ThreadIdFlagged) {
  const auto findings =
      scan_source("a.cpp", "auto id = std::this_thread::get_id();\n");
  EXPECT_EQ(rules_of(findings), std::vector<std::string>{"thread-id"});
}

TEST(DetlintTest, RandomnessFlagged) {
  EXPECT_TRUE(has_rule(scan_source("a.cpp", "std::random_device rd;\n"),
                       "randomness"));
  EXPECT_TRUE(has_rule(scan_source("a.cpp", "int x = rand() % 7;\n"),
                       "randomness"));
  EXPECT_TRUE(has_rule(scan_source("a.cpp", "srand(42);\n"), "randomness"));
}

TEST(DetlintTest, RandomnessExemptInCommonRng) {
  EXPECT_TRUE(
      scan_source("src/common/rng.hpp", "std::random_device entropy;\n").empty());
}

TEST(DetlintTest, SeededMt19937NotFlagged) {
  // Deterministic seeded engines are fine; only entropy sources are not.
  EXPECT_TRUE(scan_source("a.cpp", "std::mt19937_64 rng(seed);\n").empty());
}

TEST(DetlintTest, UnorderedIterationFlagged) {
  const std::string source =
      "std::unordered_map<std::uint64_t, int> table_;\n"
      "void dump() {\n"
      "  for (const auto& [k, v] : table_) emit(k, v);\n"
      "}\n";
  const auto findings = scan_source("a.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(DetlintTest, UnorderedBeginFlagged) {
  const std::string source =
      "std::unordered_set<int> pending_;\n"
      "auto it = pending_.begin();\n";
  EXPECT_TRUE(has_rule(scan_source("a.cpp", source), "unordered-iter"));
}

TEST(DetlintTest, UnorderedLookupNotFlagged) {
  // Point lookups don't expose hash order; only iteration does.
  const std::string source =
      "std::unordered_map<std::uint64_t, int> table_;\n"
      "auto it = table_.find(key);\n"
      "table_.erase(key);\n";
  EXPECT_TRUE(scan_source("a.cpp", source).empty());
}

TEST(DetlintTest, OrderedMapIterationNotFlagged) {
  const std::string source =
      "std::map<std::uint64_t, int> table_;\n"
      "for (const auto& [k, v] : table_) emit(k, v);\n";
  EXPECT_TRUE(scan_source("a.cpp", source).empty());
}

TEST(DetlintTest, RawMutexFlagged) {
  EXPECT_TRUE(has_rule(scan_source("a.hpp", "std::mutex mon_;\n"), "raw-mutex"));
  EXPECT_TRUE(has_rule(scan_source("a.hpp", "std::condition_variable cv_;\n"),
                       "raw-mutex"));
  EXPECT_TRUE(has_rule(scan_source("a.hpp", "std::shared_mutex m_;\n"),
                       "raw-mutex"));
  EXPECT_TRUE(has_rule(
      scan_source("a.hpp", "std::condition_variable_any cv_;\n"), "raw-mutex"));
}

TEST(DetlintTest, WrappedMutexNotFlagged) {
  EXPECT_TRUE(
      scan_source("a.hpp", "common::Mutex mon_{\"sched::mon\"};\n").empty());
  EXPECT_TRUE(scan_source("a.hpp", "common::CondVar cv;\n").empty());
}

TEST(DetlintTest, PointerKeyFlagged) {
  EXPECT_TRUE(has_rule(
      scan_source("a.hpp", "std::map<Object*, int> owners_;\n"), "ptr-key"));
  EXPECT_TRUE(has_rule(
      scan_source("a.hpp", "std::set<const Thread*> waiters_;\n"), "ptr-key"));
}

TEST(DetlintTest, ValueKeyNotFlagged) {
  // Pointer VALUES are fine (never iterated in key order); pointer KEYS
  // are not.
  EXPECT_TRUE(
      scan_source("a.hpp", "std::map<std::uint64_t, Object*> objects_;\n")
          .empty());
}

TEST(DetlintTest, RealTimeWaitFlagged) {
  EXPECT_TRUE(has_rule(scan_source("a.cpp", "cv.wait_for(lk, timeout);\n"),
                       "real-time-wait"));
  EXPECT_TRUE(has_rule(scan_source("a.cpp", "cv.wait_until(lk, deadline);\n"),
                       "real-time-wait"));
}

TEST(DetlintTest, PlainWaitNotFlagged) {
  EXPECT_TRUE(scan_source("a.cpp", "cv.wait(lk);\n").empty());
}

TEST(DetlintTest, SleepForFlagged) {
  EXPECT_TRUE(has_rule(
      scan_source("a.cpp",
                  "std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"),
      "sleep-for"));
  EXPECT_TRUE(has_rule(
      scan_source("a.cpp", "std::this_thread::sleep_until(deadline);\n"),
      "sleep-for"));
}

TEST(DetlintTest, ClockSleepFacadeNotFlagged) {
  EXPECT_TRUE(
      scan_source("a.cpp", "common::Clock::sleep_real(tick);\n").empty());
  EXPECT_TRUE(
      scan_source("a.cpp", "common::Clock::sleep_paper(paper_ms(5));\n").empty());
}

TEST(DetlintTest, SleepForExemptInCommonClock) {
  EXPECT_TRUE(scan_source("src/common/clock.cpp",
                          "std::this_thread::sleep_for(real_time);\n")
                  .empty());
}

TEST(DetlintTest, AllowOnSameLineSuppresses) {
  const auto findings = scan_source(
      "a.cpp",
      "cv.wait_for(lk, t);  // detlint:allow(real-time-wait) outcome replayed\n");
  EXPECT_TRUE(findings.empty());
}

TEST(DetlintTest, AllowOnLineAboveSuppresses) {
  const std::string source =
      "// detlint:allow(real-time-wait) outcome routed through total order\n"
      "cv.wait_for(lk, t);\n";
  EXPECT_TRUE(scan_source("a.cpp", source).empty());
}

TEST(DetlintTest, AllowOnlySuppressesNamedRule) {
  const std::string source =
      "// detlint:allow(wall-clock) some reason\n"
      "cv.wait_for(lk, t);\n";
  EXPECT_TRUE(has_rule(scan_source("a.cpp", source), "real-time-wait"));
}

TEST(DetlintTest, AllowDoesNotLeakPastNextLine) {
  const std::string source =
      "// detlint:allow(real-time-wait) covers only the next line\n"
      "cv.wait_for(lk, t);\n"
      "cv.wait_for(lk, t);\n";
  const auto findings = scan_source("a.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(DetlintTest, AllowWithoutReasonReported) {
  const auto findings = scan_source(
      "a.cpp", "cv.wait_for(lk, t);  // detlint:allow(real-time-wait)\n");
  ASSERT_EQ(findings.size(), 2u);  // the bad allow AND the unsuppressed finding
  EXPECT_TRUE(has_rule(findings, "bad-allow"));
  EXPECT_TRUE(has_rule(findings, "real-time-wait"));
}

TEST(DetlintTest, CommentedOutCodeNotFlagged) {
  EXPECT_TRUE(
      scan_source("a.cpp", "// old: std::mutex mon_;\n").empty());
  EXPECT_TRUE(
      scan_source("a.cpp", "/* std::this_thread::get_id() */ int x;\n").empty());
}

TEST(DetlintTest, StringLiteralsNotFlagged) {
  EXPECT_TRUE(
      scan_source("a.cpp", "log(\"uses std::mutex internally\");\n").empty());
}

TEST(DetlintTest, MultiLineBlockCommentNotFlagged) {
  const std::string source =
      "/*\n"
      " * std::mutex mon_;\n"
      " * auto t = std::chrono::steady_clock::now();\n"
      " */\n"
      "int live_code = 1;\n";
  EXPECT_TRUE(scan_source("a.cpp", source).empty());
}

TEST(DetlintTest, RawStringContentsNotFlagged) {
  // Banned constructs inside a raw string literal are data, not code.
  EXPECT_TRUE(
      scan_source("a.cpp", "const char* s = R\"(std::mutex mon_;)\";\n").empty());
  EXPECT_TRUE(scan_source("a.cpp",
                          "auto s = R\"x(auto t = steady_clock::now();)x\";\n")
                  .empty());
}

TEST(DetlintTest, RawStringKeepsLineNumbersInSync) {
  // A multi-line raw string containing quotes and backslashes must not
  // desynchronize the scanner: the finding after it gets the true line.
  const std::string source =
      "const char* doc = R\"(\n"            // line 1
      "  \"quoted\" and \\ backslash\n"     // line 2 (raw content)
      "  std::mutex decoy;\n"               // line 3 (raw content)
      ")\";\n"                              // line 4
      "std::mutex real_;\n";                // line 5
  const auto findings = scan_source("a.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(DetlintTest, StringContinuationKeepsLineNumbersInSync) {
  // A backslash-newline inside a string literal continues the literal
  // but still ends the physical line; the next finding's line is true.
  const std::string source =
      "const char* s = \"split \\\n"        // line 1: "split \<newline>
      "rest\";\n"                           // line 2: literal continues
      "std::mutex real_;\n";                // line 3
  const auto findings = scan_source("a.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(DetlintTest, ContinuedLineCommentHidesNextLine) {
  // A line comment ending in a backslash extends over the next physical
  // line, so code there is commented out, not live.
  const std::string source =
      "// old code: \\\n"
      "std::mutex mon_;\n"
      "int live = 1;\n";
  EXPECT_TRUE(scan_source("a.cpp", source).empty());
}

TEST(DetlintTest, IdentifierEndingInRIsNotARawStringPrefix) {
  // `HELPER_R"text"` (identifier ending in R, e.g. via macro pasting)
  // must not start raw-string mode: the literal ends at the next quote.
  const std::string source = "call(HELPER_R\"text\"); std::mutex mon_;\n";
  EXPECT_TRUE(has_rule(scan_source("a.cpp", source), "raw-mutex"));
}

TEST(DetlintTest, DigitSeparatorIsNotACharLiteral) {
  // `1'000` must not open a character literal: with an odd number of
  // apostrophes on the line, everything after would be swallowed as a
  // "literal" and the real finding on the next line lost.
  const std::string source =
      "int scale = 1'000;\n"   // line 1: digit separator, one apostrophe
      "std::mutex real_;\n";   // line 2
  const auto findings = scan_source("a.cpp", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(DetlintTest, RulesListCoversAllRules) {
  std::vector<std::string> names;
  for (const auto& rule : adets::detlint::rules()) names.push_back(rule.name);
  for (const char* expected :
       {"wall-clock", "thread-id", "randomness", "unordered-iter", "raw-mutex",
        "ptr-key", "real-time-wait", "sleep-for", "bad-allow"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected;
  }
}

TEST(DetlintTest, FindingFormatting) {
  const Finding finding{"src/sched/x.cpp", 12, "wall-clock", "msg"};
  EXPECT_EQ(adets::detlint::to_string(finding),
            "src/sched/x.cpp:12: [wall-clock] msg");
}

// --- Whole-tree checks: the acceptance criteria of the linter. ---

#ifdef ADETS_SOURCE_DIR

TEST(DetlintTreeTest, SchedulerAndReplicationSourcesLintClean) {
  const std::string root = ADETS_SOURCE_DIR;
  const int rc = adets::detlint::run_cli(
      {root + "/src/sched", root + "/src/replication"});
  EXPECT_EQ(rc, 0) << "determinism lint regressions in src/sched or "
                      "src/replication; run build/tools/detlint/detlint on "
                      "them for details";
}

TEST(DetlintTreeTest, RacySchedulerFixtureIsCaught) {
  const std::string root = ADETS_SOURCE_DIR;
  const auto findings =
      adets::detlint::scan_file(root + "/tests/racy_scheduler.hpp");
  EXPECT_FALSE(findings.empty());
  EXPECT_TRUE(has_rule(findings, "raw-mutex"));
  EXPECT_TRUE(has_rule(findings, "real-time-wait"));
  const int rc =
      adets::detlint::run_cli({root + "/tests/racy_scheduler.hpp"});
  EXPECT_NE(rc, 0);
}

#endif  // ADETS_SOURCE_DIR

}  // namespace
