// Unit tests for the common substrate: ids, clock scaling, queues,
// serialisation, RNG determinism.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"

namespace adets::common {
namespace {

TEST(StrongIdTest, DistinctTypesAndComparisons) {
  const NodeId a(1);
  const NodeId b(2);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(NodeId(1), a);
  static_assert(!std::is_convertible_v<NodeId, GroupId>);
  static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
}

TEST(StrongIdTest, InvalidSentinel) {
  const MutexId none = MutexId::invalid();
  EXPECT_FALSE(none.valid());
  EXPECT_TRUE(MutexId(0).valid());
  EXPECT_TRUE(MutexId(7).valid());
}

TEST(StrongIdTest, HashableInUnorderedContainers) {
  std::set<ThreadId> ordered{ThreadId(3), ThreadId(1), ThreadId(2)};
  EXPECT_EQ(ordered.begin()->value(), 1u);
  std::hash<ThreadId> h;
  EXPECT_NE(h(ThreadId(1)), h(ThreadId(2)));
}

TEST(ClockTest, ScaledDurationAppliesFactor) {
  const double saved = Clock::scale();
  Clock::set_scale(0.5);
  EXPECT_EQ(Clock::scaled(paper_ms(100)), std::chrono::milliseconds(50));
  Clock::set_scale(saved);
}

TEST(ClockTest, SleepPaperRespectsScale) {
  const double saved = Clock::scale();
  Clock::set_scale(0.01);
  const auto start = Clock::now();
  Clock::sleep_paper(paper_ms(100));  // = 1ms real
  const auto elapsed = Clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(900));
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
  Clock::set_scale(saved);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), std::nullopt);
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::atomic<int> seen{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&q, &seen] {
      while (q.pop()) seen.fetch_add(1);
    });
  }
  for (auto& t : producers) t.join();
  while (!q.empty()) std::this_thread::yield();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.load(), kPerProducer * kProducers);
}

TEST(SerializationTest, RoundTripPrimitives) {
  Writer w;
  w.u8(7);
  w.u32(123456);
  w.u64(9876543210ULL);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.str("hello world");
  w.blob(Bytes{1, 2, 3});
  w.id(MutexId(17));

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 9876543210ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.id<MutexId>(), MutexId(17));
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializationTest, TruncatedPayloadThrows) {
  Writer w;
  w.u32(10);  // claims a 10-byte string follows
  Reader r(w.bytes());
  EXPECT_THROW(r.str(), SerializationError);
}

TEST(SerializationTest, EmptyStringAndBlob) {
  Writer w;
  w.str("");
  w.blob(common::Bytes{});
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1000000) == b.uniform(0, 1000000)) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsuBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.uniform_real(1.5, 2.5);
    EXPECT_GE(d, 1.5);
    EXPECT_LT(d, 2.5);
  }
}

TEST(RngTest, TwoPartSeedMixes) {
  Rng a(1, 2);
  Rng b(2, 1);
  EXPECT_NE(a.uniform(0, 1ULL << 62), b.uniform(0, 1ULL << 62));
}

}  // namespace
}  // namespace adets::common
