// Interaction-pattern tests from the paper's Sec. 2 motivation:
//  - the asynchronous-request-plus-condvar-callback pattern ("a thread
//    might ... first issue an asynchronous external request, and then
//    wait on a condition variable for the notification by a call-back of
//    the external service");
//  - deep nested invocation chains (A -> B -> C);
//  - multi-failure group-communication behaviour (5-member group losing
//    two members, including the sequencer).
#include <gtest/gtest.h>

#include <thread>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

namespace adets::runtime {
namespace {

using common::Bytes;
using common::CondVarId;
using common::GroupId;
using common::MutexId;
using sched::SchedulerKind;
using workload::pack_u64;
using workload::unpack_u64;

class InteractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

/// Front object of the async-callback pattern.  "submit_job" sends a
/// one-way request to the worker group and waits on a condition variable
/// until the worker's callback ("job_done") delivers the result.
class AsyncRequester : public ReplicatedObject {
 public:
  explicit AsyncRequester(GroupId worker, GroupId self) : worker_(worker), self_(self) {}

  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    const MutexId m(1);
    const CondVarId done(1);
    if (method == "submit_job") {
      const auto a = unpack_u64(args);
      DetLock lock(ctx, m);
      // Paper Sec. 2: asynchronous external request, then wait for the
      // callback to signal completion.
      ctx.invoke_oneway(worker_, "run_job", pack_u64(self_.value(), a.at(0)));
      while (result_ == 0) {
        const bool notified = ctx.wait(m, done, common::paper_ms(2000));
        if (!notified && result_ == 0) return pack_u64(0);  // gave up
      }
      const std::uint64_t result = result_;
      result_ = 0;
      return pack_u64(result);
    }
    if (method == "job_done") {
      const auto a = unpack_u64(args);
      DetLock lock(ctx, m);
      result_ = a.at(0);
      ctx.notify_all(m, done);
      return {};
    }
    throw std::invalid_argument("unknown method " + method);
  }
  [[nodiscard]] std::uint64_t state_hash() const override { return result_; }

 private:
  GroupId worker_;
  GroupId self_;
  std::uint64_t result_ = 0;
};

/// Worker: computes and calls back asynchronously.
class AsyncWorker : public ReplicatedObject {
 public:
  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    if (method == "run_job") {
      const auto a = unpack_u64(args);
      ctx.compute(common::paper_ms(5));
      ctx.invoke_oneway(GroupId(static_cast<std::uint32_t>(a.at(0))), "job_done",
                        pack_u64(a.at(1) * 2));
      return {};
    }
    throw std::invalid_argument("unknown method " + method);
  }
};

class AsyncCallbackSchedulers : public InteractionTest,
                                public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, AsyncCallbackSchedulers,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(AsyncCallbackSchedulers, AsyncRequestThenCondvarCallback) {
  Cluster cluster;
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  const GroupId requester_id(1);
  const GroupId worker_id(2);
  const GroupId requester = cluster.create_group(
      3, GetParam(),
      [=] { return std::make_unique<AsyncRequester>(worker_id, requester_id); }, config);
  const GroupId worker = cluster.create_group(
      3, SchedulerKind::kMat, [] { return std::make_unique<AsyncWorker>(); });
  ASSERT_EQ(requester, requester_id);
  ASSERT_EQ(worker, worker_id);

  Client& client = cluster.create_client();
  const auto result = unpack_u64(client.invoke(requester, "submit_job", pack_u64(21)));
  EXPECT_EQ(result[0], 42u);
  // submit_job + job_done on the requester group.
  ASSERT_TRUE(cluster.wait_drained(requester, 2));
  EXPECT_TRUE(repl::check_group(cluster, requester).consistent());
}

/// Three-level nested chain: Front -> Middle -> EchoService.
class ChainFront : public ReplicatedObject {
 public:
  explicit ChainFront(GroupId next) : next_(next) {}
  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    if (method != "run") throw std::invalid_argument("unknown method");
    DetLock lock(ctx, MutexId(0));
    calls_++;
    const auto below = unpack_u64(ctx.invoke(next_, "run", args));
    return pack_u64(below.at(0) + 1);
  }
  [[nodiscard]] std::uint64_t state_hash() const override { return calls_; }

 private:
  GroupId next_;
  std::uint64_t calls_ = 0;
};

class ChainMiddle : public ReplicatedObject {
 public:
  explicit ChainMiddle(GroupId next) : next_(next) {}
  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    if (method != "run") throw std::invalid_argument("unknown method");
    ctx.compute(common::paper_ms(2));
    ctx.invoke(next_, "delay", pack_u64(1));
    (void)args;
    return pack_u64(1);
  }

 private:
  GroupId next_;
};

TEST_P(AsyncCallbackSchedulers, DepthTwoNestedChainCompletes) {
  Cluster cluster;
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  const GroupId middle_id(2);
  const GroupId leaf_id(3);
  const GroupId front = cluster.create_group(
      3, GetParam(), [=] { return std::make_unique<ChainFront>(middle_id); }, config);
  const GroupId middle = cluster.create_group(
      3, SchedulerKind::kSat, [=] { return std::make_unique<ChainMiddle>(leaf_id); });
  const GroupId leaf = cluster.create_group(
      3, SchedulerKind::kMat, [] { return std::make_unique<workload::EchoService>(); });
  ASSERT_EQ(middle, middle_id);
  ASSERT_EQ(leaf, leaf_id);

  Client& client = cluster.create_client();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(unpack_u64(client.invoke(front, "run", {}))[0], 2u);
  }
  ASSERT_TRUE(cluster.wait_drained(front, 3));
  EXPECT_TRUE(repl::check_group(cluster, front).consistent());
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(front, r).state_hash(), 3u);
  }
}

TEST_F(InteractionTest, FiveMemberGroupSurvivesTwoFailures) {
  Cluster cluster;
  const GroupId bank = cluster.create_group(
      5, SchedulerKind::kSat, [] { return std::make_unique<workload::BankAccounts>(2); });
  Client& client = cluster.create_client();
  for (int i = 0; i < 5; ++i) client.invoke(bank, "deposit", pack_u64(0, 10));

  cluster.crash_replica(bank, 0);  // the sequencer
  for (int i = 0; i < 5; ++i) {
    client.invoke(bank, "deposit", pack_u64(0, 10), std::chrono::seconds(30));
  }
  cluster.crash_replica(bank, 1);  // the new sequencer
  for (int i = 0; i < 5; ++i) {
    client.invoke(bank, "deposit", pack_u64(0, 10), std::chrono::seconds(30));
  }
  const auto balance =
      unpack_u64(client.invoke(bank, "balance", pack_u64(0), std::chrono::seconds(30)));
  EXPECT_EQ(balance[0], 150u);
  // Survivors agree.
  EXPECT_EQ(cluster.replica(bank, 2).state_hash(), cluster.replica(bank, 3).state_hash());
  EXPECT_EQ(cluster.replica(bank, 2).state_hash(), cluster.replica(bank, 4).state_hash());
}

}  // namespace
}  // namespace adets::runtime
