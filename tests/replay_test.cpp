// Passive-replication replay tests: a fresh node re-executes a recorded
// event log and must reach the exact state of the live replicas (the
// paper's Sec. 1 motivation for determinism in passive replication).
#include <gtest/gtest.h>

#include <iostream>
#include <thread>

#include "replication/consistency.hpp"
#include "sched/base.hpp"
#include "replication/replay.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

namespace adets::repl {
namespace {

using common::GroupId;
using sched::SchedulerKind;
using workload::pack_u64;

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

class ReplaySchedulers : public ReplayTest,
                         public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, ReplaySchedulers,
                         ::testing::Values(SchedulerKind::kSeq, SchedulerKind::kSl,
                                           SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(ReplaySchedulers, RebuildsBankStateFromLog) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  runtime::Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::BankAccounts>(4); },
      config);
  auto log = std::make_shared<runtime::EventLog>();
  cluster.replica(bank, 1).set_event_log(log);  // record at a follower

  constexpr int kClients = 3;
  constexpr int kOps = 8;
  std::vector<runtime::Client*> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(&cluster.create_client());
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kOps; ++i) {
        switch ((c + i) % 3) {
          case 0: clients[c]->invoke(bank, "deposit", pack_u64(i % 4, 10)); break;
          case 1: clients[c]->invoke(bank, "transfer", pack_u64(c % 4, i % 4, 3)); break;
          default: clients[c]->invoke(bank, "balance", pack_u64(i % 4));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const bool drained =
      cluster.wait_drained(bank, kClients * kOps, std::chrono::seconds(15));
  if (!drained) {
    for (int r = 0; r < 3; ++r) {
      auto* base =
          dynamic_cast<sched::SchedulerBase*>(&cluster.replica(bank, r).scheduler());
      std::cerr << "replica " << r << " completed="
                << cluster.replica(bank, r).completed_requests() << " "
                << (base ? base->debug_dump() : std::string("?")) << "\n";
    }
  }
  ASSERT_TRUE(drained);
  const std::uint64_t live_hash = cluster.replica(bank, 1).state_hash();
  EXPECT_EQ(cluster.replica(bank, 0).state_hash(), live_hash);

  const auto replayed = replay_log(*log, GetParam(), config, [] {
    return std::make_unique<workload::BankAccounts>(4);
  });
  EXPECT_TRUE(replayed.complete);
  EXPECT_EQ(replayed.state_hash, live_hash)
      << "replay reached a different state than the live run";
}

TEST_P(ReplaySchedulers, ReplaysNestedInvocationsFromLog) {
  if (GetParam() == SchedulerKind::kSeq) GTEST_SKIP() << "covered by bank case";
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  runtime::Cluster cluster;
  const GroupId callee = cluster.create_group(
      3, SchedulerKind::kSat, [] { return std::make_unique<workload::EchoService>(); });
  const GroupId caller = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::NestedPatterns>(); },
      config);
  auto log = std::make_shared<runtime::EventLog>();
  cluster.replica(caller, 2).set_event_log(log);

  runtime::Client& client = cluster.create_client();
  for (int i = 0; i < 4; ++i) {
    client.invoke(caller, "NSC", pack_u64(callee.value(), 1, 2, 1, 2));
  }
  ASSERT_TRUE(cluster.wait_drained(caller, 4));
  const std::uint64_t live_hash = cluster.replica(caller, 2).state_hash();

  const auto replayed = replay_log(*log, GetParam(), config, [] {
    return std::make_unique<workload::NestedPatterns>();
  });
  EXPECT_TRUE(replayed.complete);
  EXPECT_EQ(replayed.state_hash, live_hash);
}

TEST_F(ReplayTest, ReplayWithCondvarsAndTimeouts) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  runtime::Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, SchedulerKind::kSat, [] { return std::make_unique<workload::BankAccounts>(2); },
      config);
  auto log = std::make_shared<runtime::EventLog>();
  cluster.replica(bank, 0).set_event_log(log);

  runtime::Client& a = cluster.create_client();
  runtime::Client& b = cluster.create_client();
  // A timed withdraw that times out, one that is satisfied by a deposit.
  EXPECT_EQ(workload::unpack_u64(a.invoke(bank, "withdraw", pack_u64(0, 10, 100)))[0], 0u);
  std::thread blocked([&] {
    EXPECT_EQ(workload::unpack_u64(a.invoke(bank, "withdraw", pack_u64(1, 10)))[0], 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.invoke(bank, "deposit", pack_u64(1, 10));
  blocked.join();
  ASSERT_TRUE(cluster.wait_drained(bank, 3));
  const std::uint64_t live_hash = cluster.replica(bank, 0).state_hash();

  const auto replayed = replay_log(*log, SchedulerKind::kSat, config, [] {
    return std::make_unique<workload::BankAccounts>(2);
  });
  EXPECT_TRUE(replayed.complete);
  EXPECT_EQ(replayed.state_hash, live_hash);
}

TEST_F(ReplayTest, EmptyLogReplaysToFreshState) {
  runtime::EventLog log;
  const auto replayed = replay_log(log, SchedulerKind::kSat, {}, [] {
    return std::make_unique<workload::BankAccounts>(4);
  });
  EXPECT_TRUE(replayed.complete);
  EXPECT_EQ(replayed.requests_executed, 0u);
  EXPECT_EQ(replayed.state_hash, workload::BankAccounts(4).state_hash());
}

}  // namespace
}  // namespace adets::repl
