// adets-sa negative control: a scheduler strategy (sched-scoped via its
// SchedulerBase base class) that calls, while holding its monitor, a
// helper that transitively reaches a sleep primitive.  The interprocedural
// blocking-under-monitor pass must report exactly one finding, at the
// outermost call made under the lock, with the full witness chain
// `pump -> drain -> settle blocks at ...`.
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include <chrono>
#include <thread>

#include "common/mutex.hpp"
#include "sched/base.hpp"

namespace fixtures {

class BlockySched : public adets::sched::SchedulerBase {
 public:
  void pump() {
    const adets::common::MutexLock guard(mon_);
    drain();
  }

 private:
  void drain() { settle(); }
  void settle() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }

  adets::common::Mutex mon_{"blocky"};
};

}  // namespace fixtures
