// adets-sa negative control: a scheduler strategy whose grant decision
// hook (handle_request) calls a helper that mutates a field carrying no
// ADETS_GUARDED_BY contract.  The interprocedural grant-path audit must
// report exactly one grant-path-write finding, attributing the write to
// the chain `handle_request -> bump`.
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include "sched/base.hpp"

namespace fixtures {

class GreedyStrategy : public adets::sched::SchedulerBase {
 public:
  void handle_request(int thread_id) { bump(thread_id); }

 private:
  void bump(int thread_id) { decisions_served_ += thread_id; }

  long decisions_served_ = 0;
};

}  // namespace fixtures
