// adets-sa negative control: a replicated object whose conflict-annotated
// handler declares only ADETS_READS(table_) but, through a same-class
// helper, writes the field.  The conflict-class coverage pass must report
// exactly one conflict-uncovered finding with the call chain
// `do_put -> store_row`.
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include <map>
#include <string>

#include "common/annotations.hpp"

namespace fixtures {

class TinyStore {
 public:
  void dispatch(const std::string& method, const std::string& key) {
    if (method == "put") do_put(key);
  }

 private:
  void do_put(const std::string& key) ADETS_CONFLICT(key) ADETS_READS(table_) {
    store_row(key);
  }
  void store_row(const std::string& key) { table_[key] = 1; }

  std::map<std::string, int> table_;
};

}  // namespace fixtures
