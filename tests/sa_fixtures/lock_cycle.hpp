// adets-sa negative control: annotation-visible lock-order cycle.
// one() takes a_ then b_; two() takes b_ then a_.  The static lock
// graph gets edges Cycling::a_ -> Cycling::b_ and back, so the scan
// must report exactly one lock-cycle finding for this file.
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include "common/mutex.hpp"

namespace fixtures {

class Cycling {
 public:
  void one() {
    const adets::common::MutexLock first(a_);
    const adets::common::MutexLock second(b_);
  }

  void two() {
    const adets::common::MutexLock first(b_);
    const adets::common::MutexLock second(a_);
  }

 private:
  adets::common::Mutex a_{"fixture::a"};
  adets::common::Mutex b_{"fixture::b"};
};

}  // namespace fixtures
