// adets-sa negative control: a mutex-owning class with one mutable
// field that lacks ADETS_GUARDED_BY.  The guard-coverage pass must
// report exactly one unguarded-field finding (for counter_; guarded_
// is annotated and exempt).
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace fixtures {

class Holder {
 public:
  void bump() {
    const adets::common::MutexLock guard(m_);
    guarded_ += 1;
    counter_ += 1;
  }

 private:
  adets::common::Mutex m_{"fixture::holder"};
  int guarded_ ADETS_GUARDED_BY(m_) = 0;
  int counter_ = 0;
};

}  // namespace fixtures
