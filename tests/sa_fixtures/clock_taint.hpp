// adets-sa negative control: a scheduler strategy (sched-scoped via its
// SchedulerBase base class) that stores a real-clock reading into its
// decision state.  The determinism-taint pass must report exactly one
// det-taint finding.
//
// Never compiled or included; parsed textually by adets_sa_test.
#pragma once

#include "common/clock.hpp"
#include "sched/base.hpp"

namespace fixtures {

class ClockySched : public adets::sched::SchedulerBase {
 public:
  void on_grant() {
    const auto stamp = adets::common::Clock::now();
    last_grant_time_ = stamp;
  }

 private:
  adets::common::TimePoint last_grant_time_;
};

}  // namespace fixtures
