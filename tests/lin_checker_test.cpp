// Linearizability checker: negative controls and acceptance cases.
//
// The checker is only trustworthy if it (a) accepts histories that have
// a witness ordering and (b) rejects the classic anomalies — stale
// read, lost update, duplicated dequeue — with a *small, true*
// counterexample.  The rejection cases here are hand-crafted, plus one
// end-to-end run against a real cluster wired with the RacyScheduler
// (the deliberately nondeterministic test double): first-reply-wins
// over diverging replicas must eventually hand the client an
// impossible pair of observations, and the checker must catch it.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/serialization.hpp"
#include "lin/checker.hpp"
#include "lin/history.hpp"
#include "lin/recorder.hpp"
#include "lin/spec.hpp"
#include "racy_scheduler.hpp"
#include "runtime/cluster.hpp"
#include "workload/kvstore.hpp"

namespace adets {
namespace {

using lin::CheckOptions;
using lin::CheckResult;
using lin::History;
using lin::Operation;

common::Bytes bool_result(bool value) {
  common::Writer w;
  w.boolean(value);
  return w.take();
}

common::Bytes get_result(bool exists, const std::string& value) {
  common::Writer w;
  w.boolean(exists);
  w.str(value);
  return w.take();
}

common::Bytes u64_result(std::uint64_t value) {
  common::Writer w;
  w.u64(value);
  return w.take();
}

common::Bytes u64_args(std::uint64_t value) {
  common::Writer w;
  w.u64(value);
  return w.take();
}

Operation op(std::uint64_t client, std::uint64_t invoke, std::uint64_t response,
             const std::string& method, common::Bytes args,
             common::Bytes result) {
  Operation o;
  o.client = client;
  o.invoke_stamp = invoke;
  o.response_stamp = response;
  o.method = method;
  o.args = std::move(args);
  o.result = std::move(result);
  return o;
}

Operation pending_op(std::uint64_t client, std::uint64_t invoke,
                     const std::string& method, common::Bytes args) {
  return op(client, invoke, 0, method, std::move(args), {});
}

// --- acceptance ------------------------------------------------------------

TEST(LinChecker, AcceptsSequentialRun) {
  History h;
  h.ops = {
      op(0, 1, 2, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      op(0, 3, 4, "get", workload::KvStore::pack_key("k"), get_result(true, "a")),
      op(0, 5, 6, "remove", workload::KvStore::pack_key("k"), bool_result(true)),
      op(0, 7, 8, "get", workload::KvStore::pack_key("k"), get_result(false, "")),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(LinChecker, AcceptsOverlappingGetSeeingEitherValue) {
  // get overlaps the put: both the old and the new value are legal.
  for (const std::string& observed : {std::string(""), std::string("b")}) {
    History h;
    h.ops = {
        op(0, 1, 2, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
        op(0, 3, 4, "remove", workload::KvStore::pack_key("k"), bool_result(true)),
        op(0, 5, 8, "put", workload::KvStore::pack_put("k", "b"), bool_result(false)),
        op(1, 6, 7, "get", workload::KvStore::pack_key("k"),
           get_result(!observed.empty(), observed)),
    };
    const CheckResult result = check_history(h, lin::KvSpec{});
    EXPECT_TRUE(result.linearizable)
        << "observed \"" << observed << "\": " << result.explanation;
  }
}

TEST(LinChecker, AcceptsPendingOpWhoseEffectWasObserved) {
  // The put timed out at the client but executed inside the group: a
  // later get observes its value.  Legal — the pending op linearizes.
  History h;
  h.ops = {
      pending_op(0, 1, "put", workload::KvStore::pack_put("k", "a")),
      op(1, 2, 3, "get", workload::KvStore::pack_key("k"), get_result(true, "a")),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(LinChecker, AcceptsPendingOpThatNeverExecuted) {
  History h;
  h.ops = {
      pending_op(0, 1, "put", workload::KvStore::pack_put("k", "a")),
      op(1, 2, 3, "get", workload::KvStore::pack_key("k"), get_result(false, "")),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(LinChecker, PartitionsPerKeyAndCollapsesOnSize) {
  History h;
  h.ops = {
      op(0, 1, 2, "put", workload::KvStore::pack_put("a", "1"), bool_result(false)),
      op(1, 3, 4, "put", workload::KvStore::pack_put("b", "2"), bool_result(false)),
  };
  const CheckResult partitioned = check_history(h, lin::KvSpec{});
  EXPECT_TRUE(partitioned.linearizable);
  EXPECT_EQ(partitioned.partitions, 2u);

  h.ops.push_back(op(0, 5, 6, "size", {}, u64_result(2)));
  const CheckResult collapsed = check_history(h, lin::KvSpec{});
  EXPECT_TRUE(collapsed.linearizable) << collapsed.explanation;
  EXPECT_EQ(collapsed.partitions, 1u);
}

TEST(LinChecker, BudgetExhaustionIsInconclusiveNotRejection) {
  History h;
  h.ops = {
      op(0, 1, 4, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      op(1, 2, 3, "get", workload::KvStore::pack_key("k"), get_result(true, "a")),
  };
  CheckOptions options;
  options.max_states = 1;
  const CheckResult result = check_history(h, lin::KvSpec{}, options);
  EXPECT_FALSE(result.linearizable);
  EXPECT_TRUE(result.exhausted_budget);
  EXPECT_TRUE(result.counterexample.empty());
}

// --- negative controls -----------------------------------------------------

TEST(LinChecker, RejectsStaleRead) {
  // put(k,b) completed strictly before the get, yet the get saw "a".
  History h;
  h.ops = {
      op(0, 1, 2, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      op(0, 3, 4, "put", workload::KvStore::pack_put("k", "b"), bool_result(true)),
      op(1, 5, 6, "get", workload::KvStore::pack_key("k"), get_result(true, "a")),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  ASSERT_FALSE(result.linearizable);
  ASSERT_FALSE(result.exhausted_budget);
  EXPECT_LE(result.counterexample_events(), 10u);
  EXPECT_FALSE(result.counterexample.empty());
  EXPECT_NE(result.explanation.find("get(k)"), std::string::npos)
      << result.explanation;
}

TEST(LinChecker, RejectsLostUpdate) {
  // Two puts on a fresh key both claim existed=false: whatever order
  // they take, the second must have seen the first.
  History h;
  h.ops = {
      op(0, 1, 3, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      op(1, 2, 4, "put", workload::KvStore::pack_put("k", "b"), bool_result(false)),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  ASSERT_FALSE(result.linearizable);
  EXPECT_LE(result.counterexample_events(), 10u);
  EXPECT_EQ(result.counterexample.size(), 2u);
}

TEST(LinChecker, RejectsDuplicatedDequeue) {
  // One item produced, two consumes both returned it.
  History h;
  h.ops = {
      op(0, 1, 2, "produce", u64_args(7), u64_result(1)),
      op(1, 3, 5, "consume", {}, u64_result(7)),
      op(2, 4, 6, "consume", {}, u64_result(7)),
  };
  const CheckResult result = check_history(h, lin::BufferSpec{0});
  ASSERT_FALSE(result.linearizable);
  EXPECT_LE(result.counterexample_events(), 10u);
}

TEST(LinChecker, RejectsBoundedProduceBeyondCapacity) {
  // Capacity-2 buffer: three produces completed while nothing consumed,
  // and the third still reported success.
  History h;
  h.ops = {
      op(0, 1, 2, "produce", u64_args(1), u64_result(1)),
      op(0, 3, 4, "produce", u64_args(2), u64_result(2)),
      op(0, 5, 6, "produce", u64_args(3), u64_result(3)),
  };
  const CheckResult result = check_history(h, lin::BufferSpec{2});
  ASSERT_FALSE(result.linearizable);
  EXPECT_LE(result.counterexample_events(), 10u);
}

TEST(LinChecker, RejectsUnknownMethod) {
  History h;
  h.ops = {op(0, 1, 2, "mystery", {}, {})};
  const CheckResult result = check_history(h, lin::KvSpec{});
  EXPECT_FALSE(result.linearizable);
}

// The counterexample must be a true event-prefix witness: re-checking
// it standalone must reproduce the rejection (guards against the
// minimizer "shrinking" into a history that is actually fine).
TEST(LinChecker, CounterexampleIsItselfNonLinearizable) {
  History h;
  h.ops = {
      op(0, 1, 2, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      op(0, 3, 4, "put", workload::KvStore::pack_put("k", "b"), bool_result(true)),
      op(1, 5, 6, "get", workload::KvStore::pack_key("k"), get_result(true, "a")),
      op(0, 7, 8, "get", workload::KvStore::pack_key("k"), get_result(true, "b")),
  };
  const CheckResult result = check_history(h, lin::KvSpec{});
  ASSERT_FALSE(result.linearizable);
  History minimal;
  minimal.ops = result.counterexample;
  const CheckResult recheck = check_history(minimal, lin::KvSpec{});
  EXPECT_FALSE(recheck.linearizable);
}

// --- history file pinning --------------------------------------------------

std::string data_path(const std::string& name) {
  return std::string(ADETS_SOURCE_DIR) + "/tests/data/" + name;
}

TEST(LinHistoryFile, SampleFilesPinTheVerdicts) {
  {
    std::ifstream in(data_path("kv_ok.history"));
    ASSERT_TRUE(in.is_open());
    std::string error;
    const auto loaded = lin::load_history(in, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->spec_name, "kv");
    EXPECT_TRUE(check_history(loaded->history, lin::KvSpec{}).linearizable);
  }
  {
    std::ifstream in(data_path("kv_stale_read.history"));
    ASSERT_TRUE(in.is_open());
    std::string error;
    const auto loaded = lin::load_history(in, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    const CheckResult result = check_history(loaded->history, lin::KvSpec{});
    EXPECT_FALSE(result.linearizable);
    EXPECT_LE(result.counterexample_events(), 10u);
  }
}

TEST(LinHistoryFile, RoundTripsThroughText) {
  History h;
  h.ops = {
      op(0, 1, 4, "put", workload::KvStore::pack_put("k", "a"), bool_result(false)),
      pending_op(1, 2, "get", workload::KvStore::pack_key("k")),
  };
  const std::string text = lin::history_to_text(h, "kv");
  std::istringstream in(text);
  std::string error;
  const auto loaded = lin::load_history(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->spec_name, "kv");
  ASSERT_EQ(loaded->history.ops.size(), 2u);
  EXPECT_EQ(loaded->history.ops[0], h.ops[0]);
  EXPECT_EQ(loaded->history.ops[1], h.ops[1]);
}

TEST(LinHistoryFile, RejectsMalformedRecords) {
  const auto rejects = [](const std::string& text) {
    std::istringstream in(text);
    std::string error;
    const auto loaded = lin::load_history(in, &error);
    EXPECT_FALSE(loaded.has_value()) << text;
    EXPECT_FALSE(error.empty());
  };
  rejects("op 0 1 2 put xyz -\n");          // bad hex
  rejects("op 0 0 2 put - -\n");            // invoke stamp 0 reserved
  rejects("op 0 3 2 put - -\n");            // response before invoke
  rejects("op 0 1 pending put - 00\n");     // pending with result
  rejects("bogus record\n");                // unknown tag
}

// --- end-to-end negative control: RacyScheduler cluster --------------------

// Rounds of concurrent fresh-key puts against a 3-replica group wired
// with the RacyScheduler.  Replicas grant locks in different real-time
// orders, so first-reply-wins eventually hands the clients existed
// flags no single order explains (two fresh puts, or none).  Keys are
// per-round, so P-compositionality keeps the counterexample inside one
// round: at most 4 puts = 8 events.
TEST(LinRacyCluster, RacySchedulerYieldsNonLinearizableHistory) {
  constexpr int kPutters = 4;
  constexpr int kRounds = 60;

  runtime::Cluster cluster;
  const auto group = cluster.create_group(
      3, [] { return std::make_unique<testing::RacyScheduler>(); },
      [] { return std::make_unique<workload::KvStore>(); });
  std::vector<runtime::Client*> clients;
  for (int c = 0; c < kPutters; ++c) clients.push_back(&cluster.create_client());

  lin::HistoryRecorder recorder(kPutters);
  CheckResult verdict;
  bool caught = false;
  for (int round = 0; round < kRounds && !caught; ++round) {
    const std::string key = "r" + std::to_string(round);
    std::vector<std::thread> workers;
    for (int c = 0; c < kPutters; ++c) {
      workers.emplace_back([&, c] {
        lin::RecordingClient recording(*clients[static_cast<std::size_t>(c)],
                                       recorder.client(static_cast<std::size_t>(c)));
        try {
          recording.invoke(group, "put",
                           workload::KvStore::pack_put(key, "v" + std::to_string(c)),
                           std::chrono::seconds(30));
        } catch (const std::exception&) {
          // Timed out: the op stays pending in the history, which the
          // checker handles soundly.
        }
      });
    }
    for (auto& w : workers) w.join();
    verdict = check_history(recorder.merge(), lin::KvSpec{});
    caught = !verdict.linearizable && !verdict.exhausted_budget;
  }

  ASSERT_TRUE(caught)
      << "racy scheduler produced only linearizable observations across "
      << kRounds << " rounds";
  EXPECT_LE(verdict.counterexample_events(), 10u) << verdict.explanation;
  EXPECT_FALSE(verdict.explanation.empty());
}

}  // namespace
}  // namespace adets
