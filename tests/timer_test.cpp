// Tests for TimerService and the Watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "common/watchdog.hpp"

namespace adets::common {
namespace {

using std::chrono::milliseconds;

TEST(TimerServiceTest, FiresAfterDelay) {
  TimerService timers;
  std::atomic<bool> fired{false};
  const auto start = Clock::now();
  timers.schedule(milliseconds(10), [&] { fired.store(true); });
  while (!fired.load() && Clock::now() - start < std::chrono::seconds(2)) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(fired.load());
  EXPECT_GE(Clock::now() - start, milliseconds(9));
}

TEST(TimerServiceTest, CancelPreventsFiring) {
  TimerService timers;
  std::atomic<bool> fired{false};
  const auto id = timers.schedule(milliseconds(30), [&] { fired.store(true); });
  EXPECT_TRUE(timers.cancel(id));
  std::this_thread::sleep_for(milliseconds(60));
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, CancelAfterFireReturnsFalse) {
  TimerService timers;
  std::atomic<bool> fired{false};
  const auto id = timers.schedule(milliseconds(5), [&] { fired.store(true); });
  while (!fired.load()) std::this_thread::sleep_for(milliseconds(1));
  EXPECT_FALSE(timers.cancel(id));
}

TEST(TimerServiceTest, FiresInDeadlineOrder) {
  TimerService timers;
  std::mutex mutex;
  std::vector<int> order;
  timers.schedule(milliseconds(30), [&] {
    const std::lock_guard<std::mutex> guard(mutex);
    order.push_back(3);
  });
  timers.schedule(milliseconds(10), [&] {
    const std::lock_guard<std::mutex> guard(mutex);
    order.push_back(1);
  });
  timers.schedule(milliseconds(20), [&] {
    const std::lock_guard<std::mutex> guard(mutex);
    order.push_back(2);
  });
  std::this_thread::sleep_for(milliseconds(80));
  const std::lock_guard<std::mutex> guard(mutex);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerServiceTest, StopDiscardsPendingTimers) {
  std::atomic<bool> fired{false};
  {
    TimerService timers;
    timers.schedule(milliseconds(50), [&] { fired.store(true); });
    timers.stop();
  }
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, ManyConcurrentSchedules) {
  TimerService timers;
  std::atomic<int> count{0};
  constexpr int kTimers = 100;
  for (int i = 0; i < kTimers; ++i) {
    timers.schedule(milliseconds(1 + i % 10), [&] { count.fetch_add(1); });
  }
  const auto deadline = Clock::now() + std::chrono::seconds(3);
  while (count.load() < kTimers && Clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_EQ(count.load(), kTimers);
}

TEST(WatchdogDeathTest, AbortsOnExpiry) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Watchdog dog("test watchdog", milliseconds(10));
        std::this_thread::sleep_for(milliseconds(500));
      },
      "WATCHDOG EXPIRED");
}

TEST(WatchdogTest, DisarmedOnDestruction) {
  { Watchdog dog("fast path", std::chrono::seconds(10)); }
  SUCCEED();  // no abort, no hang
}

}  // namespace
}  // namespace adets::common
