// Lock-order validator tests.  The registry API is always compiled, so
// these run in every build; the integrated tests at the bottom
// additionally drive the hooks through real common::Mutex instances when
// the build defines ADETS_LOCK_ORDER_CHECK (the CI sanitizer job does).
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "common/lock_order.hpp"
#include "common/mutex.hpp"

namespace {

namespace lo = adets::common::lock_order;

/// Installs a capturing failure handler for the duration of a test and
/// restores the previous one (plus a clean registry) on exit.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lo::reset_for_test();
    previous_ = lo::set_failure_handler(
        [this](const lo::CycleReport& report) { captured_ = report; });
  }

  void TearDown() override {
    lo::set_failure_handler(std::move(previous_));
    lo::reset_for_test();
  }

  std::optional<lo::CycleReport> captured_;
  lo::Handler previous_;
};

// Distinct addresses standing in for mutexes.
int A, B, C;

TEST_F(LockOrderTest, ConsistentOrderIsSilent) {
  for (int i = 0; i < 3; ++i) {
    lo::on_acquire(&A, "A");
    lo::on_acquire(&B, "B");
    lo::on_release(&B);
    lo::on_release(&A);
  }
  EXPECT_FALSE(captured_.has_value());
  EXPECT_EQ(lo::edge_count(), 1u);  // the single A -> B edge, deduplicated
}

TEST_F(LockOrderTest, InversionReportsCycleNamingBothLocks) {
  lo::on_acquire(&A, "sched::mon");
  lo::on_acquire(&B, "gcs::mutex");
  lo::on_release(&B);
  lo::on_release(&A);

  lo::on_acquire(&B, "gcs::mutex");
  lo::on_acquire(&A, "sched::mon");  // closes B -> A against A -> B

  ASSERT_TRUE(captured_.has_value());
  EXPECT_NE(captured_->description.find("sched::mon"), std::string::npos);
  EXPECT_NE(captured_->description.find("gcs::mutex"), std::string::npos);
  EXPECT_NE(captured_->description.find("lock-order violation"),
            std::string::npos);
  lo::on_release(&B);
}

TEST_F(LockOrderTest, ThreeLockCycleDetected) {
  lo::on_acquire(&A, "A");
  lo::on_acquire(&B, "B");
  lo::on_release(&B);
  lo::on_release(&A);
  lo::on_acquire(&B, "B");
  lo::on_acquire(&C, "C");
  lo::on_release(&C);
  lo::on_release(&B);
  EXPECT_FALSE(captured_.has_value());

  lo::on_acquire(&C, "C");
  lo::on_acquire(&A, "A");  // closes C -> A against A -> B -> C

  ASSERT_TRUE(captured_.has_value());
  EXPECT_NE(captured_->description.find("A ("), std::string::npos);
  EXPECT_NE(captured_->description.find("B ("), std::string::npos);
  EXPECT_NE(captured_->description.find("C ("), std::string::npos);
  lo::on_release(&C);
}

TEST_F(LockOrderTest, InversionAcrossThreadsDetected) {
  // The edge graph is global: thread 1 establishes A -> B, thread 2
  // closes the cycle even though neither thread deadlocks on its own.
  std::thread t1([] {
    lo::on_acquire(&A, "A");
    lo::on_acquire(&B, "B");
    lo::on_release(&B);
    lo::on_release(&A);
  });
  t1.join();
  std::thread t2([] {
    lo::on_acquire(&B, "B");
    lo::on_acquire(&A, "A");
    lo::on_release(&A);
    lo::on_release(&B);
  });
  t2.join();
  ASSERT_TRUE(captured_.has_value());
}

TEST_F(LockOrderTest, RelockAfterCondvarWaitIsNotAnEdge) {
  // A condvar wait reacquires the monitor while the validator still
  // considers it held; that self-edge must not trip anything.
  lo::on_acquire(&A, "A");
  lo::on_acquire(&A, "A");
  EXPECT_FALSE(captured_.has_value());
  EXPECT_EQ(lo::edge_count(), 0u);
  lo::on_release(&A);
  lo::on_release(&A);
}

TEST_F(LockOrderTest, TryAcquireOrdersSubsequentLocks) {
  // try_lock itself cannot block, so it records no incoming edge -- but
  // locks taken while it is held still order after it.
  lo::on_try_acquire(&A, "A");
  lo::on_acquire(&B, "B");
  EXPECT_EQ(lo::edge_count(), 1u);  // A -> B
  lo::on_release(&B);
  lo::on_release(&A);

  lo::on_acquire(&B, "B");
  lo::on_acquire(&A, "A");
  ASSERT_TRUE(captured_.has_value());
  lo::on_release(&B);
}

TEST_F(LockOrderTest, DestroyPurgesNodeAndEdges) {
  lo::on_acquire(&A, "A");
  lo::on_acquire(&B, "B");
  lo::on_release(&B);
  lo::on_release(&A);
  ASSERT_EQ(lo::edge_count(), 1u);

  lo::on_destroy(&B);
  EXPECT_EQ(lo::edge_count(), 0u);

  // A fresh mutex reusing B's address starts with no history: the
  // former inversion is now just a new edge.
  lo::on_acquire(&B, "B2");
  lo::on_acquire(&A, "A");
  EXPECT_FALSE(captured_.has_value());
  lo::on_release(&A);
  lo::on_release(&B);
}

TEST_F(LockOrderTest, ResetClearsEverything) {
  lo::on_acquire(&A, "A");
  lo::on_acquire(&B, "B");
  lo::on_release(&B);
  lo::on_release(&A);
  lo::reset_for_test();
  EXPECT_EQ(lo::edge_count(), 0u);
  lo::on_acquire(&B, "B");
  lo::on_acquire(&A, "A");
  EXPECT_FALSE(captured_.has_value());
  lo::on_release(&A);
  lo::on_release(&B);
}

#ifdef ADETS_LOCK_ORDER_CHECK

// With the hooks compiled into common::Mutex, real lock/unlock traffic
// must feed the registry without any manual instrumentation.
TEST_F(LockOrderTest, IntegratedMutexInversionDetected) {
  adets::common::Mutex first("test::first");
  adets::common::Mutex second("test::second");
  {
    const adets::common::MutexLock outer(first);
    const adets::common::MutexLock inner(second);
  }
  EXPECT_FALSE(captured_.has_value());
  EXPECT_GE(lo::edge_count(), 1u);
  {
    const adets::common::MutexLock outer(second);
    first.lock();  // inversion: second held while acquiring first
    first.unlock();
  }
  ASSERT_TRUE(captured_.has_value());
  EXPECT_NE(captured_->description.find("test::first"), std::string::npos);
  EXPECT_NE(captured_->description.find("test::second"), std::string::npos);
}

TEST_F(LockOrderTest, IntegratedCondVarWaitKeepsMonitorHeld) {
  adets::common::Mutex mon("test::mon");
  adets::common::CondVar cv;
  adets::common::MutexLock lk(mon);
  cv.wait_for(lk, std::chrono::milliseconds(1));
  EXPECT_FALSE(captured_.has_value());
}

#endif  // ADETS_LOCK_ORDER_CHECK

}  // namespace
