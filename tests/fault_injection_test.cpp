// Fault-injection tests: the FaultPlan layer must be reproducible, and
// the middleware must converge under every fault it models — duplicated,
// delayed and reordered messages are absorbed by the GCS, a crashed and
// restarted replica catches up through NACK repair, and a delayed
// timeout announcement still resolves every bounded wait identically on
// every replica (stale generations no-op).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/serialization.hpp"
#include "runtime/cluster.hpp"
#include "sched_harness.hpp"
#include "transport/fault.hpp"
#include "transport/network.hpp"
#include "workload/kvstore.hpp"
#include "workload/scenario.hpp"

namespace adets {
namespace {

using common::paper_ms;
using common::paper_us;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }

 private:
  double saved_scale_ = 1.0;
};

transport::FaultPlan chaos_plan(std::uint64_t seed) {
  return transport::FaultPlan{}
      .with_seed(seed)
      .duplicate(0.2)
      .delay(paper_us(100), paper_ms(3))
      .reorder(0.15, 4);
}

// --- reproducibility -------------------------------------------------------

TEST_F(FaultInjectionTest, DecideFaultIsPureFunction) {
  const auto plan = transport::FaultPlan{}.with_seed(42).drop(0.3).duplicate(0.3).delay(
      paper_us(0), paper_ms(10));
  const common::NodeId src(1);
  const common::NodeId dst(2);
  for (std::uint64_t counter = 0; counter < 64; ++counter) {
    EXPECT_EQ(decide_fault(plan, src, dst, counter),
              decide_fault(plan, src, dst, counter));
  }
  // The stream is not constant: with p=0.3 over 64 draws, both outcomes occur.
  int drops = 0;
  for (std::uint64_t counter = 0; counter < 64; ++counter) {
    drops += decide_fault(plan, src, dst, counter).dropped ? 1 : 0;
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 64);
}

TEST_F(FaultInjectionTest, FaultScheduleReproducibleAcrossNetworks) {
  const auto plan = chaos_plan(7).drop(0.1);
  transport::FaultTrace traces[2];
  std::uint64_t digests[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    transport::SimNetwork net;
    std::vector<common::NodeId> nodes;
    for (int i = 0; i < 3; ++i) nodes.push_back(net.create_node());
    net.set_fault_plan(plan);
    // A fixed message sequence: every (src, dst) pair, 40 messages each.
    for (int round = 0; round < 40; ++round) {
      for (const auto src : nodes) {
        for (const auto dst : nodes) {
          if (src == dst) continue;
          net.send(src, dst, common::Bytes{static_cast<std::uint8_t>(round)});
        }
      }
    }
    traces[run] = net.fault_trace();
    digests[run] = transport::fault_trace_digest(traces[run]);
    net.stop();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(digests[0], digests[1]);
  // The plan actually did something on at least one link.
  bool any_fault = false;
  for (const auto& [link, decisions] : traces[0]) {
    for (const auto& d : decisions) {
      any_fault |= d.dropped || d.duplicated || d.reordered || d.extra_delay_ns > 0;
    }
  }
  EXPECT_TRUE(any_fault);
}

TEST_F(FaultInjectionTest, SingleClientScenarioReproducibleAcrossRuns) {
  workload::ScenarioConfig config;
  config.clients = 1;  // total order == program order: hash is seed-determined
  config.requests_per_client = 20;
  config.faults = chaos_plan(11);
  const auto first = run_scenario(sched::SchedulerKind::kSat, config);
  const auto second = run_scenario(sched::SchedulerKind::kSat, config);
  ASSERT_TRUE(first.drained);
  ASSERT_TRUE(second.drained);
  EXPECT_TRUE(first.converged);
  EXPECT_TRUE(second.converged);
  ASSERT_FALSE(first.state_hashes.empty());
  EXPECT_EQ(first.state_hashes[0], second.state_hashes[0]);
}

// --- tolerance -------------------------------------------------------------

TEST_F(FaultInjectionTest, DuplicationAbsorbedByAtMostOnceDelivery) {
  workload::ScenarioConfig config;
  config.faults = transport::FaultPlan{}.with_seed(3).duplicate(0.3);
  const auto result = run_scenario(sched::SchedulerKind::kSat, config);
  ASSERT_TRUE(result.drained);
  EXPECT_TRUE(result.converged) << result.audit.diagnostic;
  EXPECT_GT(result.net.messages_duplicated, 0u);
}

TEST_F(FaultInjectionTest, ReorderingAndDelayRepairedByHoldback) {
  workload::ScenarioConfig config;
  config.faults =
      transport::FaultPlan{}.with_seed(5).delay(paper_us(100), paper_ms(3)).reorder(0.25, 4);
  const auto result = run_scenario(sched::SchedulerKind::kMat, config);
  ASSERT_TRUE(result.drained);
  EXPECT_TRUE(result.converged) << result.audit.diagnostic;
  EXPECT_GT(result.net.messages_reordered, 0u);
  EXPECT_GT(result.net.messages_fault_delayed, 0u);
}

TEST_F(FaultInjectionTest, CrashedReplicaCatchesUpAfterRestart) {
  runtime::Cluster cluster;
  const auto group = cluster.create_group(3, sched::SchedulerKind::kSat, [] {
    return std::make_unique<workload::KvStore>();
  });
  auto& client = cluster.create_client();
  const auto members = cluster.members(group);
  ASSERT_EQ(members.size(), 3u);

  // Crash the third replica almost immediately, restart it well before
  // the 150 ms (real-time) suspect timeout, so no view change occurs and
  // the missed suffix must be repaired by NACK/retransmission.
  cluster.network().set_fault_plan(transport::FaultPlan{}
                                       .crash_at(paper_ms(5), members[2])
                                       .restart_at(paper_ms(3000), members[2]));

  for (int i = 0; i < 15; ++i) {
    client.invoke(group, "put",
                  workload::KvStore::pack_put("k" + std::to_string(i % 4),
                                              "a" + std::to_string(i)));
  }
  // Let the scheduled restart fire (paper 3000 ms = 30 ms real at 0.01),
  // then issue more traffic so the revived replica notices its gap.
  common::Clock::sleep_real(std::chrono::milliseconds(50));
  for (int i = 0; i < 10; ++i) {
    client.invoke(group, "put",
                  workload::KvStore::pack_put("k" + std::to_string(i % 4),
                                              "b" + std::to_string(i)));
  }

  ASSERT_TRUE(cluster.wait_drained(group, 25, std::chrono::seconds(60)));
  const auto report = repl::audit_group(cluster, group);
  EXPECT_FALSE(report.diverged) << report.diagnostic;
  EXPECT_EQ(report.replicas.size(), 3u);  // the restarted replica is back
  const auto stats = cluster.network().stats();
  EXPECT_EQ(stats.node_crashes, 1u);
  EXPECT_EQ(stats.node_restarts, 1u);
}

// --- timed waits under injected delay -------------------------------------

TEST_F(FaultInjectionTest, WatchTimeoutResolvesIdenticallyUnderDelay) {
  for (const auto kind : workload::all_scheduler_kinds()) {
    if (!sched::make_scheduler(kind)->capabilities().timed_wait) continue;
    SCOPED_TRACE(to_string(kind));

    runtime::Cluster cluster;
    const auto group = cluster.create_group(
        3, kind, [] { return std::make_unique<workload::KvStore>(); });
    auto& client = cluster.create_client();
    cluster.network().set_fault_plan(
        transport::FaultPlan{}.with_seed(9).delay(paper_us(200), paper_ms(2)));

    // Nobody touches the key, so the bounded watch must expire — on
    // every replica, even though each replica's timeout announcement
    // reaches the others late.
    const auto reply = client.invoke(
        group, "watch", workload::KvStore::pack_watch("idle-key", 50));
    common::Reader r(reply);
    EXPECT_FALSE(r.boolean());

    ASSERT_TRUE(cluster.wait_drained(group, 1, std::chrono::seconds(30)));
    const auto report = repl::audit_group(cluster, group);
    EXPECT_FALSE(report.diverged) << report.diagnostic;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(cluster.replica(group, i).scheduler().stats().timeouts_fired, 1u);
    }
  }
}

TEST_F(FaultInjectionTest, StaleGenerationTimeoutIsNoOp) {
  testing::SchedulerCluster cluster(sched::SchedulerKind::kSat, 2);

  // Request 1 starts a long bounded wait (paper 5000 ms = 50 ms real);
  // request 2 notifies it long before that expires.
  cluster.set_body(1, [](testing::BodyCtx& ctx) {
    ctx.lock(1);
    const bool notified = ctx.wait_for(1, 7, paper_ms(5000));
    ctx.trace(notified ? "notified" : "timeout");
    ctx.unlock(1);
  });
  cluster.set_body(2, [](testing::BodyCtx& ctx) {
    ctx.lock(1);
    ctx.notify_all(1, 7);
    ctx.unlock(1);
  });

  cluster.submit(1);
  common::Clock::sleep_real(std::chrono::milliseconds(20));  // let it block
  cluster.submit(2);
  ASSERT_TRUE(cluster.wait_completed(2));

  // The armed timer still fires after the wait already resumed; its
  // (delayed) announcement carries a stale generation.  Inject one more
  // stale announcement explicitly, as a badly delayed duplicate would.
  common::Clock::sleep_real(std::chrono::milliseconds(60));
  common::Writer w;
  w.u8('T');
  w.id(common::ThreadId(0));   // request 1's deterministically assigned thread
  w.id(common::MutexId(1));
  w.id(common::CondVarId(7));
  w.u64(1);                    // that thread's first (long finished) wait
  cluster.broadcast_from(0, w.take());
  common::Clock::sleep_real(std::chrono::milliseconds(20));

  for (int i = 0; i < cluster.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(cluster.trace(i), std::vector<std::string>{"notified"});
    EXPECT_EQ(cluster.replica(i).stats().timeouts_fired, 0u);
    const auto decisions = cluster.replica(i).decision_trace();
    bool saw_stale = false;
    for (const auto& d : decisions) {
      saw_stale |= d.kind == sched::Decision::Kind::kStaleTimeout;
    }
    EXPECT_TRUE(saw_stale);
  }
}

}  // namespace
}  // namespace adets
