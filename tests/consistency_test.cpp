// Tests for the consistency checker and the client stub edge cases.
#include <gtest/gtest.h>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "workload/objects.hpp"

namespace adets::repl {
namespace {

using common::GroupId;
using sched::SchedulerKind;
using workload::pack_u64;

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

TEST_F(ConsistencyTest, ProjectionSplitsByMutex) {
  std::vector<sched::GrantRecord> trace{
      {common::MutexId(1), common::ThreadId(10)},
      {common::MutexId(2), common::ThreadId(20)},
      {common::MutexId(1), common::ThreadId(11)},
  };
  const auto projected = per_mutex_projection(trace);
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected.at(1), (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(projected.at(2), (std::vector<std::uint64_t>{20}));
}

TEST_F(ConsistencyTest, HealthyGroupReportsConsistent) {
  runtime::Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, SchedulerKind::kSat, [] { return std::make_unique<workload::BankAccounts>(2); });
  runtime::Client& client = cluster.create_client();
  for (int i = 0; i < 5; ++i) client.invoke(bank, "deposit", pack_u64(0, 1));
  ASSERT_TRUE(cluster.wait_drained(bank, 5));
  const auto report = check_group(cluster, bank);
  EXPECT_TRUE(report.consistent());
  EXPECT_TRUE(report.states_match);
  EXPECT_TRUE(report.grant_orders_match);
  EXPECT_EQ(report.state_hashes.size(), 3u);
  EXPECT_TRUE(report.detail.empty());
}

TEST_F(ConsistencyTest, CrashedReplicasAreExcluded) {
  runtime::Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, SchedulerKind::kSeq, [] { return std::make_unique<workload::BankAccounts>(2); });
  runtime::Client& client = cluster.create_client();
  client.invoke(bank, "deposit", pack_u64(0, 1));
  ASSERT_TRUE(cluster.wait_drained(bank, 1));
  cluster.crash_replica(bank, 2);
  const auto report = check_group(cluster, bank);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.state_hashes.size(), 2u);
}

TEST_F(ConsistencyTest, ClientTimesOutWhenGroupUnreachable) {
  runtime::Cluster cluster;
  const GroupId group = cluster.create_group(
      1, SchedulerKind::kSeq, [] { return std::make_unique<workload::EchoService>(); });
  runtime::Client& client = cluster.create_client();
  cluster.crash_replica(group, 0);
  EXPECT_THROW(client.invoke(group, "echo", {}, std::chrono::milliseconds(150)),
               std::runtime_error);
}

TEST_F(ConsistencyTest, OnewayInvocationExecutesWithoutReply) {
  runtime::Cluster cluster;
  const GroupId group = cluster.create_group(
      3, SchedulerKind::kSeq, [] { return std::make_unique<workload::EchoService>(); });
  runtime::Client& client = cluster.create_client();
  client.invoke_oneway(group, "echo", pack_u64(1));
  ASSERT_TRUE(cluster.wait_drained(group, 1));
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(group, r).state_hash(), 1u);  // calls_ == 1
  }
}

TEST_F(ConsistencyTest, NetworkStatsAccumulate) {
  runtime::Cluster cluster;
  const GroupId group = cluster.create_group(
      3, SchedulerKind::kSeq, [] { return std::make_unique<workload::EchoService>(); });
  runtime::Client& client = cluster.create_client();
  const auto before = cluster.network().stats();
  client.invoke(group, "echo", {});
  const auto after = cluster.network().stats();
  EXPECT_GT(after.messages_sent, before.messages_sent);
  EXPECT_GT(after.bytes_sent, before.bytes_sent);
}

}  // namespace
}  // namespace adets::repl
