// Scheduler statistics counters.
#include <gtest/gtest.h>

#include "sched_harness.hpp"

namespace adets::testing {
namespace {

using sched::SchedulerKind;

class StatsTest : public ::testing::Test,
                  public ::testing::WithParamInterface<SchedulerKind> {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.05);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

INSTANTIATE_TEST_SUITE_P(Kinds, StatsTest,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(StatsTest, CountersReflectWorkload) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  SchedulerCluster cluster(GetParam(), 1, config);
  std::vector<std::unique_ptr<std::atomic<bool>>> flag;
  flag.push_back(std::make_unique<std::atomic<bool>>(false));

  cluster.set_body(0, [&](BodyCtx& ctx) {
    ctx.lock(1);
    while (!flag[0]->load()) ctx.wait(1, 2);
    ctx.unlock(1);
  });
  cluster.set_body(1, [&](BodyCtx& ctx) {
    ctx.lock(1);
    flag[0]->store(true);
    ctx.notify_one(1, 2);
    ctx.unlock(1);
  });
  cluster.submit(0);
  common::Clock::sleep_real(std::chrono::milliseconds(20));
  cluster.submit(1);
  ASSERT_TRUE(cluster.wait_completed(2));

  const auto stats = cluster.replica(0).stats();
  EXPECT_GE(stats.lock_grants, 2u);   // both bodies took mutex 1
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.notifies, 1u);
  EXPECT_GE(stats.threads_spawned, 2u);
  EXPECT_EQ(stats.timeouts_fired, 0u);  // unbounded wait, no timer
  if (GetParam() == SchedulerKind::kLsa) {
    EXPECT_GT(stats.broadcasts, 0u);  // mutex tables
  }
  if (GetParam() == SchedulerKind::kPds) {
    EXPECT_GT(stats.rounds, 0u);
  }
  if (GetParam() == SchedulerKind::kSat || GetParam() == SchedulerKind::kMat) {
    EXPECT_GT(stats.activations, 0u);
  }
}

TEST_P(StatsTest, TimedOutWaitIncrementsTimeoutCounter) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 2;
  SchedulerCluster cluster(GetParam(), 1, config);
  cluster.set_body(0, [](BodyCtx& ctx) {
    ctx.lock(1);
    ctx.wait_for(1, 2, common::paper_ms(40));
    ctx.unlock(1);
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  common::Clock::sleep_real(std::chrono::milliseconds(50));
  const auto stats = cluster.replica(0).stats();
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.timeouts_fired, 1u);
}

}  // namespace
}  // namespace adets::testing
