// Cross-strategy determinism conformance.
//
// Every SchedulerKind must (a) keep a 3-replica cluster convergent under
// the canonical concurrent workload, and (b) compute the SAME final
// state as every other strategy when the request order is fixed — with a
// single client the total order equals program order, so the end state
// is a pure function of the workload seed and must not depend on which
// scheduling strategy executed it.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/clock.hpp"
#include "workload/scenario.hpp"

namespace adets {
namespace {

class ConformanceTest : public ::testing::TestWithParam<sched::SchedulerKind> {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }

 private:
  double saved_scale_ = 1.0;
};

TEST_P(ConformanceTest, ReplicasConvergeUnderConcurrentClients) {
  workload::ScenarioConfig config;
  config.replicas = 3;
  config.clients = 2;
  config.requests_per_client = 12;
  const auto result = run_scenario(GetParam(), config);
  ASSERT_TRUE(result.drained);
  EXPECT_TRUE(result.converged) << result.audit.diagnostic;
  ASSERT_EQ(result.state_hashes.size(), 3u);
  EXPECT_EQ(result.state_hashes[0], result.state_hashes[1]);
  EXPECT_EQ(result.state_hashes[0], result.state_hashes[2]);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConformanceTest,
                         ::testing::ValuesIn(workload::all_scheduler_kinds()),
                         [](const auto& info) { return to_string(info.param); });

TEST(CrossStrategyConformance, FixedOrderYieldsOneStateAcrossAllStrategies) {
  const double saved_scale = common::Clock::scale();
  common::Clock::set_scale(0.01);

  std::map<std::string, std::uint64_t> hash_by_kind;
  for (const auto kind : workload::all_scheduler_kinds()) {
    workload::ScenarioConfig config;
    config.clients = 1;  // total order == program order
    config.requests_per_client = 16;
    config.workload_seed = 21;
    const auto result = run_scenario(kind, config);
    ASSERT_TRUE(result.drained) << to_string(kind);
    ASSERT_TRUE(result.converged) << to_string(kind) << result.audit.diagnostic;
    ASSERT_FALSE(result.state_hashes.empty());
    hash_by_kind[to_string(kind)] = result.state_hashes[0];
  }

  const auto reference = hash_by_kind.begin()->second;
  for (const auto& [kind, hash] : hash_by_kind) {
    EXPECT_EQ(hash, reference) << kind << " disagrees with the other strategies";
  }
  common::Clock::set_scale(saved_scale);
}

}  // namespace
}  // namespace adets
