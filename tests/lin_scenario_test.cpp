// End-to-end linearizability audit of the scenario runner.
//
// Every stock strategy must produce a linearizable client history under
// fault storms (duplication, delay, reordering, crash+restart): the
// replicated object is supposed to *be* a linearizable KvStore no
// matter how the transport misbehaves.  The RacyScheduler negative
// control shows the wiring has teeth: a run that diverges (or fails the
// check) dumps a replayable history artifact and reports its path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "lin/history.hpp"
#include "racy_scheduler.hpp"
#include "transport/fault.hpp"
#include "workload/scenario.hpp"

namespace adets {
namespace {

using common::paper_ms;
using common::paper_us;

class LinScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }

 private:
  double saved_scale_ = 1.0;
};

transport::FaultPlan storm(std::uint64_t seed) {
  return transport::FaultPlan{}
      .with_seed(seed)
      .duplicate(0.2)
      .delay(paper_us(100), paper_ms(2))
      .reorder(0.15, 4);
}

// The acceptance sweep: 6 strategies x 3 fault seeds, every run's
// recorded history accepted by the Wing-Gong checker.
TEST_F(LinScenarioTest, AllStrategiesLinearizableUnderFaultStorms) {
  for (const auto kind : workload::all_scheduler_kinds()) {
    for (const std::uint64_t seed : {3ULL, 11ULL, 23ULL}) {
      SCOPED_TRACE(to_string(kind) + " seed=" + std::to_string(seed));
      workload::ScenarioConfig config;
      config.requests_per_client = 8;
      config.workload_seed = seed;
      config.faults = storm(seed);
      const auto result = run_scenario(kind, config);
      ASSERT_TRUE(result.drained);
      EXPECT_TRUE(result.converged) << result.audit.diagnostic;
      ASSERT_TRUE(result.lin_checked);
      EXPECT_FALSE(result.lin.exhausted_budget);
      EXPECT_TRUE(result.lin.linearizable) << result.lin.explanation;
      EXPECT_EQ(result.lin.ops, result.history.ops.size());
      EXPECT_TRUE(result.artifact_path.empty()) << result.artifact_path;
    }
  }
}

// Crash + restart of one replica mid-run: the catch-up path (NACK
// repair) must not leak a stale read into the client history.
TEST_F(LinScenarioTest, CrashRestartStormStaysLinearizable) {
  workload::ScenarioConfig config;
  config.requests_per_client = 12;
  config.workload_seed = 7;
  config.drain_timeout = std::chrono::seconds(30);
  // Replica nodes are created first, so the third replica is NodeId(2).
  // Crash it early and restart it while client traffic is still flowing
  // (and well before the suspect timeout), so the missed suffix is
  // repaired by NACK retransmission rather than a view change.
  config.faults = transport::FaultPlan{}
                      .with_seed(7)
                      .duplicate(0.1)
                      .delay(paper_us(50), paper_ms(1))
                      .crash_at(paper_ms(5), common::NodeId(2))
                      .restart_at(paper_ms(200), common::NodeId(2));
  const auto result = run_scenario(sched::SchedulerKind::kSat, config);
  ASSERT_TRUE(result.drained);
  EXPECT_TRUE(result.converged) << result.audit.diagnostic;
  ASSERT_TRUE(result.lin_checked);
  EXPECT_TRUE(result.lin.linearizable) << result.lin.explanation;
  EXPECT_GT(result.net.node_crashes, 0u);
  EXPECT_GT(result.net.node_restarts, 0u);
}

// Negative control: a RacyScheduler-driven run must be flagged (either
// as divergence or as a non-linearizable history) and must dump a
// machine-readable artifact that round-trips through the history
// loader — the exact file `tools/lincheck` replays.
TEST_F(LinScenarioTest, RacyRunDumpsReplayableArtifact) {
  const auto dir =
      std::filesystem::temp_directory_path() / "adets-lin-scenario-artifacts";
  std::filesystem::remove_all(dir);
  ::setenv("ADETS_ARTIFACT_DIR", dir.string().c_str(), 1);  // NOLINT(concurrency-mt-unsafe)

  std::string artifact;
  // The racy grant order is real-time nondeterminism; retry a few seeds
  // so a fluke clean run cannot fail the suite.
  for (std::uint64_t seed = 1; seed <= 5 && artifact.empty(); ++seed) {
    workload::ScenarioConfig config;
    config.clients = 4;
    config.requests_per_client = 10;
    config.workload_seed = seed;
    const auto result = run_scenario(
        [] { return std::make_unique<testing::RacyScheduler>(); }, config);
    if (!result.artifact_path.empty()) {
      EXPECT_TRUE(result.audit.diverged || result.background_divergence ||
                  (result.lin_checked && !result.lin.linearizable));
      artifact = result.artifact_path;
    }
  }
  ::unsetenv("ADETS_ARTIFACT_DIR");  // NOLINT(concurrency-mt-unsafe)
  ASSERT_FALSE(artifact.empty())
      << "five racy runs produced neither divergence nor a lin violation";

  std::ifstream in(artifact);
  ASSERT_TRUE(in.is_open()) << artifact;
  std::string error;
  const auto loaded = lin::load_history(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->spec_name, "kv");
  EXPECT_FALSE(loaded->history.ops.empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adets
