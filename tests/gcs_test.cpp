// Tests for the group communication substrate: total order, agreement,
// external submissions, NACK repair, sequencer fail-over.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/watchdog.hpp"
#include "gcs/group_service.hpp"

namespace adets::gcs {
namespace {

using common::Bytes;
using common::GroupId;
using common::NodeId;

Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string str(const Bytes& b) { return std::string(b.begin(), b.end()); }

/// Records deliveries of one member for later comparison.
struct DeliveryLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> messages;
  std::vector<std::uint32_t> views;

  void add(const Sequenced& m) {
    const std::lock_guard<std::mutex> guard(mutex);
    messages.push_back(std::string(m.submission.payload.data(),
                                   m.submission.payload.data() +
                                       m.submission.payload.size()));
    cv.notify_all();
  }
  void add_view(const View& v) {
    const std::lock_guard<std::mutex> guard(mutex);
    views.push_back(v.id.value());
    cv.notify_all();
  }
  bool wait_count(std::size_t n, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return messages.size() >= n; });
  }
  bool wait_view(std::uint32_t view_id, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] {
      return !views.empty() && views.back() >= view_id;
    });
  }
  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> guard(mutex);
    return messages;
  }
};

/// A three-member group plus one external client node.
class GcsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
    net_ = std::make_unique<transport::SimNetwork>();
    for (int i = 0; i < 4; ++i) nodes_.push_back(net_->create_node());
    for (int i = 0; i < 4; ++i) {
      services_.push_back(std::make_unique<GroupService>(*net_, nodes_[i]));
    }
    members_ = {nodes_[0], nodes_[1], nodes_[2]};
    for (int i = 0; i < 3; ++i) {
      logs_.push_back(std::make_unique<DeliveryLog>());
      DeliveryLog* log = logs_.back().get();
      GroupCallbacks callbacks;
      callbacks.deliver = [log](GroupId, const Sequenced& m) { log->add(m); };
      callbacks.on_view = [log](GroupId, const View& v) { log->add_view(v); };
      services_[i]->join(kGroup, members_, callbacks);
    }
    services_[3]->connect(kGroup, members_);
  }

  void TearDown() override {
    for (auto& s : services_) s->stop();
    net_->stop();
    common::Clock::set_scale(saved_scale_);
  }

  static constexpr GroupId kGroup{7};
  double saved_scale_ = 1.0;
  std::unique_ptr<transport::SimNetwork> net_;
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<GroupService>> services_;
  std::vector<NodeId> members_;
  std::vector<std::unique_ptr<DeliveryLog>> logs_;
};

constexpr GroupId GcsTest::kGroup;

TEST_F(GcsTest, MemberSubmissionDeliveredToAllMembers) {
  services_[0]->submit(kGroup, text("hello"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(logs_[i]->wait_count(1, std::chrono::seconds(3))) << "member " << i;
    EXPECT_EQ(logs_[i]->snapshot(), std::vector<std::string>{"hello"});
  }
}

TEST_F(GcsTest, ExternalSubmissionDeliveredToAllMembers) {
  services_[3]->submit(kGroup, text("from-client"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(logs_[i]->wait_count(1, std::chrono::seconds(3)));
    EXPECT_EQ(logs_[i]->snapshot(), std::vector<std::string>{"from-client"});
  }
}

TEST_F(GcsTest, TotalOrderAgreesAcrossMembersUnderConcurrency) {
  common::Watchdog dog("gcs total order", std::chrono::seconds(60));
  constexpr int kPerSender = 40;
  std::vector<std::thread> senders;
  for (int s = 0; s < 4; ++s) {
    senders.emplace_back([this, s] {
      for (int i = 0; i < kPerSender; ++i) {
        services_[s]->submit(kGroup, text("s" + std::to_string(s) + "-" + std::to_string(i)));
      }
    });
  }
  for (auto& t : senders) t.join();
  const std::size_t total = 4 * kPerSender;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(logs_[i]->wait_count(total, std::chrono::seconds(30))) << "member " << i;
  }
  const auto reference = logs_[0]->snapshot();
  EXPECT_EQ(reference.size(), total);
  EXPECT_EQ(logs_[1]->snapshot(), reference);
  EXPECT_EQ(logs_[2]->snapshot(), reference);
  // Per-sender FIFO must hold inside the total order.
  for (int s = 0; s < 4; ++s) {
    int expected = 0;
    const std::string prefix = "s" + std::to_string(s) + "-";
    for (const auto& m : reference) {
      if (m.rfind(prefix, 0) == 0) {
        EXPECT_EQ(m, prefix + std::to_string(expected));
        expected++;
      }
    }
    EXPECT_EQ(expected, kPerSender);
  }
}

TEST_F(GcsTest, SubmissionsAreDeduplicatedAcrossRetries) {
  // Force retransmission by making acks slow: crash nothing, just submit
  // and verify exactly-once delivery despite the sender-side retry timer.
  for (int i = 0; i < 20; ++i) {
    services_[3]->submit(kGroup, text("m" + std::to_string(i)));
  }
  ASSERT_TRUE(logs_[0]->wait_count(20, std::chrono::seconds(10)));
  // Allow extra time for would-be duplicates to arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(logs_[0]->snapshot().size(), 20u);
  EXPECT_EQ(logs_[1]->snapshot(), logs_[0]->snapshot());
}

TEST_F(GcsTest, SequencerFailoverContinuesTotalOrder) {
  common::Watchdog dog("gcs failover", std::chrono::seconds(120));
  for (int i = 0; i < 10; ++i) {
    services_[3]->submit(kGroup, text("pre-" + std::to_string(i)));
  }
  ASSERT_TRUE(logs_[1]->wait_count(10, std::chrono::seconds(10)));
  ASSERT_TRUE(logs_[2]->wait_count(10, std::chrono::seconds(10)));

  // Crash the sequencer (lowest node id).
  net_->crash(nodes_[0]);
  ASSERT_TRUE(logs_[1]->wait_view(1, std::chrono::seconds(20)));
  ASSERT_TRUE(logs_[2]->wait_view(1, std::chrono::seconds(20)));
  EXPECT_EQ(services_[1]->current_view(kGroup).sequencer(), nodes_[1]);

  for (int i = 0; i < 10; ++i) {
    services_[3]->submit(kGroup, text("post-" + std::to_string(i)));
  }
  ASSERT_TRUE(logs_[1]->wait_count(20, std::chrono::seconds(20)));
  ASSERT_TRUE(logs_[2]->wait_count(20, std::chrono::seconds(20)));
  const auto log1 = logs_[1]->snapshot();
  const auto log2 = logs_[2]->snapshot();
  EXPECT_EQ(log1, log2);
  // All pre- messages precede all post- messages and nothing is lost.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log1[i], "pre-" + std::to_string(i));
    EXPECT_EQ(log1[10 + i], "post-" + std::to_string(i));
  }
}

TEST_F(GcsTest, InFlightSubmissionsSurviveFailover) {
  common::Watchdog dog("gcs inflight failover", std::chrono::seconds(120));
  // Submit continuously while the sequencer dies.
  std::atomic<bool> stop{false};
  std::atomic<int> sent{0};
  std::thread pump([&] {
    while (!stop.load()) {
      services_[3]->submit(kGroup, text("x" + std::to_string(sent.fetch_add(1))));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  net_->crash(nodes_[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  pump.join();
  const std::size_t total = static_cast<std::size_t>(sent.load());
  ASSERT_TRUE(logs_[1]->wait_count(total, std::chrono::seconds(30)))
      << "delivered " << logs_[1]->snapshot().size() << " of " << total;
  ASSERT_TRUE(logs_[2]->wait_count(total, std::chrono::seconds(30)));
  const auto log1 = logs_[1]->snapshot();
  EXPECT_EQ(log1, logs_[2]->snapshot());
  // Exactly-once: all distinct.
  std::set<std::string> unique(log1.begin(), log1.end());
  EXPECT_EQ(unique.size(), log1.size());
}

TEST_F(GcsTest, DirectMessagesBypassTotalOrder) {
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::string> got;
  services_[3]->set_direct_handler([&](NodeId src, const common::SharedBytes& payload) {
    const std::lock_guard<std::mutex> guard(m);
    got.push_back(str(payload.to_bytes()) + "@" + std::to_string(src.value()));
    cv.notify_all();
  });
  services_[0]->send_direct(nodes_[3], text("reply"));
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(3), [&] { return !got.empty(); }));
  EXPECT_EQ(got[0], "reply@0");
}

TEST_F(GcsTest, ViewReportsSortedMembersAndSequencer) {
  const View v = services_[0]->current_view(kGroup);
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.sequencer(), nodes_[0]);
  EXPECT_TRUE(std::is_sorted(v.members.begin(), v.members.end()));
  EXPECT_TRUE(v.contains(nodes_[1]));
  EXPECT_FALSE(v.contains(nodes_[3]));
}

}  // namespace
}  // namespace adets::gcs
