// Unit tests for the simulated network.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "transport/network.hpp"

namespace adets::transport {
namespace {

using common::Bytes;
using common::NodeId;

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);  // keep latencies tiny
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

Bytes payload(std::uint8_t tag) { return Bytes{tag}; }

TEST_F(TransportTest, DeliversMessageToHandler) {
  SimNetwork net;
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();

  std::mutex m;
  std::condition_variable cv;
  std::vector<Message> received;
  net.set_handler(b, [&](Message msg) {
    const std::lock_guard<std::mutex> guard(m);
    received.push_back(std::move(msg));
    cv.notify_all();
  });

  ASSERT_TRUE(net.send(a, b, payload(7)));
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(2),
                          [&] { return !received.empty(); }));
  EXPECT_EQ(received[0].src, a);
  EXPECT_EQ(received[0].dst, b);
  EXPECT_EQ(received[0].payload, payload(7));
}

TEST_F(TransportTest, PerLinkFifoDespiteJitter) {
  LinkConfig link;
  link.base_latency = common::paper_us(100);
  link.jitter = common::paper_ms(5);  // large jitter to provoke reordering
  SimNetwork net(link, /*seed=*/42);
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();

  std::mutex m;
  std::condition_variable cv;
  std::vector<std::uint8_t> order;
  net.set_handler(b, [&](Message msg) {
    const std::lock_guard<std::mutex> guard(m);
    order.push_back(msg.payload[0]);
    cv.notify_all();
  });

  constexpr int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    net.send(a, b, payload(static_cast<std::uint8_t>(i)));
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return order.size() == kCount; }));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(TransportTest, CrashedNodeReceivesNothing) {
  SimNetwork net;
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();
  std::atomic<int> count{0};
  net.set_handler(b, [&](Message) { count++; });

  net.crash(b);
  EXPECT_TRUE(net.crashed(b));
  EXPECT_FALSE(net.send(a, b, payload(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST_F(TransportTest, CrashedNodeSendsNothing) {
  SimNetwork net;
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();
  std::atomic<int> count{0};
  net.set_handler(b, [&](Message) { count++; });

  net.crash(a);
  EXPECT_FALSE(net.send(a, b, payload(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(count.load(), 0);
}

TEST_F(TransportTest, DropProbabilityDropsEverythingAtOne) {
  SimNetwork net;
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();
  LinkConfig lossy;
  lossy.drop_probability = 1.0;
  net.set_link(a, b, lossy);

  std::atomic<int> count{0};
  net.set_handler(b, [&](Message) { count++; });
  for (int i = 0; i < 10; ++i) net.send(a, b, payload(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(net.stats().messages_dropped, 10u);
}

TEST_F(TransportTest, LatencyIsApplied) {
  LinkConfig link;
  link.base_latency = common::paper_ms(500);  // 5ms real at scale 0.01
  link.jitter = common::Duration::zero();
  SimNetwork net(link);
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();

  std::mutex m;
  std::condition_variable cv;
  bool got = false;
  common::TimePoint arrival;
  net.set_handler(b, [&](Message) {
    const std::lock_guard<std::mutex> guard(m);
    arrival = common::Clock::now();
    got = true;
    cv.notify_all();
  });

  const auto start = common::Clock::now();
  net.send(a, b, payload(1));
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(2), [&] { return got; }));
  EXPECT_GE(arrival - start, std::chrono::milliseconds(4));
}

TEST_F(TransportTest, ManyNodesAllToAll) {
  SimNetwork net;
  constexpr int kNodes = 8;
  std::vector<NodeId> nodes;
  std::atomic<int> delivered{0};
  for (int i = 0; i < kNodes; ++i) nodes.push_back(net.create_node());
  for (int i = 0; i < kNodes; ++i) {
    net.set_handler(nodes[i], [&](Message) { delivered++; });
  }
  for (int i = 0; i < kNodes; ++i) {
    for (int j = 0; j < kNodes; ++j) {
      if (i != j) net.send(nodes[i], nodes[j], payload(1));
    }
  }
  const auto deadline = common::Clock::now() + std::chrono::seconds(2);
  while (delivered.load() < kNodes * (kNodes - 1) &&
         common::Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), kNodes * (kNodes - 1));
  EXPECT_EQ(net.stats().messages_delivered, static_cast<std::uint64_t>(kNodes * (kNodes - 1)));
}

TEST_F(TransportTest, StopIsIdempotentAndSafe) {
  SimNetwork net;
  const NodeId a = net.create_node();
  const NodeId b = net.create_node();
  net.set_handler(b, [](Message) {});
  net.send(a, b, payload(1));
  net.stop();
  net.stop();
  EXPECT_FALSE(net.send(a, b, payload(2)));
}

}  // namespace
}  // namespace adets::transport
