// In-process test harness for scheduler implementations.
//
// Drives N replica instances of one scheduler kind through an emulated
// total-order event bus (requests, nested replies, scheduler broadcasts
// are delivered to every replica in the same global order, mirroring
// what the GCS provides in the full runtime).  Request bodies are C++
// lambdas registered per request id; they receive a context with the
// synchronisation API and an append-only per-replica trace used to
// compare state-access orders across replicas.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/clock.hpp"
#include "common/types.hpp"
#include "sched/api.hpp"

namespace adets::testing {

class SchedulerCluster;

/// What a request body sees: the replica's scheduler plus tracing helpers.
class BodyCtx {
 public:
  BodyCtx(SchedulerCluster& cluster, int replica, sched::Scheduler& scheduler,
          const sched::Request& request)
      : cluster_(cluster), replica_(replica), scheduler_(scheduler), request_(request) {}

  void lock(std::uint64_t m) { scheduler_.lock(common::MutexId(m)); }
  void unlock(std::uint64_t m) { scheduler_.unlock(common::MutexId(m)); }
  bool wait(std::uint64_t m, std::uint64_t cv) {
    return scheduler_.wait(common::MutexId(m), common::CondVarId(cv), common::Duration::zero()).notified;
  }
  bool wait_for(std::uint64_t m, std::uint64_t cv, common::Duration paper_timeout) {
    return scheduler_.wait(common::MutexId(m), common::CondVarId(cv), paper_timeout).notified;
  }
  void notify_one(std::uint64_t m, std::uint64_t cv) {
    scheduler_.notify_one(common::MutexId(m), common::CondVarId(cv));
  }
  void notify_all(std::uint64_t m, std::uint64_t cv) {
    scheduler_.notify_all(common::MutexId(m), common::CondVarId(cv));
  }
  void yield() { scheduler_.yield(); }

  /// Simulated computation: sleeps real time (already tiny in tests).
  void compute(common::Duration real_time) { common::Clock::sleep_real(real_time); }

  /// Synchronous nested invocation; the reply is delivered by the test
  /// driver (or automatically if auto_reply is enabled on the cluster).
  void nested_call(std::uint64_t nested_id);

  /// Appends to the replica's state trace (call only under a lock when
  /// simulating shared-state access).
  void trace(const std::string& entry);

  [[nodiscard]] int replica() const { return replica_; }
  [[nodiscard]] const sched::Request& request() const { return request_; }

 private:
  SchedulerCluster& cluster_;
  int replica_;
  sched::Scheduler& scheduler_;
  sched::Request request_;
};

using Body = std::function<void(BodyCtx&)>;

/// N replicas of one scheduler kind joined by an emulated total order.
class SchedulerCluster {
 public:
  SchedulerCluster(sched::SchedulerKind kind, int replicas,
                   sched::SchedulerConfig config = {})
      : kind_(kind) {
    for (int i = 0; i < replicas; ++i) {
      members_.emplace_back(static_cast<std::uint32_t>(i));
    }
    for (int i = 0; i < replicas; ++i) {
      auto scheduler = sched::make_scheduler(kind, config);
      auto env = std::make_unique<Env>(*this, i, *scheduler);
      scheduler->set_trace(true);
      scheduler->start(*env);
      envs_.push_back(std::move(env));
      schedulers_.push_back(std::move(scheduler));
      traces_.push_back(std::make_unique<TraceLog>());
    }
    bus_thread_ = std::thread([this] { bus_loop(); });
  }

  ~SchedulerCluster() { stop(); }

  void stop() {
    std::vector<std::thread> reply_threads;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      if (stopped_) return;
      stopped_ = true;
      reply_threads.swap(auto_reply_threads_);
    }
    for (auto& t : reply_threads) {
      if (t.joinable()) t.join();
    }
    bus_.close();
    if (bus_thread_.joinable()) bus_thread_.join();
    for (auto& s : schedulers_) s->stop();
  }

  /// Registers the body executed (on every replica) for `request_id`.
  void set_body(std::uint64_t request_id, Body body) {
    const std::lock_guard<std::mutex> guard(mutex_);
    bodies_[request_id] = std::move(body);
  }

  /// Per-replica artificial delay before each body runs — perturbs the
  /// physical interleaving without touching logical behaviour.
  void set_perturbation(std::function<void(int replica, std::uint64_t request)> fn) {
    const std::lock_guard<std::mutex> guard(mutex_);
    perturbation_ = std::move(fn);
  }

  /// When enabled, nested_call() replies are auto-delivered after `delay`.
  void set_auto_reply(common::Duration delay) {
    const std::lock_guard<std::mutex> guard(mutex_);
    auto_reply_ = true;
    auto_reply_delay_ = delay;
  }

  /// Submits a request into the emulated total order.
  void submit(std::uint64_t request_id, std::uint64_t logical_id) {
    sched::Request request;
    request.kind = sched::RequestKind::kApplication;
    request.id = common::RequestId(request_id);
    request.logical = common::LogicalThreadId(logical_id);
    bus_.push(RequestEvent{request});
  }
  void submit(std::uint64_t request_id) { submit(request_id, request_id); }

  /// Delivers the reply of a nested invocation to all replicas.
  void deliver_reply(std::uint64_t nested_id) { bus_.push(ReplyEvent{nested_id}); }

  /// Blocks until every replica completed `count` application requests.
  [[nodiscard]] bool wait_completed(std::uint64_t count,
                                    std::chrono::milliseconds timeout =
                                        std::chrono::seconds(30)) {
    const auto deadline = common::Clock::now() + timeout;
    for (auto& s : schedulers_) {
      while (s->completed_requests() < count) {
        if (common::Clock::now() > deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return true;
  }

  [[nodiscard]] sched::Scheduler& replica(int i) { return *schedulers_[i]; }
  [[nodiscard]] int size() const { return static_cast<int>(schedulers_.size()); }

  [[nodiscard]] std::vector<std::string> trace(int replica) const {
    const std::lock_guard<std::mutex> guard(traces_[replica]->mutex);
    return traces_[replica]->entries;
  }

  void append_trace(int replica, const std::string& entry) {
    const std::lock_guard<std::mutex> guard(traces_[replica]->mutex);
    traces_[replica]->entries.push_back(entry);
  }

  void broadcast_from(int replica, const common::Bytes& payload) {
    bus_.push(SchedMsgEvent{members_[replica], payload});
  }

  void run_body(int replica, const sched::Request& request) {
    Body body;
    std::function<void(int, std::uint64_t)> perturbation;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      const auto it = bodies_.find(request.id.value());
      if (it != bodies_.end()) body = it->second;
      perturbation = perturbation_;
    }
    if (perturbation) perturbation(replica, request.id.value());
    if (body) {
      BodyCtx ctx(*this, replica, *schedulers_[replica], request);
      body(ctx);
    }
  }

  void on_nested_started(std::uint64_t nested_id) {
    const std::lock_guard<std::mutex> guard(mutex_);
    if (!auto_reply_ || stopped_) return;
    if (!pending_auto_replies_.insert(nested_id).second) return;
    const common::Duration delay = auto_reply_delay_;
    // Joined in stop(), so a straggler can't outlive the bus.
    auto_reply_threads_.emplace_back([this, nested_id, delay] {
      common::Clock::sleep_real(delay);
      deliver_reply(nested_id);
    });
  }

  [[nodiscard]] std::vector<common::NodeId> members() const { return members_; }

 private:
  struct RequestEvent {
    sched::Request request;
  };
  struct ReplyEvent {
    std::uint64_t nested_id;
  };
  struct SchedMsgEvent {
    common::NodeId sender;
    common::Bytes payload;
  };
  using Event = std::variant<RequestEvent, ReplyEvent, SchedMsgEvent>;

  struct TraceLog {
    mutable std::mutex mutex;
    std::vector<std::string> entries;
  };

  class Env : public sched::SchedulerEnv {
   public:
    Env(SchedulerCluster& cluster, int replica, sched::Scheduler&)
        : cluster_(cluster), replica_(replica) {}
    void execute(const sched::Request& request) override {
      cluster_.run_body(replica_, request);
    }
    void broadcast(const common::Bytes& payload) override {
      cluster_.broadcast_from(replica_, payload);
    }
    [[nodiscard]] common::NodeId self() const override {
      return common::NodeId(static_cast<std::uint32_t>(replica_));
    }
    [[nodiscard]] std::vector<common::NodeId> view_members() const override {
      return cluster_.members();
    }

   private:
    SchedulerCluster& cluster_;
    int replica_;
  };

  void bus_loop() {
    while (auto event = bus_.pop()) {
      if (auto* req = std::get_if<RequestEvent>(&*event)) {
        for (auto& s : schedulers_) s->on_request(req->request);
      } else if (auto* reply = std::get_if<ReplyEvent>(&*event)) {
        for (auto& s : schedulers_) s->on_reply(common::RequestId(reply->nested_id));
      } else if (auto* msg = std::get_if<SchedMsgEvent>(&*event)) {
        for (auto& s : schedulers_) s->on_scheduler_message(msg->sender, msg->payload);
      }
    }
  }

  sched::SchedulerKind kind_;
  std::vector<common::NodeId> members_;
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers_;
  std::vector<std::unique_ptr<TraceLog>> traces_;
  common::BlockingQueue<Event> bus_;
  std::thread bus_thread_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Body> bodies_;
  std::function<void(int, std::uint64_t)> perturbation_;
  bool auto_reply_ = false;
  common::Duration auto_reply_delay_ = common::Duration::zero();
  std::set<std::uint64_t> pending_auto_replies_;
  std::vector<std::thread> auto_reply_threads_;
  bool stopped_ = false;
};

inline void BodyCtx::nested_call(std::uint64_t nested_id) {
  scheduler_.before_nested_call(common::RequestId(nested_id));
  cluster_.on_nested_started(nested_id);
  scheduler_.after_nested_call(common::RequestId(nested_id));
}

inline void BodyCtx::trace(const std::string& entry) {
  cluster_.append_trace(replica_, entry);
}

}  // namespace adets::testing
