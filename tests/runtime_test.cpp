// End-to-end runtime tests: client invocations through the GCS into
// scheduled replicas, nested invocations across groups, callbacks,
// blocking condition-variable methods, consistency across replicas, and
// LSA leader fail-over.
#include <gtest/gtest.h>

#include <thread>

#include "replication/consistency.hpp"
#include "runtime/cluster.hpp"
#include "sched/lsa.hpp"
#include "workload/objects.hpp"

namespace adets::runtime {
namespace {

using common::Bytes;
using common::GroupId;
using sched::SchedulerKind;
using workload::pack_u64;
using workload::unpack_u64;

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

sched::SchedulerConfig pds_pool(std::size_t n) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = n;
  return config;
}

TEST_F(RuntimeTest, ClientInvokeRoundTrip) {
  Cluster cluster;
  const GroupId group = cluster.create_group(
      3, SchedulerKind::kSeq, [] { return std::make_unique<workload::EchoService>(); });
  Client& client = cluster.create_client();
  const Bytes args = pack_u64(1234);
  EXPECT_EQ(client.invoke(group, "echo", args), args);
}

class RuntimeAllSchedulers : public RuntimeTest,
                             public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, RuntimeAllSchedulers,
                         ::testing::Values(SchedulerKind::kSeq, SchedulerKind::kSl,
                                           SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(RuntimeAllSchedulers, ConcurrentClientsStayConsistent) {
  Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::BankAccounts>(4); },
      pds_pool(4));
  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 10;
  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(&cluster.create_client());

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kOpsPerClient; ++i) {
        clients[c]->invoke(bank, "deposit", pack_u64((c + i) % 4, 10));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.wait_drained(bank, kClients * kOpsPerClient));

  const auto report = repl::check_group(cluster, bank);
  EXPECT_TRUE(report.consistent()) << report.detail;
  // Total money deposited must be visible on every replica.
  Client& probe = cluster.create_client();
  std::uint64_t total = 0;
  for (int a = 0; a < 4; ++a) {
    total += unpack_u64(probe.invoke(bank, "balance", pack_u64(a)))[0];
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kClients * kOpsPerClient * 10));
}

TEST_P(RuntimeAllSchedulers, NestedInvocationAcrossGroups) {
  Cluster cluster;
  const GroupId callee = cluster.create_group(
      3, SchedulerKind::kSat, [] { return std::make_unique<workload::EchoService>(); });
  const GroupId caller = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::NestedPatterns>(); },
      pds_pool(3));
  Client& client = cluster.create_client();
  constexpr int kCalls = 5;
  for (int i = 0; i < kCalls; ++i) {
    client.invoke(caller, "NCS", pack_u64(callee.value(), 1, 2, 1, 2));
  }
  ASSERT_TRUE(cluster.wait_drained(caller, kCalls));
  EXPECT_TRUE(repl::check_group(cluster, caller).consistent());
  // At-most-once at the callee: each nested invocation executed exactly
  // once despite three replicas submitting it (calls_ is the hash).
  ASSERT_TRUE(cluster.wait_drained(callee, kCalls));
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(callee, r).state_hash(), kCalls) << "replica " << r;
  }
}

/// Test object whose "start" method triggers a callback chain:
/// A.start -> B.callback -> A.__cb (same logical thread).
class CallbackOrigin : public ReplicatedObject {
 public:
  explicit CallbackOrigin(GroupId peer, GroupId self) : peer_(peer), self_(self) {}
  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    if (method == "start") {
      return ctx.invoke(peer_, "callback", pack_u64(self_.value()));
    }
    if (method == "__cb") {
      cb_count_++;
      return pack_u64(42);
    }
    (void)args;
    throw std::invalid_argument("unknown method " + method);
  }
  [[nodiscard]] std::uint64_t state_hash() const override { return cb_count_; }

 private:
  GroupId peer_;
  GroupId self_;
  std::uint64_t cb_count_ = 0;
};

class CallbackSchedulers : public RuntimeTest,
                           public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, CallbackSchedulers,
                         ::testing::Values(SchedulerKind::kSl, SchedulerKind::kSat,
                                           SchedulerKind::kMat, SchedulerKind::kLsa),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(CallbackSchedulers, CallbackChainDoesNotDeadlock) {
  Cluster cluster;
  // Groups are created in dependency order; ids are assigned 1, 2.
  const GroupId callee_id(2);
  const GroupId caller_id(1);
  const GroupId caller = cluster.create_group(
      3, GetParam(),
      [=] { return std::make_unique<CallbackOrigin>(callee_id, caller_id); });
  const GroupId callee = cluster.create_group(
      3, SchedulerKind::kSat, [] { return std::make_unique<workload::EchoService>(); });
  ASSERT_EQ(caller, caller_id);
  ASSERT_EQ(callee, callee_id);
  Client& client = cluster.create_client();
  const Bytes result = client.invoke(caller, "start", {});
  EXPECT_EQ(unpack_u64(result)[0], 42u);
  ASSERT_TRUE(cluster.wait_drained(caller, 1));
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.replica(caller, r).state_hash(), 1u);
  }
}

/// The "+L" in SA+L: a callback shares the logical thread of its
/// originating request and may re-enter locks that request holds.
class ReentrantCallbackOrigin : public ReplicatedObject {
 public:
  explicit ReentrantCallbackOrigin(GroupId peer, GroupId self)
      : peer_(peer), self_(self) {}
  Bytes dispatch(const std::string& method, const Bytes& args, SyncContext& ctx) override {
    (void)args;
    if (method == "start") {
      DetLock lock(ctx, common::MutexId(7));  // held across the nested call
      return ctx.invoke(peer_, "callback", pack_u64(self_.value()));
    }
    if (method == "__cb") {
      DetLock lock(ctx, common::MutexId(7));  // reentrant: same logical thread
      cb_count_++;
      return pack_u64(cb_count_);
    }
    throw std::invalid_argument("unknown method " + method);
  }
  [[nodiscard]] std::uint64_t state_hash() const override { return cb_count_; }

 private:
  GroupId peer_;
  GroupId self_;
  std::uint64_t cb_count_ = 0;
};

TEST_P(CallbackSchedulers, CallbackReentersLockHeldByOriginator) {
  Cluster cluster;
  const GroupId callee_id(2);
  const GroupId caller_id(1);
  const GroupId caller = cluster.create_group(
      3, GetParam(),
      [=] { return std::make_unique<ReentrantCallbackOrigin>(callee_id, caller_id); });
  const GroupId callee = cluster.create_group(
      3, SchedulerKind::kMat, [] { return std::make_unique<workload::EchoService>(); });
  ASSERT_EQ(caller, caller_id);
  ASSERT_EQ(callee, callee_id);
  Client& client = cluster.create_client();
  const Bytes result = client.invoke(caller, "start", {});
  EXPECT_EQ(unpack_u64(result)[0], 1u);
  // Two requests flow through the caller group: "start" and the nested
  // "callback".  A replica can report "start" complete while its local
  // "callback" execution (which mutates the state hash) still lags, so
  // drain both before comparing hashes.
  ASSERT_TRUE(cluster.wait_drained(caller, 2));
  EXPECT_TRUE(repl::check_group(cluster, caller).consistent());
}

class CvRuntimeSchedulers : public RuntimeTest,
                            public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, CvRuntimeSchedulers,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(CvRuntimeSchedulers, BlockingConsumerIsWokenByProducer) {
  Cluster cluster;
  const GroupId buffer = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::UnboundedBuffer>(); },
      pds_pool(3));
  Client& consumer = cluster.create_client();
  Client& producer = cluster.create_client();

  std::thread consume_thread([&] {
    const Bytes result = consumer.invoke(buffer, "consume", {});
    EXPECT_EQ(unpack_u64(result)[0], 77u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  producer.invoke(buffer, "produce", pack_u64(77));
  consume_thread.join();
  ASSERT_TRUE(cluster.wait_drained(buffer, 2));
  EXPECT_TRUE(repl::check_group(cluster, buffer).consistent());
}

TEST_P(CvRuntimeSchedulers, TimedWithdrawTimesOutWithoutFunds) {
  Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::BankAccounts>(2); },
      pds_pool(3));
  Client& client = cluster.create_client();
  // 100 paper-ms timeout = 1ms real at scale 0.01.
  const Bytes result = client.invoke(bank, "withdraw", pack_u64(0, 50, 100));
  EXPECT_EQ(unpack_u64(result)[0], 0u);
  ASSERT_TRUE(cluster.wait_drained(bank, 1));
  EXPECT_TRUE(repl::check_group(cluster, bank).consistent());
}

TEST_P(CvRuntimeSchedulers, BlockedWithdrawSucceedsAfterDeposit) {
  Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, GetParam(), [] { return std::make_unique<workload::BankAccounts>(2); },
      pds_pool(3));
  Client& withdrawer = cluster.create_client();
  Client& depositor = cluster.create_client();
  std::thread blocked([&] {
    const Bytes result = withdrawer.invoke(bank, "withdraw", pack_u64(1, 30));
    EXPECT_EQ(unpack_u64(result)[0], 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  depositor.invoke(bank, "deposit", pack_u64(1, 30));
  blocked.join();
  ASSERT_TRUE(cluster.wait_drained(bank, 2));
  const auto report = repl::check_group(cluster, bank);
  EXPECT_TRUE(report.consistent()) << report.detail;
}

TEST_F(RuntimeTest, SeqPollingBufferVariantWorks) {
  Cluster cluster;
  const GroupId buffer = cluster.create_group(
      3, SchedulerKind::kSeq, [] { return std::make_unique<workload::UnboundedBuffer>(); });
  Client& client = cluster.create_client();
  EXPECT_EQ(unpack_u64(client.invoke(buffer, "poll_consume", {}))[0], 0u);
  client.invoke(buffer, "produce", pack_u64(5));
  const auto result = unpack_u64(client.invoke(buffer, "poll_consume", {}));
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], 1u);
  EXPECT_EQ(result[1], 5u);
}

TEST_F(RuntimeTest, LsaLeaderCrashFailsOverAndStaysConsistent) {
  Cluster cluster;
  const GroupId bank = cluster.create_group(
      3, SchedulerKind::kLsa, [] { return std::make_unique<workload::BankAccounts>(4); });
  Client& client = cluster.create_client();
  for (int i = 0; i < 10; ++i) client.invoke(bank, "deposit", pack_u64(i % 4, 5));

  // Kill the leader (lowest node id = replica 0).
  cluster.crash_replica(bank, 0);

  // Keep working through the fail-over; the client may need the
  // retransmission machinery while the view change settles.
  for (int i = 0; i < 10; ++i) {
    client.invoke(bank, "deposit", pack_u64(i % 4, 5),
                  std::chrono::seconds(30));
  }
  // The new leader must be replica 1 (next lowest id).
  auto& new_leader =
      dynamic_cast<sched::LsaScheduler&>(cluster.replica(bank, 1).scheduler());
  EXPECT_TRUE(new_leader.is_leader());

  // Survivors agree on the final state.
  std::uint64_t total = 0;
  for (int a = 0; a < 4; ++a) {
    total += unpack_u64(client.invoke(bank, "balance", pack_u64(a)))[0];
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(cluster.replica(bank, 1).state_hash(), cluster.replica(bank, 2).state_hash());
}

TEST_F(RuntimeTest, PoisonRequestsTerminatePdsWorkersCleanly) {
  Cluster cluster;
  sched::SchedulerConfig config = pds_pool(2);
  const GroupId group = cluster.create_group(
      3, SchedulerKind::kPds, [] { return std::make_unique<workload::EchoService>(); },
      config);
  Client& client = cluster.create_client();
  client.invoke(group, "echo", pack_u64(1));
  for (int i = 0; i < 2; ++i) client.invoke_oneway(group, "__poison", {});
  // Workers exit; nothing to assert beyond clean teardown (no hang).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

TEST_F(RuntimeTest, DirectoryResolvesGroupsForNestedCalls) {
  Cluster cluster;
  const GroupId g1 = cluster.create_group(
      1, SchedulerKind::kSeq, [] { return std::make_unique<workload::EchoService>(); });
  EXPECT_EQ(cluster.directory()->members(g1).size(), 1u);
  EXPECT_TRUE(cluster.directory()->members(GroupId(99)).empty());
}

}  // namespace
}  // namespace adets::runtime
