// A deliberately NONDETERMINISTIC scheduler: the divergence auditor's
// negative control.
//
// RacyScheduler violates the ADETS determinism contract on purpose: it
// runs every delivered request on its own OS thread immediately, grants
// locks in real-time arrival order (plain mutexes), and staggers request
// execution by a pseudo-random delay derived from the REPLICA'S OWN node
// id — exactly the "replica-local information must never influence
// scheduling" rule every real strategy obeys.  Replicas therefore
// interleave concurrent requests differently, their states drift apart,
// and the DivergenceAuditor must catch it with a decision-trace diff.
// Never ship this; it exists so tests can prove the auditor works.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "sched/api.hpp"

namespace adets::testing {

class RacyScheduler : public sched::Scheduler {
 public:
  ~RacyScheduler() override { stop(); }

  [[nodiscard]] sched::SchedulerKind kind() const override {
    return sched::SchedulerKind::kMat;  // closest model; label only
  }
  [[nodiscard]] sched::SchedulerCapabilities capabilities() const override {
    sched::SchedulerCapabilities caps;
    caps.multithreading = "MA (racy)";
    caps.reentrant_locks = true;
    caps.condition_variables = true;
    caps.timed_wait = true;
    caps.true_multithreading = true;
    return caps;
  }

  void start(sched::SchedulerEnv& env) override { env_ = &env; }

  void stop() override {
    std::vector<std::thread> workers;
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      if (stopping_) return;
      stopping_ = true;
      workers.swap(workers_);
    }
    cv_.notify_all();
    for (auto& worker : workers) {
      if (worker.joinable()) worker.join();
    }
  }

  void on_request(sched::Request request) override {
    const std::lock_guard<std::mutex> guard(mutex_);
    if (stopping_ || request.kind != sched::RequestKind::kApplication) return;
    workers_.emplace_back([this, request = std::move(request)] {
      // The determinism violation: a replica-local stagger, so each
      // replica resolves the real-time lock races below differently.
      std::uint64_t state = env_->self().value() * 0x9e3779b97f4a7c15ULL ^
                            request.id.value();
      common::Clock::sleep_real(
          std::chrono::milliseconds(common::splitmix64(state) % 20));
      current_request() = request.id.value();
      env_->execute(request);
      completed_.fetch_add(1, std::memory_order_release);
    });
  }

  void on_reply(common::RequestId nested_id) override {
    const std::lock_guard<std::mutex> guard(mutex_);
    replies_.insert({nested_id.value(), true});
    cv_.notify_all();
  }
  void on_scheduler_message(common::NodeId, const common::Bytes&) override {}
  void on_view_change(const std::vector<common::NodeId>&) override {}

  void lock(common::MutexId mutex) override {
    app_mutex(mutex).lock();  // real-time arrival order: the violation
    const std::lock_guard<std::mutex> guard(mutex_);
    decisions_.push_back(sched::Decision{sched::Decision::Kind::kLockGrant,
                                         decision_seq_++, mutex,
                                         common::CondVarId::invalid(),
                                         common::ThreadId(current_request()), 0});
    if (trace_enabled_) {
      grants_.push_back(
          sched::GrantRecord{mutex, common::ThreadId(current_request())});
    }
  }
  void unlock(common::MutexId mutex) override { app_mutex(mutex).unlock(); }

  sched::WaitResult wait(common::MutexId mutex, common::CondVarId condvar,
                         common::Duration timeout) override {
    auto& cv = app_condvar(condvar);
    auto& m = app_mutex(mutex);
    if (timeout.count() > 0) {
      const auto status = cv.wait_for(m, common::Clock::scaled(timeout));
      return sched::WaitResult{status == std::cv_status::no_timeout};
    }
    cv.wait(m);
    return sched::WaitResult{true};
  }

  void notify_one(common::MutexId, common::CondVarId condvar) override {
    app_condvar(condvar).notify_one();
  }
  void notify_all(common::MutexId, common::CondVarId condvar) override {
    app_condvar(condvar).notify_all();
  }

  void before_nested_call(common::RequestId) override {}
  void after_nested_call(common::RequestId nested_id) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::seconds(30), [this, nested_id] {
      return stopping_ || replies_.count(nested_id.value()) > 0;
    });
  }

  void set_trace(bool enabled) override {
    const std::lock_guard<std::mutex> guard(mutex_);
    trace_enabled_ = enabled;
  }
  [[nodiscard]] std::vector<sched::GrantRecord> grant_trace() const override {
    const std::lock_guard<std::mutex> guard(mutex_);
    return grants_;
  }
  [[nodiscard]] std::vector<sched::Decision> decision_trace() const override {
    const std::lock_guard<std::mutex> guard(mutex_);
    return decisions_;
  }
  [[nodiscard]] std::uint64_t completed_requests() const override {
    return completed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] sched::SchedulerStats stats() const override { return {}; }

 private:
  static std::uint64_t& current_request() {
    static thread_local std::uint64_t id = 0;
    return id;
  }

  std::recursive_mutex& app_mutex(common::MutexId id) {
    const std::lock_guard<std::mutex> guard(mutex_);
    auto& slot = app_mutexes_[id.value()];
    if (!slot) slot = std::make_unique<std::recursive_mutex>();
    return *slot;
  }
  std::condition_variable_any& app_condvar(common::CondVarId id) {
    const std::lock_guard<std::mutex> guard(mutex_);
    auto& slot = app_condvars_[id.value()];
    if (!slot) slot = std::make_unique<std::condition_variable_any>();
    return *slot;
  }

  sched::SchedulerEnv* env_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool trace_enabled_ = false;
  std::vector<std::thread> workers_;
  std::map<std::uint64_t, std::unique_ptr<std::recursive_mutex>> app_mutexes_;
  std::map<std::uint64_t, std::unique_ptr<std::condition_variable_any>> app_condvars_;
  std::map<std::uint64_t, bool> replies_;
  std::vector<sched::Decision> decisions_;
  std::vector<sched::GrantRecord> grants_;
  std::uint64_t decision_seq_ = 0;
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace adets::testing
