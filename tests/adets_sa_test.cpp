// adets-sa auditor tests: program-model parsing on in-memory sources,
// per-rule checks for each pass, seeded negative-control fixtures under
// tests/sa_fixtures (each must yield exactly one finding), and the
// whole-tree positive control (src/ must audit clean).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "model.hpp"
#include "sa.hpp"

namespace {

using adets::sa::Finding;
using adets::sa::Program;

Program parse(const std::string& content, const std::string& path = "mem.hpp") {
  Program prog;
  prog.parse_file(path, content);
  prog.finalize();
  return prog;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- program model ---------------------------------------------------------

TEST(SaModelTest, ParsesClassFieldsAndAnnotations) {
  const Program prog = parse(R"(
    namespace demo {
    class Box {
     public:
      void put(int v);
     private:
      mutable common::Mutex mu_{"demo"};
      int value_ ADETS_GUARDED_BY(mu_) = 0;
      int loose_ = 0;
      const int limit_ = 4;
      std::atomic<bool> flag_{false};
    };
    }  // namespace demo
  )");
  const int idx = prog.find_class("demo::Box");
  ASSERT_GE(idx, 0);
  const auto& c = prog.classes[idx];
  EXPECT_TRUE(c.owns_mutex());
  ASSERT_EQ(c.fields.size(), 5u);
  EXPECT_TRUE(c.fields[0].is_mutex);
  EXPECT_EQ(c.fields[1].guarded_by, "mu_");
  EXPECT_TRUE(c.fields[2].guarded_by.empty());
  EXPECT_TRUE(c.fields[3].is_const);
  EXPECT_TRUE(c.fields[4].is_atomic);
}

TEST(SaModelTest, MergesOutOfClassDefinitionWithDeclaration) {
  const Program prog = parse(R"(
    class Svc {
     public:
      void tick();
     private:
      void locked_step() ADETS_REQUIRES(mu_);
      common::Mutex mu_{"svc"};
    };
    void Svc::tick() {
      const common::MutexLock guard(mu_);
      locked_step();
    }
    void Svc::locked_step() { }
  )");
  bool found = false;
  for (const auto& fn : prog.functions) {
    if (fn.name == "locked_step" && fn.has_body) {
      found = true;
      ASSERT_EQ(fn.requires_held.size(), 1u);
      EXPECT_EQ(fn.requires_held[0], "mu_");
      EXPECT_FALSE(fn.is_public);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SaModelTest, TracksScopedLockAcquisitionOrder) {
  const Program prog = parse(R"(
    class Two {
      void nest() {
        const common::MutexLock a(first_);
        const common::MutexLock b(second_);
      }
      common::Mutex first_{"a"};
      common::Mutex second_{"b"};
    };
  )");
  const adets::sa::Function* nest = nullptr;
  for (const auto& fn : prog.functions) {
    if (fn.name == "nest") nest = &fn;
  }
  ASSERT_NE(nest, nullptr);
  ASSERT_EQ(nest->acquisitions.size(), 2u);
  EXPECT_TRUE(nest->acquisitions[0].held.empty());
  ASSERT_EQ(nest->acquisitions[1].held.size(), 1u);
  EXPECT_EQ(nest->acquisitions[1].held[0], "Two::first_");
}

TEST(SaModelTest, NestedClassScopeClosesAfterFriendDefinition) {
  const Program prog = parse(R"(
    class Outer {
      struct Key {
        int due;
        friend bool operator<(const Key& a, const Key& b) {
          return a.due < b.due;
        }
      };
      common::Mutex mu_{"outer"};
      int counter_ ADETS_GUARDED_BY(mu_) = 0;
    };
  )");
  const int outer = prog.find_class("Outer");
  ASSERT_GE(outer, 0);
  // counter_ must land on Outer, not on the nested Key.
  bool found = false;
  for (const auto& f : prog.classes[outer].fields) {
    if (f.name == "counter_") found = true;
  }
  EXPECT_TRUE(found);
}

// --- passes on in-memory sources -------------------------------------------

TEST(SaPassTest, RequiresUnheldFlagged) {
  const Program prog = parse(R"(
    class Svc {
     public:
      void bad() { locked_step(); }
      void good() {
        const common::MutexLock guard(mu_);
        locked_step();
      }
     private:
      void locked_step() ADETS_REQUIRES(mu_);
      common::Mutex mu_{"svc"};
    };
    void Svc::locked_step() { }
  )");
  const auto findings = adets::sa::lock_graph_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "requires-unheld");
}

TEST(SaPassTest, CondvarWaitWithUnguardedStateFlagged) {
  const Program prog = parse(R"(
    class Waiter {
      void block() {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock);
      }
      std::mutex mu_;
      std::condition_variable cv_;
      bool ready_ = false;
    };
  )");
  const auto findings = adets::sa::guard_pass(prog);
  EXPECT_TRUE(has_rule(findings, "unguarded-field"));
  EXPECT_TRUE(has_rule(findings, "condvar-unguarded"));
}

TEST(SaPassTest, StaticGuardAnnotationSatisfiesGuardPass) {
  const Program prog = parse(R"(
    class Waiter {
      void block() {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock);
      }
      std::mutex mu_;
      std::condition_variable cv_;
      bool ready_ ADETS_GUARDED_BY_STATIC(mu_) = false;
    };
  )");
  EXPECT_TRUE(adets::sa::guard_pass(prog).empty());
}

TEST(SaPassTest, PublicRequiresFlaggedUnlessLockPassing) {
  const Program prog = parse(R"(
    class Svc {
     public:
      void exposed() ADETS_REQUIRES(mu_);
      void handled(Lk& lk) ADETS_REQUIRES(mu_);
     private:
      common::Mutex mu_{"svc"};
    };
  )");
  const auto findings = adets::sa::guard_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "public-requires");
  EXPECT_NE(findings[0].message.find("exposed"), std::string::npos);
}

TEST(SaPassTest, TaintSinkScopedToSchedClasses) {
  // Same body, but only the sched-scoped class (by base) is audited.
  const char* body = R"(
    class %NAME% %BASE% {
      void stamp() {
        last_ = common::Clock::now();
      }
      common::TimePoint last_;
    };
  )";
  std::string sched_src(body);
  sched_src.replace(sched_src.find("%NAME%"), 6, "Strat");
  sched_src.replace(sched_src.find("%BASE%"), 6, ": public sched::SchedulerBase");
  std::string plain_src(body);
  plain_src.replace(plain_src.find("%NAME%"), 6, "Gcs");
  plain_src.replace(plain_src.find("%BASE%"), 6, "");

  const auto sched_findings = adets::sa::taint_pass(parse(sched_src));
  ASSERT_EQ(sched_findings.size(), 1u);
  EXPECT_EQ(sched_findings[0].rule, "det-taint");

  EXPECT_TRUE(adets::sa::taint_pass(parse(plain_src)).empty());
}

// --- interprocedural effects -----------------------------------------------

TEST(SaEffectsTest, BlockingUnderMonitorPropagatesWithWitnessChain) {
  const Program prog = parse(R"(
    class Strat : public sched::SchedulerBase {
     public:
      void pump() {
        const common::MutexLock guard(mon_);
        drain();
      }
     private:
      void drain() { settle(); }
      void settle() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }
      common::Mutex mon_{"m"};
    };
  )");
  const auto findings = adets::sa::effects_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-under-monitor");
  EXPECT_NE(findings[0].message.find("pump"), std::string::npos);
  EXPECT_NE(findings[0].message.find("drain"), std::string::npos);
  EXPECT_NE(findings[0].message.find("blocks at"), std::string::npos);
  EXPECT_NE(findings[0].message.find("sleep_for"), std::string::npos);
}

TEST(SaEffectsTest, NonBlockingAnnotationStopsPropagation) {
  const Program prog = parse(R"(
    class Strat : public sched::SchedulerBase {
     public:
      void pump() {
        const common::MutexLock guard(mon_);
        drain();
      }
     private:
      // Never actually parks (the fixture's claim, not checked here).
      void drain() ADETS_NON_BLOCKING { settle(); }
      void settle() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }
      common::Mutex mon_{"m"};
    };
  )");
  EXPECT_TRUE(adets::sa::effects_pass(prog).empty());
}

TEST(SaEffectsTest, DeferredLambdaCallDoesNotPropagateBlocking) {
  const Program prog = parse(R"(
    class Strat : public sched::SchedulerBase {
     public:
      void pump() {
        const common::MutexLock guard(mon_);
        schedule([this] { settle(); });
      }
     private:
      void schedule(std::function<void()> fn);
      void settle() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }
      common::Mutex mon_{"m"};
    };
  )");
  EXPECT_TRUE(adets::sa::effects_pass(prog).empty());
}

TEST(SaEffectsTest, GrantPathAuditedInterprocedurally) {
  const Program prog = parse(R"(
    class Strat : public sched::SchedulerBase {
     public:
      void handle_request(int tid) { stamp(tid); }
     private:
      void stamp(int tid) {
        last_grant_ = common::Clock::now();
      }
      common::TimePoint last_grant_;
    };
  )");
  const auto findings = adets::sa::effects_pass(prog);
  EXPECT_TRUE(has_rule(findings, "grant-path-taint"));
  EXPECT_TRUE(has_rule(findings, "grant-path-write"));
}

TEST(SaEffectsTest, MayBlockBoundaryCutsGrantPath) {
  const Program prog = parse(R"(
    class Strat : public sched::SchedulerBase {
     public:
      void handle_request(int tid) { resubmit(tid); }
     private:
      // Control re-enters the total order here: not part of the decision.
      void resubmit(int tid) ADETS_MAY_BLOCK {
        last_grant_ = common::Clock::now();
      }
      common::TimePoint last_grant_;
    };
  )");
  EXPECT_TRUE(adets::sa::effects_pass(prog).empty());
}

// --- conflict-class coverage -----------------------------------------------

TEST(SaConflictsTest, UndeclaredWriteThroughHelperFlagged) {
  const Program prog = parse(R"(
    class Obj {
     private:
      void do_put(const std::string& key) ADETS_CONFLICT(key) ADETS_READS(rows_) {
        store(key);
      }
      void store(const std::string& key) { rows_[key] = 1; }
      std::map<std::string, int> rows_;
    };
  )");
  const auto findings = adets::sa::conflicts_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conflict-uncovered");
  EXPECT_NE(findings[0].message.find("via do_put -> store"), std::string::npos);
}

TEST(SaConflictsTest, OverDeclarationIsSound) {
  const Program prog = parse(R"(
    class Obj {
     private:
      void do_put(const std::string& key)
          ADETS_CONFLICT(key) ADETS_WRITES(rows_, journal_) {
        rows_[key] = 1;
      }
      std::map<std::string, int> rows_;
      std::vector<std::string> journal_;
    };
  )");
  EXPECT_TRUE(adets::sa::conflicts_pass(prog).empty());
}

TEST(SaConflictsTest, FreeHandlerMustTouchNoState) {
  const Program prog = parse(R"(
    class Obj {
     private:
      void do_ping() ADETS_CONFLICT(free) { hits_++; }
      int hits_ = 0;
    };
  )");
  const auto findings = adets::sa::conflicts_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conflict-uncovered");
  EXPECT_NE(findings[0].message.find("free"), std::string::npos);
}

TEST(SaConflictsTest, DisjointClassesSharingWritesFlagged) {
  const Program prog = parse(R"(
    class Obj {
     private:
      void do_put(const std::string& key) ADETS_CONFLICT(key) ADETS_WRITES(rows_) {
        rows_ = rows_ + 1;
      }
      void do_scan(int range) ADETS_CONFLICT(range) ADETS_READS(rows_) {
        int n = rows_;
      }
      int rows_ = 0;
    };
  )");
  const auto findings = adets::sa::conflicts_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conflict-overlap");
}

TEST(SaConflictsTest, DispatchMayNotBypassHandlers) {
  const Program prog = parse(R"(
    class Obj {
     public:
      void dispatch(const std::string& method) {
        hits_++;
        do_put(method);
      }
     private:
      void do_put(const std::string& key) ADETS_CONFLICT(key) ADETS_WRITES(rows_) {
        rows_[key] = 1;
      }
      std::map<std::string, int> rows_;
      int hits_ = 0;
    };
  )");
  const auto findings = adets::sa::conflicts_pass(prog);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conflict-uncovered");
  EXPECT_NE(findings[0].message.find("hits_"), std::string::npos);
}

// --- suppressions ----------------------------------------------------------

TEST(SaAllowTest, AllowWithReasonSuppressesLine) {
  const auto allows = adets::sa::collect_allows(
      "a.hpp",
      "// adets-sa:allow(unguarded-field) guarded by construction order\n"
      "int x_;\n");
  EXPECT_TRUE(allows.bad.empty());
  ASSERT_EQ(allows.by_line.count(1), 1u);
  ASSERT_EQ(allows.by_line.count(2), 1u);  // bare allow covers next line
  EXPECT_EQ(allows.by_line.at(2).count("unguarded-field"), 1u);
}

TEST(SaAllowTest, AllowWithoutReasonIsItselfAFinding) {
  const auto allows = adets::sa::collect_allows(
      "a.hpp", "int x_;  // adets-sa:allow(unguarded-field)\n");
  ASSERT_EQ(allows.bad.size(), 1u);
  EXPECT_EQ(allows.bad[0].rule, "bad-allow");
  EXPECT_TRUE(allows.by_line.empty());
}

TEST(SaAllowTest, AllowInsideStringLiteralIgnored) {
  const auto allows = adets::sa::collect_allows(
      "a.hpp", "const char* s = \"adets-sa:allow(unguarded-field) nope\";\n");
  EXPECT_TRUE(allows.bad.empty());
  EXPECT_TRUE(allows.by_line.empty());
}

// --- seeded fixtures and the whole tree ------------------------------------

#ifdef ADETS_SOURCE_DIR

std::vector<Finding> scan_fixture(const std::string& name) {
  const std::string root = ADETS_SOURCE_DIR;
  return adets::sa::scan({root + "/tests/sa_fixtures/" + name});
}

TEST(SaFixtureTest, LockCycleFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("lock_cycle.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-cycle");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].file.find("lock_cycle.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Cycling::a_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Cycling::b_"), std::string::npos);
}

TEST(SaFixtureTest, UnguardedFieldFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("unguarded_field.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unguarded-field");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("counter_"), std::string::npos);
}

TEST(SaFixtureTest, ClockTaintFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("clock_taint.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "det-taint");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("last_grant_time_"), std::string::npos);
}

TEST(SaFixtureTest, BlockingUnderMonitorFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("blocking_under_monitor.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-under-monitor");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("pump"), std::string::npos);
  EXPECT_NE(findings[0].message.find("drain"), std::string::npos);
  EXPECT_NE(findings[0].message.find("settle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("blocks at"), std::string::npos);
}

TEST(SaFixtureTest, GrantPathWriteFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("grant_path_write.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "grant-path-write");
  EXPECT_NE(findings[0].message.find("decisions_served_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("handle_request"), std::string::npos);
  EXPECT_NE(findings[0].message.find("bump"), std::string::npos);
}

TEST(SaFixtureTest, ConflictCoverageFixtureYieldsExactlyOneFinding) {
  const auto findings = scan_fixture("conflict_coverage.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "conflict-uncovered");
  EXPECT_NE(findings[0].message.find("table_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("do_put -> store_row"), std::string::npos);
}

TEST(SaScanTest, ParseMemoServesRepeatedScans) {
  const std::string root = ADETS_SOURCE_DIR;
  const std::vector<std::string> paths = {root +
                                          "/tests/sa_fixtures/lock_cycle.hpp"};
  adets::sa::ScanStats warm;
  adets::sa::scan(paths);  // populate the process-wide memo
  adets::sa::scan(paths, nullptr, &warm);
  EXPECT_EQ(warm.files, 1u);
  EXPECT_EQ(warm.memo_hits, 1u);
}

TEST(SaTreeTest, SourceTreeAuditsClean) {
  const std::string root = ADETS_SOURCE_DIR;
  const auto findings = adets::sa::scan({root + "/src"});
  for (const auto& f : findings) {
    ADD_FAILURE() << adets::sa::to_string(f);
  }
}

#endif  // ADETS_SOURCE_DIR

// --- reporting -------------------------------------------------------------

TEST(SaReportTest, RulesListMatchesPassRules) {
  std::vector<std::string> names;
  for (const auto& r : adets::sa::rules()) names.push_back(r.name);
  for (const char* expected :
       {"lock-cycle", "requires-unheld", "unguarded-field", "condvar-unguarded",
        "public-requires", "det-taint", "blocking-under-monitor",
        "grant-path-taint", "grant-path-write", "conflict-uncovered",
        "conflict-overlap", "bad-allow"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SaReportTest, ConflictManifestListsHandlers) {
  const Program prog = parse(R"(
    class Obj {
     private:
      void do_put(const std::string& key)
          ADETS_CONFLICT(key) ADETS_READS(meta_) ADETS_WRITES(rows_) {
        rows_[key] = 1;
      }
      std::map<std::string, int> rows_;
      std::map<std::string, int> meta_;
    };
  )");
  const std::string json = adets::sa::conflict_manifest(prog);
  EXPECT_NE(json.find("\"class\": \"Obj\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"do_put\""), std::string::npos);
  EXPECT_NE(json.find("\"conflict\": [\"key\"]"), std::string::npos);
  EXPECT_NE(json.find("\"reads\": [\"meta_\"]"), std::string::npos);
  EXPECT_NE(json.find("\"writes\": [\"rows_\"]"), std::string::npos);
}

TEST(SaModelTest, DigitSeparatorsDoNotDerailTheTokenizer) {
  // 1'000'000 must lex as one number, not open a character literal that
  // swallows the rest of the class body.
  const Program prog = parse(R"(
    class Budget {
      void spend() { used_ = used_ + 1'000'000; }
      long used_ = 0;
      common::Mutex mu_{"b"};
      long stray_ = 0;
    };
  )");
  const int idx = prog.find_class("Budget");
  ASSERT_GE(idx, 0);
  // All three fields survive, so the guard pass still sees stray_.
  EXPECT_EQ(prog.classes[idx].fields.size(), 3u);
  EXPECT_TRUE(has_rule(adets::sa::guard_pass(prog), "unguarded-field"));
}

TEST(SaReportTest, SarifSerialisesFindings) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 12, "lock-cycle", "cycle \"demo\""}};
  const std::string sarif = adets::sa::to_sarif(findings);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-cycle\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("cycle \\\"demo\\\""), std::string::npos);
}

}  // namespace
