// Scheduler strategy tests: execution, mutual exclusion, reentrancy,
// cross-replica determinism under timing perturbation, condition
// variables, timed waits, nested invocations, and strategy-specific
// behaviour (SAT single-active, MAT concurrency, LSA leader/follower,
// PDS rounds and pool resizing).
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/lsa.hpp"
#include "sched/pds.hpp"
#include "sched_harness.hpp"

namespace adets::testing {
namespace {

using common::Duration;
using common::paper_ms;
using sched::SchedulerKind;

std::chrono::milliseconds ms(int n) { return std::chrono::milliseconds(n); }

class SchedTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.05);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }
  double saved_scale_ = 1.0;
};

/// Projects a grant trace onto per-mutex grantee sequences (the global
/// interleaving across different mutexes is allowed to differ between
/// replicas of truly multithreaded strategies; the per-mutex order is
/// the determinism contract).
std::map<std::uint64_t, std::vector<std::uint64_t>> per_mutex(
    const std::vector<sched::GrantRecord>& trace) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> result;
  for (const auto& record : trace) {
    // Skip scheduler-internal mutexes (PDS request queue): their grant
    // stream continues with idle no-op cycles after the workload drains,
    // so snapshots truncate at different points.
    if (record.mutex.value() >= (1ULL << 61)) continue;
    result[record.mutex.value()].push_back(record.thread.value());
  }
  return result;
}

// --- parameterized over every scheduler kind ---------------------------------

class AllSchedulers : public SchedTestBase,
                      public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, AllSchedulers,
                         ::testing::Values(SchedulerKind::kSeq, SchedulerKind::kSl,
                                           SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(AllSchedulers, ExecutesAllRequestsOnAllReplicas) {
  SchedulerCluster cluster(GetParam(), 3);
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.lock(0);
      ctx.trace("r" + std::to_string(i));
      ctx.unlock(0);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  const auto reference = cluster.trace(0);
  EXPECT_EQ(reference.size(), kRequests);
  for (int r = 1; r < 3; ++r) EXPECT_EQ(cluster.trace(r), reference) << "replica " << r;
}

TEST_P(AllSchedulers, MutualExclusionHolds) {
  SchedulerCluster cluster(GetParam(), 2);
  std::vector<std::unique_ptr<std::atomic<int>>> in_section;
  std::atomic<bool> violation{false};
  for (int r = 0; r < 2; ++r) in_section.push_back(std::make_unique<std::atomic<int>>(0));

  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [&, i](BodyCtx& ctx) {
      ctx.compute(ms(1));
      ctx.lock(5);
      if (in_section[ctx.replica()]->fetch_add(1) != 0) violation.store(true);
      ctx.compute(ms(2));
      in_section[ctx.replica()]->fetch_sub(1);
      ctx.unlock(5);
      (void)i;
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  EXPECT_FALSE(violation.load());
}

TEST_P(AllSchedulers, ReentrantLocksDoNotSelfDeadlock) {
  SchedulerCluster cluster(GetParam(), 2);
  for (int i = 0; i < 4; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.lock(1);
      ctx.lock(1);  // recursive acquisition by the same logical thread
      ctx.lock(1);
      ctx.trace("in" + std::to_string(i));
      ctx.unlock(1);
      ctx.unlock(1);
      ctx.unlock(1);
    });
  }
  for (int i = 0; i < 4; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(4));
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
}

TEST_P(AllSchedulers, DeterministicUnderTimingPerturbation) {
  SchedulerCluster cluster(GetParam(), 3);
  // Adversarial per-replica delays: replica r delays request q by a
  // pseudo-random amount, so physical interleavings differ wildly.
  cluster.set_perturbation([](int replica, std::uint64_t request) {
    common::Rng rng(static_cast<std::uint64_t>(replica) * 7919 + request);
    common::Clock::sleep_real(ms(static_cast<int>(rng.uniform(0, 4))));
  });
  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      common::Rng rng(static_cast<std::uint64_t>(i));
      const std::uint64_t m = 1 + rng.uniform(0, 2);  // mutexes 1..3
      ctx.compute(ms(static_cast<int>(rng.uniform(0, 2))));
      ctx.lock(m);
      ctx.trace("m" + std::to_string(m) + ":r" + std::to_string(i));
      ctx.unlock(m);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));

  // State-access order must agree per mutex.
  auto project = [](const std::vector<std::string>& trace) {
    std::map<std::string, std::vector<std::string>> by_mutex;
    for (const auto& entry : trace) {
      by_mutex[entry.substr(0, entry.find(':'))].push_back(entry);
    }
    return by_mutex;
  };
  const auto reference = project(cluster.trace(0));
  for (int r = 1; r < 3; ++r) EXPECT_EQ(project(cluster.trace(r)), reference);
  // Lock-grant order must agree per mutex.
  const auto grants = per_mutex(cluster.replica(0).grant_trace());
  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(per_mutex(cluster.replica(r).grant_trace()), grants) << "replica " << r;
  }
}

TEST_P(AllSchedulers, NestedInvocationUnblocksOnReply) {
  SchedulerCluster cluster(GetParam(), 2);
  cluster.set_auto_reply(ms(3));
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.lock(0);
    ctx.trace("before");
    ctx.unlock(0);
    ctx.nested_call(100);
    ctx.lock(0);
    ctx.trace("after");
    ctx.unlock(0);
  });
  cluster.submit(1);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_EQ(cluster.trace(0), (std::vector<std::string>{"before", "after"}));
  EXPECT_EQ(cluster.trace(1), cluster.trace(0));
}

TEST_P(AllSchedulers, CapabilitiesReportIsConsistent) {
  SchedulerCluster cluster(GetParam(), 1);
  const auto caps = cluster.replica(0).capabilities();
  EXPECT_FALSE(caps.coordination.empty());
  EXPECT_FALSE(caps.multithreading.empty());
  if (GetParam() == SchedulerKind::kSeq || GetParam() == SchedulerKind::kSl) {
    EXPECT_FALSE(caps.condition_variables);
    EXPECT_FALSE(caps.true_multithreading);
  } else {
    EXPECT_TRUE(caps.condition_variables);
    EXPECT_TRUE(caps.timed_wait);
    EXPECT_TRUE(caps.reentrant_locks);
  }
  EXPECT_EQ(caps.needs_communication, GetParam() == SchedulerKind::kLsa);
}

// --- condition-variable capable schedulers ------------------------------------

class CvSchedulers : public SchedTestBase,
                     public ::testing::WithParamInterface<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, CvSchedulers,
                         ::testing::Values(SchedulerKind::kSat, SchedulerKind::kMat,
                                           SchedulerKind::kLsa, SchedulerKind::kPds),
                         [](const auto& info) { return sched::to_string(info.param); });

TEST_P(CvSchedulers, ProducerConsumerHandoff) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  SchedulerCluster cluster(GetParam(), 3, config);
  // Per-replica shared buffer, guarded by mutex 2 / condvar 9.
  struct State {
    std::vector<int> buffer;
  };
  std::vector<State> states(3);

  constexpr int kConsumers = 3;
  for (int c = 0; c < kConsumers; ++c) {
    cluster.set_body(c, [&states, c](BodyCtx& ctx) {
      ctx.lock(2);
      auto& buffer = states[ctx.replica()].buffer;
      while (buffer.empty()) ctx.wait(2, 9);
      const int item = buffer.front();
      buffer.erase(buffer.begin());
      ctx.trace("consume" + std::to_string(c) + "=" + std::to_string(item));
      ctx.unlock(2);
    });
  }
  for (int p = 0; p < kConsumers; ++p) {
    cluster.set_body(100 + p, [&states, p](BodyCtx& ctx) {
      ctx.lock(2);
      states[ctx.replica()].buffer.push_back(p);
      ctx.trace("produce" + std::to_string(p));
      ctx.notify_one(2, 9);
      ctx.unlock(2);
    });
  }
  for (int c = 0; c < kConsumers; ++c) cluster.submit(c);
  common::Clock::sleep_real(ms(20));  // let consumers block first
  for (int p = 0; p < kConsumers; ++p) cluster.submit(100 + p);
  ASSERT_TRUE(cluster.wait_completed(2 * kConsumers));
  const auto reference = cluster.trace(0);
  EXPECT_EQ(reference.size(), 2u * kConsumers);
  for (int r = 1; r < 3; ++r) EXPECT_EQ(cluster.trace(r), reference);
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(states[r].buffer.empty());
}

TEST_P(CvSchedulers, NotifyAllWakesEveryWaiter) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 5;
  SchedulerCluster cluster(GetParam(), 2, config);
  std::vector<std::unique_ptr<std::atomic<bool>>> gate;
  for (int r = 0; r < 2; ++r) gate.push_back(std::make_unique<std::atomic<bool>>(false));

  constexpr int kWaiters = 4;
  for (int w = 0; w < kWaiters; ++w) {
    cluster.set_body(w, [&gate, w](BodyCtx& ctx) {
      ctx.lock(3);
      while (!gate[ctx.replica()]->load()) ctx.wait(3, 4);
      ctx.trace("woke" + std::to_string(w));
      ctx.unlock(3);
    });
  }
  cluster.set_body(50, [&gate](BodyCtx& ctx) {
    ctx.lock(3);
    gate[ctx.replica()]->store(true);
    ctx.notify_all(3, 4);
    ctx.unlock(3);
  });
  for (int w = 0; w < kWaiters; ++w) cluster.submit(w);
  common::Clock::sleep_real(ms(20));
  cluster.submit(50);
  ASSERT_TRUE(cluster.wait_completed(kWaiters + 1));
  EXPECT_EQ(cluster.trace(0).size(), kWaiters);
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
}

TEST_P(CvSchedulers, TimedWaitTimesOutDeterministically) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  SchedulerCluster cluster(GetParam(), 3, config);
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.lock(6);
    const bool notified = ctx.wait_for(6, 7, paper_ms(40));  // 2ms real
    ctx.trace(notified ? "notified" : "timeout");
    ctx.unlock(6);
  });
  cluster.submit(1);
  ASSERT_TRUE(cluster.wait_completed(1));
  const auto reference = cluster.trace(0);
  EXPECT_EQ(reference, (std::vector<std::string>{"timeout"}));
  for (int r = 1; r < 3; ++r) EXPECT_EQ(cluster.trace(r), reference);
}

TEST_P(CvSchedulers, TimeoutVersusNotifyRaceIsConsistent) {
  // The timeout of a bounded wait races a notify() issued at roughly the
  // same moment (paper Sec. 4: "the order in which the two happen is
  // non-deterministic" — but it must be *consistent* across replicas).
  for (int attempt = 0; attempt < 3; ++attempt) {
    sched::SchedulerConfig config;
    config.pds_thread_pool = 3;
    SchedulerCluster cluster(GetParam(), 3, config);
    cluster.set_body(1, [](BodyCtx& ctx) {
      ctx.lock(6);
      const bool notified = ctx.wait_for(6, 7, paper_ms(60));  // 3ms real
      ctx.trace(notified ? "notified" : "timeout");
      ctx.unlock(6);
    });
    cluster.set_body(2, [](BodyCtx& ctx) {
      ctx.lock(6);
      ctx.notify_one(6, 7);
      ctx.unlock(6);
    });
    cluster.submit(1);
    common::Clock::sleep_real(ms(3));  // land near the timeout instant
    cluster.submit(2);
    ASSERT_TRUE(cluster.wait_completed(2));
    const auto reference = cluster.trace(0);
    ASSERT_EQ(reference.size(), 1u);
    for (int r = 1; r < 3; ++r) {
      EXPECT_EQ(cluster.trace(r), reference) << "attempt " << attempt;
    }
  }
}

TEST_P(CvSchedulers, StaleTimeoutHasNoEffect) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  SchedulerCluster cluster(GetParam(), 2, config);
  std::vector<std::unique_ptr<std::atomic<bool>>> ready;
  for (int r = 0; r < 2; ++r) ready.push_back(std::make_unique<std::atomic<bool>>(false));
  // Waiter is notified well before its long timeout; the late timer must
  // not wake the *next* wait on the same condvar.
  cluster.set_body(1, [&ready](BodyCtx& ctx) {
    ctx.lock(6);
    const bool first = ctx.wait_for(6, 7, paper_ms(400));
    ctx.trace(first ? "first-notified" : "first-timeout");
    ready[ctx.replica()]->store(true);
    // Second wait on the same condvar: only request 3's notify may end it.
    const bool second = ctx.wait(6, 7);
    ctx.trace(second ? "second-notified" : "second-timeout");
    ctx.unlock(6);
  });
  cluster.set_body(2, [](BodyCtx& ctx) {
    ctx.lock(6);
    ctx.notify_one(6, 7);
    ctx.unlock(6);
  });
  cluster.set_body(3, [](BodyCtx& ctx) {
    ctx.lock(6);
    ctx.notify_one(6, 7);
    ctx.unlock(6);
  });
  cluster.submit(1);
  common::Clock::sleep_real(ms(5));
  cluster.submit(2);  // notifies first wait quickly
  while (!ready[0]->load() || !ready[1]->load()) common::Clock::sleep_real(ms(1));
  common::Clock::sleep_real(ms(30));  // let the stale timer fire (20ms real)
  cluster.submit(3);
  const bool done = cluster.wait_completed(3, std::chrono::seconds(10));
  if (!done) {
    for (int r = 0; r < 2; ++r) {
      auto* base = dynamic_cast<sched::SchedulerBase*>(&cluster.replica(r));
      std::cerr << "replica " << r
                << " completed=" << cluster.replica(r).completed_requests() << " "
                << (base != nullptr ? base->debug_dump() : std::string("?")) << "\n";
    }
  }
  ASSERT_TRUE(done);
  const std::vector<std::string> expected{"first-notified", "second-notified"};
  EXPECT_EQ(cluster.trace(0), expected);
  EXPECT_EQ(cluster.trace(1), expected);
}

// --- strategy-specific behaviour ------------------------------------------------

TEST_F(SchedTestBase, SeqRunsRequestsStrictlySequentially) {
  SchedulerCluster cluster(SchedulerKind::kSeq, 1);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 6; ++i) {
    cluster.set_body(i, [&](BodyCtx& ctx) {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      ctx.compute(ms(3));
      concurrent.fetch_sub(1);
    });
  }
  for (int i = 0; i < 6; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(6));
  EXPECT_EQ(peak.load(), 1);
}

TEST_F(SchedTestBase, SeqBlocksNewRequestsDuringNestedCall) {
  SchedulerCluster cluster(SchedulerKind::kSeq, 1);
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.lock(0);
    ctx.trace("r1-start");
    ctx.unlock(0);
    ctx.nested_call(500);
    ctx.lock(0);
    ctx.trace("r1-end");
    ctx.unlock(0);
  });
  cluster.set_body(2, [](BodyCtx& ctx) {
    ctx.lock(0);
    ctx.trace("r2");
    ctx.unlock(0);
  });
  cluster.submit(1);
  common::Clock::sleep_real(ms(10));
  cluster.submit(2);
  common::Clock::sleep_real(ms(10));
  cluster.deliver_reply(500);
  ASSERT_TRUE(cluster.wait_completed(2));
  EXPECT_EQ(cluster.trace(0),
            (std::vector<std::string>{"r1-start", "r1-end", "r2"}));
}

TEST_F(SchedTestBase, SatUsesNestedIdleTime) {
  SchedulerCluster cluster(SchedulerKind::kSat, 1);
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.lock(0);
    ctx.trace("r1-start");
    ctx.unlock(0);
    ctx.nested_call(500);
    ctx.lock(0);
    ctx.trace("r1-end");
    ctx.unlock(0);
  });
  cluster.set_body(2, [](BodyCtx& ctx) {
    ctx.lock(0);
    ctx.trace("r2");
    ctx.unlock(0);
  });
  cluster.submit(1);
  common::Clock::sleep_real(ms(10));
  cluster.submit(2);  // runs while request 1 waits for its reply
  common::Clock::sleep_real(ms(10));
  cluster.deliver_reply(500);
  ASSERT_TRUE(cluster.wait_completed(2));
  EXPECT_EQ(cluster.trace(0),
            (std::vector<std::string>{"r1-start", "r2", "r1-end"}));
}

TEST_F(SchedTestBase, SatNeverRunsTwoThreadsAtOnce) {
  SchedulerCluster cluster(SchedulerKind::kSat, 1);
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 5; ++i) {
    cluster.set_body(i, [&](BodyCtx& ctx) {
      if (concurrent.fetch_add(1) != 0) overlap.store(true);
      ctx.compute(ms(3));
      concurrent.fetch_sub(1);
    });
  }
  for (int i = 0; i < 5; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(5));
  EXPECT_FALSE(overlap.load());
}

TEST_F(SchedTestBase, SlExecutesCallbackOnAdditionalThread) {
  SchedulerCluster cluster(SchedulerKind::kSl, 1);
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.trace("r1-start");
    ctx.nested_call(500);
    ctx.trace("r1-end");
  });
  // Callback: same logical thread id (1) as the blocked request.
  cluster.set_body(77, [](BodyCtx& ctx) { ctx.trace("callback"); });
  cluster.submit(1);
  common::Clock::sleep_real(ms(10));
  cluster.submit(77, /*logical=*/1);  // belongs to logical thread 1
  ASSERT_TRUE(cluster.wait_completed(1));  // callback completed counts too
  common::Clock::sleep_real(ms(5));
  cluster.deliver_reply(500);
  ASSERT_TRUE(cluster.wait_completed(2));
  EXPECT_EQ(cluster.trace(0),
            (std::vector<std::string>{"r1-start", "callback", "r1-end"}));
}

TEST_F(SchedTestBase, MatRunsComputationsConcurrently) {
  SchedulerCluster cluster(SchedulerKind::kMat, 1);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    cluster.set_body(i, [&](BodyCtx& ctx) {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      ctx.compute(ms(10));
      concurrent.fetch_sub(1);
      ctx.lock(1);
      ctx.unlock(1);
    });
  }
  for (int i = 0; i < 4; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(4));
  EXPECT_GE(peak.load(), 2);
}

TEST_F(SchedTestBase, MatSerializesLockFirstPatterns) {
  // Paper Fig. 4(c): lock-compute-unlock degenerates to sequential.
  SchedulerCluster cluster(SchedulerKind::kMat, 1);
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 4; ++i) {
    cluster.set_body(i, [&, i](BodyCtx& ctx) {
      ctx.lock(10 + i);  // distinct mutexes — MAT still serialises
      if (concurrent.fetch_add(1) != 0) overlap.store(true);
      ctx.compute(ms(4));
      concurrent.fetch_sub(1);
      ctx.unlock(10 + i);
    });
  }
  for (int i = 0; i < 4; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(4));
  EXPECT_FALSE(overlap.load());
}

TEST_F(SchedTestBase, MatYieldRestoresConcurrencyForLockFirstPatterns) {
  // The paper's proposed optimisation: yield() after the critical
  // section lets the next thread lock while we still compute.
  SchedulerCluster cluster(SchedulerKind::kMat, 1);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    cluster.set_body(i, [&, i](BodyCtx& ctx) {
      ctx.lock(10 + i);
      ctx.unlock(10 + i);
      ctx.yield();
      const int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      ctx.compute(ms(10));
      concurrent.fetch_sub(1);
    });
  }
  for (int i = 0; i < 4; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(4));
  EXPECT_GE(peak.load(), 2);
}

TEST_F(SchedTestBase, LsaLeaderRoleFollowsViewOrder) {
  SchedulerCluster cluster(SchedulerKind::kLsa, 3);
  auto& leader = dynamic_cast<sched::LsaScheduler&>(cluster.replica(0));
  auto& follower = dynamic_cast<sched::LsaScheduler&>(cluster.replica(1));
  EXPECT_TRUE(leader.is_leader());
  EXPECT_FALSE(follower.is_leader());
}

TEST_F(SchedTestBase, LsaFollowersReplayLeaderGrantOrder) {
  SchedulerCluster cluster(SchedulerKind::kLsa, 3);
  cluster.set_perturbation([](int replica, std::uint64_t request) {
    common::Rng rng(static_cast<std::uint64_t>(replica) * 31 + request);
    common::Clock::sleep_real(ms(static_cast<int>(rng.uniform(0, 3))));
  });
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.lock(42);
      ctx.trace("r" + std::to_string(i));
      ctx.unlock(42);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  // The leader's real-time order (whatever it was) is replayed exactly.
  const auto leader_trace = cluster.trace(0);
  EXPECT_EQ(leader_trace.size(), kRequests);
  EXPECT_EQ(cluster.trace(1), leader_trace);
  EXPECT_EQ(cluster.trace(2), leader_trace);
}

TEST_F(SchedTestBase, LsaDynamicMutexIdsBindInProgramOrder) {
  // Threads lock several previously unregistered mutexes; followers must
  // learn the leader-assigned ids purely from the table stream.
  SchedulerCluster cluster(SchedulerKind::kLsa, 3);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      const std::uint64_t first = 1000 + (i % 3);
      const std::uint64_t second = 2000 + (i % 2);
      ctx.lock(first);
      ctx.trace("a" + std::to_string(first) + ":r" + std::to_string(i));
      ctx.lock(second);
      ctx.trace("b" + std::to_string(second) + ":r" + std::to_string(i));
      ctx.unlock(second);
      ctx.unlock(first);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  auto project = [](const std::vector<std::string>& trace) {
    std::map<std::string, std::vector<std::string>> by_mutex;
    for (const auto& e : trace) by_mutex[e.substr(0, e.find(':'))].push_back(e);
    return by_mutex;
  };
  const auto reference = project(cluster.trace(0));
  EXPECT_EQ(project(cluster.trace(1)), reference);
  EXPECT_EQ(project(cluster.trace(2)), reference);
}

TEST_F(SchedTestBase, PdsExecutesRoundsAndStaysConsistent) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 4;
  SchedulerCluster cluster(SchedulerKind::kPds, 2, config);
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.compute(ms(1));
      ctx.lock(3);
      ctx.trace("r" + std::to_string(i));
      ctx.unlock(3);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
  auto& pds = dynamic_cast<sched::PdsScheduler&>(cluster.replica(0));
  EXPECT_GT(pds.rounds(), 0u);
}

TEST_F(SchedTestBase, Pds2NeedsFewerRoundsThanPds1ForTwoLockWork) {
  auto run = [&](int variant) {
    sched::SchedulerConfig config;
    config.pds_thread_pool = 4;
    config.pds_variant = variant;
    SchedulerCluster cluster(SchedulerKind::kPds, 1, config);
    constexpr int kRequests = 12;
    for (int i = 0; i < kRequests; ++i) {
      cluster.set_body(i, [i](BodyCtx& ctx) {
        ctx.lock(100 + (i % 4));
        ctx.lock(200 + (i % 4));
        ctx.unlock(200 + (i % 4));
        ctx.unlock(100 + (i % 4));
      });
    }
    for (int i = 0; i < kRequests; ++i) cluster.submit(i);
    EXPECT_TRUE(cluster.wait_completed(kRequests));
    return dynamic_cast<sched::PdsScheduler&>(cluster.replica(0)).rounds();
  };
  const auto rounds_pds1 = run(1);
  const auto rounds_pds2 = run(2);
  EXPECT_LT(rounds_pds2, rounds_pds1);
}

TEST_F(SchedTestBase, PdsPoolGrowsOutOfAllWaitingDeadlock) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 2;
  config.pds_min_nonwaiting = 1;
  SchedulerCluster cluster(SchedulerKind::kPds, 2, config);
  std::vector<std::unique_ptr<std::atomic<bool>>> ready;
  for (int r = 0; r < 2; ++r) ready.push_back(std::make_unique<std::atomic<bool>>(false));
  // Both initial workers block in wait(); without resizing the notify
  // request could never be executed.
  for (int w = 0; w < 2; ++w) {
    cluster.set_body(w, [&ready, w](BodyCtx& ctx) {
      ctx.lock(1);
      while (!ready[ctx.replica()]->load()) ctx.wait(1, 2);
      ctx.trace("woke" + std::to_string(w));
      ctx.unlock(1);
    });
  }
  cluster.set_body(9, [&ready](BodyCtx& ctx) {
    ctx.lock(1);
    ready[ctx.replica()]->store(true);
    ctx.notify_all(1, 2);
    ctx.unlock(1);
  });
  cluster.submit(0);
  cluster.submit(1);
  common::Clock::sleep_real(ms(30));
  cluster.submit(9);
  ASSERT_TRUE(cluster.wait_completed(3));
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
}

TEST_F(SchedTestBase, PdsRoundRobinAssignmentStaysConsistent) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  config.pds_round_robin_assignment = true;
  SchedulerCluster cluster(SchedulerKind::kPds, 2, config);
  constexpr int kRequests = 9;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.lock(4);
      ctx.trace("r" + std::to_string(i));
      ctx.unlock(4);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
  EXPECT_EQ(per_mutex(cluster.replica(0).grant_trace()),
            per_mutex(cluster.replica(1).grant_trace()));
}

/// Paper Fig. 1: ADETS-LSA timeout handling.  The TO-thread (with its
/// derived deterministic id) locks the guarding mutex through the
/// scheduler; whichever of notify/timeout wins on the leader is replayed
/// by the followers.
TEST_F(SchedTestBase, LsaTimeoutTrace) {
  SchedulerCluster cluster(SchedulerKind::kLsa, 3);
  cluster.set_body(1, [](BodyCtx& ctx) {
    ctx.lock(6);
    const bool notified = ctx.wait_for(6, 7, paper_ms(60));  // 3ms real
    ctx.trace(notified ? "notified" : "timeout");
    ctx.unlock(6);
  });
  cluster.set_body(2, [](BodyCtx& ctx) {
    ctx.lock(6);
    ctx.notify_one(6, 7);
    ctx.unlock(6);
  });
  cluster.submit(1);
  common::Clock::sleep_real(ms(3));
  cluster.submit(2);
  ASSERT_TRUE(cluster.wait_completed(2));
  common::Clock::sleep_real(ms(30));  // let TO-threads run everywhere
  // All replicas agree on the race outcome.
  const auto reference = cluster.trace(0);
  ASSERT_EQ(reference.size(), 1u);
  for (int r = 1; r < 3; ++r) EXPECT_EQ(cluster.trace(r), reference);
  // The TO-thread construct was exercised: some grant of mutex 6 went to
  // a thread with a derived (high-bit) id, on every replica, in the same
  // per-mutex position.
  const auto grants = per_mutex(cluster.replica(0).grant_trace());
  bool saw_to_thread = false;
  for (const auto thread : grants.at(6)) {
    if (thread & (1ULL << 63)) saw_to_thread = true;
  }
  EXPECT_TRUE(saw_to_thread);
  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(per_mutex(cluster.replica(r).grant_trace()), grants);
  }
}

/// Paper Fig. 2: ADETS-PDS condition-variable handling — a notified
/// waiter must first reacquire the guarding mutex, which postpones it to
/// the start of the next round.
TEST_F(SchedTestBase, PdsCondVarRounds) {
  sched::SchedulerConfig config;
  config.pds_thread_pool = 3;
  SchedulerCluster cluster(SchedulerKind::kPds, 2, config);
  std::vector<std::unique_ptr<std::atomic<bool>>> flag;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> round_at_notify;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> round_at_resume;
  for (int r = 0; r < 2; ++r) {
    flag.push_back(std::make_unique<std::atomic<bool>>(false));
    round_at_notify.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    round_at_resume.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  auto rounds_of = [&cluster](int replica) {
    return dynamic_cast<sched::PdsScheduler&>(cluster.replica(replica)).rounds();
  };
  cluster.set_body(1, [&](BodyCtx& ctx) {
    ctx.lock(6);
    while (!flag[ctx.replica()]->load()) ctx.wait(6, 7);
    round_at_resume[ctx.replica()]->store(rounds_of(ctx.replica()));
    ctx.trace("resumed");
    ctx.unlock(6);
  });
  cluster.set_body(2, [&](BodyCtx& ctx) {
    ctx.lock(6);
    flag[ctx.replica()]->store(true);
    ctx.notify_one(6, 7);
    round_at_notify[ctx.replica()]->store(rounds_of(ctx.replica()));
    ctx.unlock(6);
  });
  cluster.submit(1);
  common::Clock::sleep_real(ms(20));
  cluster.submit(2);
  ASSERT_TRUE(cluster.wait_completed(2));
  for (int r = 0; r < 2; ++r) {
    // The waiter resumed in a strictly later round than the notify.
    EXPECT_GT(round_at_resume[r]->load(), round_at_notify[r]->load())
        << "replica " << r;
  }
  EXPECT_EQ(cluster.trace(0), cluster.trace(1));
}

/// ADETS-LSA with batched mutex tables must stay deterministic; only
/// the communication pattern changes.
TEST_F(SchedTestBase, LsaBatchedTablesStayDeterministic) {
  sched::SchedulerConfig config;
  config.lsa_batch_grants = 4;
  config.lsa_batch_delay = std::chrono::milliseconds(3);
  SchedulerCluster cluster(SchedulerKind::kLsa, 3, config);
  cluster.set_perturbation([](int replica, std::uint64_t request) {
    common::Rng rng(static_cast<std::uint64_t>(replica) * 17 + request);
    common::Clock::sleep_real(ms(static_cast<int>(rng.uniform(0, 2))));
  });
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    cluster.set_body(i, [i](BodyCtx& ctx) {
      ctx.lock(3);
      ctx.trace("r" + std::to_string(i));
      ctx.unlock(3);
    });
  }
  for (int i = 0; i < kRequests; ++i) cluster.submit(i);
  ASSERT_TRUE(cluster.wait_completed(kRequests));
  EXPECT_EQ(cluster.trace(1), cluster.trace(0));
  EXPECT_EQ(cluster.trace(2), cluster.trace(0));
}

TEST_F(SchedTestBase, GrantTraceCanBeDisabled) {
  SchedulerCluster cluster(SchedulerKind::kSat, 1);
  cluster.replica(0).set_trace(false);
  cluster.set_body(0, [](BodyCtx& ctx) {
    ctx.lock(1);
    ctx.unlock(1);
  });
  cluster.submit(0);
  ASSERT_TRUE(cluster.wait_completed(1));
  EXPECT_TRUE(cluster.replica(0).grant_trace().empty());
}

}  // namespace
}  // namespace adets::testing
