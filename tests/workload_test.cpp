// Unit tests for the workload objects (marshalling, state hashing) that
// do not need a full cluster.
#include <gtest/gtest.h>

#include "workload/objects.hpp"
#include "replication/statehash.hpp"

namespace repl = adets::repl;

namespace adets::workload {
namespace {

TEST(PackTest, RoundTripsValues) {
  EXPECT_EQ(unpack_u64(pack_u64(7)), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(unpack_u64(pack_u64(1, 2)), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(unpack_u64(pack_u64(1, 2, 3)), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(unpack_u64({}).empty());
}

TEST(StateHashTest, OrderSensitive) {
  repl::StateHash a;
  a.mix(1).mix(2);
  repl::StateHash b;
  b.mix(2).mix(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(StateHashTest, StringsAndRanges) {
  repl::StateHash a;
  a.mix(std::string("hello"));
  repl::StateHash b;
  b.mix(std::string("hello"));
  EXPECT_EQ(a.digest(), b.digest());
  repl::StateHash c;
  c.mix(std::string("world"));
  EXPECT_NE(a.digest(), c.digest());

  std::vector<std::uint64_t> range{1, 2, 3};
  repl::StateHash d;
  d.mix_range(range);
  repl::StateHash e;
  e.mix(1).mix(2).mix(3);
  EXPECT_EQ(d.digest(), e.digest());
}

TEST(ObjectsTest, FreshObjectsHashEqually) {
  ComputePatterns a(10);
  ComputePatterns b(10);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  UnboundedBuffer u1;
  UnboundedBuffer u2;
  EXPECT_EQ(u1.state_hash(), u2.state_hash());
  BankAccounts bank1(8);
  BankAccounts bank2(8);
  EXPECT_EQ(bank1.state_hash(), bank2.state_hash());
}

}  // namespace
}  // namespace adets::workload
