// Divergence-audit tests.
//
// The auditor's contract has two sides: every stock strategy must sail
// through fault-heavy runs without a divergence report, and a scheduler
// that actually breaks the determinism contract must be caught — with a
// decision-trace diff naming the first disagreeing lock grant, not just
// a pair of unequal hashes.  The negative control is RacyScheduler
// (tests/racy_scheduler.hpp), which grants locks in real-time order
// perturbed by a replica-local stagger.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/serialization.hpp"
#include "racy_scheduler.hpp"
#include "replication/audit.hpp"
#include "replication/statehash.hpp"
#include "runtime/cluster.hpp"
#include "runtime/context.hpp"
#include "runtime/object.hpp"
#include "workload/scenario.hpp"

namespace adets {
namespace {

using common::paper_ms;
using common::paper_us;

class DivergenceAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_scale_ = common::Clock::scale();
    common::Clock::set_scale(0.01);
  }
  void TearDown() override { common::Clock::set_scale(saved_scale_); }

 private:
  double saved_scale_ = 1.0;
};

/// Order-sensitive replicated object: the state hash mixes entries in
/// append order, so ANY cross-replica disagreement on the interleaving
/// of concurrent appends diverges the hashes (a last-writer-wins map
/// could mask all but the final race).
class AppendLog : public runtime::ReplicatedObject {
 public:
  common::Bytes dispatch(const std::string& method, const common::Bytes& args,
                         runtime::SyncContext& ctx) override {
    if (method != "append") throw std::invalid_argument("unknown method: " + method);
    common::Reader r(args);
    const std::string entry = r.str();
    runtime::DetLock lock(ctx, common::MutexId(0));
    log_.push_back(entry);
    return {};
  }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return repl::StateHash{}.mix_range(log_).digest();
  }

 private:
  std::vector<std::string> log_;
};

common::Bytes pack_entry(const std::string& entry) {
  common::Writer w;
  w.str(entry);
  return w.take();
}

/// Two client threads racing appends into one group.
void race_appends(runtime::Cluster& cluster, common::GroupId group,
                  int appends_per_client) {
  runtime::Client* clients[2] = {&cluster.create_client(), &cluster.create_client()};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < appends_per_client; ++i) {
        clients[c]->invoke(group, "append",
                           pack_entry("c" + std::to_string(c) + "-" +
                                      std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
}

// --- positive side: stock strategies never trip the auditor ---------------

TEST_F(DivergenceAuditTest, StockSchedulersConvergeUnderFaultPlans) {
  for (const auto kind : workload::all_scheduler_kinds()) {
    for (const std::uint64_t seed : {3ULL, 11ULL}) {
      SCOPED_TRACE(to_string(kind) + " seed=" + std::to_string(seed));
      workload::ScenarioConfig config;
      config.requests_per_client = 10;
      config.workload_seed = seed;
      config.faults = transport::FaultPlan{}
                          .with_seed(seed)
                          .duplicate(0.2)
                          .delay(paper_us(100), paper_ms(2))
                          .reorder(0.1, 3);
      const auto result = run_scenario(kind, config);
      ASSERT_TRUE(result.drained);
      EXPECT_TRUE(result.converged) << result.audit.diagnostic;
      EXPECT_FALSE(result.audit.diverged);
      EXPECT_TRUE(result.audit.diagnostic.empty());
    }
  }
}

TEST_F(DivergenceAuditTest, StockSchedulerPassesTheRacyWorkload) {
  runtime::Cluster cluster;
  const auto group = cluster.create_group(3, sched::SchedulerKind::kSat,
                                          [] { return std::make_unique<AppendLog>(); });
  race_appends(cluster, group, 20);
  ASSERT_TRUE(cluster.wait_drained(group, 40, std::chrono::seconds(60)));
  const auto report = repl::audit_group(cluster, group);
  EXPECT_FALSE(report.diverged) << report.diagnostic;
}

TEST_F(DivergenceAuditTest, BackgroundAuditorStaysQuietOnCleanRun) {
  workload::ScenarioConfig config;
  config.faults = transport::FaultPlan{}.with_seed(4).duplicate(0.1);
  config.audit_period = std::chrono::milliseconds(2);
  const auto result = run_scenario(sched::SchedulerKind::kPds, config);
  ASSERT_TRUE(result.drained);
  EXPECT_TRUE(result.converged) << result.audit.diagnostic;
  EXPECT_GT(result.background_audits, 0u);
  EXPECT_FALSE(result.background_divergence);
}

// --- negative control: a broken scheduler must be flagged -----------------

TEST_F(DivergenceAuditTest, RacySchedulerIsCaughtWithDecisionTraceDiff) {
  runtime::Cluster cluster;
  const auto group = cluster.create_group(
      3, [] { return std::make_unique<testing::RacyScheduler>(); },
      [] { return std::make_unique<AppendLog>(); });
  repl::DivergenceAuditor auditor(cluster, group);

  race_appends(cluster, group, 20);
  ASSERT_TRUE(cluster.wait_drained(group, 40, std::chrono::seconds(60)));

  const auto report = auditor.check();
  ASSERT_TRUE(report.diverged)
      << "racy scheduler produced identical replicas by chance";
  EXPECT_TRUE(auditor.divergence_detected());
  EXPECT_TRUE(auditor.first_divergence().diverged);
  ASSERT_EQ(report.replicas.size(), 3u);

  // The diagnostic names the divergence and pinpoints where the lock
  // grant streams parted ways.
  EXPECT_NE(report.diagnostic.find("DIVERGENCE"), std::string::npos)
      << report.diagnostic;
  EXPECT_NE(report.diagnostic.find("decision-trace diff"), std::string::npos)
      << report.diagnostic;
  for (const auto& snapshot : report.replicas) {
    EXPECT_FALSE(snapshot.decisions.empty());
  }
}

// --- projection helper ----------------------------------------------------

TEST_F(DivergenceAuditTest, PerMutexProjectionKeepsOnlyApplicationGrants) {
  const auto grant = [](std::uint64_t seq, std::uint64_t mutex, std::uint64_t thread) {
    return sched::Decision{sched::Decision::Kind::kLockGrant, seq,
                           common::MutexId(mutex), common::CondVarId::invalid(),
                           common::ThreadId(thread), 0};
  };
  std::vector<sched::Decision> decisions;
  decisions.push_back(grant(0, 5, 1));
  decisions.push_back(grant(1, (1ULL << 61) + 3, 9));  // scheduler-internal
  decisions.push_back(sched::Decision{sched::Decision::Kind::kNotify, 2,
                                      common::MutexId(5), common::CondVarId(1),
                                      common::ThreadId(4), 0});
  decisions.push_back(grant(3, 5, 2));
  decisions.push_back(grant(4, 6, 7));

  const auto projection = repl::per_mutex_decisions(decisions);
  ASSERT_EQ(projection.size(), 2u);
  EXPECT_EQ(projection.at(5), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(projection.at(6), (std::vector<std::uint64_t>{7}));
}

}  // namespace
}  // namespace adets
