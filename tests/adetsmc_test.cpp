// Regression tests for the adets-mc model checker (src/mc/).
//
// The negative control: adetsmc must catch tests/racy_scheduler.hpp (a
// scheduler that grants locks in real-time order) with a minimized,
// deterministically replayable divergence trace.  The positive
// controls: exhaustive DPOR exploration must complete with zero
// violations for SEQ on the contended two-request lock scenario and for
// LSA on the single-request protocol-pipeline scenario, and every
// strategy must survive a bounded sweep of its applicable scenarios.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/harness.hpp"
#include "mc/scenario.hpp"
#include "mc/trace.hpp"

namespace {

using adets::mc::ExecutionResult;
using adets::mc::ExploreOptions;
using adets::mc::ExploreReport;
using adets::mc::Scenario;

const Scenario* scenario(const char* name) {
  const Scenario* s = adets::mc::find_scenario(name);
  EXPECT_NE(s, nullptr) << "unknown scenario " << name;
  return s;
}

TEST(AdetsMcTest, RacySchedulerDivergenceFoundMinimizedAndReplayable) {
  const Scenario* racy = scenario("racy_locks");
  ASSERT_NE(racy, nullptr);

  ExploreOptions options;
  options.preemption_bound = 2;
  options.max_schedules = 500;
  options.max_seconds = 60.0;
  const ExploreReport report = adets::mc::explore(*racy, "racy", options);

  ASSERT_TRUE(report.found_violation) << report.report;
  bool grant_divergence = false;
  for (const adets::mc::Violation& v : report.violations) {
    grant_divergence = grant_divergence || v.property == "grant-divergence";
  }
  EXPECT_TRUE(grant_divergence) << report.report;
  ASSERT_FALSE(report.witness.empty());

  // The minimized witness must reproduce the violation on strict replay,
  // and two replays must agree byte-for-byte.
  const ExecutionResult first =
      adets::mc::replay_trace(*racy, "racy", report.witness, {});
  ASSERT_FALSE(first.violations.empty()) << first.report;
  const ExecutionResult second =
      adets::mc::replay_trace(*racy, "racy", report.witness, {});
  EXPECT_EQ(first.order_key, second.order_key);
  EXPECT_EQ(first.outcome, second.outcome);
  EXPECT_EQ(first.report, second.report);
}

TEST(AdetsMcTest, ExhaustiveSeqContendedLocksHasNoViolations) {
  const Scenario* locks2 = scenario("locks2");
  ASSERT_NE(locks2, nullptr);

  ExploreOptions options;
  options.preemption_bound = -1;  // full DPOR
  options.max_schedules = 5000;
  options.max_seconds = 120.0;
  const ExploreReport report = adets::mc::explore(*locks2, "seq", options);

  EXPECT_TRUE(report.exhausted) << report.report;
  EXPECT_FALSE(report.found_violation) << report.report;
  EXPECT_EQ(report.schedules, report.completed) << report.report;
}

TEST(AdetsMcTest, ExhaustiveLsaProtocolPipelineHasNoViolations) {
  const Scenario* single = scenario("single");
  ASSERT_NE(single, nullptr);

  ExploreOptions options;
  options.preemption_bound = -1;  // full DPOR
  options.max_schedules = 30000;
  options.max_seconds = 240.0;
  const ExploreReport report = adets::mc::explore(*single, "lsa", options);

  EXPECT_TRUE(report.exhausted) << report.report;
  EXPECT_FALSE(report.found_violation) << report.report;
}

TEST(AdetsMcTest, BatchedDeliveryPreservesGrantTraceEquality) {
  // The seqbatch scenario models a flushed sequencer batch: all four
  // requests start back-to-back with no delivery interleaving between
  // them.  Under a bounded exploration no strategy may diverge the
  // per-mutex grant traces across replicas.
  const Scenario* seqbatch = scenario("seqbatch");
  ASSERT_NE(seqbatch, nullptr);

  for (const std::string strategy : {"seq", "sat"}) {
    ExploreOptions options;
    options.preemption_bound = 2;
    options.max_schedules = 200;
    options.max_seconds = 60.0;
    const ExploreReport report = adets::mc::explore(*seqbatch, strategy, options);
    EXPECT_FALSE(report.found_violation)
        << strategy << "/seqbatch: " << report.report;
    EXPECT_GT(report.completed, 0u) << strategy << "/seqbatch: " << report.report;
  }
}

TEST(AdetsMcTest, BoundedSweepAllStrategiesAllScenariosHasNoViolations) {
  for (const std::string strategy : {"seq", "sl", "sat", "mat", "lsa", "pds"}) {
    for (const Scenario& s : adets::mc::scenarios()) {
      if (!adets::mc::strategy_supports(strategy, s)) continue;
      ExploreOptions options;
      options.preemption_bound = 2;
      options.max_schedules = 60;
      options.max_seconds = 20.0;
      const ExploreReport report = adets::mc::explore(s, strategy, options);
      EXPECT_FALSE(report.found_violation)
          << strategy << "/" << s.name << ": " << report.report;
    }
  }
}

TEST(AdetsMcTest, TraceFileRoundTrips) {
  adets::mc::TraceFile trace;
  trace.strategy = "racy";
  trace.scenario = "racy_locks";
  trace.choices = {{adets::mc::ChoiceKey::Kind::kStep, 2, 0},
                   {adets::mc::ChoiceKey::Kind::kTimeout, 200, 0},
                   {adets::mc::ChoiceKey::Kind::kTimer, 1, 42}};
  const std::string rendered = adets::mc::render_trace(trace);
  const auto parsed = adets::mc::parse_trace(rendered);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->strategy, trace.strategy);
  EXPECT_EQ(parsed->scenario, trace.scenario);
  ASSERT_EQ(parsed->choices.size(), trace.choices.size());
  for (std::size_t i = 0; i < trace.choices.size(); ++i) {
    EXPECT_EQ(parsed->choices[i], trace.choices[i]) << "choice " << i;
  }
}

}  // namespace
